"""Acceptance: the two-gateway fleet telemetry demo end to end.

This is the PR 6 acceptance surface: two gateways' per-worker and
per-(worker, tenant) registries merge into one fleet snapshot whose
sketch percentiles sit within the advertised relative-error bound of
the exact pooled values, sim-clock scrapes feed the SLO monitor, and a
seeded overload fires a deterministic alert stream.
"""

import math

import pytest

from repro.bench.experiments.obs_telemetry import run_fleet_demo
from repro.obs.slo import LATENCY_METRIC


@pytest.fixture(scope="module")
def demo():
    return run_fleet_demo()


def test_two_gateways_feed_the_fleet(demo):
    assert [row["gateway"] for row in demo["rows"]] == ["gw0", "gw1"]
    for row in demo["rows"]:
        assert row["completed"] > 0
        assert row["sample_count"] == row["completed"]
        # Each gateway owns >= 2 worker registries + tenant shards.
        assert row["registries"] >= 4
    assert demo["headlines"]["obs_member_registries"] >= 4.0


def test_fleet_quantiles_within_sketch_bound(demo):
    """The merged sketch's p50/p99 must sit within alpha of the exact
    pooled nearest-rank percentiles — the mergeability guarantee the
    whole roll-up design rests on."""
    headlines = demo["headlines"]
    alpha = headlines["obs_sketch_alpha"]
    assert headlines["obs_fleet_p50_rel_err"] <= alpha
    assert headlines["obs_fleet_p99_rel_err"] <= alpha
    assert headlines["obs_fleet_sample_count"] == sum(
        row["sample_count"] for row in demo["rows"]
    )


def test_scrapes_ran_on_the_sim_clock(demo):
    assert demo["headlines"]["obs_scrapes"] >= 2.0


def test_overload_fires_deterministic_slo_alerts(demo):
    """Seeded overload: the hot tenant burns latency budget and the
    cold tenant misses its goodput floor at deterministic sim times."""
    alerts = demo["alerts"]
    assert alerts, "overload must fire at least one alert"
    kinds = {a["kind"] for a in alerts}
    assert "latency_burn" in kinds
    assert "goodput_floor" in kinds
    assert any(a["severity"] == "page" for a in alerts)
    tenants = {a["tenant"] for a in alerts}
    assert "hot" in tenants and "cold" in tenants
    for alert in alerts:
        assert alert["type"] == "slo_alert"
        assert alert["fired_at_s"] > 0.0


def test_demo_is_deterministic(demo):
    """Re-running the demo reproduces the identical record — alerts,
    quantile errors, sample counts, everything."""
    again = run_fleet_demo()
    assert again["headlines"] == demo["headlines"]
    assert again["alerts"] == demo["alerts"]
    assert again["rows"] == demo["rows"]
    assert again["exact"] == demo["exact"]


def test_metric_name_contract(demo):
    """The serve layer and the SLO monitor agree on instrument names."""
    assert LATENCY_METRIC == "serve.latency_s"
    exact = demo["exact"]
    assert 0.0 < exact["p50_s"] <= exact["p99_s"]
    assert not math.isnan(demo["headlines"]["obs_fleet_p99_s"])
