"""repro.obs.logging: silent default, REPRO_LOG opt-in."""

import io
import logging

import pytest

from repro.obs.logging import ENV_VAR, configure, get_logger


@pytest.fixture(autouse=True)
def restore_logging(monkeypatch):
    """Each test reconfigures; put the silent default back afterwards."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(ENV_VAR, raising=False)
    configure(force=True)


def test_logger_names_are_namespaced():
    assert get_logger("bench").name == "repro.bench"
    assert get_logger("repro.bench").name == "repro.bench"
    assert get_logger().name == "repro"
    assert get_logger("repro").name == "repro"


def test_silent_by_default():
    root = configure(force=True)
    assert not root.propagate
    assert all(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_env_var_enables_output():
    stream = io.StringIO()
    import os

    os.environ[ENV_VAR] = "debug"
    try:
        root = configure(force=True, stream=stream)
    finally:
        del os.environ[ENV_VAR]
    assert root.level == logging.DEBUG
    get_logger("bench").debug("hello %s", "world")
    assert "[repro.bench] DEBUG hello world" in stream.getvalue()


def test_explicit_level_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "error")
    stream = io.StringIO()
    root = configure("info", force=True, stream=stream)
    assert root.level == logging.INFO


def test_unknown_level_stays_silent(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "nonsense")
    root = configure(force=True)
    assert all(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_configure_idempotent_without_force():
    first = configure(force=True)
    handlers = list(first.handlers)
    second = configure("debug")  # ignored: already configured
    assert second.handlers == handlers
