"""repro.obs.logging: silent default, REPRO_LOG opt-in."""

import io
import logging

import pytest

from repro.obs.logging import ENV_VAR, configure, get_logger, parse_spec


@pytest.fixture(autouse=True)
def restore_logging(monkeypatch):
    """Each test reconfigures; put the silent default back afterwards."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(ENV_VAR, raising=False)
    configure(force=True)


def test_logger_names_are_namespaced():
    assert get_logger("bench").name == "repro.bench"
    assert get_logger("repro.bench").name == "repro.bench"
    assert get_logger().name == "repro"
    assert get_logger("repro").name == "repro"


def test_silent_by_default():
    root = configure(force=True)
    assert not root.propagate
    assert all(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_env_var_enables_output():
    stream = io.StringIO()
    import os

    os.environ[ENV_VAR] = "debug"
    try:
        root = configure(force=True, stream=stream)
    finally:
        del os.environ[ENV_VAR]
    assert root.level == logging.DEBUG
    get_logger("bench").debug("hello %s", "world")
    assert "[repro.bench] DEBUG hello world" in stream.getvalue()


def test_explicit_level_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "error")
    stream = io.StringIO()
    root = configure("info", force=True, stream=stream)
    assert root.level == logging.INFO


def test_unknown_level_stays_silent(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "nonsense")
    root = configure(force=True)
    assert all(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_configure_idempotent_without_force():
    first = configure(force=True)
    handlers = list(first.handlers)
    second = configure("debug")  # ignored: already configured
    assert second.handlers == handlers


class TestParseSpec:
    def test_global_only(self):
        assert parse_spec("debug") == (logging.DEBUG, {})

    def test_per_subsystem_only(self):
        assert parse_spec("serve=debug,obs=warning") == (
            None, {"serve": logging.DEBUG, "obs": logging.WARNING},
        )

    def test_mixed_global_and_overrides(self):
        assert parse_spec("info,sched=debug") == (
            logging.INFO, {"sched": logging.DEBUG},
        )

    def test_whitespace_case_and_warn_alias(self):
        assert parse_spec(" Serve = DEBUG , obs=Warn ") == (
            None, {"Serve": logging.DEBUG, "obs": logging.WARNING},
        )

    def test_unknown_tokens_ignored(self):
        assert parse_spec("nonsense,serve=nope,=debug,,") == (None, {})

    def test_dotted_subsystem_paths_allowed(self):
        assert parse_spec("mpi.protocol=debug") == (
            None, {"mpi.protocol": logging.DEBUG},
        )


class TestPerSubsystemLevels:
    def capture(self, spec, monkeypatch):
        monkeypatch.setenv(ENV_VAR, spec)
        stream = io.StringIO()
        configure(force=True, stream=stream)
        return stream

    def test_only_named_subsystems_speak(self, monkeypatch):
        stream = self.capture("serve=debug,obs=warning", monkeypatch)
        get_logger("serve").debug("serve-dbg")
        get_logger("obs").info("obs-info")       # muted: obs is warning+
        get_logger("obs").warning("obs-warn")
        get_logger("sched").info("sched-info")   # muted: global default
        out = stream.getvalue()
        assert "[repro.serve] DEBUG serve-dbg" in out
        assert "obs-info" not in out
        assert "[repro.obs] WARNING obs-warn" in out
        assert "sched-info" not in out

    def test_override_applies_to_child_loggers(self, monkeypatch):
        stream = self.capture("serve=debug", monkeypatch)
        get_logger("serve.gateway").debug("nested-dbg")
        assert "[repro.serve.gateway] DEBUG nested-dbg" in stream.getvalue()

    def test_global_with_louder_subsystem(self, monkeypatch):
        stream = self.capture("info,sched=debug", monkeypatch)
        get_logger("sched").debug("sched-dbg")
        get_logger("serve").debug("serve-dbg")  # muted: global is info
        get_logger("serve").info("serve-info")
        out = stream.getvalue()
        assert "sched-dbg" in out
        assert "serve-dbg" not in out
        assert "serve-info" in out

    def test_subsystem_can_be_quieter_than_global(self, monkeypatch):
        stream = self.capture("debug,obs=error", monkeypatch)
        get_logger("obs").warning("obs-warn")   # muted below error
        get_logger("obs").error("obs-err")
        get_logger("serve").debug("serve-dbg")
        out = stream.getvalue()
        assert "obs-warn" not in out
        assert "obs-err" in out
        assert "serve-dbg" in out

    def test_reconfigure_clears_old_overrides(self, monkeypatch):
        self.capture("serve=debug", monkeypatch)
        stream = self.capture("info", monkeypatch)
        get_logger("serve").debug("stale-dbg")  # old override must be gone
        get_logger("serve").info("fresh-info")
        out = stream.getvalue()
        assert "stale-dbg" not in out
        assert "fresh-info" in out

    def test_dotted_override_targets_exact_logger(self, monkeypatch):
        stream = self.capture("serve.gateway=debug", monkeypatch)
        get_logger("serve.gateway").debug("gw-dbg")
        get_logger("serve").debug("parent-dbg")  # not covered
        out = stream.getvalue()
        assert "gw-dbg" in out
        assert "parent-dbg" not in out
