"""Exporters: Chrome trace JSON, the JSONL event log, flamegraphs."""

import json

import pytest

from repro.obs import (
    CodecProfiler,
    MetricsRegistry,
    chrome_trace_events,
    collapsed_stacks,
    device_span,
    span_records,
    tracing,
    write_chrome_trace,
    write_flamegraph,
    write_jsonl,
    write_metrics_json,
)
from repro.sim import Environment


class FakeDevice:
    def __init__(self, env, name="bf2"):
        self.env = env
        self.name = name


def sleeper(env, seconds):
    yield env.timeout(seconds)


def record_sample_trace():
    with tracing() as tr:
        env = Environment()
        dev = FakeDevice(env)
        with device_span("pedal.compress", dev, algo="deflate",
                         bytes=4096) as outer:
            env.run(until=env.process(sleeper(env, 1.0)))
            with device_span("cengine.compress", dev):
                env.run(until=env.process(sleeper(env, 2.0)))
            outer.phase("compression", 2.0)
    return tr


class TestChromeTraceSchema:
    def test_every_event_has_required_keys(self):
        events = chrome_trace_events(record_sample_trace())
        assert events, "no events emitted"
        for event in events:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event, f"{event['ph']} event missing {key}"

    def test_span_events_are_complete_events_on_sim_clock(self):
        tr = record_sample_trace()
        spans = [e for e in chrome_trace_events(tr) if e["ph"] == "X"]
        assert len(spans) == 2
        outer, inner = spans
        assert outer["name"] == "pedal.compress"
        assert outer["ts"] == pytest.approx(0.0)
        assert outer["dur"] == pytest.approx(3.0e6)  # sim micros
        assert inner["ts"] == pytest.approx(1.0e6)
        assert inner["dur"] == pytest.approx(2.0e6)
        assert outer["tid"] == inner["tid"]
        assert outer["args"]["algo"] == "deflate"
        assert outer["args"]["phases_s"] == {"compression": 2.0}
        assert "wall_us" in outer["args"]

    def test_metadata_events_name_process_and_tracks(self):
        events = chrome_trace_events(record_sample_trace())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names["process_name"] == "repro-sim"
        assert names["thread_name"] == "bf2"

    def test_write_chrome_trace_file(self, tmp_path):
        tr = record_sample_trace()
        path = tmp_path / "out.trace.json"
        n = write_chrome_trace(tr, str(path))
        assert n == 2
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["clock"] == "simulated"
        assert doc["otherData"]["sim_seconds_total"] == pytest.approx(3.0)

    def test_non_json_attr_values_stringified(self):
        with tracing() as tr:
            env = Environment()
            dev = FakeDevice(env)
            with device_span("op", dev, weird=object()):
                pass
        events = chrome_trace_events(tr)
        args = [e for e in events if e["ph"] == "X"][0]["args"]
        assert isinstance(args["weird"], str)
        json.dumps(events)


class TestJsonl:
    def test_span_records_reference_parents_by_index(self):
        tr = record_sample_trace()
        records = span_records(tr)
        assert [r["name"] for r in records] == [
            "pedal.compress", "cengine.compress",
        ]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["index"]
        assert records[1]["sim_dur_s"] == pytest.approx(2.0)

    def test_write_jsonl_with_metrics(self, tmp_path):
        tr = record_sample_trace()
        metrics = MetricsRegistry()
        metrics.inc("jobs", 2)
        metrics.set_gauge("depth", 1.0)
        metrics.observe("wait", 0.5, (1.0,))
        path = tmp_path / "out.jsonl"
        n = write_jsonl(tr, str(path), metrics=metrics)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == n == 5  # 2 spans + counter + gauge + histogram
        assert {l["type"] for l in lines} == {
            "span", "counter", "gauge", "histogram",
        }

    def test_write_metrics_json(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.inc("a", 3)
        path = tmp_path / "m.json"
        write_metrics_json(metrics, str(path))
        doc = json.loads(path.read_text())
        assert doc["counters"] == {"a": 3.0}

    def test_histogram_record_shape_is_pinned(self, tmp_path):
        """Regression pin: the per-line JSONL shape is a stable contract
        — downstream grep/pandas consumers key on exactly these fields,
        including the +Inf ``overflow`` break-out added in PR 6."""
        metrics = MetricsRegistry()
        metrics.observe("wait", 0.5, (1.0, 2.0))
        metrics.observe("wait", 99.0, (1.0, 2.0))  # overflow bucket
        path = tmp_path / "out.jsonl"
        write_jsonl(None, str(path), metrics=metrics)
        (record,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert record == {
            "type": "histogram",
            "name": "wait",
            "boundaries": [1.0, 2.0],
            "counts": [1, 0, 1],
            "overflow": 1,
            "sum": 99.5,
            "count": 2,
        }

    def test_span_record_shape_is_pinned(self):
        record = span_records(record_sample_trace())[0]
        assert set(record) == {
            "type", "index", "name", "track", "parent", "sim_start_s",
            "sim_dur_s", "wall_dur_s", "attrs", "phases",
        }


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        reading = self.now
        self.now += 1.0
        return reading


class TestFlamegraph:
    def profiler(self):
        p = CodecProfiler(clock=FakeClock())
        with p.kernel("deflate.compress"):
            with p.kernel("lz77.match_loop"):
                pass
        return p

    def test_collapsed_stacks_weighted_by_self_micros(self):
        # lz77 self 1 s, deflate self 2 s (child time excluded).
        assert collapsed_stacks(self.profiler()) == [
            "deflate.compress 2000000",
            "deflate.compress;lz77.match_loop 1000000",
        ]

    def test_write_flamegraph_file(self, tmp_path):
        path = tmp_path / "out.folded"
        n = write_flamegraph(self.profiler(), str(path))
        assert n == 2
        lines = path.read_text().splitlines()
        assert lines == collapsed_stacks(self.profiler())
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack
            int(weight)  # flamegraph.pl wants integer sample weights

    def test_zero_weight_paths_kept(self):
        p = CodecProfiler()  # real clock: a pass body rounds to 0 us
        with p.kernel("noop"):
            pass
        (line,) = collapsed_stacks(p)
        assert line.startswith("noop ")

    def test_empty_profiler_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.folded"
        assert write_flamegraph(CodecProfiler(), str(path)) == 0
        assert path.read_text() == ""
