"""Exporters: Chrome trace-event schema and the JSONL event log."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    chrome_trace_events,
    device_span,
    span_records,
    tracing,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.sim import Environment


class FakeDevice:
    def __init__(self, env, name="bf2"):
        self.env = env
        self.name = name


def sleeper(env, seconds):
    yield env.timeout(seconds)


def record_sample_trace():
    with tracing() as tr:
        env = Environment()
        dev = FakeDevice(env)
        with device_span("pedal.compress", dev, algo="deflate",
                         bytes=4096) as outer:
            env.run(until=env.process(sleeper(env, 1.0)))
            with device_span("cengine.compress", dev):
                env.run(until=env.process(sleeper(env, 2.0)))
            outer.phase("compression", 2.0)
    return tr


class TestChromeTraceSchema:
    def test_every_event_has_required_keys(self):
        events = chrome_trace_events(record_sample_trace())
        assert events, "no events emitted"
        for event in events:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event, f"{event['ph']} event missing {key}"

    def test_span_events_are_complete_events_on_sim_clock(self):
        tr = record_sample_trace()
        spans = [e for e in chrome_trace_events(tr) if e["ph"] == "X"]
        assert len(spans) == 2
        outer, inner = spans
        assert outer["name"] == "pedal.compress"
        assert outer["ts"] == pytest.approx(0.0)
        assert outer["dur"] == pytest.approx(3.0e6)  # sim micros
        assert inner["ts"] == pytest.approx(1.0e6)
        assert inner["dur"] == pytest.approx(2.0e6)
        assert outer["tid"] == inner["tid"]
        assert outer["args"]["algo"] == "deflate"
        assert outer["args"]["phases_s"] == {"compression": 2.0}
        assert "wall_us" in outer["args"]

    def test_metadata_events_name_process_and_tracks(self):
        events = chrome_trace_events(record_sample_trace())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names["process_name"] == "repro-sim"
        assert names["thread_name"] == "bf2"

    def test_write_chrome_trace_file(self, tmp_path):
        tr = record_sample_trace()
        path = tmp_path / "out.trace.json"
        n = write_chrome_trace(tr, str(path))
        assert n == 2
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["clock"] == "simulated"
        assert doc["otherData"]["sim_seconds_total"] == pytest.approx(3.0)

    def test_non_json_attr_values_stringified(self):
        with tracing() as tr:
            env = Environment()
            dev = FakeDevice(env)
            with device_span("op", dev, weird=object()):
                pass
        events = chrome_trace_events(tr)
        args = [e for e in events if e["ph"] == "X"][0]["args"]
        assert isinstance(args["weird"], str)
        json.dumps(events)


class TestJsonl:
    def test_span_records_reference_parents_by_index(self):
        tr = record_sample_trace()
        records = span_records(tr)
        assert [r["name"] for r in records] == [
            "pedal.compress", "cengine.compress",
        ]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["index"]
        assert records[1]["sim_dur_s"] == pytest.approx(2.0)

    def test_write_jsonl_with_metrics(self, tmp_path):
        tr = record_sample_trace()
        metrics = MetricsRegistry()
        metrics.inc("jobs", 2)
        metrics.set_gauge("depth", 1.0)
        metrics.observe("wait", 0.5, (1.0,))
        path = tmp_path / "out.jsonl"
        n = write_jsonl(tr, str(path), metrics=metrics)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == n == 5  # 2 spans + counter + gauge + histogram
        assert {l["type"] for l in lines} == {
            "span", "counter", "gauge", "histogram",
        }

    def test_write_metrics_json(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.inc("a", 3)
        path = tmp_path / "m.json"
        write_metrics_json(metrics, str(path))
        doc = json.loads(path.read_text())
        assert doc["counters"] == {"a": 3.0}
