"""merge_registries order-independence, including the equal-seq gauge
tie (the nondeterminism this PR fixes: folding in caller order made the
merged gauge depend on scrape/registration ordering whenever two
members carried the same update stamp)."""

from __future__ import annotations

from repro.obs import MetricsRegistry, merge_registries


def _registry(labels, gauge_value, seq):
    registry = MetricsRegistry(labels=labels)
    gauge = registry.gauge("pending")
    gauge.set(gauge_value)
    gauge.seq = seq  # simulate a restored snapshot sharing stamps
    registry.counter("reqs").inc(3.0)
    return registry


def test_equal_seq_gauges_merge_identically_in_both_orders():
    a = _registry({"gateway": "gw0", "worker": "bf2-0"}, 7.0, seq=100)
    b = _registry({"gateway": "gw1", "worker": "bf2-1"}, 9.0, seq=100)

    forward = merge_registries([a, b])
    backward = merge_registries([b, a])
    assert forward.as_dict() == backward.as_dict()
    # The sorted-label fold makes the winner well-defined: equal seqs
    # keep the first-folded (lexically smallest labels) value.
    assert forward.gauges["pending"].value == 7.0
    assert forward.counters["reqs"].value == 6.0


def test_distinct_seq_still_means_latest_write_wins():
    a = _registry({"gateway": "gw0"}, 7.0, seq=100)
    b = _registry({"gateway": "gw1"}, 9.0, seq=200)
    for ordering in ([a, b], [b, a]):
        merged = merge_registries(ordering)
        assert merged.gauges["pending"].value == 9.0
        assert merged.gauges["pending"].min == 7.0
        assert merged.gauges["pending"].max == 9.0
        assert merged.gauges["pending"].updates == 2


def test_equal_label_members_keep_input_order():
    """Equal-label members (rare, discouraged) tie-break by input
    position via sort stability — still deterministic for a fixed
    caller order."""
    a = _registry({"gateway": "gw0"}, 7.0, seq=100)
    b = _registry({"gateway": "gw0"}, 9.0, seq=100)
    merged = merge_registries([a, b])
    assert merged.gauges["pending"].value == 7.0
    again = merge_registries([a, b])
    assert merged.as_dict() == again.as_dict()


def test_three_way_merge_is_order_independent():
    members = [
        _registry({"shard": f"shard{i}", "worker": f"w{i}"},
                  float(i), seq=50)
        for i in range(3)
    ]
    want = merge_registries(members).as_dict()
    assert merge_registries(list(reversed(members))).as_dict() == want
    assert merge_registries([members[1], members[2], members[0]]
                            ).as_dict() == want
