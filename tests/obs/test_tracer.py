"""Span tracer: nesting, ordering determinism, and the no-op fast path."""

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    device_span,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.sim import Environment


class FakeDevice:
    """Minimal device shape for device_span: .env and .name."""

    def __init__(self, env, name="dev0"):
        self.env = env
        self.name = name


def sleeper(env, seconds):
    yield env.timeout(seconds)


class TestNoOpDefault:
    def test_default_tracer_is_the_null_singleton(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().recording

    def test_disabled_span_is_the_shared_singleton(self):
        env = Environment()
        dev = FakeDevice(env)
        assert device_span("x", dev) is NULL_SPAN
        assert device_span("y", dev, a=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_attr("k", "v")
            span.phase("compression", 1.0)
        assert span.attrs == {}
        assert span.phases == []
        assert span.sim_duration == 0.0

    def test_set_tracer_returns_previous(self):
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(prev)
        assert get_tracer() is NULL_TRACER


class TestNesting:
    def test_parent_from_track_stack(self):
        env = Environment()
        dev = FakeDevice(env)
        with tracing() as tr:
            with device_span("outer", dev) as outer:
                env.run(until=env.process(sleeper(env, 1.0)))
                with device_span("inner", dev) as inner:
                    env.run(until=env.process(sleeper(env, 2.0)))
        assert inner.parent is outer
        assert outer.parent is None
        assert inner.is_descendant_of(outer)
        assert not outer.is_descendant_of(inner)
        assert list(tr.subtree(outer)) == [outer, inner]

    def test_sibling_spans_do_not_nest(self):
        env = Environment()
        dev = FakeDevice(env)
        with tracing():
            with device_span("a", dev) as a:
                pass
            with device_span("b", dev) as b:
                pass
        assert b.parent is None
        assert not b.is_descendant_of(a)

    def test_separate_devices_get_separate_tracks(self):
        env = Environment()
        d0 = FakeDevice(env, "bf2")
        d1 = FakeDevice(env, "bf3")
        with tracing() as tr:
            with device_span("a", d0) as a:
                with device_span("b", d1) as b:
                    pass
        # Different tracks: no stack relationship, distinct tids.
        assert b.parent is None
        assert a.track is not b.track
        assert a.track.tid != b.track.tid
        assert {t.name for t in tr.tracks} == {"bf2", "bf3"}

    def test_duplicate_labels_are_uniquified(self):
        env = Environment()
        d0 = FakeDevice(env, "bf2")
        d1 = FakeDevice(env, "bf2")
        with tracing() as tr:
            tr.track_for(d0, d0.name)
            tr.track_for(d1, d1.name)
        assert [t.name for t in tr.tracks] == ["bf2", "bf2 #2"]

    def test_out_of_order_exit_tolerated(self):
        """Overlapping isend-style spans may close before a later sibling."""
        env = Environment()
        dev = FakeDevice(env)
        with tracing():
            first = device_span("first", dev).__enter__()
            second = device_span("second", dev).__enter__()
            first.__exit__(None, None, None)   # not LIFO
            second.__exit__(None, None, None)
        assert second.parent is first
        assert first.finished and second.finished


class TestClocks:
    def test_sim_duration_tracks_environment(self):
        env = Environment()
        dev = FakeDevice(env)
        with tracing():
            with device_span("op", dev) as span:
                env.run(until=env.process(sleeper(env, 3.5)))
        assert span.sim_duration == pytest.approx(3.5)
        assert span.wall_duration >= 0.0

    def test_fresh_environments_stitch_into_one_timeline(self):
        with tracing() as tr:
            for seconds in (1.0, 2.0, 4.0):
                env = Environment()
                dev = FakeDevice(env)
                with device_span("run", dev):
                    env.run(until=env.process(sleeper(env, seconds)))
        assert tr.max_timestamp == pytest.approx(7.0)
        starts = [s.sim_start for s in tr.spans]
        assert starts == sorted(starts)
        assert starts == pytest.approx([0.0, 1.0, 3.0])

    def test_determinism_same_run_same_spans(self):
        def run_once():
            with tracing() as tr:
                env = Environment()
                dev = FakeDevice(env)
                with device_span("outer", dev, bytes=128):
                    env.run(until=env.process(sleeper(env, 1.0)))
                    with device_span("inner", dev):
                        env.run(until=env.process(sleeper(env, 0.5)))
            return [
                (s.name, s.sim_start, s.sim_end,
                 None if s.parent is None else s.parent.index)
                for s in tr.spans
            ]

        assert run_once() == run_once()


class TestAttrs:
    def test_attrs_and_phases_recorded(self):
        env = Environment()
        dev = FakeDevice(env)
        with tracing():
            with device_span("op", dev, algo="deflate", bytes=4096) as span:
                span.set_attr("engine", "cengine")
                span.phase("compression", 0.25)
                span.phase("compression", 0.25)
        assert span.attrs == {"algo": "deflate", "bytes": 4096,
                              "engine": "cengine"}
        assert span.phases == [("compression", 0.25), ("compression", 0.25)]

    def test_find_by_name(self):
        env = Environment()
        dev = FakeDevice(env)
        with tracing() as tr:
            with device_span("op", dev):
                pass
            with device_span("op", dev):
                pass
        assert len(tr.find("op")) == 2
        assert tr.find("missing") == []
