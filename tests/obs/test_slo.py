"""SLO monitor: burn-rate windows, dedupe/re-arm, typed emission."""

import pytest

from repro.obs import (
    BurnWindow,
    FleetAggregator,
    MetricsRegistry,
    SloMonitor,
    SloObjective,
    collecting,
    tracing,
)
from repro.obs.slo import GOODPUT_COUNTER, LATENCY_METRIC


class Fleet:
    """One tenant-labeled registry feeding delta-aware scrapes."""

    def __init__(self, tenants=("hot",)):
        self.aggregator = FleetAggregator()
        self.registries = {
            tenant: self.aggregator.register(
                MetricsRegistry(labels={"tenant": tenant})
            )
            for tenant in tenants
        }

    def observe(self, tenant, latencies, sim_bytes=0.0):
        registry = self.registries[tenant]
        for latency in latencies:
            registry.observe(LATENCY_METRIC, latency)
        if sim_bytes:
            registry.inc(GOODPUT_COUNTER, sim_bytes)

    def scrape(self, now_s):
        return self.aggregator.scrape(now_s, group_by=("tenant",))


WINDOW = BurnWindow(window_s=5e-3, threshold=10.0, severity="page")


class TestValidation:
    def test_requires_tenant_group_by(self):
        monitor = SloMonitor([SloObjective("hot", 1e-3)])
        aggregator = FleetAggregator()
        snapshot = aggregator.scrape(0.0)  # no group_by
        with pytest.raises(ValueError, match="tenant"):
            monitor.observe(snapshot)

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloMonitor([SloObjective("hot", 1e-3),
                        SloObjective("hot", 2e-3)])

    def test_needs_at_least_one_window(self):
        with pytest.raises(ValueError, match="window"):
            SloMonitor([SloObjective("hot", 1e-3)], windows=())

    @pytest.mark.parametrize("kwargs", [
        {"latency_target_s": 0.0},
        {"budget_fraction": 0.0},
        {"budget_fraction": 1.0},
    ])
    def test_objective_parameter_domains(self, kwargs):
        params = {"latency_target_s": 1e-3}
        params.update(kwargs)
        with pytest.raises(ValueError):
            SloObjective("hot", **params)

    @pytest.mark.parametrize("kwargs", [
        {"window_s": 0.0}, {"threshold": 0.0},
    ])
    def test_window_parameter_domains(self, kwargs):
        params = {"window_s": 1e-3, "threshold": 1.0}
        params.update(kwargs)
        with pytest.raises(ValueError):
            BurnWindow(**params)


class TestLatencyBurn:
    def test_fires_when_budget_burns_hot(self):
        fleet = Fleet()
        monitor = SloMonitor([SloObjective("hot", 1e-3, budget_fraction=0.01)],
                             windows=[WINDOW])
        # All 20 requests blow the 1 ms target: burn = 1.0/0.01 = 100x.
        fleet.observe("hot", [5e-3] * 20)
        fired = monitor.observe(fleet.scrape(1e-3))
        assert len(fired) == 1
        alert = fired[0]
        assert alert.tenant == "hot"
        assert alert.kind == "latency_burn"
        assert alert.severity == "page"
        assert alert.fired_at_s == 1e-3
        assert alert.burn_rate == pytest.approx(100.0)
        assert alert.detail["requests"] == 20
        assert alert.detail["bad_requests"] == 20

    def test_quiet_tenant_never_fires(self):
        fleet = Fleet()
        monitor = SloMonitor([SloObjective("hot", 1e-3, budget_fraction=0.01)],
                             windows=[WINDOW])
        fleet.observe("hot", [1e-5] * 50)  # all well under target
        assert monitor.observe(fleet.scrape(1e-3)) == []
        assert monitor.alerts == []

    def test_dedupe_while_condition_persists_then_rearm(self):
        fleet = Fleet()
        monitor = SloMonitor([SloObjective("hot", 1e-3, budget_fraction=0.01)],
                             windows=[WINDOW])
        fleet.observe("hot", [5e-3] * 10)
        assert len(monitor.observe(fleet.scrape(1e-3))) == 1
        # Still burning at the next scrape: no duplicate alert.
        fleet.observe("hot", [5e-3] * 10)
        assert monitor.observe(fleet.scrape(2e-3)) == []
        # Recovery: a full window of fast requests clears the condition
        # (the trailing window no longer contains the bad burst).
        fleet.observe("hot", [1e-5] * 500)
        assert monitor.observe(fleet.scrape(9e-3)) == []
        # Regression again: the alert re-arms and fires a second time.
        fleet.observe("hot", [5e-3] * 500)
        assert len(monitor.observe(fleet.scrape(15e-3))) == 1
        assert len(monitor.alerts) == 2

    def test_windowed_not_lifetime(self):
        """Old badness outside the trailing window must not count."""
        fleet = Fleet()
        monitor = SloMonitor([SloObjective("hot", 1e-3, budget_fraction=0.01)],
                             windows=[WINDOW])
        fleet.observe("hot", [5e-3] * 100)   # ancient burst
        monitor.observe(fleet.scrape(1e-3))  # fires here
        fleet.observe("hot", [1e-5] * 10_000)
        fired = monitor.observe(fleet.scrape(20e-3))
        assert fired == []  # window [15ms, 20ms] saw only fast requests

    def test_multi_window_severities(self):
        fleet = Fleet()
        monitor = SloMonitor(
            [SloObjective("hot", 1e-3, budget_fraction=0.01)],
            windows=[BurnWindow(5e-3, 10.0, "page"),
                     BurnWindow(20e-3, 2.0, "ticket")],
        )
        fleet.observe("hot", [5e-3] * 50)
        fired = monitor.observe(fleet.scrape(1e-3))
        assert {a.severity for a in fired} == {"page", "ticket"}
        assert all(a.kind == "latency_burn" for a in fired)

    def test_unknown_tenant_counts_as_zero_traffic(self):
        fleet = Fleet(tenants=("other",))
        monitor = SloMonitor([SloObjective("hot", 1e-3)], windows=[WINDOW])
        fleet.observe("other", [5e-3] * 10)
        assert monitor.observe(fleet.scrape(1e-3)) == []


class TestGoodputFloor:
    def objective(self):
        return SloObjective("cold", 1e-3, budget_fraction=0.05,
                            goodput_floor_bytes_s=1e6)

    def test_fires_below_floor(self):
        fleet = Fleet(tenants=("cold",))
        monitor = SloMonitor([self.objective()], windows=[WINDOW])
        # 100 bytes over 1 ms = 1e5 B/s, under the 1e6 floor.
        fleet.observe("cold", [1e-5], sim_bytes=100.0)
        fired = monitor.observe(fleet.scrape(1e-3))
        kinds = {a.kind for a in fired}
        assert "goodput_floor" in kinds
        alert = next(a for a in fired if a.kind == "goodput_floor")
        assert alert.burn_rate == pytest.approx(1e5 / 1e6)
        assert alert.detail["floor_bytes_s"] == 1e6

    def test_holds_above_floor(self):
        fleet = Fleet(tenants=("cold",))
        monitor = SloMonitor([self.objective()], windows=[WINDOW])
        fleet.observe("cold", [1e-5], sim_bytes=10_000.0)  # 1e7 B/s
        fired = monitor.observe(fleet.scrape(1e-3))
        assert all(a.kind != "goodput_floor" for a in fired)


class TestEmission:
    def test_alerts_counted_and_traced(self):
        fleet = Fleet()
        monitor = SloMonitor([SloObjective("hot", 1e-3, budget_fraction=0.01)],
                             windows=[WINDOW])
        fleet.observe("hot", [5e-3] * 10)
        with collecting() as metrics, tracing() as tracer:
            monitor.observe(fleet.scrape(1e-3))
        assert metrics.counters["slo.alerts"].value == 1.0
        assert metrics.counters["slo.alerts.latency_burn"].value == 1.0
        spans = [s for s in tracer.spans if s.name == "slo.alert"]
        assert len(spans) == 1
        assert spans[0].attrs["tenant"] == "hot"
        assert spans[0].attrs["severity"] == "page"

    def test_silent_when_nothing_installed(self):
        fleet = Fleet()
        monitor = SloMonitor([SloObjective("hot", 1e-3, budget_fraction=0.01)],
                             windows=[WINDOW])
        fleet.observe("hot", [5e-3] * 10)
        fired = monitor.observe(fleet.scrape(1e-3))  # no metrics/tracer
        assert len(fired) == 1


class TestViews:
    def test_alerts_for_and_records(self):
        import json

        fleet = Fleet(tenants=("hot", "cold"))
        monitor = SloMonitor(
            [SloObjective("hot", 1e-3, budget_fraction=0.01),
             SloObjective("cold", 1e-3, budget_fraction=0.01)],
            windows=[WINDOW],
        )
        fleet.observe("hot", [5e-3] * 10)
        fleet.observe("cold", [1e-5] * 10)
        monitor.observe(fleet.scrape(1e-3))
        assert len(monitor.alerts_for("hot")) == 1
        assert monitor.alerts_for("cold") == []
        records = monitor.as_records()
        assert len(records) == 1
        assert records[0]["type"] == "slo_alert"
        assert records[0]["tenant"] == "hot"
        json.dumps(records)
