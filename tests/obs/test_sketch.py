"""QuantileSketch: relative-error bound, merging, exemplars, (de)ser."""

import json
import math

import pytest

from repro.obs import DEFAULT_ALPHA, QuantileSketch
from repro.obs.sketch import EXEMPLAR_CAPACITY


def exact_quantile(values, q):
    """Nearest-rank quantile of a raw sample (the sketch's reference)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def geometric_stream(n=500, start=1e-6, ratio=1.04):
    """A deterministic latency-shaped stream spanning several decades."""
    values = []
    value = start
    for _ in range(n):
        values.append(value)
        value *= ratio
    return values


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0])
    def test_within_alpha_of_exact(self, q):
        values = geometric_stream()
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        got = sketch.quantile(q)
        want = exact_quantile(values, q)
        assert abs(got - want) <= DEFAULT_ALPHA * want

    def test_tighter_alpha_is_tighter(self):
        values = geometric_stream(n=200)
        tight = QuantileSketch(alpha=0.001)
        for v in values:
            tight.add(v)
        want = exact_quantile(values, 0.9)
        assert abs(tight.quantile(0.9) - want) <= 0.001 * want

    def test_single_value_is_exact(self):
        sketch = QuantileSketch()
        sketch.add(3.25)
        for q in (0.0, 0.5, 1.0):
            assert sketch.quantile(q) == 3.25  # clamped to min==max

    def test_quantile_clamped_into_observed_range(self):
        sketch = QuantileSketch()
        for v in (1.0, 2.0, 3.0):
            sketch.add(v)
        assert sketch.quantile(0.0) >= sketch.min
        assert sketch.quantile(1.0) <= sketch.max

    def test_zero_and_negative_values(self):
        sketch = QuantileSketch()
        for v in (-2.0, -1.0, 0.0, 1.0, 2.0):
            sketch.add(v)
        assert sketch.count == 5
        assert sketch.quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert sketch.quantile(0.0) == pytest.approx(-2.0, rel=DEFAULT_ALPHA)
        assert sketch.quantile(1.0) == pytest.approx(2.0, rel=DEFAULT_ALPHA)

    def test_mean_min_max_are_exact(self):
        values = [0.5, 1.5, 4.5]
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        assert sketch.mean == pytest.approx(sum(values) / len(values))
        assert sketch.min == 0.5
        assert sketch.max == 4.5


class TestValidation:
    def test_nan_rejected(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError, match="NaN"):
            sketch.add(float("nan"))
        assert sketch.count == 0

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError, match="empty"):
            QuantileSketch().quantile(0.5)

    @pytest.mark.parametrize("q", [-0.1, 1.1])
    def test_quantile_domain(self, q):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError, match="outside"):
            sketch.quantile(q)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5])
    def test_alpha_domain(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            QuantileSketch(alpha=alpha)


class TestMerge:
    def test_merge_is_bit_identical_to_pooled(self):
        values = geometric_stream(n=300)
        left, right, pooled = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for i, v in enumerate(values):
            (left if i % 2 else right).add(v)
            pooled.add(v)
        merged = QuantileSketch.merged([left, right])
        assert merged.pos == pooled.pos
        assert merged.count == pooled.count
        assert merged.sum == pytest.approx(pooled.sum)
        assert merged.min == pooled.min
        assert merged.max == pooled.max
        for q in (0.01, 0.5, 0.99):
            assert merged.quantile(q) == pooled.quantile(q)

    def test_merge_order_independent(self):
        parts = []
        for offset in range(3):
            part = QuantileSketch()
            for v in geometric_stream(n=50, start=1e-5 * (offset + 1)):
                part.add(v)
            parts.append(part)
        forward = QuantileSketch.merged(parts)
        backward = QuantileSketch.merged(reversed(parts))
        fwd, bwd = forward.to_dict(), backward.to_dict()
        # sum is float-associativity-sensitive; everything else exact.
        assert fwd.pop("sum") == pytest.approx(bwd.pop("sum"))
        assert fwd == bwd

    def test_merge_alpha_mismatch_rejected(self):
        a = QuantileSketch(alpha=0.01)
        b = QuantileSketch(alpha=0.02)
        with pytest.raises(ValueError, match="alpha mismatch"):
            a.merge(b)

    def test_merge_type_checked(self):
        with pytest.raises(TypeError):
            QuantileSketch().merge(object())

    def test_merged_of_nothing_is_empty(self):
        merged = QuantileSketch.merged([])
        assert merged.count == 0
        assert merged.alpha == DEFAULT_ALPHA


class TestCountAbove:
    def test_counts_guaranteed_exceeders(self):
        sketch = QuantileSketch()
        for v in (0.001, 0.002, 0.010, 0.020, 0.040):
            sketch.add(v)
        # Everything well above 5 ms is counted; the bucket holding the
        # threshold itself is excluded (bucket-granular under-count).
        assert sketch.count_above(5e-3) == 3
        assert sketch.count_above(1.0) == 0

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            QuantileSketch().count_above(0.0)


class TestExemplars:
    def test_keeps_largest_with_links(self):
        sketch = QuantileSketch()
        for i in range(20):
            sketch.add(float(i + 1), exemplar=f"span-{i}")
        assert len(sketch.exemplars) == EXEMPLAR_CAPACITY
        values = [v for v, _ in sketch.exemplars]
        assert min(values) >= 20 - EXEMPLAR_CAPACITY
        assert ("span-19" in {link for _, link in sketch.exemplars})

    def test_unlinked_observations_keep_exemplars_empty(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        assert sketch.exemplars == []

    def test_merge_pools_exemplars(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.add(1.0, exemplar=1)
        b.add(2.0, exemplar=2)
        a.merge(b)
        assert {link for _, link in a.exemplars} == {1, 2}


class TestSerialisation:
    def test_round_trip_preserves_answers(self):
        sketch = QuantileSketch()
        for v in geometric_stream(n=100):
            sketch.add(v, exemplar=None)
        sketch.add(0.0)
        sketch.add(-1.0)
        state = json.loads(json.dumps(sketch.to_dict()))
        clone = QuantileSketch.from_dict(state)
        assert clone.count == sketch.count
        for q in (0.0, 0.5, 0.99, 1.0):
            assert clone.quantile(q) == sketch.quantile(q)
        assert clone.to_dict() == sketch.to_dict()

    def test_empty_round_trip(self):
        clone = QuantileSketch.from_dict(QuantileSketch().to_dict())
        assert clone.count == 0
        assert clone.min == math.inf
