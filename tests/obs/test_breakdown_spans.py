"""TimeBreakdown <-> span round-trips on real PEDAL and naive flows."""

import pytest

from repro.core.api import PedalContext
from repro.core.baseline import NaiveCompressor
from repro.core.designs import design
from repro.datasets import get_dataset
from repro.dpu.device import make_device
from repro.obs import Tracer, tracing
from repro.sim import Environment, TimeBreakdown


ACTUAL_BYTES = 16 * 1024


def drive(env, generator):
    proc = env.process(generator)
    return env.run(until=proc)


def payload():
    return get_dataset("silesia/xml").generate(ACTUAL_BYTES)


class TestBindForwarding:
    def test_bind_mirrors_add_onto_span(self):
        with tracing() as tr:
            span = tr.span("op")
            with span:
                tb = TimeBreakdown().bind(span)
                tb.add("compression", 1.5)
                tb.add("buffer_prep", 0.5)
                tb.add("compression", 0.25)
        assert span.phases == [
            ("compression", 1.5), ("buffer_prep", 0.5), ("compression", 0.25),
        ]
        rebuilt = TimeBreakdown.from_spans([span])
        assert rebuilt.as_dict() == tb.as_dict()
        assert list(rebuilt.as_dict()) == list(tb.as_dict())  # same order

    def test_bind_null_span_is_noop(self):
        from repro.obs import NULL_SPAN

        tb = TimeBreakdown().bind(NULL_SPAN)
        tb.add("compression", 1.0)
        assert NULL_SPAN.phases == []
        assert tb.get("compression") == 1.0

    def test_merge_does_not_reforward(self):
        """fig7 merges compress+decompress breakdowns after the ops ran;
        the merged charges must not be double-recorded on the span."""
        with tracing() as tr:
            span = tr.span("op")
            with span:
                a = TimeBreakdown().bind(span)
                a.add("compression", 1.0)
            b = TimeBreakdown()
            b.add("decompression", 2.0)
            a.merge(b)
        assert span.phases == [("compression", 1.0)]
        assert a.get("decompression") == 2.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("compression", -0.1)


class TestPedalRoundtrip:
    def test_from_spans_matches_legacy_exactly(self):
        dsg = design("C-Engine_DEFLATE")
        with tracing() as tr:
            env = Environment()
            device = make_device(env, "bf2")
            ctx = PedalContext(device)
            drive(env, ctx.init())
            comp = drive(env, ctx.compress(payload(), dsg, 1 << 20))
            dec = drive(env, ctx.decompress(comp.message, dsg.placement, 1 << 20))

        comp_root = tr.find("pedal.compress")[0]
        dec_root = tr.find("pedal.decompress")[0]
        rebuilt_comp = TimeBreakdown.from_spans(tr.subtree(comp_root))
        rebuilt_dec = TimeBreakdown.from_spans(tr.subtree(dec_root))
        assert rebuilt_comp.as_dict() == comp.breakdown.as_dict()
        assert rebuilt_dec.as_dict() == dec.breakdown.as_dict()
        # Exact equality, not approx: same floats, same accumulation order.
        assert rebuilt_comp.total() == comp.breakdown.total()

    def test_untraced_run_unchanged(self):
        """The same flow with tracing disabled produces the same breakdown."""
        dsg = design("C-Engine_DEFLATE")

        def run(traced):
            env = Environment()
            device = make_device(env, "bf2")
            ctx = PedalContext(device)
            if traced:
                with tracing():
                    drive(env, ctx.init())
                    comp = drive(env, ctx.compress(payload(), dsg, 1 << 20))
            else:
                drive(env, ctx.init())
                comp = drive(env, ctx.compress(payload(), dsg, 1 << 20))
            return comp.breakdown.as_dict()

        assert run(traced=True) == run(traced=False)


class TestNaiveRoundtrip:
    def test_from_spans_matches_legacy_exactly(self):
        dsg = design("C-Engine_DEFLATE")
        with tracing() as tr:
            env = Environment()
            device = make_device(env, "bf2")
            naive = NaiveCompressor(device)
            comp = drive(env, naive.compress(payload(), dsg, 1 << 20))
            dec = drive(
                env, naive.decompress(comp.message, dsg.placement, 1 << 20)
            )

        comp_root = tr.find("naive.compress")[0]
        dec_root = tr.find("naive.decompress")[0]
        assert (
            TimeBreakdown.from_spans(tr.subtree(comp_root)).as_dict()
            == comp.breakdown.as_dict()
        )
        assert (
            TimeBreakdown.from_spans(tr.subtree(dec_root)).as_dict()
            == dec.breakdown.as_dict()
        )

    def test_naive_trace_contains_per_op_overhead_spans(self):
        dsg = design("C-Engine_DEFLATE")
        with tracing() as tr:
            env = Environment()
            device = make_device(env, "bf2")
            naive = NaiveCompressor(device)
            comp = drive(env, naive.compress(payload(), dsg, 1 << 20))
            drive(env, naive.decompress(comp.message, dsg.placement, 1 << 20))

        # Naive pays DOCA init + buffer prep on every op (Fig. 7).
        assert len(tr.find("doca.init")) == 2
        assert len(tr.find("buffer.prep")) >= 2
        roots = tr.find("naive.compress") + tr.find("naive.decompress")
        for init_span in tr.find("doca.init"):
            assert any(init_span.is_descendant_of(r) for r in roots)
