"""Codec profiler: stack attribution, seeded exemplars, null path."""

import pytest

from repro.obs import (
    NULL_PROFILER,
    CodecProfiler,
    get_profiler,
    profiling,
    set_profiler,
    tracing,
)


class FakeClock:
    """Deterministic wall clock: each reading advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        reading = self.now
        self.now += self.step
        return reading


def make_profiler(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return CodecProfiler(**kwargs)


class TestAttribution:
    def test_nested_kernels_charge_stack_paths(self):
        p = make_profiler()
        with p.kernel("deflate.compress"):
            with p.kernel("lz77.match_loop"):
                pass
        # Clock readings: outer start 0, inner start 1, inner end 2,
        # outer end 3 → inner total/self 1, outer total 3, self 2.
        inner = p.nodes[("deflate.compress", "lz77.match_loop")]
        outer = p.nodes[("deflate.compress",)]
        assert inner.calls == 1
        assert inner.total_s == pytest.approx(1.0)
        assert inner.self_s == pytest.approx(1.0)
        assert outer.total_s == pytest.approx(3.0)
        assert outer.self_s == pytest.approx(2.0)  # child time excluded

    def test_same_kernel_under_different_parents(self):
        p = make_profiler()
        with p.kernel("a"):
            with p.kernel("leaf"):
                pass
        with p.kernel("b"):
            with p.kernel("leaf"):
                pass
        assert ("a", "leaf") in p.nodes
        assert ("b", "leaf") in p.nodes
        # self_seconds() sums the leaf across its distinct stack paths.
        assert p.self_seconds()["leaf"] == pytest.approx(2.0)

    def test_repeated_calls_accumulate(self):
        p = make_profiler()
        for _ in range(3):
            with p.kernel("k"):
                pass
        assert p.nodes[("k",)].calls == 3
        assert p.nodes[("k",)].total_s == pytest.approx(3.0)

    def test_exception_still_charges_the_frame(self):
        p = make_profiler()
        with pytest.raises(RuntimeError):
            with p.kernel("k"):
                raise RuntimeError("boom")
        assert p.nodes[("k",)].calls == 1


class TestViews:
    def build(self):
        p = make_profiler()
        with p.kernel("deflate.compress"):
            with p.kernel("lz77.match_loop"):
                with p.kernel("hash"):
                    pass
            with p.kernel("huffman.emit"):
                pass
        with p.kernel("sz3.compress"):
            pass
        return p

    def test_self_seconds_prefix_filters_subtree(self):
        p = self.build()
        under = p.self_seconds(("deflate.compress",))
        assert set(under) == {"lz77.match_loop", "hash", "huffman.emit"}
        assert "sz3.compress" not in under
        # The prefix frame itself is excluded from its own listing.
        assert "deflate.compress" not in under

    def test_top_kernel_by_self_time(self):
        p = make_profiler()
        with p.kernel("root"):
            with p.kernel("cheap"):
                pass  # self 1.0
            with p.kernel("dear"):
                with p.kernel("ignored"):
                    pass
                with p.kernel("ignored"):
                    pass  # dear self = total 5 - children 2 = 3
        assert p.top_kernel(("root",)) == "dear"
        assert p.top_kernel(("missing",)) is None

    def test_top_kernel_tie_breaks_lexicographically(self):
        p = make_profiler()
        with p.kernel("b"):
            pass
        with p.kernel("a"):
            pass  # both self 1.0
        assert p.top_kernel() == "a"

    def test_as_records_sorted_and_json_ready(self):
        import json

        records = self.build().as_records()
        paths = [tuple(r["path"]) for r in records]
        assert paths == sorted(paths)
        assert all(r["type"] == "kernel" for r in records)
        json.dumps(records)


class TestExemplars:
    def test_sampling_is_a_pure_function_of_seed_and_order(self):
        def run(seed):
            p = make_profiler(seed=seed)
            for i in range(200):
                with p.kernel(f"k{i % 3}"):
                    pass
            return [e.path for e in p.exemplars]

        assert run(7) == run(7)
        assert run(7) != run(8)  # different seed, different picks
        assert len(run(7)) > 0   # period 16 over 200 calls must sample

    def test_exemplars_link_to_the_open_span(self):
        class FakeDevice:
            def __init__(self, name="bf2"):
                self.env = None
                self.name = name

        from repro.obs import device_span

        p = make_profiler(exemplar_period=1)  # sample every invocation
        with tracing() as tracer:
            with device_span("serve.batch", FakeDevice()) as span:
                with p.kernel("lz77.match_loop"):
                    pass
        assert len(p.exemplars) == 1
        assert p.exemplars[0].span_index == span.index
        assert p.exemplars[0].path == ("lz77.match_loop",)
        assert tracer.spans[span.index].name == "serve.batch"

    def test_no_tracer_means_no_span_link(self):
        p = make_profiler(exemplar_period=1)
        with p.kernel("k"):
            pass
        assert p.exemplars[0].span_index is None

    def test_period_validated(self):
        with pytest.raises(ValueError, match="period"):
            CodecProfiler(exemplar_period=0)


class TestNullPath:
    def test_default_is_null_and_inert(self):
        assert get_profiler() is NULL_PROFILER
        assert not NULL_PROFILER.recording
        frame_a = NULL_PROFILER.kernel("x")
        frame_b = NULL_PROFILER.kernel("y")
        assert frame_a is frame_b  # one shared no-op frame
        with frame_a:
            pass

    def test_profiling_scopes_installation(self):
        with profiling() as p:
            assert get_profiler() is p
            assert p.recording
            with get_profiler().kernel("k"):
                pass
        assert get_profiler() is NULL_PROFILER
        assert ("k",) in p.nodes

    def test_set_profiler_returns_previous(self):
        p = CodecProfiler()
        prev = set_profiler(p)
        try:
            assert get_profiler() is p
        finally:
            set_profiler(prev)
        assert get_profiler() is NULL_PROFILER


class TestInstrumentedCodecs:
    def test_deflate_roundtrip_produces_kernel_stacks(self):
        from repro.algorithms.deflate import deflate_compress, deflate_decompress

        payload = (b"profile me, deflate! " * 64)
        with profiling() as p:
            blob = deflate_compress(payload)
            assert deflate_decompress(blob) == payload
        names = {path[-1] for path in p.nodes}
        assert {"deflate.compress", "lz77.match_loop", "huffman.build",
                "deflate.decompress"} <= names
        # Kernels nest under their public entry points.
        assert ("deflate.compress", "lz77.match_loop") in p.nodes

    def test_disabled_profiler_keeps_output_identical(self):
        from repro.algorithms.deflate import deflate_compress

        payload = (b"bit-for-bit " * 128)
        plain = deflate_compress(payload)
        with profiling():
            profiled = deflate_compress(payload)
        assert profiled == plain
