"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.obs import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    QUEUE_DEPTH_BUCKETS,
    collecting,
    get_metrics,
    set_metrics,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        m = MetricsRegistry()
        m.inc("jobs")
        m.inc("jobs")
        m.inc("jobs", 3.0)
        assert m.counter("jobs").value == 5.0

    def test_negative_increment_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.inc("jobs", -1.0)


class TestGauge:
    def test_tracks_min_max_updates(self):
        m = MetricsRegistry()
        m.set_gauge("depth", 3.0)
        m.set_gauge("depth", 1.0)
        m.set_gauge("depth", 7.0)
        g = m.gauge("depth")
        assert g.value == 7.0
        assert g.min == 1.0
        assert g.max == 7.0
        assert g.updates == 3


class TestHistogram:
    def test_upper_inclusive_edges_and_overflow(self):
        h = Histogram("h", (1.0, 2.0, 4.0))
        assert len(h.counts) == 4  # 3 edges + overflow
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            h.observe(value)
        # <=1: 0.5, 1.0 | <=2: 1.5, 2.0 | <=4: 3.0, 4.0 | overflow: 100.0
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(112.0)
        assert h.mean == pytest.approx(16.0)

    def test_edges_must_be_increasing(self):
        with pytest.raises(ValueError):
            Histogram("bad", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", ())

    def test_boundaries_fixed_at_registration(self):
        m = MetricsRegistry()
        m.observe("q", 0.0, QUEUE_DEPTH_BUCKETS)
        # A later observe with different boundaries reuses the original.
        m.observe("q", 5.0, (100.0,))
        h = m.histogram("q")
        assert h.boundaries == QUEUE_DEPTH_BUCKETS
        assert h.count == 2

    def test_empty_histogram_mean_zero(self):
        assert Histogram("h", (1.0,)).mean == 0.0


class TestRegistry:
    def test_as_dict_snapshot_sorted_and_json_ready(self):
        import json

        m = MetricsRegistry()
        m.inc("b.counter")
        m.inc("a.counter", 2.0)
        m.set_gauge("g", 4.0)
        m.observe("h", 0.5, (1.0,))
        snap = m.as_dict()
        assert list(snap["counters"]) == ["a.counter", "b.counter"]
        assert snap["gauges"]["g"] == {
            "value": 4.0, "min": 4.0, "max": 4.0, "updates": 1,
        }
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(snap)  # must be serialisable as-is

    def test_determinism_identical_runs_identical_dumps(self):
        def run():
            m = MetricsRegistry()
            for depth in (0, 1, 1, 3, 9):
                m.observe("q", float(depth), QUEUE_DEPTH_BUCKETS)
            m.inc("jobs", 5)
            return m.as_dict()

        assert run() == run()


class TestNoOpDefault:
    def test_default_is_null_singleton(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().recording

    def test_null_recorders_are_inert(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.set_gauge("x", 1.0)
        NULL_METRICS.observe("x", 1.0)

    def test_collecting_scopes_installation(self):
        with collecting() as m:
            assert get_metrics() is m
            m.inc("inside")
        assert get_metrics() is NULL_METRICS
        assert m.counter("inside").value == 1.0

    def test_set_metrics_returns_previous(self):
        m = MetricsRegistry()
        prev = set_metrics(m)
        try:
            assert get_metrics() is m
        finally:
            set_metrics(prev)
        assert get_metrics() is NULL_METRICS
