"""Metrics registry: counters, gauges, sketch-backed histograms."""

import pytest

from repro.obs import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QUEUE_DEPTH_BUCKETS,
    collecting,
    get_metrics,
    set_metrics,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        m = MetricsRegistry()
        m.inc("jobs")
        m.inc("jobs")
        m.inc("jobs", 3.0)
        assert m.counter("jobs").value == 5.0

    def test_negative_increment_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.inc("jobs", -1.0)

    def test_merge_sums(self):
        a, b = Counter("jobs"), Counter("jobs")
        a.inc(3.0)
        b.inc(4.0)
        assert a.merge(b).value == 7.0
        assert b.value == 4.0  # the source is untouched


class TestGauge:
    def test_tracks_min_max_updates(self):
        m = MetricsRegistry()
        m.set_gauge("depth", 3.0)
        m.set_gauge("depth", 1.0)
        m.set_gauge("depth", 7.0)
        g = m.gauge("depth")
        assert g.value == 7.0
        assert g.min == 1.0
        assert g.max == 7.0
        assert g.updates == 3

    def test_merge_latest_write_wins_by_seq_stamp(self):
        """The process-wide seq stamp, not merge order, decides 'latest' —
        the fleet roll-up must be order-independent."""
        a, b = Gauge("depth"), Gauge("depth")
        a.set(3.0)
        b.set(9.0)  # chronologically later write
        assert b.seq > a.seq
        merged_ab = Gauge("depth").merge(a).merge(b)
        merged_ba = Gauge("depth").merge(b).merge(a)
        assert merged_ab.value == merged_ba.value == 9.0
        assert merged_ab.updates == merged_ba.updates == 2
        assert merged_ab.min == 3.0
        assert merged_ab.max == 9.0

    def test_never_set_gauge_loses_merge(self):
        a, b = Gauge("depth"), Gauge("depth")
        a.set(5.0)
        assert b.merge(a).value == 5.0  # seq 0 never beats a real write


class TestHistogram:
    def test_upper_inclusive_edges_and_overflow(self):
        h = Histogram("h", (1.0, 2.0, 4.0))
        assert len(h.counts) == 4  # 3 edges + overflow
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            h.observe(value)
        # <=1: 0.5, 1.0 | <=2: 1.5, 2.0 | <=4: 3.0, 4.0 | overflow: 100.0
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(112.0)
        assert h.mean == pytest.approx(16.0)

    def test_edges_must_be_increasing(self):
        with pytest.raises(ValueError):
            Histogram("bad", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", ())

    def test_boundaries_fixed_at_registration(self):
        m = MetricsRegistry()
        m.observe("q", 0.0, QUEUE_DEPTH_BUCKETS)
        # A later observe with different boundaries reuses the original.
        m.observe("q", 5.0, (100.0,))
        h = m.histogram("q")
        assert h.boundaries == QUEUE_DEPTH_BUCKETS
        assert h.count == 2

    def test_empty_histogram_mean_zero(self):
        assert Histogram("h", (1.0,)).mean == 0.0

    def test_nan_observation_rejected(self):
        h = Histogram("h", (1.0,))
        with pytest.raises(ValueError, match="NaN"):
            h.observe(float("nan"))
        assert h.count == 0

    def test_snapshot_breaks_out_overflow(self):
        h = Histogram("h", (1.0, 2.0))
        for value in (0.5, 1.5, 10.0, 20.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["counts"] == [1, 1, 2]
        assert snap["overflow"] == 2
        assert snap["count"] == 4  # overflow counted in the total

    def test_sketch_backed_quantile(self):
        h = Histogram("h", (1.0,))
        for value in (0.010, 0.020, 0.040, 5.0):
            h.observe(value)
        assert h.quantile(1.0) == pytest.approx(5.0, rel=0.01)
        assert h.quantile(0.5) == pytest.approx(0.020, rel=0.01)
        with pytest.raises(ValueError):
            Histogram("empty", (1.0,)).quantile(0.5)

    def test_merge_pools_buckets_and_sketches(self):
        a = Histogram("h", (1.0, 2.0))
        b = Histogram("h", (1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(11.0)
        assert a.sketch.count == 3
        assert a.quantile(1.0) == pytest.approx(9.0, rel=0.01)

    def test_merge_boundary_mismatch_rejected(self):
        a = Histogram("h", (1.0,))
        b = Histogram("h", (2.0,))
        with pytest.raises(ValueError, match="boundary mismatch"):
            a.merge(b)

    def test_exemplar_flows_into_the_sketch(self):
        h = Histogram("h", (1.0,))
        h.observe(0.5, exemplar=42)
        assert h.sketch.exemplars == [(0.5, 42)]


class TestRegistry:
    def test_as_dict_snapshot_sorted_and_json_ready(self):
        import json

        m = MetricsRegistry()
        m.inc("b.counter")
        m.inc("a.counter", 2.0)
        m.set_gauge("g", 4.0)
        m.observe("h", 0.5, (1.0,))
        snap = m.as_dict()
        assert list(snap["counters"]) == ["a.counter", "b.counter"]
        assert snap["gauges"]["g"] == {
            "value": 4.0, "min": 4.0, "max": 4.0, "updates": 1,
        }
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(snap)  # must be serialisable as-is

    def test_determinism_identical_runs_identical_dumps(self):
        def run():
            m = MetricsRegistry()
            for depth in (0, 1, 1, 3, 9):
                m.observe("q", float(depth), QUEUE_DEPTH_BUCKETS)
            m.inc("jobs", 5)
            return m.as_dict()

        assert run() == run()


class TestLabels:
    def test_labels_frozen_and_sorted(self):
        m = MetricsRegistry(labels={"worker": "bf2", "gateway": "gw0"})
        assert m.labels == (("gateway", "gw0"), ("worker", "bf2"))
        assert m.label_dict == {"gateway": "gw0", "worker": "bf2"}

    def test_unlabeled_registry_has_empty_labels(self):
        m = MetricsRegistry()
        assert m.labels == ()
        assert "labels" not in m.as_dict()

    def test_labels_appear_in_snapshot(self):
        m = MetricsRegistry(labels={"tenant": "hot"})
        assert m.as_dict()["labels"] == {"tenant": "hot"}

    def test_non_string_labels_rejected(self):
        with pytest.raises(TypeError, match="str"):
            MetricsRegistry(labels={"worker": 3})


class TestNoOpDefault:
    def test_default_is_null_singleton(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().recording

    def test_null_recorders_are_inert(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.set_gauge("x", 1.0)
        NULL_METRICS.observe("x", 1.0)

    def test_collecting_scopes_installation(self):
        with collecting() as m:
            assert get_metrics() is m
            m.inc("inside")
        assert get_metrics() is NULL_METRICS
        assert m.counter("inside").value == 1.0

    def test_set_metrics_returns_previous(self):
        m = MetricsRegistry()
        prev = set_metrics(m)
        try:
            assert get_metrics() is m
        finally:
            set_metrics(prev)
        assert get_metrics() is NULL_METRICS
