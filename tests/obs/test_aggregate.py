"""Fleet aggregation: merge semantics, delta scrapes, sim neutrality."""

import pytest

from repro.obs import (
    FleetAggregator,
    MetricsRegistry,
    merge_registries,
    scrape_process,
)
from repro.sim import Environment


def make_worker_registry(gateway, worker, requests, latencies):
    registry = MetricsRegistry(labels={"gateway": gateway, "worker": worker})
    registry.inc("serve.requests", requests)
    for latency in latencies:
        registry.observe("serve.latency_s", latency)
    return registry


class TestMergeRegistries:
    def test_counters_sum_and_histograms_pool(self):
        a = make_worker_registry("gw0", "bf2", 3, [1e-3, 2e-3])
        b = make_worker_registry("gw0", "bf3", 5, [4e-3])
        merged = merge_registries([a, b])
        assert merged.counters["serve.requests"].value == 8.0
        hist = merged.histograms["serve.latency_s"]
        assert hist.count == 3
        assert hist.sum == pytest.approx(7e-3)
        assert hist.sketch.count == 3

    def test_inputs_not_mutated(self):
        a = make_worker_registry("gw0", "bf2", 1, [1e-3])
        b = make_worker_registry("gw0", "bf3", 1, [1e-3])
        merge_registries([a, b])
        assert a.counters["serve.requests"].value == 1.0
        assert a.histograms["serve.latency_s"].count == 1

    def test_gauge_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("depth", 3.0)
        b.set_gauge("depth", 9.0)  # later process-wide seq stamp
        merged = merge_registries([b, a])  # order must not matter
        assert merged.gauges["depth"].value == 9.0
        assert merged.gauges["depth"].updates == 2

    def test_boundary_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1.0, (1.0, 2.0))
        b.observe("h", 1.0, (5.0,))
        with pytest.raises(ValueError, match="boundary mismatch"):
            merge_registries([a, b])

    def test_result_carries_requested_labels(self):
        merged = merge_registries([MetricsRegistry()],
                                  labels={"tenant": "hot"})
        assert merged.label_dict == {"tenant": "hot"}


class TestFleetAggregator:
    def test_register_is_idempotent_per_object(self):
        aggregator = FleetAggregator()
        registry = MetricsRegistry()
        aggregator.register(registry)
        aggregator.register(registry)
        assert aggregator.members == (registry,)

    def test_register_rejects_non_registries(self):
        with pytest.raises(TypeError, match="MetricsRegistry"):
            FleetAggregator().register({"not": "a registry"})

    def test_scrape_counter_deltas_are_windowed(self):
        aggregator = FleetAggregator()
        registry = aggregator.register(MetricsRegistry())
        registry.inc("serve.requests", 10)
        first = aggregator.scrape(1.0)
        assert first.counter_deltas["serve.requests"] == 10.0
        assert first.interval_s == 0.0  # no previous scrape
        registry.inc("serve.requests", 4)
        second = aggregator.scrape(3.0)
        assert second.counter_deltas["serve.requests"] == 4.0
        assert second.interval_s == pytest.approx(2.0)
        assert second.overall.counters["serve.requests"].value == 14.0

    def test_group_by_merges_per_label_value(self):
        aggregator = FleetAggregator()
        for worker, tenant, n in (("bf2", "hot", 2), ("bf3", "hot", 3),
                                  ("bf2", "cold", 5)):
            registry = aggregator.register(
                MetricsRegistry(labels={"worker": worker, "tenant": tenant})
            )
            registry.inc("serve.requests", n)
        snapshot = aggregator.scrape(0.0, group_by=("tenant",))
        assert snapshot.group("hot").counters["serve.requests"].value == 5.0
        assert snapshot.group("cold").counters["serve.requests"].value == 5.0
        assert snapshot.group("warm") is None

    def test_members_missing_group_key_land_under_empty_string(self):
        aggregator = FleetAggregator()
        aggregator.register(MetricsRegistry()).inc("x", 1)
        snapshot = aggregator.scrape(0.0, group_by=("tenant",))
        assert snapshot.group("").counters["x"].value == 1.0

    def test_late_registration_is_picked_up(self):
        aggregator = FleetAggregator()
        aggregator.register(MetricsRegistry()).inc("x", 1)
        aggregator.scrape(0.0)
        late = aggregator.register(MetricsRegistry())
        late.inc("x", 2)
        snapshot = aggregator.scrape(1.0)
        assert snapshot.overall.counters["x"].value == 3.0

    def test_latest_and_history_bound(self):
        aggregator = FleetAggregator()
        assert aggregator.latest() is None
        aggregator.history_limit = 3
        for i in range(5):
            aggregator.scrape(float(i))
        assert len(aggregator.history) == 3
        assert aggregator.latest().sim_now == 4.0
        assert aggregator.scrapes == 5

    def test_snapshot_quantile_and_as_dict(self):
        import json

        aggregator = FleetAggregator()
        registry = aggregator.register(
            MetricsRegistry(labels={"tenant": "hot"})
        )
        for latency in (1e-3, 2e-3, 4e-3):
            registry.observe("serve.latency_s", latency)
        snapshot = aggregator.scrape(0.5, group_by=("tenant",))
        assert snapshot.quantile("serve.latency_s", 1.0) == pytest.approx(
            4e-3, rel=0.01
        )
        doc = snapshot.as_dict()
        json.dumps(doc)
        assert doc["group_by"] == ["tenant"]
        assert "hot" in doc["groups"]
        assert doc["overall"]["histograms"]["serve.latency_s"]["count"] == 3


class TestScrapeProcess:
    def test_scrapes_on_the_sim_interval(self):
        env = Environment()
        aggregator = FleetAggregator()
        seen = []
        env.process(scrape_process(env, aggregator, 1e-3,
                                   on_scrape=lambda s: seen.append(s.sim_now)))

        def horizon(env):
            yield env.timeout(3.5e-3)

        env.run(until=env.process(horizon(env)))
        assert seen == [pytest.approx(1e-3), pytest.approx(2e-3),
                        pytest.approx(3e-3)]
        assert aggregator.scrapes == 3

    def test_interval_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError, match="positive"):
            next(scrape_process(env, FleetAggregator(), 0.0))

    def test_scraping_never_moves_the_sim(self):
        """A run with a scrape loop finishes at the same sim time and
        serves byte-identical responses — scrapes only read."""
        from repro.dpu import make_device
        from repro.dpu.specs import Direction
        from repro.serve import (
            ServeConfig,
            ServeGateway,
            ServeRequest,
            TelemetryConfig,
        )

        def run(with_scrapes):
            env = Environment()
            aggregator = FleetAggregator()
            gateway = ServeGateway(
                env,
                [make_device(env, "bf2")],
                ServeConfig(telemetry=TelemetryConfig(aggregator=aggregator)),
            )
            if with_scrapes:
                env.process(scrape_process(env, aggregator, 1e-4))

            def client(env):
                for i in range(6):
                    gateway.submit(ServeRequest(
                        Direction.COMPRESS, b"scrape-neutral " * 32,
                        sim_bytes=64 * 1024, req_id=i,
                    ))
                    yield env.timeout(1e-4)
                yield from gateway.drain()

            env.run(until=env.process(client(env)))
            return env.now, tuple(gateway.latencies)

        assert run(False) == run(True)
