"""Property tests (hypothesis) for the telemetry roll-up invariants.

Two fleet-critical guarantees get the adversarial treatment here:

* a sketch built by *merging* arbitrarily-partitioned shards answers
  quantiles within the advertised relative-error bound of the exact
  nearest-rank quantile of the pooled stream;
* counter/gauge registry roll-ups are independent of merge order.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, QuantileSketch, merge_registries

# Latency-shaped positive floats spanning the sim's realistic range
# (microseconds to tens of seconds), away from the zero-bucket clip.
latencies = st.floats(min_value=1e-6, max_value=50.0,
                      allow_nan=False, allow_infinity=False)


def exact_quantile(values, q):
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@settings(max_examples=60, deadline=None)
@given(
    shards=st.lists(st.lists(latencies, min_size=1, max_size=40),
                    min_size=1, max_size=5),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_merged_quantiles_within_alpha_of_exact_pooled(shards, q):
    sketches = []
    for shard in shards:
        sketch = QuantileSketch()
        for value in shard:
            sketch.add(value)
        sketches.append(sketch)
    merged = QuantileSketch.merged(sketches)
    pooled = [value for shard in shards for value in shard]
    want = exact_quantile(pooled, q)
    got = merged.quantile(q)
    assert abs(got - want) <= merged.alpha * want + 1e-15


@settings(max_examples=60, deadline=None)
@given(
    shards=st.lists(st.lists(latencies, min_size=1, max_size=30),
                    min_size=2, max_size=4),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_merge_matches_single_sketch_of_pooled_stream(shards, q):
    """Merging is bucket-exact: same answer as one sketch fed everything."""
    pooled = QuantileSketch()
    sketches = []
    for shard in shards:
        sketch = QuantileSketch()
        for value in shard:
            sketch.add(value)
            pooled.add(value)
        sketches.append(sketch)
    merged = QuantileSketch.merged(sketches)
    assert merged.quantile(q) == pooled.quantile(q)


counter_events = st.lists(
    st.tuples(st.sampled_from(["reqs", "bytes", "errs"]),
              st.floats(min_value=0.0, max_value=1e6)),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(
    per_registry=st.lists(counter_events, min_size=2, max_size=5),
    order=st.randoms(use_true_random=False),
)
def test_counter_rollup_is_order_independent(per_registry, order):
    registries = []
    for events in per_registry:
        registry = MetricsRegistry()
        for name, amount in events:
            registry.inc(name, amount)
        registries.append(registry)
    shuffled = list(registries)
    order.shuffle(shuffled)
    a = merge_registries(registries)
    b = merge_registries(shuffled)
    assert set(a.counters) == set(b.counters)
    for name in a.counters:
        assert a.counters[name].value == pytest.approx(
            b.counters[name].value
        )


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=20),
    split=st.integers(min_value=0, max_value=20),
    order=st.randoms(use_true_random=False),
)
def test_gauge_rollup_last_write_wins_any_merge_order(writes, split, order):
    """The gauge's process-wide seq stamp resolves 'latest' regardless
    of which registry receives which write or how they merge."""
    split = min(split, len(writes))
    left, right = MetricsRegistry(), MetricsRegistry()
    for i, value in enumerate(writes):
        (left if i < split else right).set_gauge("depth", value)
    registries = [left, right]
    shuffled = list(registries)
    order.shuffle(shuffled)
    a = merge_registries(registries)
    b = merge_registries(shuffled)
    assert a.gauges["depth"].value == writes[-1]
    assert b.gauges["depth"].value == writes[-1]
    assert a.gauges["depth"].updates == b.gauges["depth"].updates == len(writes)
    assert a.gauges["depth"].min == b.gauges["depth"].min == min(writes)
    assert a.gauges["depth"].max == b.gauges["depth"].max == max(writes)
