"""Top-level public API surface and the pedal-bench CLI."""

import subprocess
import sys

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_sequence(self, text_payload):
        env = repro.Environment()
        ctx = repro.PedalContext(repro.make_device(env, "bf2"))

        def run(gen):
            return env.run(until=env.process(gen))

        run(ctx.init())
        result = run(ctx.compress(text_payload, "C-Engine_DEFLATE"))
        assert result.ratio > 1
        out = run(ctx.decompress(result.message))
        assert out.data == text_payload

    def test_eight_designs_exported(self):
        assert len(repro.ALL_DESIGNS) == 8


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.bench", *args],
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_table4(self):
        proc = self._run("table4")
        assert proc.returncode == 0
        assert "silesia/xml" in proc.stdout
        assert "exaalt-dataset2" in proc.stdout

    def test_actual_bytes_flag(self):
        proc = self._run("table4", "--actual-bytes", "8192")
        assert proc.returncode == 0

    def test_unknown_experiment_fails(self):
        proc = self._run("fig99")
        assert proc.returncode != 0

    @pytest.mark.slow
    def test_fig9_headlines_printed(self):
        proc = self._run("fig9", "--actual-bytes", "16384")
        assert proc.returncode == 0
        assert "Headline factors" in proc.stdout
