"""Automatic design selection over the cost model."""

import pytest

from repro.core.autodesign import choose_design, estimate_ratio, predict_pipeline_time
from repro.core.designs import design
from repro.dpu import make_device


@pytest.fixture
def pair(env):
    return make_device(env, "bf2"), make_device(env, "bf2")


class TestEstimateRatio:
    def test_compressible_text(self, text_payload):
        assert estimate_ratio(text_payload) > 3.0

    def test_random_near_one(self):
        import numpy as np

        blob = np.random.default_rng(0).bytes(40000)
        assert estimate_ratio(blob) == pytest.approx(1.0, abs=0.05)

    def test_empty(self):
        assert estimate_ratio(b"") == 1.0


class TestPrediction:
    def test_prediction_components_positive(self, pair):
        sender, receiver = pair
        choice = predict_pipeline_time(
            sender, receiver, design("C-Engine_DEFLATE"), 5.1e6, 4.0
        )
        assert choice.compress_seconds > 0
        assert choice.transfer_seconds > 0
        assert choice.decompress_seconds > 0
        assert choice.predicted_seconds == pytest.approx(
            choice.compress_seconds
            + choice.transfer_seconds
            + choice.decompress_seconds
        )

    def test_higher_ratio_lowers_transfer(self, pair):
        sender, receiver = pair
        lo = predict_pipeline_time(sender, receiver, design("SoC_LZ4"), 5.1e6, 1.5)
        hi = predict_pipeline_time(sender, receiver, design("SoC_LZ4"), 5.1e6, 6.0)
        assert hi.transfer_seconds < lo.transfer_seconds

    def test_prediction_matches_simulation(self, env, pair, run_sim, text_payload):
        """The chooser's prediction must track what the simulator charges."""
        from repro.core import PedalContext

        sender, _ = pair
        ctx = PedalContext(sender)
        run_sim(env, ctx.init())
        for label in ("SoC_DEFLATE", "C-Engine_DEFLATE", "SoC_LZ4"):
            comp = run_sim(env, ctx.compress(text_payload, label, 5.1e6))
            predicted = predict_pipeline_time(
                sender, sender, design(label), 5.1e6, 4.0
            ).compress_seconds
            assert predicted == pytest.approx(comp.sim_seconds, rel=0.05)


class TestChooser:
    def test_bf2_prefers_cengine_deflate_for_big_compressible(self, pair):
        sender, receiver = pair
        ranked = choose_design(sender, receiver, 48.85e6, expected_ratio=4.0)
        assert ranked[0].design.label in ("C-Engine_DEFLATE", "C-Engine_zlib")

    def test_bf3_avoids_cengine_compress_designs(self, env):
        bf3 = make_device(env, "bf3")
        ranked = choose_design(bf3, bf3, 48.85e6, expected_ratio=4.0)
        # LZ4 on SoC is the speed king once the engine can't compress.
        assert ranked[0].design.label in ("SoC_LZ4", "C-Engine_LZ4")

    def test_incompressible_falls_back_to_raw(self, pair):
        sender, receiver = pair
        ranked = choose_design(sender, receiver, 5.1e6, expected_ratio=1.01)
        # With ~no ratio gain, nothing beats the raw wire; the chooser
        # degrades to a single least-bad suggestion.
        assert len(ranked) >= 1

    def test_lossy_candidates(self, pair):
        sender, receiver = pair
        ranked = choose_design(
            sender, receiver, 10e6, expected_ratio=3.0, lossy=True
        )
        assert all(c.design.is_lossy for c in ranked)

    def test_ranking_sorted(self, pair):
        sender, receiver = pair
        ranked = choose_design(
            sender, receiver, 20e6, expected_ratio=3.0, include_raw=False
        )
        times = [c.predicted_seconds for c in ranked]
        assert times == sorted(times)
        assert len(ranked) == 6  # all lossless designs ranked
