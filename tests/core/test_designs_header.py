"""The eight designs and the 3-byte PEDAL header."""

import pytest

from repro.core.designs import (
    ALGO_IDS,
    ALL_DESIGNS,
    LOSSLESS_DESIGNS,
    LOSSY_DESIGNS,
    CompressionDesign,
    Placement,
    design,
)
from repro.core.header import HEADER_SIZE, PedalHeader
from repro.dpu.specs import Algo
from repro.errors import HeaderError, UnknownDesignError


class TestDesigns:
    def test_exactly_eight_designs(self):
        # Paper §III-B: "up to eight compression designs".
        assert len(ALL_DESIGNS) == 8
        assert len(LOSSLESS_DESIGNS) == 6
        assert len(LOSSY_DESIGNS) == 2

    def test_labels_match_figure_legends(self):
        labels = {d.label for d in ALL_DESIGNS}
        assert labels == {
            "SoC_DEFLATE", "C-Engine_DEFLATE",
            "SoC_LZ4", "C-Engine_LZ4",
            "SoC_zlib", "C-Engine_zlib",
            "SoC_SZ3", "C-Engine_SZ3",
        }

    def test_lookup_by_label_case_insensitive(self):
        d = design("c-engine_deflate")
        assert d.algo is Algo.DEFLATE
        assert d.placement is Placement.CENGINE

    def test_lookup_passthrough(self):
        d = CompressionDesign(Algo.SZ3, Placement.SOC)
        assert design(d) is d

    def test_unknown_label(self):
        with pytest.raises(UnknownDesignError):
            design("GPU_DEFLATE")

    def test_lossy_flag(self):
        assert design("SoC_SZ3").is_lossy
        assert not design("SoC_LZ4").is_lossy

    def test_str_is_label(self):
        assert str(design("SoC_zlib")) == "SoC_zlib"

    def test_algo_ids_unique_and_nonzero(self):
        ids = list(ALGO_IDS.values())
        assert len(set(ids)) == len(ids)
        assert 0 not in ids  # zero is the passthrough marker


class TestHeader:
    def test_layout(self):
        # Fig. 5: 0xFF | AlgoID | 0xFF.
        blob = PedalHeader.for_algo(Algo.ZLIB).encode()
        assert len(blob) == HEADER_SIZE == 3
        assert blob[0] == 0xFF and blob[2] == 0xFF
        assert blob[1] == ALGO_IDS[Algo.ZLIB]

    @pytest.mark.parametrize("algo", list(Algo))
    def test_roundtrip(self, algo):
        decoded = PedalHeader.decode(PedalHeader.for_algo(algo).encode() + b"payload")
        assert decoded.algo is algo
        assert decoded.is_compressed

    def test_passthrough(self):
        blob = PedalHeader.passthrough().encode()
        decoded = PedalHeader.decode(blob)
        assert decoded.algo is None
        assert not decoded.is_compressed

    def test_short_message_rejected(self):
        with pytest.raises(HeaderError):
            PedalHeader.decode(b"\xff\x01")

    def test_bad_sentinels_rejected(self):
        with pytest.raises(HeaderError):
            PedalHeader.decode(b"\x00\x01\xff")
        with pytest.raises(HeaderError):
            PedalHeader.decode(b"\xff\x01\x00")

    def test_unknown_algo_id_rejected(self):
        with pytest.raises(HeaderError):
            PedalHeader.decode(bytes([0xFF, 200, 0xFF]))

    def test_looks_compressed(self):
        assert PedalHeader.looks_compressed(b"\xff\x01\xff...")
        assert not PedalHeader.looks_compressed(b"\x00\x01\xff")
        assert not PedalHeader.looks_compressed(b"\xff")
