"""The naive (non-PEDAL) baseline's per-operation overhead accounting."""

import pytest

from repro.core.api import PHASE_INIT, PHASE_PREP
from repro.core.baseline import NaiveCompressor
from repro.core.designs import Placement


@pytest.fixture
def naive2(bf2) -> NaiveCompressor:
    return NaiveCompressor(bf2)


class TestOverheadCharging:
    def test_cengine_design_pays_doca_init_per_op(
        self, env, bf2, naive2, run_sim, text_payload
    ):
        comp = run_sim(env, naive2.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        assert comp.breakdown.get(PHASE_INIT) == pytest.approx(
            bf2.cal.doca_init_time
        )
        assert comp.breakdown.get(PHASE_PREP) > bf2.cal.buffer_fixed_time

    def test_overheads_charged_again_on_second_op(
        self, env, naive2, run_sim, text_payload
    ):
        c1 = run_sim(env, naive2.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        c2 = run_sim(env, naive2.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        assert c2.breakdown.get(PHASE_INIT) == c1.breakdown.get(PHASE_INIT) > 0

    def test_soc_design_pays_alloc_not_doca(self, env, naive2, run_sim, text_payload):
        comp = run_sim(env, naive2.compress(text_payload, "SoC_DEFLATE", 5.1e6))
        assert comp.breakdown.get(PHASE_INIT) == 0.0
        assert 0 < comp.breakdown.get(PHASE_PREP) < 0.01

    def test_decompress_also_pays(self, env, naive2, run_sim, text_payload):
        comp = run_sim(env, naive2.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        dec = run_sim(
            env, naive2.decompress(comp.message, Placement.CENGINE, 5.1e6)
        )
        assert dec.breakdown.get(PHASE_INIT) > 0
        assert dec.data == text_payload

    def test_overhead_dominates_at_5mb(self, env, naive2, run_sim, text_payload):
        # The Fig. 7 claim: ~94% of a naive C-Engine op pair is overhead.
        comp = run_sim(env, naive2.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        dec = run_sim(env, naive2.decompress(comp.message, Placement.CENGINE, 5.1e6))
        merged = comp.breakdown.merge(dec.breakdown)
        assert merged.fraction(PHASE_INIT, PHASE_PREP) > 0.90


class TestProducesSameBytesAsPedal:
    def test_message_identical_to_pedal(
        self, env, bf2, naive2, run_sim, text_payload
    ):
        from repro.core import PedalContext

        ctx = PedalContext(bf2)
        run_sim(env, ctx.init())
        pedal = run_sim(env, ctx.compress(text_payload, "C-Engine_DEFLATE"))
        naive = run_sim(env, naive2.compress(text_payload, "C-Engine_DEFLATE"))
        assert pedal.message == naive.message

    def test_lossy_roundtrip(self, env, naive2, run_sim, smooth_field):
        import numpy as np

        comp = run_sim(env, naive2.compress(smooth_field, "C-Engine_SZ3", 10e6))
        dec = run_sim(env, naive2.decompress(comp.message, Placement.CENGINE, 10e6))
        err = np.abs(
            dec.data.astype(np.float64) - smooth_field.astype(np.float64)
        ).max()
        assert err <= 1e-4 + 1e-6

    def test_passthrough_decompress(self, env, naive2, run_sim):
        from repro.core.header import PedalHeader

        message = PedalHeader.passthrough().encode() + b"plain"
        dec = run_sim(env, naive2.decompress(message))
        assert dec.data == b"plain"
