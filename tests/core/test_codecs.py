"""Real-codec dispatch and memoisation."""

import numpy as np
import pytest

from repro.core.codecs import (
    CodecConfig,
    clear_codec_cache,
    real_compress,
    real_decompress,
)
from repro.core.designs import design
from repro.dpu.specs import Algo
from repro.errors import UnsupportedDataError


CFG = CodecConfig()


class TestDispatch:
    @pytest.mark.parametrize("label", ["SoC_DEFLATE", "SoC_zlib", "SoC_LZ4"])
    def test_lossless_roundtrip(self, label, text_payload):
        dsg = design(label)
        result = real_compress(dsg, text_payload, CFG)
        data, _stage = real_decompress(dsg.algo, result.payload)
        assert data == text_payload
        assert result.original_bytes == len(text_payload)

    def test_lossless_accepts_ndarray(self):
        arr = np.arange(100, dtype=np.int32)
        result = real_compress(design("SoC_DEFLATE"), arr, CFG)
        data, _ = real_decompress(Algo.DEFLATE, result.payload)
        assert data == arr.tobytes()

    def test_lossless_rejects_other_types(self):
        with pytest.raises(UnsupportedDataError):
            real_compress(design("SoC_DEFLATE"), 12345, CFG)

    def test_sz3_requires_ndarray(self, text_payload):
        with pytest.raises(UnsupportedDataError):
            real_compress(design("SoC_SZ3"), text_payload, CFG)

    def test_zlib_reports_stage_bytes(self, text_payload):
        result = real_compress(design("C-Engine_zlib"), text_payload, CFG)
        assert result.cengine_stage_bytes == len(result.payload) - 6

    def test_sz3_placement_changes_backend(self, smooth_field):
        soc = real_compress(design("SoC_SZ3"), smooth_field, CFG)
        ce = real_compress(design("C-Engine_SZ3"), smooth_field, CFG)
        assert soc.payload[8] != ce.payload[8]  # backend id differs

    def test_sz3_decompress_reports_stage_bytes(self, smooth_field):
        result = real_compress(design("C-Engine_SZ3"), smooth_field, CFG)
        data, stage = real_decompress(Algo.SZ3, result.payload)
        assert stage == result.cengine_stage_bytes
        assert data.shape == smooth_field.shape


class TestMemoisation:
    def test_identical_inputs_share_result(self, text_payload):
        clear_codec_cache()
        a = real_compress(design("SoC_DEFLATE"), text_payload, CFG)
        b = real_compress(design("SoC_DEFLATE"), bytes(text_payload), CFG)
        assert a is b  # same cached object

    def test_different_design_not_shared(self, text_payload):
        a = real_compress(design("SoC_DEFLATE"), text_payload, CFG)
        b = real_compress(design("SoC_LZ4"), text_payload, CFG)
        assert a is not b

    def test_different_data_not_shared(self, text_payload):
        a = real_compress(design("SoC_DEFLATE"), text_payload, CFG)
        b = real_compress(design("SoC_DEFLATE"), text_payload + b"!", CFG)
        assert a is not b

    def test_ndarray_fingerprint_includes_shape(self):
        flat = np.zeros(16, dtype=np.float32)
        square = np.zeros((4, 4), dtype=np.float32)
        a = real_compress(design("SoC_SZ3"), flat, CFG)
        b = real_compress(design("SoC_SZ3"), square, CFG)
        assert a is not b

    def test_clear_cache(self, text_payload):
        a = real_compress(design("SoC_DEFLATE"), text_payload, CFG)
        clear_codec_cache()
        b = real_compress(design("SoC_DEFLATE"), text_payload, CFG)
        assert a is not b
        assert a.payload == b.payload

    def test_decompress_memoised(self, text_payload):
        result = real_compress(design("SoC_DEFLATE"), text_payload, CFG)
        a = real_decompress(Algo.DEFLATE, result.payload)
        b = real_decompress(Algo.DEFLATE, result.payload)
        assert a is b
