"""Lifecycle properties of the host-side scratch-buffer pool (PR 8).

The pool's two safety invariants are tested adversarially:

* **No double/foreign release** — returning a buffer twice, or a buffer
  the pool never handed out, raises :class:`ScratchLifecycleError`
  instead of corrupting the free list.
* **No cross-request plaintext leak** — a buffer written by one request
  and recycled to another is always zero-filled on acquire, so no
  lease can observe a previous lease's bytes.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mempool import (
    ScratchLifecycleError,
    ScratchPool,
    get_scratch_pool,
    scratch_lease,
    set_scratch_pool,
)
from repro.util.scratch import MIN_CLASS_BYTES, _size_class


def test_size_class_rounding():
    assert _size_class(0) == MIN_CLASS_BYTES
    assert _size_class(1) == MIN_CLASS_BYTES
    assert _size_class(MIN_CLASS_BYTES) == MIN_CLASS_BYTES
    assert _size_class(MIN_CLASS_BYTES + 1) == 2 * MIN_CLASS_BYTES
    assert _size_class(3000) == 4096
    assert _size_class(1 << 20) == 1 << 20


def test_acquire_release_reuses_arena():
    pool = ScratchPool()
    a = pool.acquire(2048)
    assert a.size == 2048 and a.dtype == np.uint8
    pool.release(a)
    b = pool.acquire(2000)  # same 2048-byte class
    assert pool.stats.hits == 1 and pool.stats.misses == 1
    pool.release(b)


def test_double_release_raises():
    pool = ScratchPool()
    view = pool.acquire(100)
    pool.release(view)
    with pytest.raises(ScratchLifecycleError):
        pool.release(view)


def test_foreign_release_raises():
    pool = ScratchPool()
    with pytest.raises(ScratchLifecycleError):
        pool.release(np.zeros(64, dtype=np.uint8))


def test_negative_acquire_rejected():
    with pytest.raises(ValueError):
        ScratchPool().acquire(-1)


def test_zero_on_acquire_no_plaintext_leak():
    pool = ScratchPool()
    secret = pool.acquire(4096)
    secret[:] = np.frombuffer(b"hunter2!" * 512, dtype=np.uint8)
    pool.release(secret)
    # Same size class: the recycled arena still physically holds the
    # secret, but the view handed out must be zeroed.
    reused = pool.acquire(4096)
    assert pool.stats.hits == 1  # really the recycled arena
    assert not reused.any()
    pool.release(reused)


def test_live_leases_do_not_alias():
    pool = ScratchPool()
    views = [pool.acquire(1024) for _ in range(6)]
    for i, view in enumerate(views):
        view.fill(i + 1)
    for i, view in enumerate(views):
        assert (view == i + 1).all()
    assert pool.outstanding == 6
    for view in views:
        pool.release(view)
    assert pool.outstanding == 0


def test_lease_releases_on_exception():
    pool = ScratchPool()
    with pytest.raises(RuntimeError, match="boom"):
        with pool.lease(512):
            raise RuntimeError("boom")
    assert pool.outstanding == 0


def test_prewarm_then_drain():
    pool = ScratchPool()
    pool.prewarm(8192, count=3)
    assert pool.stats.misses == 3 and pool.outstanding == 0
    a = pool.acquire(8192)
    assert pool.stats.hits == 1
    with pytest.raises(ScratchLifecycleError):
        pool.drain()  # lease outstanding
    pool.release(a)
    pool.drain()
    b = pool.acquire(8192)  # drained: must allocate fresh
    assert pool.stats.misses == 4
    pool.release(b)


def test_class_capacity_retires_excess():
    pool = ScratchPool(max_buffers_per_class=2)
    views = [pool.acquire(1024) for _ in range(4)]
    for view in views:
        pool.release(view)
    assert pool.stats.retired == 2


def test_global_pool_swap_and_lease():
    prev = set_scratch_pool(ScratchPool())
    try:
        with scratch_lease(256) as buf:
            assert buf.size == 256
            assert get_scratch_pool().outstanding == 1
        assert get_scratch_pool().outstanding == 0
    finally:
        set_scratch_pool(prev)


def test_thread_safety_smoke():
    pool = ScratchPool()
    errors: "list[Exception]" = []

    def worker(tag: int) -> None:
        try:
            for _ in range(200):
                with pool.lease(2048) as buf:
                    if buf.any():
                        raise AssertionError("dirty buffer from pool")
                    buf.fill(tag)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t + 1,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert pool.outstanding == 0
    assert pool.stats.acquires == 800


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1 << 16),
            st.binary(min_size=1, max_size=8),
        ),
        min_size=1,
        max_size=24,
    )
)
def test_lifecycle_property(requests):
    """Interleaved acquire/poison/release keeps every invariant.

    For a random batch of sizes: all leases are zero on acquire (even
    though each is poisoned before release), no two live views share
    memory, and the books balance at the end.
    """
    pool = ScratchPool(max_buffers_per_class=3)
    live = []
    for nbytes, poison in requests:
        view = pool.acquire(nbytes)
        assert view.size == nbytes
        assert not view.any()
        if nbytes:
            pattern = np.frombuffer(
                (poison * (nbytes // len(poison) + 1))[:nbytes], dtype=np.uint8
            )
            view[:] = pattern
            live.append((view, pattern))
        else:
            live.append((view, None))
        # Release about half the live set as we go, newest first.
        while len(live) > 2:
            done, expect = live.pop()
            if expect is not None:
                assert np.array_equal(done, expect)  # nobody scribbled on it
            pool.release(done)
    for view, expect in live:
        if expect is not None:
            assert np.array_equal(view, expect)
        pool.release(view)
    assert pool.outstanding == 0
    assert pool.stats.releases == pool.stats.acquires == len(requests)
