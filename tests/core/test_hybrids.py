"""The zlib and SZ3 hybrid (SoC + C-Engine) codec splits."""

import numpy as np
import pytest

from repro.algorithms.sz3 import SZ3Compressor, SZ3Config
from repro.algorithms.zlib_format import zlib_compress, zlib_decompress
from repro.core.sz3_hybrid import hybrid_sz3_compress, hybrid_sz3_decompress
from repro.core.zlib_hybrid import hybrid_zlib_compress, hybrid_zlib_decompress
from repro.errors import ChecksumMismatchError


class TestZlibHybrid:
    def test_byte_identical_to_oneshot(self, text_payload):
        stream, _sizes = hybrid_zlib_compress(text_payload)
        assert stream == zlib_compress(text_payload)

    def test_stage_sizes(self, text_payload):
        stream, sizes = hybrid_zlib_compress(text_payload)
        # header (2) + deflate payload + adler (4)
        assert len(stream) == 2 + sizes.deflate_payload_bytes + 4
        assert sizes.checksum_bytes == len(text_payload)

    def test_decompress_roundtrip(self, text_payload):
        stream, _ = hybrid_zlib_compress(text_payload)
        data, sizes = hybrid_zlib_decompress(stream)
        assert data == text_payload
        assert sizes.deflate_payload_bytes == len(stream) - 6

    def test_decodes_plain_zlib(self, text_payload):
        data, _ = hybrid_zlib_decompress(zlib_compress(text_payload))
        assert data == text_payload

    def test_plain_decoder_accepts_hybrid_stream(self, text_payload):
        stream, _ = hybrid_zlib_compress(text_payload)
        assert zlib_decompress(stream) == text_payload

    def test_corrupt_trailer_detected(self, text_payload):
        stream, _ = hybrid_zlib_compress(text_payload)
        bad = stream[:-1] + bytes([stream[-1] ^ 1])
        with pytest.raises(ChecksumMismatchError):
            hybrid_zlib_decompress(bad)


class TestSz3Hybrid:
    def test_backend_is_deflate(self, smooth_field):
        result = hybrid_sz3_compress(smooth_field, SZ3Config(error_bound=1e-4))
        # Backend id is byte 8 of the SZ3R header; 1 == deflate.
        assert result.stream[8] == 1

    def test_overrides_requested_backend(self, smooth_field):
        cfg = SZ3Config(error_bound=1e-4, backend="zstdlite")
        result = hybrid_sz3_compress(smooth_field, cfg)
        assert result.stream[8] == 1  # still deflate

    def test_roundtrip_error_bound(self, smooth_field):
        result = hybrid_sz3_compress(smooth_field, SZ3Config(error_bound=1e-4))
        recon = hybrid_sz3_decompress(result.stream)
        err = np.abs(recon.astype(np.float64) - smooth_field.astype(np.float64)).max()
        assert err <= 1e-4 + 1e-6

    def test_stage_sizes_recorded(self, smooth_field):
        result = hybrid_sz3_compress(smooth_field, SZ3Config(error_bound=1e-4))
        sizes = result.sizes
        assert sizes.input_bytes == smooth_field.nbytes
        assert 0 < sizes.backend_blob_bytes <= sizes.entropy_payload_bytes
        assert sizes.stream_bytes == len(result.stream)

    def test_ratio_differs_from_native_backend(self, smooth_field):
        # Table V(b): SZ3 vs SZ3(C-Engine) ratios differ slightly
        # because the backend codec differs.
        native = SZ3Compressor(SZ3Config(error_bound=1e-4)).compress(smooth_field)
        hybrid = hybrid_sz3_compress(smooth_field, SZ3Config(error_bound=1e-4)).stream
        assert len(native) != len(hybrid)

    def test_plain_decoder_accepts_hybrid_stream(self, smooth_field):
        result = hybrid_sz3_compress(smooth_field, SZ3Config(error_bound=1e-4))
        recon = SZ3Compressor.decompress(result.stream)
        assert recon.shape == smooth_field.shape
