"""Parallel chunked compression (paper future-work extension)."""

import pytest

from repro.core.parallel import ParallelCompressor, ParallelConfig
from repro.errors import CorruptStreamError


class TestRoundtrip:
    @pytest.mark.parametrize("n_chunks", [1, 2, 8, 13])
    def test_roundtrip(self, env, bf2, run_sim, text_payload, n_chunks):
        pc = ParallelCompressor(bf2, ParallelConfig(n_chunks=n_chunks))
        comp = run_sim(env, pc.compress(text_payload))
        dec = run_sim(env, pc.decompress(comp.payload))
        assert dec.payload == text_payload

    def test_empty_payload(self, env, bf2, run_sim):
        pc = ParallelCompressor(bf2, ParallelConfig(n_chunks=4))
        comp = run_sim(env, pc.compress(b""))
        dec = run_sim(env, pc.decompress(comp.payload))
        assert dec.payload == b""

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            ParallelConfig(n_chunks=0)

    def test_corrupt_container(self, env, bf2, run_sim):
        pc = ParallelCompressor(bf2)
        with pytest.raises(CorruptStreamError):
            run_sim(env, pc.decompress(b"NOPE" + bytes(16)))

    def test_truncated_container(self, env, bf2, run_sim, text_payload):
        pc = ParallelCompressor(bf2)
        comp = run_sim(env, pc.compress(text_payload))
        with pytest.raises(CorruptStreamError):
            run_sim(env, pc.decompress(comp.payload[: len(comp.payload) // 2]))


class TestContainerValidation:
    """The chunk table must exactly account for the payload bytes —
    regression tests for the size-field validation."""

    def _container(self, env, bf2, run_sim, text_payload):
        pc = ParallelCompressor(bf2, ParallelConfig(n_chunks=4))
        comp = run_sim(env, pc.compress(text_payload))
        return pc, bytearray(comp.payload)

    def test_zero_chunks_rejected(self, env, bf2, run_sim):
        import struct

        blob = b"PPAR" + struct.pack("<I", 0)
        with pytest.raises(CorruptStreamError, match="zero chunks"):
            run_sim(env, ParallelCompressor(bf2).decompress(blob))

    def test_huge_chunk_count_rejected_without_blowup(self, env, bf2, run_sim):
        import struct

        blob = b"PPAR" + struct.pack("<I", 0xFFFFFFFF) + b"\x00" * 64
        with pytest.raises(CorruptStreamError):
            run_sim(env, ParallelCompressor(bf2).decompress(blob))

    def test_inflated_size_field_rejected(self, env, bf2, run_sim,
                                          text_payload):
        import struct

        pc, blob = self._container(env, bf2, run_sim, text_payload)
        (size0,) = struct.unpack_from("<Q", blob, 8)
        struct.pack_into("<Q", blob, 8, size0 + 1)
        with pytest.raises(CorruptStreamError, match="chunk table claims"):
            run_sim(env, pc.decompress(bytes(blob)))

    def test_deflated_size_field_rejected(self, env, bf2, run_sim,
                                          text_payload):
        import struct

        pc, blob = self._container(env, bf2, run_sim, text_payload)
        (size0,) = struct.unpack_from("<Q", blob, 8)
        struct.pack_into("<Q", blob, 8, size0 - 1)
        with pytest.raises(CorruptStreamError, match="chunk table claims"):
            run_sim(env, pc.decompress(bytes(blob)))

    def test_trailing_garbage_rejected(self, env, bf2, run_sim, text_payload):
        pc, blob = self._container(env, bf2, run_sim, text_payload)
        with pytest.raises(CorruptStreamError, match="chunk table claims"):
            run_sim(env, pc.decompress(bytes(blob) + b"\x00"))

    def test_overflowing_size_field_rejected(self, env, bf2, run_sim,
                                             text_payload):
        import struct

        pc, blob = self._container(env, bf2, run_sim, text_payload)
        struct.pack_into("<Q", blob, 8, 1 << 60)
        with pytest.raises(CorruptStreamError):
            run_sim(env, pc.decompress(bytes(blob)))

    def test_valid_container_still_accepted(self, env, bf2, run_sim,
                                            text_payload):
        pc, blob = self._container(env, bf2, run_sim, text_payload)
        dec = run_sim(env, pc.decompress(bytes(blob)))
        assert dec.payload == text_payload


class TestRatioTrade:
    def test_chunking_costs_some_ratio(self, env, bf2, run_sim):
        # Realistic corpus: cross-chunk match loss is bounded by the
        # 32 KiB window anyway, so the penalty is modest.
        from repro.datasets import get_dataset

        payload = get_dataset("silesia/samba").generate(64 * 1024)
        one = run_sim(
            env, ParallelCompressor(bf2, ParallelConfig(n_chunks=1)).compress(payload)
        )
        eight = run_sim(
            env, ParallelCompressor(bf2, ParallelConfig(n_chunks=8)).compress(payload)
        )
        assert len(one.payload) <= len(eight.payload) <= len(one.payload) * 1.3


class TestSimulatedSpeedup:
    NOMINAL = 48.85e6

    def _soc_time(self, env, bf2, run_sim, payload, n_chunks):
        cfg = ParallelConfig(n_chunks=n_chunks, use_cengine=False)
        result = run_sim(
            env, ParallelCompressor(bf2, cfg).compress(payload, self.NOMINAL)
        )
        return result.sim_seconds

    def test_near_linear_soc_scaling(self, env, bf2, run_sim, text_payload):
        t1 = self._soc_time(env, bf2, run_sim, text_payload, 1)
        t8 = self._soc_time(env, bf2, run_sim, text_payload, 8)
        assert t1 / t8 == pytest.approx(8.0, rel=0.05)  # 8 cores on BF2

    def test_scaling_saturates_at_core_count(self, env, bf2, run_sim, text_payload):
        t8 = self._soc_time(env, bf2, run_sim, text_payload, 8)
        t32 = self._soc_time(env, bf2, run_sim, text_payload, 32)
        # Beyond 8 chunks the 8-core pool is the limit.
        assert t32 == pytest.approx(t8, rel=0.05)

    def test_engine_assist_beats_soc_only(self, env, bf2, run_sim, text_payload):
        soc_only = self._soc_time(env, bf2, run_sim, text_payload, 8)
        hybrid_cfg = ParallelConfig(n_chunks=8, use_cengine=True)
        hybrid = run_sim(
            env,
            ParallelCompressor(bf2, hybrid_cfg).compress(text_payload, self.NOMINAL),
        )
        assert hybrid.chunks_on_engine >= 1
        assert hybrid.sim_seconds < soc_only

    def test_bf3_compress_cannot_use_engine(self, env, bf3, run_sim, text_payload):
        pc = ParallelCompressor(bf3, ParallelConfig(n_chunks=8, use_cengine=True))
        comp = run_sim(env, pc.compress(text_payload, self.NOMINAL))
        assert comp.chunks_on_engine == 0  # BF3 engine cannot compress
        dec = run_sim(env, pc.decompress(comp.payload, self.NOMINAL))
        assert dec.chunks_on_engine >= 1  # ...but can decompress


class TestDecompressEngineBilling:
    """Regression suite for the decompress billing bug: engine-bound
    chunk jobs used to bill the even *uncompressed* split, but the
    C-Engine ingests the *compressed* stream on the decompress
    direction — the same convention PedalContext and the raw-time bench
    already used.  SoC chunks keep the uncompressed convention (their
    throughputs are calibrated against it)."""

    NOMINAL = 48.85e6
    N = 8

    def _decompress_time(self, device, run_sim, payload):
        env = device.env
        pc = ParallelCompressor(device, ParallelConfig(n_chunks=self.N))
        comp = run_sim(env, pc.compress(payload, self.NOMINAL))
        dec = run_sim(env, pc.decompress(comp.payload, self.NOMINAL))
        assert dec.chunks_on_engine == self.N  # all-engine on the fast lane
        return dec.sim_seconds, comp.payload

    def test_billing_tracks_compressed_bytes(self, bf3, run_sim):
        """Two payloads with identical uncompressed (nominal) size but
        very different ratios must cost the engine differently —
        before the fix both billed the same even uncompressed split."""
        from repro.datasets import get_dataset

        dense = get_dataset("silesia/mozilla").generate(8 * 1024)
        sparse = bytes(8 * 1024)  # zeros: compresses ~100x smaller
        t_dense, c_dense = self._decompress_time(bf3, run_sim, dense)
        t_sparse, c_sparse = self._decompress_time(bf3, run_sim, sparse)
        assert len(c_sparse) < len(c_dense) / 10
        assert t_sparse < t_dense

    def test_engine_exec_matches_compressed_size_model(self, bf3, run_sim):
        """The serial (depth-1) all-engine decompress lane's span must
        match the cost model applied to the scaled compressed chunk
        sizes exactly."""
        import struct

        from repro.dpu.specs import Algo, Direction

        env = bf3.env
        payload = bytes(range(256)) * 32
        pc = ParallelCompressor(
            bf3, ParallelConfig(n_chunks=self.N, pipeline_depth=1)
        )
        comp = run_sim(env, pc.compress(payload, self.NOMINAL))
        container = comp.payload
        (n,) = struct.unpack_from("<I", container, 4)
        sizes = [struct.unpack_from("<Q", container, 8 + 8 * i)[0]
                 for i in range(n)]
        scale = self.NOMINAL / len(payload)
        dec = run_sim(env, pc.decompress(container, self.NOMINAL))
        assert dec.chunks_on_engine == self.N
        expected_exec = sum(
            bf3.cal.cengine_time(Algo.DEFLATE, Direction.DECOMPRESS, s * scale)
            for s in sizes
        )
        # Serial lane: total >= pure exec (map/drain add on top), and
        # exec dominates, so the total sits within a small factor.
        assert dec.sim_seconds >= expected_exec
        assert dec.sim_seconds < expected_exec * 2.0
