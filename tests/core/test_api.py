"""PedalContext: lifecycle, all eight designs on both devices, accounting."""

import numpy as np
import pytest

from repro.core import PedalConfig, PedalContext, Placement, design
from repro.core.api import (
    PHASE_COMP,
    PHASE_DECOMP,
    PHASE_INIT,
    PHASE_PREP,
    PEDAL_compress,
    PEDAL_decompress,
    PEDAL_finalize,
    PEDAL_init,
)
from repro.core.designs import ALL_DESIGNS
from repro.dpu.specs import Algo
from repro.errors import PedalNotInitializedError


@pytest.fixture
def ctx2(env, bf2, run_sim) -> PedalContext:
    ctx = PedalContext(bf2)
    run_sim(env, ctx.init())
    return ctx


@pytest.fixture
def ctx3(env, bf3, run_sim) -> PedalContext:
    ctx = PedalContext(bf3)
    run_sim(env, ctx.init())
    return ctx


class TestLifecycle:
    def test_requires_init(self, env, bf2, run_sim, text_payload):
        ctx = PedalContext(bf2)
        with pytest.raises(PedalNotInitializedError):
            run_sim(env, ctx.compress(text_payload, "SoC_DEFLATE"))
        with pytest.raises(PedalNotInitializedError):
            run_sim(env, ctx.decompress(b"\xff\x01\xff"))

    def test_init_charges_doca_and_prep(self, env, bf2, run_sim):
        ctx = PedalContext(bf2)
        breakdown = run_sim(env, ctx.init())
        assert breakdown.get(PHASE_INIT) == pytest.approx(bf2.cal.doca_init_time)
        assert breakdown.get(PHASE_PREP) > 0
        assert ctx.is_initialized

    def test_double_init_free(self, env, ctx2, run_sim):
        t = env.now
        run_sim(env, ctx2.init())
        assert env.now == t

    def test_finalize(self, env, ctx2, run_sim):
        run_sim(env, ctx2.finalize())
        assert not ctx2.is_initialized
        assert not ctx2.session.is_open

    def test_pool_prewarmed(self, env, bf2, run_sim):
        ctx = PedalContext(bf2, PedalConfig(pool_buffers=7))
        run_sim(env, ctx.init())
        assert ctx.pool is not None and ctx.pool.total_buffers == 7


class TestAllDesignsRoundtrip:
    @pytest.mark.parametrize("device_fixture", ["ctx2", "ctx3"])
    @pytest.mark.parametrize("dsg", ALL_DESIGNS, ids=lambda d: d.label)
    def test_roundtrip(self, request, env, run_sim, dsg, device_fixture,
                       text_payload, smooth_field):
        ctx = request.getfixturevalue(device_fixture)
        payload = smooth_field if dsg.is_lossy else text_payload
        comp = run_sim(env, ctx.compress(payload, dsg))
        assert comp.compressed_bytes == len(comp.message)
        assert comp.ratio > 1.0
        dec = run_sim(env, ctx.decompress(comp.message, dsg.placement))
        if dsg.is_lossy:
            err = np.abs(
                dec.data.astype(np.float64) - payload.astype(np.float64)
            ).max()
            assert err <= 1e-4 + 1e-6
        else:
            assert dec.data == payload
        assert dec.algo is dsg.algo


class TestAccounting:
    def test_sim_scaling(self, env, ctx2, run_sim, text_payload):
        nominal = 5.1e6
        comp = run_sim(env, ctx2.compress(text_payload, "SoC_DEFLATE", nominal))
        assert comp.sim_original_bytes == nominal
        scale = nominal / len(text_payload)
        assert comp.sim_compressed_bytes == pytest.approx(
            comp.compressed_bytes * scale
        )
        assert comp.breakdown.get(PHASE_COMP) == pytest.approx(
            ctx2.device.cal.soc_time(Algo.DEFLATE, __import__(
                "repro.dpu.specs", fromlist=["Direction"]
            ).Direction.COMPRESS, nominal)
        )

    def test_no_init_phases_at_runtime(self, env, ctx2, run_sim, text_payload):
        comp = run_sim(env, ctx2.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        assert comp.breakdown.get(PHASE_INIT) == 0.0
        assert comp.breakdown.get(PHASE_PREP) == 0.0

    def test_cengine_much_faster_than_soc_compress(
        self, env, ctx2, run_sim, text_payload
    ):
        soc = run_sim(env, ctx2.compress(text_payload, "SoC_DEFLATE", 5.1e6))
        ce = run_sim(env, ctx2.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        assert soc.sim_seconds / ce.sim_seconds == pytest.approx(101.8, rel=0.02)

    def test_zlib_cengine_includes_header_phase(
        self, env, ctx2, run_sim, text_payload
    ):
        comp = run_sim(env, ctx2.compress(text_payload, "C-Engine_zlib", 1e6))
        assert comp.breakdown.get("header_trailer") > 0

    def test_bf3_cengine_deflate_compress_falls_back(
        self, env, ctx3, run_sim, text_payload
    ):
        comp = run_sim(env, ctx3.compress(text_payload, "C-Engine_DEFLATE", 5.1e6))
        assert comp.resolved.compress_engine == "soc"
        dec = run_sim(env, ctx3.decompress(comp.message, Placement.CENGINE, 5.1e6))
        assert dec.resolved is not None
        assert dec.resolved.decompress_engine == "cengine"

    def test_sz3_hybrid_has_lossless_stage_phase(
        self, env, ctx2, run_sim, smooth_field
    ):
        comp = run_sim(env, ctx2.compress(smooth_field, "C-Engine_SZ3", 10e6))
        assert comp.breakdown.get("lossless_stage") > 0
        assert comp.breakdown.get(PHASE_COMP) > 0

    def test_decompress_phase_recorded(self, env, ctx2, run_sim, text_payload):
        comp = run_sim(env, ctx2.compress(text_payload, "SoC_zlib"))
        dec = run_sim(env, ctx2.decompress(comp.message, Placement.SOC))
        assert dec.breakdown.get(PHASE_DECOMP) > 0


class TestPassthrough:
    def test_passthrough_message(self, env, ctx2, run_sim):
        from repro.core.header import PedalHeader

        message = PedalHeader.passthrough().encode() + b"raw bytes"
        dec = run_sim(env, ctx2.decompress(message))
        assert dec.data == b"raw bytes"
        assert dec.algo is None
        assert dec.sim_seconds == 0.0


class TestPaperFunctionApi:
    def test_listing1_spellings(self, env, bf2, run_sim, text_payload):
        ctx = PedalContext(bf2)
        run_sim(env, PEDAL_init(ctx))
        comp = run_sim(env, PEDAL_compress(ctx, text_payload, "C-Engine_DEFLATE"))
        dec = run_sim(env, PEDAL_decompress(ctx, comp.message))
        assert dec.data == text_payload
        run_sim(env, PEDAL_finalize(ctx))
        assert not ctx.is_initialized
