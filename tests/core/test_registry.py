"""Design resolution: the paper's Table III per-device placements."""

import pytest

from repro.core.designs import design
from repro.core.registry import cengine_core_algo, resolve
from repro.dpu.specs import Algo, Direction


class TestCoreAlgo:
    def test_zlib_and_sz3_submit_deflate(self):
        assert cengine_core_algo(Algo.ZLIB) is Algo.DEFLATE
        assert cengine_core_algo(Algo.SZ3) is Algo.DEFLATE

    def test_deflate_lz4_submit_themselves(self):
        assert cengine_core_algo(Algo.DEFLATE) is Algo.DEFLATE
        assert cengine_core_algo(Algo.LZ4) is Algo.LZ4


class TestSocPlacement:
    @pytest.mark.parametrize(
        "label", ["SoC_DEFLATE", "SoC_zlib", "SoC_LZ4", "SoC_SZ3"]
    )
    def test_soc_designs_never_fall_back(self, bf2, label):
        resolved = resolve(bf2, design(label))
        assert resolved.compress_engine == "soc"
        assert resolved.decompress_engine == "soc"
        assert not resolved.any_fallback


class TestTable3OnBf2:
    """Table III, BF2 column: DEFLATE/zlib/SZ3 engine-capable both ways."""

    @pytest.mark.parametrize("label", ["C-Engine_DEFLATE", "C-Engine_zlib", "C-Engine_SZ3"])
    def test_deflate_class_designs_full_engine(self, bf2, label):
        resolved = resolve(bf2, design(label))
        assert resolved.compress_engine == "cengine"
        assert resolved.decompress_engine == "cengine"
        assert not resolved.any_fallback

    def test_lz4_fully_falls_back(self, bf2):
        resolved = resolve(bf2, design("C-Engine_LZ4"))
        assert resolved.compress_engine == "soc"
        assert resolved.decompress_engine == "soc"
        assert resolved.any_fallback


class TestTable3OnBf3:
    """Table III, BF3 column: decompression only (the paper's asymmetry)."""

    @pytest.mark.parametrize("label", ["C-Engine_DEFLATE", "C-Engine_zlib", "C-Engine_SZ3"])
    def test_compress_falls_back_decompress_does_not(self, bf3, label):
        resolved = resolve(bf3, design(label))
        assert resolved.compress_engine == "soc"
        assert resolved.decompress_engine == "cengine"
        assert resolved.uses_fallback(Direction.COMPRESS)
        assert not resolved.uses_fallback(Direction.DECOMPRESS)

    def test_lz4_decompress_native(self, bf3):
        resolved = resolve(bf3, design("C-Engine_LZ4"))
        assert resolved.compress_engine == "soc"
        assert resolved.decompress_engine == "cengine"

    def test_engine_for_helper(self, bf3):
        resolved = resolve(bf3, design("C-Engine_DEFLATE"))
        assert resolved.engine_for(Direction.COMPRESS) == "soc"
        assert resolved.engine_for(Direction.DECOMPRESS) == "cengine"
