"""PEDAL memory pool: prewarm, hit/miss accounting, drain."""

import pytest

from repro.core.mempool import MemoryPool
from repro.doca import DocaSession


@pytest.fixture
def pool(env, bf2, run_sim):
    session = DocaSession(bf2)
    run_sim(env, session.open())
    inventory, _ = run_sim(env, session.create_inventory())
    return MemoryPool(inventory, buffer_bytes=1 << 20)


class TestPrewarm:
    def test_prewarm_maps_buffers(self, env, pool, run_sim):
        seconds = run_sim(env, pool.prewarm(4))
        assert seconds > 0
        assert pool.total_buffers == 4
        assert pool.free_buffers == 4

    def test_prewarm_charges_time(self, env, pool, run_sim):
        t0 = env.now
        run_sim(env, pool.prewarm(2))
        assert env.now > t0


class TestAcquire:
    def test_hit_is_free(self, env, pool, run_sim):
        run_sim(env, pool.prewarm(2))
        t0 = env.now
        buf = run_sim(env, pool.acquire())
        assert env.now == t0  # no simulated cost on a pool hit
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0
        pool.release(buf)
        assert pool.free_buffers == 2

    def test_miss_grows_pool(self, env, pool, run_sim):
        t0 = env.now
        buf = run_sim(env, pool.acquire())  # empty pool -> miss
        assert env.now > t0
        assert pool.stats.misses == 1
        assert pool.total_buffers == 1
        pool.release(buf)

    def test_acquisitions_counter(self, env, pool, run_sim):
        run_sim(env, pool.prewarm(1))
        a = run_sim(env, pool.acquire())
        b = run_sim(env, pool.acquire())
        assert pool.stats.acquisitions == 2
        pool.release(a)
        pool.release(b)

    def test_release_dead_buffer_rejected(self, env, pool, run_sim):
        buf = run_sim(env, pool.acquire())
        buf.release()  # unmapped out-of-band
        with pytest.raises(ValueError):
            pool.release(buf)


class TestDrain:
    def test_drain_unmaps_everything(self, env, pool, run_sim):
        run_sim(env, pool.prewarm(3))
        pool.drain()
        assert pool.total_buffers == 0
        assert pool.free_buffers == 0
        assert pool.inventory.n_buffers == 0
