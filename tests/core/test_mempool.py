"""PEDAL memory pool: prewarm, hit/miss accounting, drain, lifecycle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mempool import MemoryPool
from repro.doca import DocaSession
from repro.errors import PoolLifecycleError
from repro.sim import Environment


@pytest.fixture
def pool(env, bf2, run_sim):
    session = DocaSession(bf2)
    run_sim(env, session.open())
    inventory, _ = run_sim(env, session.create_inventory())
    return MemoryPool(inventory, buffer_bytes=1 << 20)


class TestPrewarm:
    def test_prewarm_maps_buffers(self, env, pool, run_sim):
        seconds = run_sim(env, pool.prewarm(4))
        assert seconds > 0
        assert pool.total_buffers == 4
        assert pool.free_buffers == 4

    def test_prewarm_charges_time(self, env, pool, run_sim):
        t0 = env.now
        run_sim(env, pool.prewarm(2))
        assert env.now > t0


class TestAcquire:
    def test_hit_is_free(self, env, pool, run_sim):
        run_sim(env, pool.prewarm(2))
        t0 = env.now
        buf = run_sim(env, pool.acquire())
        assert env.now == t0  # no simulated cost on a pool hit
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0
        pool.release(buf)
        assert pool.free_buffers == 2

    def test_miss_grows_pool(self, env, pool, run_sim):
        t0 = env.now
        buf = run_sim(env, pool.acquire())  # empty pool -> miss
        assert env.now > t0
        assert pool.stats.misses == 1
        assert pool.total_buffers == 1
        pool.release(buf)

    def test_acquisitions_counter(self, env, pool, run_sim):
        run_sim(env, pool.prewarm(1))
        a = run_sim(env, pool.acquire())
        b = run_sim(env, pool.acquire())
        assert pool.stats.acquisitions == 2
        pool.release(a)
        pool.release(b)

    def test_release_dead_buffer_rejected(self, env, pool, run_sim):
        buf = run_sim(env, pool.acquire())
        buf.release()  # unmapped out-of-band
        with pytest.raises(ValueError):
            pool.release(buf)


class TestDrain:
    def test_drain_unmaps_everything(self, env, pool, run_sim):
        run_sim(env, pool.prewarm(3))
        pool.drain()
        assert pool.total_buffers == 0
        assert pool.free_buffers == 0
        assert pool.inventory.n_buffers == 0


class TestLifecycle:
    """Regression suite for the release/drain lifecycle bugs: a double
    release used to re-append the buffer to the free list (the next two
    acquisitions then aliased one DMA mapping), a foreign buffer could
    be laundered into any pool, and drain silently unmapped buffers
    still in use."""

    def test_double_release_rejected(self, env, pool, run_sim):
        buf = run_sim(env, pool.acquire())
        pool.release(buf)
        before = pool.free_buffers
        with pytest.raises(PoolLifecycleError, match="double release"):
            pool.release(buf)
        assert pool.free_buffers == before  # free list not corrupted

    def test_foreign_release_rejected(self, env, bf2, pool, run_sim):
        session = DocaSession(bf2)
        run_sim(env, session.open())
        inventory, _ = run_sim(env, session.create_inventory())
        other = MemoryPool(inventory, buffer_bytes=1 << 20)
        foreign = run_sim(env, other.acquire())
        with pytest.raises(PoolLifecycleError, match="foreign release"):
            pool.release(foreign)
        other.release(foreign)  # still releasable to its real owner

    def test_drain_with_outstanding_rejected(self, env, pool, run_sim):
        buf = run_sim(env, pool.acquire())
        with pytest.raises(PoolLifecycleError, match="outstanding"):
            pool.drain()
        assert buf.is_live  # refused drain must not unmap in-use buffers
        pool.release(buf)
        pool.drain()
        assert pool.total_buffers == 0

    def test_outstanding_accounting(self, env, pool, run_sim):
        run_sim(env, pool.prewarm(2))
        a = run_sim(env, pool.acquire())
        b = run_sim(env, pool.acquire())
        assert pool.outstanding_buffers == 2
        pool.release(a)
        assert pool.outstanding_buffers == 1
        pool.release(b)
        assert pool.outstanding_buffers == 0

    @given(ops=st.lists(st.sampled_from(["acquire", "release"]),
                        max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_random_schedules_preserve_invariants(self, ops):
        """Property: under any acquire/release interleaving the pool's
        counters balance and every buffer is either free or outstanding
        — never both, never neither."""
        env = Environment()

        def scenario(env):
            from repro.dpu.device import make_device
            session = DocaSession(make_device(env, "bf2"))
            yield from session.open()
            inventory, _ = yield from session.create_inventory()
            pool = MemoryPool(inventory, buffer_bytes=4096)
            held = []
            for op in ops:
                if op == "acquire":
                    held.append((yield from pool.acquire()))
                elif held:
                    pool.release(held.pop())
                assert pool.outstanding_buffers == len(held)
                assert (pool.free_buffers + pool.outstanding_buffers
                        == pool.total_buffers)
            for buf in held:
                pool.release(buf)
            pool.drain()
            assert pool.total_buffers == 0

        env.run(until=env.process(scenario(env)))
