"""Host-offload scenario (paper §VI): placements and crossovers."""

import pytest

from repro.dpu import make_device
from repro.host import HOST_XEON, PCIE_GEN4_X16, HostNode, HostOffloadEngine, OffloadPath
from repro.host.offload import PHASE_PCIE_D2H, PHASE_PCIE_H2D


@pytest.fixture
def engine(env, run_sim):
    host = HostNode(env, HOST_XEON)
    dpu = make_device(env, "bf2")
    eng = HostOffloadEngine(host, dpu, PCIE_GEN4_X16)
    run_sim(env, eng.init())
    return eng


class TestSpecs:
    def test_pcie_transfer_time(self):
        t = PCIE_GEN4_X16.transfer_time(25e9)
        assert t == pytest.approx(1.0 + PCIE_GEN4_X16.dma_setup_s)

    def test_host_faster_than_dpu_soc(self, env):
        from repro.dpu.calibration import CAL_BF2
        from repro.dpu.specs import Algo, Direction

        host = HostNode(env, HOST_XEON)
        assert host.codec_time(Algo.DEFLATE, Direction.COMPRESS, 1e6) < (
            CAL_BF2.soc_time(Algo.DEFLATE, Direction.COMPRESS, 1e6)
        )


class TestPlacements:
    def test_host_only_no_pcie(self, env, engine, run_sim, text_payload):
        result = run_sim(
            env,
            engine.compress(text_payload, "C-Engine_DEFLATE", OffloadPath.HOST_ONLY, 5.1e6),
        )
        assert result.breakdown.get(PHASE_PCIE_H2D) == 0.0
        assert not result.data_on_dpu

    def test_roundtrip_crosses_twice(self, env, engine, run_sim, text_payload):
        result = run_sim(
            env,
            engine.compress(
                text_payload, "C-Engine_DEFLATE", OffloadPath.DPU_ROUNDTRIP, 5.1e6
            ),
        )
        assert result.breakdown.get(PHASE_PCIE_H2D) > 0
        assert result.breakdown.get(PHASE_PCIE_D2H) > 0
        # Return leg carries the smaller, compressed size.
        assert result.breakdown.get(PHASE_PCIE_D2H) < result.breakdown.get(
            PHASE_PCIE_H2D
        )
        assert not result.data_on_dpu

    def test_inline_crosses_once(self, env, engine, run_sim, text_payload):
        result = run_sim(
            env,
            engine.compress(
                text_payload, "C-Engine_DEFLATE", OffloadPath.DPU_INLINE, 5.1e6
            ),
        )
        assert result.breakdown.get(PHASE_PCIE_H2D) > 0
        assert result.breakdown.get(PHASE_PCIE_D2H) == 0.0
        assert result.data_on_dpu

    def test_same_bytes_all_paths(self, env, engine, run_sim, text_payload):
        messages = set()
        for path in OffloadPath:
            result = run_sim(
                env, engine.compress(text_payload, "C-Engine_DEFLATE", path, 5.1e6)
            )
            messages.add(result.message)
        assert len(messages) == 1  # placement never changes the format

    def test_decompress_roundtrip(self, env, engine, run_sim, text_payload):
        comp = run_sim(
            env,
            engine.compress(
                text_payload, "C-Engine_DEFLATE", OffloadPath.DPU_ROUNDTRIP, 5.1e6
            ),
        )
        for path in OffloadPath:
            data, breakdown = run_sim(
                env, engine.decompress(comp.message, path, 5.1e6)
            )
            assert data == text_payload


class TestCrossover:
    def test_big_messages_prefer_offload(self, env, engine, run_sim, text_payload):
        """At large sizes the C-Engine gain dominates the PCIe cost."""
        nominal = 48.85e6
        host = run_sim(
            env,
            engine.compress(text_payload, "C-Engine_DEFLATE", OffloadPath.HOST_ONLY, nominal),
        )
        inline = run_sim(
            env,
            engine.compress(text_payload, "C-Engine_DEFLATE", OffloadPath.DPU_INLINE, nominal),
        )
        assert inline.sim_seconds < host.sim_seconds

    def test_tiny_messages_prefer_host(self, env, engine, run_sim):
        payload = b"small" * 50
        nominal = 16e3
        host = run_sim(
            env,
            engine.compress(payload, "C-Engine_DEFLATE", OffloadPath.HOST_ONLY, nominal),
        )
        roundtrip = run_sim(
            env,
            engine.compress(
                payload, "C-Engine_DEFLATE", OffloadPath.DPU_ROUNDTRIP, nominal
            ),
        )
        assert host.sim_seconds < roundtrip.sim_seconds

    def test_predicted_crossover_is_finite_for_engine_designs(self, engine):
        crossover = engine.predicted_crossover_bytes("C-Engine_DEFLATE")
        assert 1e3 < crossover < 1e8

    def test_predicted_crossover_infinite_for_fallbacks(self, env, run_sim):
        host = HostNode(env, HOST_XEON)
        bf3 = make_device(env, "bf3")
        eng = HostOffloadEngine(host, bf3, PCIE_GEN4_X16)
        run_sim(env, eng.init())
        # BF3 cannot compress on its engine: offload never pays.
        assert eng.predicted_crossover_bytes("C-Engine_DEFLATE") == float("inf")

    def test_measured_crossover_brackets_prediction(self, env, engine, run_sim, text_payload):
        crossover = engine.predicted_crossover_bytes("C-Engine_DEFLATE")

        def gap(nominal):
            host = run_sim(
                env,
                engine.compress(
                    text_payload, "C-Engine_DEFLATE", OffloadPath.HOST_ONLY, nominal
                ),
            )
            off = run_sim(
                env,
                engine.compress(
                    text_payload, "C-Engine_DEFLATE", OffloadPath.DPU_ROUNDTRIP, nominal
                ),
            )
            return off.sim_seconds - host.sim_seconds

        assert gap(crossover / 8) > 0  # host wins well below
        assert gap(crossover * 8) < 0  # offload wins well above


class TestHostChecksumSymmetry:
    """HOST_ONLY zlib charges its adler32/header work explicitly and
    symmetrically: the ``header_trailer`` phase appears with the *same*
    value on both directions (it streams the uncompressed bytes either
    way).  Before the split the charge was folded into the codec
    phase, where a direction asymmetry could hide unobserved."""

    NOMINAL = 5.1e6

    def _roundtrip(self, env, engine, run_sim, payload, design):
        comp = run_sim(
            env, engine.compress(payload, design, OffloadPath.HOST_ONLY, self.NOMINAL)
        )
        _, dec_breakdown = run_sim(
            env, engine.decompress(comp.message, OffloadPath.HOST_ONLY, self.NOMINAL)
        )
        return comp.breakdown, dec_breakdown

    def test_zlib_header_phase_present_and_symmetric(
        self, env, engine, run_sim, text_payload
    ):
        from repro.host.offload import PHASE_CODEC, PHASE_DECODEC, PHASE_HEADER

        comp_bd, dec_bd = self._roundtrip(
            env, engine, run_sim, text_payload, "SoC_zlib"
        )
        charge = comp_bd.get(PHASE_HEADER)
        assert charge > 0
        assert dec_bd.get(PHASE_HEADER) == pytest.approx(charge, rel=1e-12)
        # The checksum is billed once, not double-counted in the codec.
        assert comp_bd.get(PHASE_CODEC) > 0
        assert dec_bd.get(PHASE_DECODEC) > 0

    def test_zlib_checksum_scales_with_bytes(self, env, engine, run_sim, text_payload):
        from repro.host.offload import PHASE_HEADER

        small, _ = self._roundtrip(env, engine, run_sim, text_payload, "SoC_zlib")
        big = run_sim(
            env,
            engine.compress(
                text_payload, "SoC_zlib", OffloadPath.HOST_ONLY, self.NOMINAL * 4
            ),
        )
        assert big.breakdown.get(PHASE_HEADER) == pytest.approx(
            small.get(PHASE_HEADER) * 4, rel=1e-9
        )

    def test_deflate_has_no_checksum_phase(self, env, engine, run_sim, text_payload):
        from repro.host.offload import PHASE_HEADER

        comp_bd, dec_bd = self._roundtrip(
            env, engine, run_sim, text_payload, "C-Engine_DEFLATE"
        )
        assert comp_bd.get(PHASE_HEADER) == 0.0
        assert dec_bd.get(PHASE_HEADER) == 0.0
