"""AnyOf: the first-of-N race event the failover machinery runs on."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import AnyOf, Environment
from tests.conftest import drive


def test_any_of_fires_on_first_event():
    env = Environment()
    slow = env.timeout(2.0, value="slow")
    fast = env.timeout(1.0, value="fast")

    def proc(env):
        winner, value = yield env.any_of([slow, fast])
        return winner, value, env.now

    winner, value, now = drive(env, proc(env))
    assert winner is fast
    assert value == "fast"
    assert now == 1.0


def test_any_of_value_names_the_winner_among_ties():
    """Simultaneous events: heap sequence order decides, deterministically
    — the first-scheduled event wins."""
    env = Environment()
    first = env.timeout(1.0, value="first")
    second = env.timeout(1.0, value="second")

    def proc(env):
        winner, value = yield env.any_of([second, first])
        return value

    assert drive(env, proc(env)) == "first"


def test_any_of_with_already_fired_event_wins_at_construction():
    env = Environment()
    done = env.event()
    done.succeed("already")

    def proc(env):
        yield env.timeout(0.5)  # let `done` process first
        winner, value = yield env.any_of([env.timeout(9.0), done])
        return winner is done, value, env.now

    was_done, value, now = drive(env, proc(env))
    assert was_done and value == "already"
    assert now == 0.5


def test_any_of_failing_child_fails_the_race():
    env = Environment()
    boom = env.event()

    def failer(env):
        yield env.timeout(1.0)
        boom.fail(RuntimeError("dpu fell off the bus"))

    def proc(env):
        yield env.any_of([env.timeout(5.0), boom])

    env.process(failer(env))
    with pytest.raises(RuntimeError, match="fell off the bus"):
        drive(env, proc(env))


def test_any_of_late_losers_are_ignored():
    env = Environment()
    results = []

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(2.0, value="slow")
        winner, value = yield env.any_of([fast, slow])
        results.append(value)
        # Keep running past the loser's fire time: nothing blows up and
        # the loser still fired (side effects happen in the background).
        yield env.timeout(5.0)
        return slow.processed

    assert drive(env, proc(env)) is True
    assert results == ["fast"]


def test_any_of_requires_events():
    env = Environment()
    with pytest.raises(SimulationError):
        AnyOf(env, [])
    with pytest.raises(SimulationError):
        env.any_of([])
