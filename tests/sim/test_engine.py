"""DES kernel semantics."""

import pytest

from repro.errors import SimDeadlockError, SimulationError
from repro.sim import Environment


class TestTimeouts:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_timeout_advances_clock(self, env):
        def proc(env):
            yield env.timeout(2.5)
            return env.now

        assert env.run(until=env.process(proc(env))) == 2.5

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_value_passthrough(self, env):
        def proc(env):
            value = yield env.timeout(1, value="tick")
            return value

        assert env.run(until=env.process(proc(env))) == "tick"

    def test_simultaneous_events_fire_in_schedule_order(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(1)
            order.append(tag)

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.process(proc(env, "c"))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 42

        assert env.run(until=env.process(proc(env))) == 42

    def test_nested_yield_from(self, env):
        def inner(env):
            yield env.timeout(3)
            return "deep"

        def outer(env):
            result = yield from inner(env)
            return result + "!"

        assert env.run(until=env.process(outer(env))) == "deep!"
        assert env.now == 3

    def test_waiting_on_another_process(self, env):
        def worker(env):
            yield env.timeout(5)
            return "done"

        def boss(env, worker_proc):
            result = yield worker_proc
            return (env.now, result)

        w = env.process(worker(env))
        b = env.process(boss(env, w))
        assert env.run(until=b) == (5, "done")

    def test_waiting_on_finished_process(self, env):
        def worker(env):
            yield env.timeout(1)
            return 7

        def late(env, worker_proc):
            yield env.timeout(10)
            value = yield worker_proc
            return value

        w = env.process(worker(env))
        assert env.run(until=env.process(late(env, w))) == 7

    def test_exception_propagates_to_waiter(self, env):
        def failing(env):
            yield env.timeout(1)
            raise RuntimeError("boom")

        def waiter(env, proc):
            try:
                yield proc
            except RuntimeError as exc:
                return f"caught {exc}"

        p = env.process(failing(env))
        assert env.run(until=env.process(waiter(env, p))) == "caught boom"

    def test_unhandled_failure_raises_on_run_until(self, env):
        def failing(env):
            yield env.timeout(1)
            raise ValueError("oops")

        p = env.process(failing(env))
        with pytest.raises(ValueError):
            env.run(until=p)

    def test_yielding_non_event_raises_inside_process(self, env):
        def bad(env):
            try:
                yield "not an event"
            except SimulationError:
                return "rejected"
            return "accepted"

        assert env.run(until=env.process(bad(env))) == "rejected"

    def test_interrupt(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except SimulationError as exc:
                return f"interrupted at {env.now}: {exc}"
            return "slept"

        def interrupter(env, victim):
            yield env.timeout(2)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        result = env.run(until=victim)
        assert result.startswith("interrupted at 2")

    def test_stale_wakeup_ignored_after_interrupt(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except SimulationError:
                log.append(("interrupted", env.now))
            yield env.timeout(50)
            log.append(("resumed", env.now))

        def interrupter(env, victim):
            yield env.timeout(10)
            victim.interrupt("now")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        # The stale timeout(100) firing at t=100 must not double-resume.
        assert log == [("interrupted", 10), ("resumed", 60)]


class TestEvents:
    def test_manual_event(self, env):
        ev = env.event()

        def trigger(env, ev):
            yield env.timeout(4)
            ev.succeed("payload")

        def waiter(env, ev):
            value = yield ev
            return (env.now, value)

        env.process(trigger(env, ev))
        assert env.run(until=env.process(waiter(env, ev))) == (4, "payload")

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_value_before_trigger_rejected(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_all_of_collects_values(self, env):
        def proc(env, t):
            yield env.timeout(t)
            return t

        ps = [env.process(proc(env, t)) for t in (3, 1, 2)]
        assert env.run(until=env.all_of(ps)) == [3, 1, 2]
        assert env.now == 3

    def test_all_of_empty(self, env):
        assert env.run(until=env.all_of([])) == []

    def test_all_of_failure(self, env):
        def good(env):
            yield env.timeout(1)

        def bad(env):
            yield env.timeout(2)
            raise RuntimeError("nope")

        combo = env.all_of([env.process(good(env)), env.process(bad(env))])
        with pytest.raises(RuntimeError):
            env.run(until=combo)


class TestRun:
    def test_run_until_time(self, env):
        ticks = []

        def clock(env):
            while True:
                yield env.timeout(1)
                ticks.append(env.now)

        env.process(clock(env))
        env.run(until=10)
        assert ticks == [float(t) for t in range(1, 11)]

    def test_run_drains_queue(self, env):
        def proc(env):
            yield env.timeout(7)

        env.process(proc(env))
        env.run()
        assert env.now == 7

    def test_deadlock_detected(self, env):
        def stuck(env):
            yield env.event()  # never triggered

        p = env.process(stuck(env))
        with pytest.raises(SimDeadlockError):
            env.run(until=p)
