"""Resource and Store semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_fifo_grant_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(env, res, tag, hold):
            req = res.request()
            yield req
            order.append((tag, env.now))
            yield env.timeout(hold)
            res.release(req)

        env.process(worker(env, res, "a", 4))
        env.process(worker(env, res, "b", 2))
        env.process(worker(env, res, "c", 1))
        env.run()
        assert order == [("a", 0), ("b", 4), ("c", 6)]

    def test_capacity_two_parallelism(self, env):
        res = Resource(env, capacity=2)
        done = []

        def worker(env, res, tag):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)
            done.append((tag, env.now))

        for tag in ("a", "b", "c"):
            env.process(worker(env, res, tag))
        env.run()
        assert done == [("a", 5), ("b", 5), ("c", 10)]

    def test_queue_length_and_in_use(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert res.in_use == 1
        assert res.queue_length == 1
        res.release(r1)
        assert res.in_use == 1  # r2 promoted
        assert res.queue_length == 0
        assert r2.triggered

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while queued
        assert res.queue_length == 0
        res.release(r1)

    def test_release_unknown_rejected(self, env):
        res = Resource(env, capacity=1)
        res2 = Resource(env, capacity=1)
        req = res2.request()
        with pytest.raises(SimulationError):
            res.release(req)


class TestStore:
    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env, store):
            yield env.timeout(3)
            store.put("x")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("x", 3)]

    def test_immediate_get_when_items_exist(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)

        def consumer(env, store):
            a = yield store.get()
            b = yield store.get()
            return (a, b)

        assert env.run(until=env.process(consumer(env, store))) == (1, 2)

    def test_fifo_items_and_getters(self, env):
        store = Store(env)
        results = []

        def consumer(env, store, tag):
            item = yield store.get()
            results.append((tag, item))

        env.process(consumer(env, store, "first"))
        env.process(consumer(env, store, "second"))

        def producer(env, store):
            yield env.timeout(1)
            store.put("A")
            store.put("B")

        env.process(producer(env, store))
        env.run()
        assert results == [("first", "A"), ("second", "B")]

    def test_len(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put("i")
        assert len(store) == 1
