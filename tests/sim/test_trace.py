"""TimeBreakdown accounting."""

import pytest

from repro.sim import TimeBreakdown


class TestTimeBreakdown:
    def test_accumulates(self):
        tb = TimeBreakdown()
        tb.add("init", 1.0)
        tb.add("init", 0.5)
        tb.add("comp", 2.0)
        assert tb.get("init") == 1.5
        assert tb.total() == pytest.approx(3.5)

    def test_missing_phase_zero(self):
        assert TimeBreakdown().get("nothing") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("x", -1.0)

    def test_fraction(self):
        tb = TimeBreakdown()
        tb.add("a", 3.0)
        tb.add("b", 1.0)
        assert tb.fraction("a") == pytest.approx(0.75)
        assert tb.fraction("a", "b") == pytest.approx(1.0)
        assert TimeBreakdown().fraction("a") == 0.0

    def test_merge(self):
        a = TimeBreakdown()
        a.add("x", 1.0)
        b = TimeBreakdown()
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.get("x") == 3.0
        assert a.get("y") == 3.0

    def test_as_dict_and_repr(self):
        tb = TimeBreakdown()
        tb.add("phase", 0.25)
        assert tb.as_dict() == {"phase": 0.25}
        assert "phase" in repr(tb)

    def test_insertion_order_preserved(self):
        tb = TimeBreakdown()
        for name in ("z", "a", "m"):
            tb.add(name, 1.0)
        assert list(tb.as_dict()) == ["z", "a", "m"]
