"""Golden-vector corpus: frozen compressed artifacts must stay decodable
and encoder output must stay byte-stable.

Two distinct guarantees, both per (case, codec):

* **backward compatibility** — today's decoder reads yesterday's
  artifact back to the exact input (``decompress(artifact) == input``);
* **format stability** — today's encoder reproduces the artifact
  byte-for-byte (``compress(input) == artifact``), so *any* wire-format
  drift fails loudly instead of silently invalidating stored streams.

After an intentional format change run
``PYTHONPATH=src python tests/vectors/regenerate.py`` and commit the
diff (see README.md here).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.ac import ac_compress, ac_decompress
from repro.algorithms.deflate import deflate_compress, deflate_decompress
from repro.algorithms.gzip_format import gzip_compress, gzip_decompress
from repro.algorithms.lz4 import (
    lz4_block_compress,
    lz4_block_decompress,
    lz4_compress,
    lz4_decompress,
)
from repro.algorithms.sz3 import SZ3Config, sz3_compress, sz3_decompress
from repro.algorithms.zlib_format import zlib_compress, zlib_decompress
from repro.algorithms.zstdlite import zstdlite_compress, zstdlite_decompress

VECTOR_DIR = Path(__file__).resolve().parent
MANIFEST = json.loads((VECTOR_DIR / "manifest.json").read_text())

CODECS = {
    "deflate": (deflate_compress, deflate_decompress),
    "zlib": (zlib_compress, zlib_decompress),
    "gzip": (gzip_compress, gzip_decompress),
    "lz4b": (lz4_block_compress, lz4_block_decompress),
    "lz4f": (lz4_compress, lz4_decompress),
    "zstdlite": (zstdlite_compress, zstdlite_decompress),
    "ac": (ac_compress, ac_decompress),
}

BYTE_CASES = sorted(
    name for name, entry in MANIFEST["cases"].items() if "dtype" not in entry
)


def _read(case: str, suffix: str) -> bytes:
    return (VECTOR_DIR / f"{case}{suffix}").read_bytes()


def test_manifest_lists_every_artifact_on_disk():
    on_disk = {p.name for p in VECTOR_DIR.glob("*.bin")}
    listed = {
        f"{case}.{codec}.bin"
        for case, entry in MANIFEST["cases"].items()
        for codec in entry["artifacts"]
    }
    assert on_disk == listed


@pytest.mark.parametrize("case", BYTE_CASES)
def test_input_checksums(case):
    entry = MANIFEST["cases"][case]
    payload = _read(case, ".in")
    assert len(payload) == entry["input_bytes"]
    assert hashlib.sha256(payload).hexdigest() == entry["input_sha256"]


@pytest.mark.parametrize("codec", sorted(CODECS))
@pytest.mark.parametrize("case", BYTE_CASES)
def test_artifact_checksums(case, codec):
    meta = MANIFEST["cases"][case]["artifacts"][codec]
    blob = _read(case, f".{codec}.bin")
    assert len(blob) == meta["bytes"]
    assert hashlib.sha256(blob).hexdigest() == meta["sha256"]


@pytest.mark.parametrize("codec", sorted(CODECS))
@pytest.mark.parametrize("case", BYTE_CASES)
def test_decoder_reads_frozen_artifact(case, codec):
    _, decompress = CODECS[codec]
    assert decompress(_read(case, f".{codec}.bin")) == _read(case, ".in")


@pytest.mark.parametrize("codec", sorted(CODECS))
@pytest.mark.parametrize("case", BYTE_CASES)
def test_encoder_is_byte_stable(case, codec):
    compress, _ = CODECS[codec]
    assert compress(_read(case, ".in")) == _read(case, f".{codec}.bin")


class TestSZ3Vector:
    @property
    def field(self) -> np.ndarray:
        return np.frombuffer(_read("field.f32", ".in"), dtype=np.float32)

    def test_decoder_reads_frozen_artifact(self):
        restored = sz3_decompress(_read("field.sz3", ".bin"))
        bound = MANIFEST["sz3_error_bound"]
        err = np.abs(restored.astype(np.float64)
                     - self.field.astype(np.float64))
        assert err.max() <= bound * (1 + 1e-6)

    def test_encoder_is_byte_stable(self):
        blob = sz3_compress(
            self.field, SZ3Config(error_bound=MANIFEST["sz3_error_bound"])
        )
        assert blob == _read("field.sz3", ".bin")

    def test_artifact_checksum(self):
        meta = MANIFEST["cases"]["field"]["artifacts"]["sz3"]
        blob = _read("field.sz3", ".bin")
        assert hashlib.sha256(blob).hexdigest() == meta["sha256"]

    # -- SZ3 with the adaptive-context lossless stage ------------------

    def test_ac_backend_decoder_reads_frozen_artifact(self):
        restored = sz3_decompress(_read("field.ac-sz3", ".bin"))
        bound = MANIFEST["sz3_error_bound"]
        err = np.abs(restored.astype(np.float64)
                     - self.field.astype(np.float64))
        assert err.max() <= bound * (1 + 1e-6)

    def test_ac_backend_encoder_is_byte_stable(self):
        blob = sz3_compress(
            self.field,
            SZ3Config(error_bound=MANIFEST["sz3_error_bound"], backend="ac"),
        )
        assert blob == _read("field.ac-sz3", ".bin")

    def test_ac_backend_artifact_checksum(self):
        meta = MANIFEST["cases"]["field"]["artifacts"]["ac-sz3"]
        blob = _read("field.ac-sz3", ".bin")
        assert hashlib.sha256(blob).hexdigest() == meta["sha256"]
