#!/usr/bin/env python
"""Regenerate the golden compressed-vector corpus.

Run from the repository root after an *intentional* wire-format change::

    PYTHONPATH=src python tests/vectors/regenerate.py

Rewrites ``<case>.in`` / ``<case>.<codec>.bin`` pairs and
``manifest.json`` (sha256 of every artifact).  The loader test
(:mod:`tests.vectors.test_golden_vectors`) fails when current encoder
output drifts from these files — an unintentional format change shows
up as a diff here before it ever corrupts someone's stored data.

Inputs are generated from fixed seeds, so regeneration only changes
the ``.bin`` side unless the corpus definition itself is edited.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.algorithms.ac import ac_compress
from repro.algorithms.deflate import deflate_compress
from repro.algorithms.gzip_format import gzip_compress
from repro.algorithms.lz4 import lz4_block_compress, lz4_compress
from repro.algorithms.sz3 import SZ3Config, sz3_compress
from repro.algorithms.zlib_format import zlib_compress
from repro.algorithms.zstdlite import zstdlite_compress
from repro.datasets import get_dataset
from repro.dpu.specs import Algo
from repro.stream import StreamConfig, stream_compress

VECTOR_DIR = Path(__file__).resolve().parent

BYTE_CODECS = {
    "deflate": deflate_compress,
    "zlib": zlib_compress,
    "gzip": gzip_compress,
    "lz4b": lz4_block_compress,
    "lz4f": lz4_compress,
    "zstdlite": zstdlite_compress,
    "ac": ac_compress,
}

SZ3_ERROR_BOUND = 1e-3


def byte_inputs() -> "dict[str, bytes]":
    rng = np.random.default_rng(20260806)
    return {
        "text": b"PEDAL offloads compression to the BlueField C-Engine. " * 20,
        "runs": b"\x00" * 600 + b"\x7f" * 600 + b"ab" * 150,
        # Adversarial for the vectorized matcher's literal-skip table:
        # a zero run longer than 2x the 258-byte match cap, short-period
        # repeats and a ramp tail with no 3-byte repeats at all.
        "runs2": b"\x00" * 1024 + b"\x7f\x80" * 300 + b"PQRS" * 200
        + bytes(range(64)) * 3,
        "ramp": (np.arange(1200) % 251).astype(np.uint8).tobytes(),
        "noise": rng.bytes(900),
    }


def sz3_input() -> np.ndarray:
    t = np.linspace(0.0, 12.0, 1500)
    return (np.sin(t) + 0.25 * np.sin(6.3 * t)).astype(np.float32)


# RST1 streaming-container vectors (PR 10): freeze the chunked wire
# format the MPI fabric path and the serving gateway both ship.
STREAM_CHUNK_BYTES = 1024
STREAM_ALGOS = {"deflate": Algo.DEFLATE, "ac": Algo.AC, "lz4": Algo.LZ4}


def stream_inputs() -> "dict[str, bytes]":
    return {
        # header + end frame only: the flush-after-empty-feed contract
        "stream-empty": b"",
        # single sub-chunk data frame
        "stream-tiny": b"A",
        # multi-chunk hypersparse telemetry window
        "stream-telemetry": get_dataset("net_telemetry").generate(6000),
    }


def main() -> None:
    manifest: dict = {
        "format_version": 1,
        "sz3_error_bound": SZ3_ERROR_BOUND,
        "cases": {},
    }
    for case, payload in byte_inputs().items():
        (VECTOR_DIR / f"{case}.in").write_bytes(payload)
        entry = {
            "input_sha256": hashlib.sha256(payload).hexdigest(),
            "input_bytes": len(payload),
            "artifacts": {},
        }
        for codec, compress in BYTE_CODECS.items():
            blob = compress(payload)
            (VECTOR_DIR / f"{case}.{codec}.bin").write_bytes(blob)
            entry["artifacts"][codec] = {
                "sha256": hashlib.sha256(blob).hexdigest(),
                "bytes": len(blob),
            }
        manifest["cases"][case] = entry

    field = sz3_input()
    (VECTOR_DIR / "field.f32.in").write_bytes(field.tobytes())
    blob = sz3_compress(field, SZ3Config(error_bound=SZ3_ERROR_BOUND))
    (VECTOR_DIR / "field.sz3.bin").write_bytes(blob)
    # Same field through SZ3 with the adaptive-context lossless stage:
    # freezes the backend-id wiring and the ac container inside SZ3.
    ac_blob = sz3_compress(
        field, SZ3Config(error_bound=SZ3_ERROR_BOUND, backend="ac")
    )
    (VECTOR_DIR / "field.ac-sz3.bin").write_bytes(ac_blob)
    manifest["cases"]["field"] = {
        "input_sha256": hashlib.sha256(field.tobytes()).hexdigest(),
        "input_bytes": field.nbytes,
        "dtype": "float32",
        "artifacts": {
            "sz3": {
                "sha256": hashlib.sha256(blob).hexdigest(),
                "bytes": len(blob),
            },
            "ac-sz3": {
                "sha256": hashlib.sha256(ac_blob).hexdigest(),
                "bytes": len(ac_blob),
            },
        },
    }

    manifest["stream_chunk_bytes"] = STREAM_CHUNK_BYTES
    manifest["stream_cases"] = {}
    for case, payload in stream_inputs().items():
        (VECTOR_DIR / f"{case}.in").write_bytes(payload)
        entry = {
            "input_sha256": hashlib.sha256(payload).hexdigest(),
            "input_bytes": len(payload),
            "artifacts": {},
        }
        for name, algo in STREAM_ALGOS.items():
            blob = stream_compress(
                payload,
                StreamConfig(algo=algo, chunk_bytes=STREAM_CHUNK_BYTES),
            )
            (VECTOR_DIR / f"{case}.{name}.rst1").write_bytes(blob)
            entry["artifacts"][name] = {
                "sha256": hashlib.sha256(blob).hexdigest(),
                "bytes": len(blob),
            }
        manifest["stream_cases"][case] = entry

    out = VECTOR_DIR / "manifest.json"
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    total = sum(
        len(a["artifacts"]) for a in manifest["cases"].values()
    )
    print(f"wrote {total} artifacts + manifest to {VECTOR_DIR}")


if __name__ == "__main__":
    main()
