"""Golden RST1 streaming-container vectors.

Same two guarantees as the codec corpus, per (case, algo):

* **backward compatibility** — today's streaming decoder reads the
  frozen container back to the exact input;
* **format stability** — today's ``stream_compress`` reproduces the
  container byte-for-byte, so RST1 wire drift (header layout, frame
  framing, CRC placement, chunk codec output) fails loudly.

Plus the satellite corruption sweep over the frozen artifacts:
truncations and bit flips raise typed :class:`~repro.errors.
StreamError`\\ s (or decode byte-identical when the flip lands in a
genuine don't-care bit) and never hang.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.dpu.specs import Algo
from repro.errors import StreamError
from repro.stream import (
    Decompressor,
    StreamConfig,
    stream_compress,
    stream_decompress,
)

VECTOR_DIR = Path(__file__).resolve().parent
MANIFEST = json.loads((VECTOR_DIR / "manifest.json").read_text())

STREAM_ALGOS = {"deflate": Algo.DEFLATE, "ac": Algo.AC, "lz4": Algo.LZ4}
STREAM_CASES = sorted(MANIFEST["stream_cases"])


def _read(case: str, suffix: str) -> bytes:
    return (VECTOR_DIR / f"{case}{suffix}").read_bytes()


def test_manifest_lists_every_container_on_disk():
    on_disk = {p.name for p in VECTOR_DIR.glob("*.rst1")}
    listed = {
        f"{case}.{algo}.rst1"
        for case, entry in MANIFEST["stream_cases"].items()
        for algo in entry["artifacts"]
    }
    assert on_disk == listed


@pytest.mark.parametrize("case", STREAM_CASES)
def test_input_checksums(case):
    entry = MANIFEST["stream_cases"][case]
    payload = _read(case, ".in")
    assert len(payload) == entry["input_bytes"]
    assert hashlib.sha256(payload).hexdigest() == entry["input_sha256"]


@pytest.mark.parametrize("algo", sorted(STREAM_ALGOS))
@pytest.mark.parametrize("case", STREAM_CASES)
def test_artifact_checksums(case, algo):
    meta = MANIFEST["stream_cases"][case]["artifacts"][algo]
    blob = _read(case, f".{algo}.rst1")
    assert len(blob) == meta["bytes"]
    assert hashlib.sha256(blob).hexdigest() == meta["sha256"]


@pytest.mark.parametrize("algo", sorted(STREAM_ALGOS))
@pytest.mark.parametrize("case", STREAM_CASES)
def test_decoder_reads_frozen_container(case, algo):
    assert stream_decompress(_read(case, f".{algo}.rst1")) == _read(case, ".in")


@pytest.mark.parametrize("algo", sorted(STREAM_ALGOS))
@pytest.mark.parametrize("case", STREAM_CASES)
def test_encoder_is_byte_stable(case, algo):
    config = StreamConfig(
        algo=STREAM_ALGOS[algo],
        chunk_bytes=MANIFEST["stream_chunk_bytes"],
    )
    assert stream_compress(_read(case, ".in"), config) == \
        _read(case, f".{algo}.rst1")


class TestFrozenContainerCorruption:
    """The corruption contract holds against the *frozen* wire bytes,
    not just freshly encoded ones."""

    @pytest.mark.parametrize("algo", sorted(STREAM_ALGOS))
    def test_truncations_raise_typed_errors(self, algo):
        blob = _read("stream-telemetry", f".{algo}.rst1")
        for cut in range(0, len(blob), 41):  # coarse but covers all zones
            dec = Decompressor()
            with pytest.raises(StreamError):
                dec.feed(blob[:cut])
                dec.flush()

    @pytest.mark.parametrize("algo", sorted(STREAM_ALGOS))
    def test_bit_flips_never_silently_corrupt(self, algo):
        data = _read("stream-telemetry", ".in")
        blob = _read("stream-telemetry", f".{algo}.rst1")
        step = max(1, len(blob) // 97)
        for pos in range(0, len(blob), step):
            corrupt = bytearray(blob)
            corrupt[pos] ^= 0x10
            try:
                decoded = stream_decompress(bytes(corrupt))
            except StreamError:
                continue
            assert decoded == data  # don't-care bit: harmless by proof
