"""zstd-lite container codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.zstdlite import zstdlite_compress, zstdlite_decompress
from repro.errors import ChecksumMismatchError, CorruptStreamError


class TestRoundtrip:
    @pytest.mark.parametrize(
        "data",
        [b"", b"x", b"hello " * 1000, np.random.default_rng(0).bytes(3000)],
        ids=["empty", "single", "text", "random"],
    )
    def test_roundtrip(self, data):
        assert zstdlite_decompress(zstdlite_compress(data)) == data

    def test_magic_required(self):
        with pytest.raises(CorruptStreamError):
            zstdlite_decompress(b"NOPE" + bytes(20))

    def test_short_container_rejected(self):
        with pytest.raises(CorruptStreamError):
            zstdlite_decompress(b"ZSL1")

    def test_checksum_verified(self, text_payload):
        blob = bytearray(zstdlite_compress(text_payload))
        blob[12] ^= 0xFF  # inside the xxh32 field
        with pytest.raises((ChecksumMismatchError, CorruptStreamError)):
            zstdlite_decompress(bytes(blob))

    def test_declared_size_bounds_output(self, text_payload):
        blob = zstdlite_compress(text_payload)
        with pytest.raises(CorruptStreamError):
            zstdlite_decompress(blob, max_output=10)

    def test_faster_matcher_still_compresses(self, text_payload):
        blob = zstdlite_compress(text_payload)
        assert len(blob) < len(text_payload) / 3


def test_speed_class_vs_deflate(text_payload):
    """zstd-lite must be configured strictly faster (shallower search)
    than the default DEFLATE — its role in the A8 calibration story."""
    from repro.algorithms.lz77 import MatcherConfig
    from repro.algorithms.zstdlite import FAST_MATCHER

    default = MatcherConfig()
    assert FAST_MATCHER.max_chain < default.max_chain
    assert not FAST_MATCHER.lazy


@given(st.binary(max_size=3000))
@settings(max_examples=30, deadline=None)
def test_property_roundtrip(blob):
    assert zstdlite_decompress(zstdlite_compress(blob)) == blob
