"""LZ77 matcher: roundtrip fidelity and structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lz77 import MatcherConfig, reconstruct, tokenize


class TestConfig:
    def test_defaults_valid(self):
        cfg = MatcherConfig()
        assert cfg.window_size == 32768

    def test_min_match_below_three_rejected(self):
        with pytest.raises(ValueError):
            MatcherConfig(min_match=2)

    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError):
            MatcherConfig(min_match=4, max_match=3)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError):
            MatcherConfig(window_size=0)


class TestTokenize:
    def test_empty(self):
        tokens = tokenize(b"")
        assert len(tokens) == 0
        assert reconstruct(tokens) == b""

    def test_tiny_inputs_all_literals(self):
        for blob in (b"a", b"ab", b"abc"):
            tokens = tokenize(blob)
            assert tokens.n_matches() == 0
            assert reconstruct(tokens) == blob

    def test_repeated_text_finds_matches(self):
        blob = b"abcdefgh" * 100
        tokens = tokenize(blob)
        assert tokens.n_matches() > 0
        assert reconstruct(tokens) == blob

    def test_rle_run_uses_overlapping_match(self):
        blob = b"x" * 1000
        tokens = tokenize(blob)
        assert reconstruct(tokens) == blob
        # A run should compress to very few tokens (literal + overlaps).
        assert len(tokens) < 20

    def test_incompressible_random(self):
        rng = np.random.default_rng(0)
        blob = rng.bytes(5000)
        tokens = tokenize(blob)
        assert reconstruct(tokens) == blob

    def test_match_constraints(self):
        cfg = MatcherConfig(window_size=1024, max_match=64)
        blob = (b"0123456789abcdef" * 400)[:5000]
        tokens = tokenize(blob, cfg)
        pos = 0
        for length, value in zip(tokens.lengths, tokens.values):
            if length > 0:
                assert cfg.min_match <= length <= cfg.max_match
                assert 1 <= value <= cfg.window_size
                assert value <= pos  # distance cannot precede the start
                pos += length
            else:
                assert 0 <= value <= 255
                pos += 1
        assert pos == len(blob)

    def test_lazy_comparable_to_greedy_on_text(self):
        # Lazy evaluation trades per-position choices; on natural text it
        # should land within a few percent of greedy (usually better).
        blob = (b"she sells sea shells by the sea shore " * 200)[:6000]
        lazy = tokenize(blob, MatcherConfig(lazy=True))
        greedy = tokenize(blob, MatcherConfig(lazy=False))
        assert reconstruct(lazy) == blob
        assert reconstruct(greedy) == blob
        assert len(lazy) <= len(greedy) * 1.05

    def test_n_literals_matches_counts(self):
        blob = b"abcabcabc" * 10
        tokens = tokenize(blob)
        assert tokens.n_literals() + tokens.n_matches() == len(tokens)

    def test_arrays_conversion(self):
        tokens = tokenize(b"hello hello hello hello")
        lengths, values = tokens.arrays()
        assert lengths.dtype == np.int32
        assert lengths.shape == values.shape


class TestReconstruct:
    def test_invalid_distance_rejected(self):
        from repro.algorithms.lz77 import TokenStream

        bad = TokenStream([0, 5], [ord("a"), 4], 6)  # distance 4 > output 1
        with pytest.raises(ValueError):
            reconstruct(bad)


@given(st.binary(max_size=3000))
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_default(blob):
    assert reconstruct(tokenize(blob)) == blob


@given(
    st.binary(max_size=1500),
    st.sampled_from([
        MatcherConfig(lazy=False),
        MatcherConfig(max_chain=1),
        MatcherConfig(window_size=64),
        MatcherConfig(max_match=16),
        MatcherConfig(window_size=16, max_chain=4, lazy=False),
    ]),
)
@settings(max_examples=50, deadline=None)
def test_property_roundtrip_configs(blob, cfg):
    assert reconstruct(tokenize(blob, cfg)) == blob


@given(st.lists(st.sampled_from(b"ab"), max_size=2000))
@settings(max_examples=30, deadline=None)
def test_property_low_entropy_roundtrip(symbols):
    blob = bytes(symbols)
    tokens = tokenize(blob)
    assert reconstruct(tokens) == blob
