"""Scalar-vs-vectorized kernel equivalence (PR 8 tentpole harness).

Every hot kernel that grew a vectorized fast path keeps its scalar
reference selectable via :mod:`repro.util.kernels`; these tests run the
same input through both implementations inside one process
(:func:`force_kernel_mode`) and require **byte-identical** results —
not "close", identical.  The corpus is adversarial by construction
(empty, single byte, all-zero, incompressible, max-match-length runs,
NaN/Inf/denormal floats) plus hypothesis-generated inputs, with the
seeded corpus rotating via ``REPRO_FUZZ_SEED`` like the round-trip
fuzzers.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import huffman
from repro.algorithms.ac import ACConfig
from repro.algorithms.ac.model import ContextModel
from repro.algorithms.deflate import deflate_compress
from repro.algorithms.lz77 import MatcherConfig, tokenize
from repro.algorithms.sz3.predictor import predict_residual, reconstruct_codes
from repro.algorithms.sz3.quantizer import dequantize, quantize
from repro.datasets import get_dataset
from repro.util.bitio import BitWriter
from repro.util.kernels import SCALAR, VECTORIZED, force_kernel_mode

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))


def both_modes(fn):
    """Run ``fn`` under the scalar reference and the vectorized kernels."""
    with force_kernel_mode(SCALAR):
        scalar = fn()
    with force_kernel_mode(VECTORIZED):
        vec = fn()
    return scalar, vec


def adversarial_corpus() -> "dict[str, bytes]":
    rng = np.random.default_rng(BASE_SEED)
    return {
        "empty": b"",
        "one_byte": b"\xa5",
        "two_bytes": b"ab",
        "all_zero": b"\x00" * 5000,
        "incompressible": rng.bytes(4096),
        "max_match_runs": b"A" * (258 * 4 + 7) + b"B" * 258 + b"A" * 300,
        "period2": b"\x7f\x80" * 700,
        "period3": b"abc" * 900,
        "period4_break": (b"PQRS" * 300 + b"\x00" * 600) * 2,
        "ascii_noise": bytes(rng.integers(32, 127, 4096, dtype=np.uint8)),
        "xml_sample": bytes(get_dataset("silesia/xml").generate(32 * 1024)),
    }


CORPUS = adversarial_corpus()


# -- LZ77 + DEFLATE ---------------------------------------------------------


@pytest.mark.parametrize("case", sorted(CORPUS))
def test_tokenize_equivalence_corpus(case):
    data = CORPUS[case]
    scalar, vec = both_modes(lambda: tokenize(data))
    assert scalar.lengths == vec.lengths
    assert scalar.values == vec.values
    assert scalar.n_input == vec.n_input


@pytest.mark.parametrize("case", sorted(CORPUS))
def test_deflate_compress_equivalence_corpus(case):
    data = CORPUS[case]
    scalar, vec = both_modes(lambda: deflate_compress(data))
    assert scalar == vec


def test_tokenize_equivalence_tiny_window():
    # Small window + short chains hit the budget/window break arms.
    cfg = MatcherConfig(window_size=64, max_chain=4, good_match=4)
    data = CORPUS["period3"] + CORPUS["max_match_runs"]
    scalar, vec = both_modes(lambda: tokenize(data, cfg))
    assert scalar.lengths == vec.lengths
    assert scalar.values == vec.values


@settings(max_examples=40)
@given(st.binary(max_size=2048))
def test_tokenize_equivalence_hypothesis(data):
    scalar, vec = both_modes(lambda: tokenize(data))
    assert scalar.lengths == vec.lengths
    assert scalar.values == vec.values


@settings(max_examples=25)
@given(st.binary(max_size=1024))
def test_deflate_equivalence_hypothesis(data):
    scalar, vec = both_modes(lambda: deflate_compress(data))
    assert scalar == vec


# -- Huffman emission -------------------------------------------------------


@settings(max_examples=40)
@given(
    st.lists(st.integers(min_value=0, max_value=600), min_size=1, max_size=80),
    st.integers(min_value=5, max_value=15),
)
def test_canonical_codes_equivalence(freq_list, max_bits):
    freqs = np.asarray(freq_list, dtype=np.int64)
    if not freqs.any():
        freqs[0] = 1
    lengths = huffman.code_lengths(freqs, max_bits)
    scalar, vec = both_modes(lambda: huffman.canonical_codes(lengths))
    assert np.array_equal(scalar, vec)


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            st.integers(min_value=0, max_value=16),
        ),
        max_size=120,
    ),
    st.integers(min_value=0, max_value=7),
)
def test_write_code_array_equivalence(pairs, lead_bits):
    codes = np.asarray([c for c, _ in pairs], dtype=np.uint32)
    lengths = np.asarray([l for _, l in pairs], dtype=np.int64)

    def emit():
        writer = BitWriter()
        if lead_bits:  # non-byte-aligned pending prefix
            writer.write_bits((1 << lead_bits) - 1, lead_bits)
        writer.write_code_array(codes, lengths)
        writer.write_bits(0b101, 3)  # tail after the bulk region
        return writer.getvalue()

    scalar, vec = both_modes(emit)
    assert scalar == vec


# -- SZ3 quantizer / predictor ----------------------------------------------


def float_corpus() -> "dict[str, np.ndarray]":
    rng = np.random.default_rng(BASE_SEED + 1)
    specials = np.array(
        [0.0, -0.0, 1.5, -2.25, np.inf, -np.inf, np.nan,
         np.finfo(np.float32).tiny, 5e-39, -5e-39,  # denormals
         np.finfo(np.float32).max, np.finfo(np.float32).min],
        dtype=np.float32,
    )
    return {
        "specials": specials,
        "smooth": np.sin(np.linspace(0, 20, 500)).astype(np.float32),
        "noise3d": rng.normal(size=(4, 3, 5)).astype(np.float32),
        "empty": np.zeros(0, dtype=np.float32),
    }


@pytest.mark.parametrize("case", sorted(float_corpus()))
@pytest.mark.parametrize("eb", [1e-3, 1e-1])
def test_quantize_equivalence(case, eb):
    data = float_corpus()[case]
    if case == "specials":
        # NaN/Inf -> int64 casts are platform-defined; both kernels must
        # still agree bit for bit because they share the same cast.
        with np.errstate(invalid="ignore"):
            scalar, vec = both_modes(lambda: quantize(data, eb))
    else:
        scalar, vec = both_modes(lambda: quantize(data, eb))
    assert scalar.dtype == vec.dtype
    assert scalar.tobytes() == vec.tobytes()


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_dequantize_equivalence(dtype):
    rng = np.random.default_rng(BASE_SEED + 2)
    codes = rng.integers(-(1 << 20), 1 << 20, size=257).astype(np.int64)
    scalar, vec = both_modes(lambda: dequantize(codes, 1e-3, np.dtype(dtype)))
    assert scalar.dtype == vec.dtype
    assert scalar.tobytes() == vec.tobytes()


@pytest.mark.parametrize("shape", [(0,), (1,), (17,), (5, 4), (3, 4, 2)])
def test_lorenzo_equivalence(shape):
    rng = np.random.default_rng(BASE_SEED + 3)
    codes = rng.integers(-1000, 1000, size=shape).astype(np.int64)
    s_res, v_res = both_modes(lambda: predict_residual(codes, "lorenzo"))
    assert np.array_equal(s_res, v_res)
    s_rec, v_rec = both_modes(lambda: reconstruct_codes(s_res, "lorenzo"))
    assert np.array_equal(s_rec, v_rec)
    assert np.array_equal(s_rec, codes)  # exact inverse, both modes


# -- AC context model -------------------------------------------------------


@pytest.mark.parametrize("order", [0, 1, 2, 4])
@pytest.mark.parametrize("start,stop", [(0, 0), (0, 7), (0, 64), (3, 80), (64, 192)])
def test_context_hashes_equivalence(order, start, stop):
    rng = np.random.default_rng(BASE_SEED + 4)
    data = rng.integers(0, 256, 256, dtype=np.uint8)
    model_cfg = ACConfig(order=order)
    model = ContextModel(model_cfg)
    scalar, vec = both_modes(lambda: model.context_hashes(data, start, stop))
    assert np.array_equal(scalar, vec)


@settings(max_examples=30)
@given(st.binary(min_size=0, max_size=600), st.integers(min_value=0, max_value=4))
def test_context_hashes_hypothesis(raw, order):
    data = np.frombuffer(raw, dtype=np.uint8)
    model = ContextModel(ACConfig(order=order))
    stop = data.size
    scalar, vec = both_modes(lambda: model.context_hashes(data, 0, stop))
    assert np.array_equal(scalar, vec)
