"""SZ3 end-to-end: error bound, backends, format robustness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.sz3 import SZ3Compressor, SZ3Config, sz3_compress, sz3_decompress
from repro.errors import CorruptStreamError


def max_error(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max(initial=0.0))


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-2, 1e-4, 1e-6])
    def test_abs_bound_float64(self, eb):
        rng = np.random.default_rng(1)
        data = rng.normal(size=5000)
        recon = sz3_decompress(sz3_compress(data, SZ3Config(error_bound=eb)))
        assert max_error(data, recon) <= eb * (1 + 1e-9)

    def test_abs_bound_float32(self, smooth_field):
        eb = 1e-4
        recon = sz3_decompress(sz3_compress(smooth_field, SZ3Config(error_bound=eb)))
        # float32 casting can add up to half an ulp on top of eb.
        assert max_error(smooth_field, recon) <= eb + 1e-6

    def test_relative_bound(self):
        data = np.linspace(0, 100, 10000).astype(np.float64)
        cfg = SZ3Config(error_bound=1e-3, error_mode="rel")
        recon = sz3_decompress(sz3_compress(data, cfg))
        assert max_error(data, recon) <= 0.1 * (1 + 1e-9)

    @pytest.mark.parametrize("shape", [(50,), (30, 40), (8, 9, 10), (3, 4, 5, 6)])
    def test_shapes_roundtrip(self, shape):
        rng = np.random.default_rng(2)
        data = rng.normal(size=shape)
        recon = sz3_decompress(sz3_compress(data, SZ3Config(error_bound=1e-3)))
        assert recon.shape == shape
        assert max_error(data, recon) <= 1e-3 * (1 + 1e-9)

    def test_empty_array(self):
        data = np.zeros(0, dtype=np.float32)
        recon = sz3_decompress(sz3_compress(data))
        assert recon.size == 0


class TestConfigurations:
    @pytest.mark.parametrize("pred", ["lorenzo", "interp", "none"])
    @pytest.mark.parametrize("backend", ["deflate", "lz4", "zstdlite", "none"])
    def test_all_stage_combinations(self, pred, backend, smooth_field):
        cfg = SZ3Config(error_bound=1e-4, predictor=pred, backend=backend)
        recon = sz3_decompress(sz3_compress(smooth_field[:5000], cfg))
        assert max_error(smooth_field[:5000], recon) <= 1e-4 + 1e-6

    def test_smooth_data_compresses_well(self, smooth_field):
        stream = sz3_compress(smooth_field, SZ3Config(error_bound=1e-4))
        assert smooth_field.nbytes / len(stream) > 5.0

    def test_lorenzo_beats_none_on_smooth(self, smooth_field):
        ratio = {}
        for pred in ("lorenzo", "none"):
            cfg = SZ3Config(error_bound=1e-4, predictor=pred)
            ratio[pred] = smooth_field.nbytes / len(sz3_compress(smooth_field, cfg))
        assert ratio["lorenzo"] > ratio["none"]

    def test_invalid_config_values(self):
        with pytest.raises(ValueError):
            SZ3Config(error_bound=0.0)
        with pytest.raises(ValueError):
            SZ3Config(predictor="magic")
        with pytest.raises(ValueError):
            SZ3Config(backend="zstd")
        with pytest.raises(ValueError):
            SZ3Config(error_mode="psnr")

    def test_dtype_preserved(self):
        for dtype in (np.float32, np.float64):
            data = np.linspace(0, 1, 100).astype(dtype)
            assert sz3_decompress(sz3_compress(data)).dtype == dtype


class TestFormat:
    def test_magic_required(self):
        with pytest.raises(CorruptStreamError):
            sz3_decompress(b"JUNKJUNKJUNKJUNK")

    def test_truncated_stream(self, smooth_field):
        stream = sz3_compress(smooth_field[:1000])
        with pytest.raises(CorruptStreamError):
            sz3_decompress(stream[: len(stream) // 2])

    def test_unknown_version(self, smooth_field):
        stream = bytearray(sz3_compress(smooth_field[:100]))
        stream[4] = 99
        with pytest.raises(CorruptStreamError):
            sz3_decompress(bytes(stream))

    def test_stage_sizes_recorded(self, smooth_field):
        compressor = SZ3Compressor(SZ3Config(error_bound=1e-4))
        stream = compressor.compress(smooth_field)
        sizes = compressor.last_stage_sizes
        assert sizes.input_bytes == smooth_field.nbytes
        assert sizes.stream_bytes == len(stream)
        assert 0 < sizes.backend_blob_bytes <= sizes.entropy_payload_bytes

    def test_decompress_stages_reports_sizes(self, smooth_field):
        stream = sz3_compress(smooth_field)
        array, sizes = SZ3Compressor.decompress_stages(stream)
        assert sizes.input_bytes == smooth_field.nbytes
        assert sizes.stream_bytes == len(stream)
        assert max_error(smooth_field, array) <= 1e-4 + 1e-6


@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(1, 500),
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    ),
    st.sampled_from([1e-1, 1e-3, 1e-5]),
)
@settings(max_examples=40, deadline=None)
def test_property_error_bound(data, eb):
    recon = sz3_decompress(sz3_compress(data, SZ3Config(error_bound=eb)))
    assert max_error(data, recon) <= eb * (1 + 1e-9)


@given(
    st.sampled_from(["lorenzo", "interp"]),
    arrays(
        dtype=np.float32,
        shape=st.tuples(st.integers(1, 20), st.integers(1, 20)),
        elements=st.floats(-1e3, 1e3, allow_nan=False, width=32),
    ),
)
@settings(max_examples=40, deadline=None)
def test_property_2d_bound_float32(pred, data):
    eb = 1e-2
    cfg = SZ3Config(error_bound=eb, predictor=pred)
    recon = sz3_decompress(sz3_compress(data, cfg))
    assert recon.shape == data.shape
    assert max_error(data, recon) <= eb + 1e-4
