"""gzip container (RFC 1952) and stdlib interop."""

import gzip as stdgzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gzip_format import gzip_compress, gzip_decompress
from repro.errors import ChecksumMismatchError, CorruptStreamError


class TestRoundtrip:
    def test_roundtrip(self, text_payload):
        assert gzip_decompress(gzip_compress(text_payload)) == text_payload

    def test_empty(self):
        assert gzip_decompress(gzip_compress(b"")) == b""

    def test_deterministic(self, text_payload):
        assert gzip_compress(text_payload) == gzip_compress(text_payload)

    def test_filename_field(self, text_payload):
        blob = gzip_compress(text_payload, filename="data.bin")
        assert b"data.bin\x00" in blob[:30]
        assert gzip_decompress(blob) == text_payload

    def test_mtime_recorded(self):
        blob = gzip_compress(b"x", mtime=1234)
        assert int.from_bytes(blob[4:8], "little") == 1234


class TestStdlibInterop:
    def test_stdlib_reads_ours(self, text_payload):
        assert stdgzip.decompress(gzip_compress(text_payload)) == text_payload

    def test_we_read_stdlib(self, text_payload):
        assert gzip_decompress(stdgzip.compress(text_payload, mtime=0)) == text_payload

    def test_we_read_stdlib_all_levels(self, text_payload):
        for level in (1, 5, 9):
            blob = stdgzip.compress(text_payload, compresslevel=level, mtime=0)
            assert gzip_decompress(blob) == text_payload


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            gzip_decompress(b"\x1f\x8c" + bytes(20))

    def test_short_member(self):
        with pytest.raises(CorruptStreamError):
            gzip_decompress(b"\x1f\x8b\x08")

    def test_reserved_flg_bits(self, text_payload):
        blob = bytearray(gzip_compress(text_payload))
        blob[3] |= 0x80
        with pytest.raises(CorruptStreamError):
            gzip_decompress(bytes(blob))

    def test_crc_mismatch(self, text_payload):
        blob = bytearray(gzip_compress(text_payload))
        blob[-5] ^= 0xFF  # inside the CRC32 field
        with pytest.raises(ChecksumMismatchError):
            gzip_decompress(bytes(blob))

    def test_isize_mismatch(self, text_payload):
        blob = bytearray(gzip_compress(text_payload))
        blob[-1] ^= 0xFF  # inside ISIZE
        with pytest.raises(CorruptStreamError):
            gzip_decompress(bytes(blob))

    def test_unterminated_filename(self):
        header = b"\x1f\x8b\x08" + bytes([0x08]) + bytes(6) + b"no-null-here"
        with pytest.raises(CorruptStreamError):
            gzip_decompress(header + bytes(20))


@given(st.binary(max_size=3000))
@settings(max_examples=40, deadline=None)
def test_property_gzip_differential(blob):
    assert gzip_decompress(gzip_compress(blob)) == blob
    assert stdgzip.decompress(gzip_compress(blob)) == blob
    assert gzip_decompress(stdgzip.compress(blob, mtime=0)) == blob
