"""Canonical Huffman coding: package-merge, code assignment, decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import huffman
from repro.errors import CorruptStreamError
from repro.util.bitio import BitReader, BitWriter


def entropy_cost(freqs: np.ndarray, lengths: np.ndarray) -> int:
    return int((freqs * lengths).sum())


class TestCodeLengths:
    def test_empty_alphabet(self):
        lengths = huffman.code_lengths(np.zeros(10, dtype=np.int64), 15)
        assert (lengths == 0).all()

    def test_single_symbol_gets_one_bit(self):
        freqs = np.zeros(5, dtype=np.int64)
        freqs[3] = 100
        lengths = huffman.code_lengths(freqs, 15)
        assert lengths[3] == 1
        assert lengths.sum() == 1

    def test_two_symbols(self):
        lengths = huffman.code_lengths(np.array([5, 3]), 15)
        assert list(lengths) == [1, 1]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            freqs = rng.integers(0, 1000, size=64)
            lengths = huffman.code_lengths(freqs, 15)
            used = lengths[lengths > 0]
            assert (2.0 ** -used.astype(float)).sum() <= 1.0 + 1e-12

    def test_respects_max_bits(self):
        # Fibonacci-ish frequencies force deep unbounded trees.
        freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233])
        for limit in (4, 5, 7, 15):
            lengths = huffman.code_lengths(freqs, limit)
            assert lengths.max() <= limit

    def test_matches_unbounded_huffman_cost_when_unconstrained(self):
        # With a generous limit, package-merge equals classic Huffman cost.
        import heapq

        rng = np.random.default_rng(1)
        for _ in range(10):
            freqs = rng.integers(1, 500, size=30)
            heap = [(int(f), i) for i, f in enumerate(freqs)]
            heapq.heapify(heap)
            # classic Huffman total cost via merging
            total = 0
            while len(heap) > 1:
                a, _ = heapq.heappop(heap)
                b, _ = heapq.heappop(heap)
                total += a + b
                heapq.heappush(heap, (a + b, -1))
            lengths = huffman.code_lengths(freqs, 31)
            assert entropy_cost(freqs, lengths) == total

    def test_limited_cost_optimal_for_small_case(self):
        # Exhaustive check: the package-merge cost is minimal among all
        # valid length assignments for a tiny alphabet and tight limit.
        from itertools import product

        freqs = np.array([40, 30, 20, 9, 1])
        limit = 3
        got = entropy_cost(freqs, huffman.code_lengths(freqs, limit))
        best = None
        for combo in product(range(1, limit + 1), repeat=5):
            if sum(2.0**-l for l in combo) <= 1.0 + 1e-12:
                cost = sum(f * l for f, l in zip(freqs, combo))
                best = cost if best is None else min(best, cost)
        assert got == best

    def test_too_many_symbols_for_limit(self):
        with pytest.raises(ValueError):
            huffman.code_lengths(np.ones(9, dtype=np.int64), 3)


class TestCanonicalCodes:
    def test_rfc1951_worked_example(self):
        # RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) ->
        # codes 010,011,100,101,110,00,1110,1111.
        lengths = np.array([3, 3, 3, 3, 3, 2, 4, 4])
        codes = huffman.canonical_codes(lengths)
        assert list(codes) == [0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]

    def test_empty(self):
        assert huffman.canonical_codes(np.zeros(0, dtype=np.int32)).size == 0

    def test_prefix_free(self):
        lengths = huffman.code_lengths(np.arange(1, 20), 15)
        codes = huffman.canonical_codes(lengths)
        entries = [
            (format(int(c), f"0{int(l)}b"))
            for c, l in zip(codes, lengths)
            if l > 0
        ]
        for i, a in enumerate(entries):
            for j, b in enumerate(entries):
                if i != j:
                    assert not b.startswith(a)

    def test_oversubscribed_rejected(self):
        with pytest.raises(CorruptStreamError):
            huffman.canonical_codes(np.array([1, 1, 1]))


class TestLsbCodes:
    def test_reversal_consistency(self):
        lengths = np.array([3, 3, 3, 3, 3, 2, 4, 4])
        msb = huffman.canonical_codes(lengths)
        lsb = huffman.lsb_codes(lengths)
        from repro.util.bitio import reverse_bits

        for m, l, nbits in zip(msb, lsb, lengths):
            assert reverse_bits(int(m), int(nbits)) == int(l)

    def test_zero_lengths_are_zero(self):
        lengths = np.array([0, 2, 0, 2, 1])
        lsb = huffman.lsb_codes(lengths)
        assert lsb[0] == 0 and lsb[2] == 0


class TestHuffmanDecoder:
    def _roundtrip(self, freqs, symbols):
        lengths = huffman.code_lengths(freqs, 15)
        codes = huffman.lsb_codes(lengths)
        w = BitWriter()
        for sym in symbols:
            w.write_bits(int(codes[sym]), int(lengths[sym]))
        decoder = huffman.HuffmanDecoder(lengths)
        r = BitReader(w.getvalue())
        return [decoder.decode(r) for _ in symbols]

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        freqs = rng.integers(1, 100, size=40)
        symbols = rng.integers(0, 40, size=500).tolist()
        assert self._roundtrip(freqs, symbols) == symbols

    def test_single_symbol_code(self):
        freqs = np.zeros(4, dtype=np.int64)
        freqs[2] = 7
        assert self._roundtrip(freqs, [2, 2, 2]) == [2, 2, 2]

    def test_empty_tree_rejected(self):
        with pytest.raises(CorruptStreamError):
            huffman.HuffmanDecoder(np.zeros(8, dtype=np.int32))

    def test_alphabet_cap(self):
        with pytest.raises(ValueError):
            huffman.HuffmanDecoder(np.ones(513, dtype=np.int32))

    def test_invalid_code_detected(self):
        # Incomplete code (single symbol, length 2): pattern 0b11 never
        # assigned, so peeking it must raise.
        lengths = np.zeros(3, dtype=np.int32)
        lengths[0] = 2
        decoder = huffman.HuffmanDecoder(lengths)
        assert not decoder.is_complete
        r = BitReader(bytes([0b11]))
        with pytest.raises(CorruptStreamError):
            decoder.decode(r)

    def test_is_complete_for_full_tree(self):
        lengths = huffman.code_lengths(np.array([1, 1, 1, 1]), 15)
        assert huffman.HuffmanDecoder(lengths).is_complete


@given(
    st.lists(st.integers(min_value=0, max_value=300), min_size=2, max_size=80).filter(
        lambda fs: sum(1 for f in fs if f > 0) >= 2
    )
)
@settings(max_examples=60)
def test_property_lengths_sorted_by_frequency(freqs):
    """More frequent symbols never get longer codes."""
    freqs = np.asarray(freqs, dtype=np.int64)
    lengths = huffman.code_lengths(freqs, 15)
    used = np.flatnonzero(freqs > 0)
    for i in used:
        for j in used:
            if freqs[i] > freqs[j]:
                assert lengths[i] <= lengths[j]


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_property_encode_decode_roundtrip(data):
    n_symbols = data.draw(st.integers(2, 60))
    freqs = np.array(
        data.draw(
            st.lists(
                st.integers(0, 50), min_size=n_symbols, max_size=n_symbols
            )
        ),
        dtype=np.int64,
    )
    if (freqs > 0).sum() < 1:
        freqs[0] = 1
    lengths = huffman.code_lengths(freqs, 15)
    codes = huffman.lsb_codes(lengths)
    usable = np.flatnonzero(lengths > 0)
    symbols = data.draw(
        st.lists(st.sampled_from(list(usable)), max_size=100)
    )
    w = BitWriter()
    for sym in symbols:
        w.write_bits(int(codes[sym]), int(lengths[sym]))
    decoder = huffman.HuffmanDecoder(lengths)
    r = BitReader(w.getvalue())
    assert [decoder.decode(r) for _ in symbols] == symbols
