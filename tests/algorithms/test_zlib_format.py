"""zlib container format (RFC 1950)."""

import zlib as stdzlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.zlib_format import (
    assemble_zlib_stream,
    build_zlib_header,
    build_zlib_trailer,
    parse_zlib_header,
    zlib_compress,
    zlib_decompress,
)
from repro.errors import ChecksumMismatchError, CorruptStreamError


class TestHeader:
    def test_fcheck_valid(self):
        for level in range(4):
            header = build_zlib_header(level)
            assert (header[0] * 256 + header[1]) % 31 == 0

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            build_zlib_header(4)

    def test_parse_returns_flevel(self):
        assert parse_zlib_header(build_zlib_header(3) + b"xx") == 3

    def test_parse_rejects_bad_method(self):
        with pytest.raises(CorruptStreamError):
            parse_zlib_header(bytes([0x79, 0x01]))  # CM=9

    def test_parse_rejects_bad_fcheck(self):
        header = bytearray(build_zlib_header())
        header[1] ^= 1
        with pytest.raises(CorruptStreamError):
            parse_zlib_header(bytes(header))

    def test_parse_rejects_fdict(self):
        cmf = 0x78
        flg = 0x20
        rem = (cmf * 256 + flg) % 31
        if rem:
            flg += 31 - rem
        with pytest.raises(CorruptStreamError):
            parse_zlib_header(bytes([cmf, flg]))

    def test_parse_rejects_short_input(self):
        with pytest.raises(CorruptStreamError):
            parse_zlib_header(b"\x78")

    def test_stdlib_accepts_our_header(self, text_payload):
        assert stdzlib.decompress(zlib_compress(text_payload)) == text_payload


class TestRoundtrip:
    def test_roundtrip(self, text_payload):
        assert zlib_decompress(zlib_compress(text_payload)) == text_payload

    def test_empty(self):
        assert zlib_decompress(zlib_compress(b"")) == b""

    def test_we_decode_stdlib(self, text_payload):
        assert zlib_decompress(stdzlib.compress(text_payload)) == text_payload

    def test_trailer_is_adler32(self, text_payload):
        stream = zlib_compress(text_payload)
        assert stream[-4:] == stdzlib.adler32(text_payload).to_bytes(4, "big")

    def test_adler_mismatch_detected(self, text_payload):
        stream = bytearray(zlib_compress(text_payload))
        stream[-1] ^= 0xFF
        with pytest.raises(ChecksumMismatchError):
            zlib_decompress(bytes(stream))

    def test_truncated_stream(self):
        with pytest.raises(CorruptStreamError):
            zlib_decompress(build_zlib_header() + b"\x01")

    def test_assemble_matches_oneshot(self, text_payload):
        from repro.algorithms.deflate import deflate_compress

        manual = assemble_zlib_stream(
            deflate_compress(text_payload),
            build_zlib_header(),
            build_zlib_trailer(text_payload),
        )
        assert manual == zlib_compress(text_payload)


@given(st.binary(max_size=3000))
@settings(max_examples=40, deadline=None)
def test_property_zlib_differential(blob):
    assert zlib_decompress(zlib_compress(blob)) == blob
    assert stdzlib.decompress(zlib_compress(blob)) == blob
    assert zlib_decompress(stdzlib.compress(blob)) == blob
