"""Property-based round-trip fuzzing across every codec in the library.

``decompress(compress(x)) == x`` over structured *and* adversarially
shaped inputs: long runs, near-sorted sequences, low-entropy alphabets,
binary float grids, plain noise.  All generation is seeded — the base
seed rotates via ``REPRO_FUZZ_SEED`` (the scheduled CI fuzz job sets it
to the date) but every case remains reproducible from the seed echoed
in its test id.

This complements the hypothesis suites: here the corpus shapes are
chosen to hit compressor internals (RLE paths, match finders, literal
runs, stored-block fallbacks) rather than drawn from a generic byte
distribution.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms import huffman, lz77
from repro.algorithms.deflate import (
    DeflateConfig,
    deflate_compress,
    deflate_decompress,
)
from repro.algorithms.gzip_format import gzip_compress, gzip_decompress
from repro.algorithms.lz4 import (
    lz4_block_compress,
    lz4_block_decompress,
    lz4_compress,
    lz4_decompress,
)
from repro.algorithms.sz3 import SZ3Config, sz3_compress, sz3_decompress
from repro.algorithms.zlib_format import zlib_compress, zlib_decompress
from repro.algorithms.zstdlite import zstdlite_compress, zstdlite_decompress
from repro.util.bitio import BitReader, BitWriter

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))


# -- structured generators --------------------------------------------------


def gen_runs(rng: np.random.Generator, size: int) -> bytes:
    """Long byte runs with occasional interruptions (RLE stress)."""
    out = bytearray()
    while len(out) < size:
        out += bytes([int(rng.integers(0, 256))]) * int(rng.integers(1, 400))
        if rng.random() < 0.3:
            out += rng.bytes(int(rng.integers(1, 8)))
    return bytes(out[:size])


def gen_near_sorted(rng: np.random.Generator, size: int) -> bytes:
    """Monotone ramp with sparse swaps (match-finder stress)."""
    if size == 0:
        return b""
    data = np.arange(size, dtype=np.int64) % 251
    for _ in range(max(1, size // 64)):
        i, j = rng.integers(0, size, size=2)
        data[i], data[j] = data[j], data[i]
    return data.astype(np.uint8).tobytes()


def gen_low_entropy(rng: np.random.Generator, size: int) -> bytes:
    """Tiny alphabet with skewed frequencies (Huffman stress)."""
    alphabet = rng.integers(0, 256, size=4, dtype=np.uint8)
    probs = np.array([0.7, 0.2, 0.07, 0.03])
    return alphabet[rng.choice(4, size=size, p=probs)].tobytes()


def gen_text_like(rng: np.random.Generator, size: int) -> bytes:
    """Repeated phrases with mutations (LZ77 back-reference stress)."""
    phrases = [b"the quick brown fox ", b"lorem ipsum dolor ",
               b"0123456789", b"aaaaaaaabbbb"]
    out = bytearray()
    while len(out) < size:
        p = bytearray(phrases[int(rng.integers(0, len(phrases)))])
        if rng.random() < 0.2 and p:
            p[int(rng.integers(0, len(p)))] = int(rng.integers(0, 256))
        out += p
    return bytes(out[:size])


def gen_float_grid(rng: np.random.Generator, size: int) -> bytes:
    """Bytes of a smooth float32 grid (structured binary stress)."""
    n = max(1, size // 4)
    t = np.linspace(0.0, 6.0, n)
    wave = np.sin(t * float(rng.uniform(0.5, 4.0))) + rng.normal(0, 0.01, n)
    return wave.astype(np.float32).tobytes()[:size]


def gen_noise(rng: np.random.Generator, size: int) -> bytes:
    """Incompressible noise (stored-block fallback stress)."""
    return rng.bytes(size)


GENERATORS = {
    "runs": gen_runs,
    "near_sorted": gen_near_sorted,
    "low_entropy": gen_low_entropy,
    "text_like": gen_text_like,
    "float_grid": gen_float_grid,
    "noise": gen_noise,
}

SIZES = (0, 1, 3, 64, 700, 4096)

CODECS = {
    "deflate": (deflate_compress, lambda b: deflate_decompress(b)),
    "zlib": (zlib_compress, zlib_decompress),
    "gzip": (gzip_compress, gzip_decompress),
    "lz4_block": (lz4_block_compress, lambda b: lz4_block_decompress(b)),
    "lz4_frame": (lz4_compress, lz4_decompress),
    "zstdlite": (zstdlite_compress, zstdlite_decompress),
}


def corpus_case(gen_name: str, size: int, variant: int) -> bytes:
    # Seed from stable fields only (hash() is salted per-process).
    rng = np.random.default_rng(
        [BASE_SEED, sum(gen_name.encode()), size, variant]
    )
    return GENERATORS[gen_name](rng, size)


@pytest.mark.parametrize("codec", sorted(CODECS))
@pytest.mark.parametrize("gen_name", sorted(GENERATORS))
@pytest.mark.parametrize("size", SIZES)
def test_roundtrip(codec, gen_name, size):
    compress, decompress = CODECS[codec]
    for variant in range(3):
        payload = corpus_case(gen_name, size, variant)
        assert decompress(compress(payload)) == payload


@pytest.mark.parametrize("strategy", ["auto", "fixed", "dynamic", "stored"])
@pytest.mark.parametrize("gen_name", sorted(GENERATORS))
def test_deflate_strategies_roundtrip(strategy, gen_name):
    config = DeflateConfig(strategy=strategy)
    for size in (0, 5, 900):
        payload = corpus_case(gen_name, size, 0)
        assert deflate_decompress(deflate_compress(payload, config)) == payload


@pytest.mark.parametrize("gen_name", sorted(GENERATORS))
def test_lz77_tokens_reconstruct(gen_name):
    for size in (0, 1, 64, 2048):
        payload = corpus_case(gen_name, size, 1)
        assert lz77.reconstruct(lz77.tokenize(payload)) == payload


@pytest.mark.parametrize("gen_name", ["runs", "low_entropy", "text_like",
                                      "noise"])
def test_huffman_symbol_roundtrip(gen_name):
    payload = corpus_case(gen_name, 2000, 2)
    freqs = np.bincount(np.frombuffer(payload, dtype=np.uint8), minlength=256)
    lengths = huffman.code_lengths(freqs.astype(np.int64), 15)
    codes = huffman.lsb_codes(lengths)
    writer = BitWriter()
    for sym in payload:
        writer.write_bits(int(codes[sym]), int(lengths[sym]))
    decoder = huffman.HuffmanDecoder(lengths)
    reader = BitReader(writer.getvalue())
    assert bytes(decoder.decode(reader) for _ in payload) == payload


@pytest.mark.parametrize("error_bound", [1e-1, 1e-3, 1e-5])
@pytest.mark.parametrize("variant", range(3))
def test_sz3_error_bound_honoured(error_bound, variant):
    rng = np.random.default_rng([BASE_SEED, 777, variant])
    n = int(rng.integers(10, 5000))
    t = np.linspace(0.0, 20.0, n)
    field = (np.sin(t) + 0.3 * np.sin(5.7 * t)
             + rng.normal(0, 0.05, n)).astype(np.float32)
    blob = sz3_compress(field, SZ3Config(error_bound=error_bound))
    restored = sz3_decompress(blob)
    assert restored.shape == field.shape
    err = np.abs(restored.astype(np.float64) - field.astype(np.float64))
    # Allow float32 representation error on top of the requested bound —
    # at eps-scale bounds the reconstruction rounds to the nearest f32.
    slack = 4 * np.finfo(np.float32).eps * np.abs(field).max()
    assert err.max() <= error_bound + slack


@pytest.mark.parametrize("codec", sorted(CODECS))
def test_pathological_inputs(codec):
    compress, decompress = CODECS[codec]
    cases = [
        b"\x00" * 5000,                      # one giant run
        bytes(range(256)) * 8,               # flat histogram
        b"ab" * 3000,                        # period-2 repeats
        b"x",                                # single byte
        bytes([255]) * 1 + bytes([0]) * 299, # step function
    ]
    for payload in cases:
        assert decompress(compress(payload)) == payload


def test_seed_rotation_is_deterministic():
    """Same BASE_SEED must regenerate the same corpus byte-for-byte."""
    a = corpus_case("text_like", 700, 1)
    b = corpus_case("text_like", 700, 1)
    assert a == b
