"""Decoder robustness: arbitrary bytes must fail cleanly.

Every decompressor in the library is exposed to wire data; feeding them
random garbage must raise a :class:`~repro.errors.ReproError` subclass
(or, for checksum-less raw formats, return *some* bytes) — never an
unhandled exception, infinite loop, or memory blow-up.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.deflate import deflate_compress, deflate_decompress
from repro.algorithms.gzip_format import gzip_decompress
from repro.algorithms.lz4 import lz4_block_decompress, lz4_decompress
from repro.algorithms.sz3 import sz3_decompress
from repro.algorithms.zlib_format import zlib_decompress
from repro.algorithms.zstdlite import zstdlite_decompress
from repro.errors import ReproError

DECODERS = {
    "deflate": lambda b: deflate_decompress(b, max_output=1 << 20),
    "zlib": zlib_decompress,
    "gzip": gzip_decompress,
    "lz4_block": lambda b: lz4_block_decompress(b, max_output=1 << 20),
    "lz4_frame": lz4_decompress,
    "zstdlite": zstdlite_decompress,
    "sz3": sz3_decompress,
}


@pytest.mark.parametrize("name", sorted(DECODERS))
@given(blob=st.binary(max_size=600))
@settings(max_examples=60, deadline=None)
def test_random_bytes_fail_cleanly(name, blob):
    try:
        DECODERS[name](blob)
    except ReproError:
        pass  # the expected outcome for garbage


@pytest.mark.parametrize("name", sorted(DECODERS))
def test_empty_input(name):
    try:
        result = DECODERS[name](b"")
    except ReproError:
        return
    assert result in (b"",) or getattr(result, "size", None) == 0


@given(blob=st.binary(min_size=1, max_size=400), index=st.data())
@settings(max_examples=80, deadline=None)
def test_deflate_single_bitflip_never_hangs(blob, index):
    """Flip one bit anywhere in a valid stream: decode must terminate
    quickly with either an error or some (possibly different) bytes —
    bounded by max_output so corrupted run-lengths cannot explode."""
    stream = bytearray(deflate_compress(blob))
    position = index.draw(st.integers(0, len(stream) * 8 - 1))
    stream[position // 8] ^= 1 << (position % 8)
    try:
        out = deflate_decompress(bytes(stream), max_output=len(blob) * 4 + 64)
        assert len(out) <= len(blob) * 4 + 64
    except ReproError:
        pass


@given(blob=st.binary(max_size=400), index=st.data())
@settings(max_examples=60, deadline=None)
def test_zlib_single_byteflip_never_silently_wrong(blob, index):
    """zlib is checksummed: a corrupted stream either errors or decodes
    to the original (flips in non-load-bearing bits)."""
    stream = bytearray(
        __import__("repro.algorithms.zlib_format", fromlist=["zlib_compress"])
        .zlib_compress(blob)
    )
    position = index.draw(st.integers(0, len(stream) - 1))
    stream[position] ^= 0xA5
    try:
        out = zlib_decompress(bytes(stream))
    except ReproError:
        return
    assert out == blob


@given(
    values=st.lists(
        st.floats(-1e4, 1e4, allow_nan=False, width=32), min_size=1, max_size=200
    ),
    index=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_sz3_corruption_never_crashes(values, index):
    from repro.algorithms.sz3 import SZ3Config, sz3_compress

    array = np.asarray(values, dtype=np.float32)
    stream = bytearray(sz3_compress(array, SZ3Config(error_bound=1e-2)))
    position = index.draw(st.integers(0, len(stream) - 1))
    stream[position] ^= 0xFF
    try:
        out = sz3_decompress(bytes(stream))
        assert isinstance(out, np.ndarray)
    except (ReproError, ValueError):
        # ValueError covers pathological reshape sizes from corrupted
        # shape fields caught by numpy before our own checks.
        pass


# -- systematic (exhaustive, non-hypothesis) sweeps -------------------------
#
# The hypothesis suites sample the corruption space; these sweeps cover
# it exhaustively on small valid streams: *every* prefix truncation and
# *every* single-bit flip.  Truncation must always fail cleanly (or,
# for raw formats, return bytes); a bit flip in a checksummed format
# must never be silently wrong.

from repro.algorithms.deflate import DeflateConfig  # noqa: E402
from repro.algorithms.gzip_format import gzip_compress  # noqa: E402
from repro.algorithms.lz4 import lz4_block_compress, lz4_compress  # noqa: E402
from repro.algorithms.sz3 import SZ3Config, sz3_compress  # noqa: E402
from repro.algorithms.zlib_format import zlib_compress  # noqa: E402
from repro.algorithms.zstdlite import zstdlite_compress  # noqa: E402

_SWEEP_PAYLOAD = b"abcabcabc-0123456789-the quick brown fox" * 3

ENCODERS = {
    "deflate": deflate_compress,
    "zlib": zlib_compress,
    "gzip": gzip_compress,
    "lz4_block": lz4_block_compress,
    "lz4_frame": lz4_compress,
    "zstdlite": zstdlite_compress,
}

# Formats whose wire checksum must catch (or survive) any single flip.
CHECKSUMMED = {
    "zlib": zlib_compress,
    "gzip": gzip_compress,
    "lz4_frame": lz4_compress,
    "zstdlite": zstdlite_compress,
}


@pytest.mark.parametrize("name", sorted(ENCODERS))
def test_every_truncation_fails_cleanly(name):
    """Chop the stream at every possible length: no hangs, no junk
    exceptions — a ReproError or (for raw formats) some bytes."""
    stream = ENCODERS[name](_SWEEP_PAYLOAD)
    decoder = DECODERS[name]
    for keep in range(len(stream)):
        try:
            out = decoder(stream[:keep])
        except ReproError:
            continue
        # Raw formats may decode a prefix; it must never exceed the
        # original (max_output bounds any run-length explosion).
        assert len(out) <= len(_SWEEP_PAYLOAD) + 64, keep


@pytest.mark.parametrize("name", sorted(CHECKSUMMED))
def test_every_single_bitflip_detected_or_harmless(name):
    """Flip each bit of a checksummed stream in turn: decode must raise
    a ReproError or return the exact original payload (a flip in a
    non-load-bearing header bit) — silent corruption is the one
    forbidden outcome."""
    stream = ENCODERS[name](_SWEEP_PAYLOAD)
    decoder = DECODERS[name]
    for position in range(len(stream) * 8):
        mutated = bytearray(stream)
        mutated[position // 8] ^= 1 << (position % 8)
        try:
            out = decoder(bytes(mutated))
        except ReproError:
            continue
        assert out == _SWEEP_PAYLOAD, f"silent corruption at bit {position}"


def test_sz3_every_truncation_fails_cleanly():
    field = np.sin(np.linspace(0, 8, 300)).astype(np.float32)
    stream = sz3_compress(field, SZ3Config(error_bound=1e-3))
    for keep in range(len(stream)):
        try:
            out = sz3_decompress(stream[:keep])
            assert isinstance(out, np.ndarray)
        except (ReproError, ValueError):
            continue


@pytest.mark.parametrize("strategy", ["fixed", "dynamic", "stored"])
def test_deflate_truncation_per_block_type(strategy):
    """Truncation coverage for each DEFLATE block coding separately —
    stored, fixed, and dynamic blocks take different decoder paths."""
    stream = deflate_compress(_SWEEP_PAYLOAD, DeflateConfig(strategy=strategy))
    for keep in range(len(stream)):
        try:
            out = deflate_decompress(stream[:keep],
                                     max_output=len(_SWEEP_PAYLOAD) * 4)
        except ReproError:
            continue
        assert len(out) <= len(_SWEEP_PAYLOAD) * 4
