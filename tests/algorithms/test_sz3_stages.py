"""SZ3 stage-level tests: preprocessor, quantizer, predictor, encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.sz3 import encoder, predictor, quantizer
from repro.algorithms.sz3.config import SZ3Config
from repro.algorithms.sz3.preprocessor import preprocess
from repro.errors import CorruptStreamError, UnsupportedDataError


class TestPreprocessor:
    def test_accepts_float32_and_float64(self):
        for dtype in (np.float32, np.float64):
            pre = preprocess(np.ones(10, dtype=dtype), SZ3Config())
            assert pre.data.dtype == dtype

    def test_rejects_integer_dtype(self):
        with pytest.raises(UnsupportedDataError):
            preprocess(np.ones(10, dtype=np.int32), SZ3Config())

    def test_rejects_scalar(self):
        with pytest.raises(UnsupportedDataError):
            preprocess(np.float32(1.0), SZ3Config())

    def test_rejects_5d(self):
        with pytest.raises(UnsupportedDataError):
            preprocess(np.ones((2, 2, 2, 2, 2), dtype=np.float32), SZ3Config())

    def test_rejects_nan(self):
        data = np.ones(10, dtype=np.float32)
        data[3] = np.nan
        with pytest.raises(UnsupportedDataError):
            preprocess(data, SZ3Config())

    def test_rejects_inf(self):
        data = np.ones(10, dtype=np.float64)
        data[0] = np.inf
        with pytest.raises(UnsupportedDataError):
            preprocess(data, SZ3Config())

    def test_rejects_overflow_tiny_bound(self):
        data = np.full(4, 1e30, dtype=np.float64)
        with pytest.raises(UnsupportedDataError):
            preprocess(data, SZ3Config(error_bound=1e-12))

    def test_relative_mode_scales_bound(self):
        data = np.linspace(0.0, 10.0, 100).astype(np.float64)
        pre = preprocess(data, SZ3Config(error_bound=0.01, error_mode="rel"))
        assert pre.abs_error_bound == pytest.approx(0.1)

    def test_relative_mode_constant_field(self):
        data = np.full(50, 3.0, dtype=np.float64)
        pre = preprocess(data, SZ3Config(error_bound=0.01, error_mode="rel"))
        assert pre.abs_error_bound == pytest.approx(0.01)

    def test_makes_contiguous(self):
        data = np.ones((10, 10), dtype=np.float32)[:, ::2]
        pre = preprocess(data, SZ3Config())
        assert pre.data.flags["C_CONTIGUOUS"]


class TestQuantizer:
    def test_bound_holds(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=1000)
        for eb in (1e-2, 1e-4, 1.0):
            codes = quantizer.quantize(data, eb)
            recon = quantizer.dequantize(codes, eb, np.dtype(np.float64))
            assert np.abs(recon - data).max() <= eb * (1 + 1e-12)

    def test_exact_grid_values_roundtrip(self):
        eb = 0.5
        data = np.arange(-5, 6, dtype=np.float64)  # multiples of 2*eb=1
        codes = quantizer.quantize(data, eb)
        recon = quantizer.dequantize(codes, eb, np.dtype(np.float64))
        np.testing.assert_array_equal(recon, data)

    def test_codes_are_int64(self):
        assert quantizer.quantize(np.ones(3), 0.1).dtype == np.int64


class TestPredictor:
    @pytest.mark.parametrize("kind", ["lorenzo", "interp", "none"])
    @pytest.mark.parametrize(
        "shape", [(1,), (2,), (7,), (100,), (16, 16), (5, 9), (4, 5, 6), (3, 1, 2, 4)]
    )
    def test_bijective(self, kind, shape):
        rng = np.random.default_rng(42)
        codes = rng.integers(-(10**6), 10**6, size=shape).astype(np.int64)
        residual = predictor.predict_residual(codes, kind)
        back = predictor.reconstruct_codes(residual, kind)
        np.testing.assert_array_equal(back, codes)

    def test_lorenzo_smooth_residuals_small(self):
        codes = np.arange(1000, dtype=np.int64)  # linear ramp
        residual = predictor.predict_residual(codes, "lorenzo")
        # After the first sample, first differences are all 1.
        assert np.abs(residual[1:]).max() == 1

    def test_interp_smooth_residuals_small(self):
        t = np.linspace(0, 4 * np.pi, 4096)
        codes = np.rint(1000 * np.sin(t)).astype(np.int64)
        residual = predictor.predict_residual(codes, "interp")
        assert np.abs(residual).mean() < np.abs(codes).mean()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            predictor.predict_residual(np.zeros(4, dtype=np.int64), "cubic")
        with pytest.raises(ValueError):
            predictor.reconstruct_codes(np.zeros(4, dtype=np.int64), "cubic")

    def test_empty_array(self):
        empty = np.zeros(0, dtype=np.int64)
        for kind in ("lorenzo", "interp", "none"):
            out = predictor.reconstruct_codes(
                predictor.predict_residual(empty, kind), kind
            )
            assert out.size == 0


class TestEncoder:
    def test_roundtrip_small_values(self):
        residuals = np.array([0, 1, -1, 2, -2, 0, 0, 5], dtype=np.int64)
        out = encoder.decode_residuals(encoder.encode_residuals(residuals))
        np.testing.assert_array_equal(out, residuals)

    def test_roundtrip_with_escapes(self):
        residuals = np.array(
            [0, 10**12, -(10**15), 3, 2**55, -(2**55), 127, 128], dtype=np.int64
        )
        out = encoder.decode_residuals(encoder.encode_residuals(residuals))
        np.testing.assert_array_equal(out, residuals)

    def test_empty(self):
        out = encoder.decode_residuals(encoder.encode_residuals(np.zeros(0, np.int64)))
        assert out.size == 0

    def test_all_zero_compresses_hard(self):
        residuals = np.zeros(100000, dtype=np.int64)
        payload = encoder.encode_residuals(residuals)
        assert len(payload) < 100000 / 4  # ~1 bit/symbol + tables

    def test_truncated_payload_rejected(self):
        payload = encoder.encode_residuals(np.arange(100, dtype=np.int64))
        with pytest.raises(CorruptStreamError):
            encoder.decode_residuals(payload[:50])

    def test_declared_bits_checked(self):
        payload = bytearray(encoder.encode_residuals(np.arange(10, dtype=np.int64)))
        # Inflate the declared bit count beyond the stream.
        import struct

        (nbits,) = struct.unpack_from("<Q", payload, 8 + 255)
        struct.pack_into("<Q", payload, 8 + 255, nbits + 10**6)
        with pytest.raises(CorruptStreamError):
            encoder.decode_residuals(bytes(payload))


@given(
    arrays(
        dtype=np.int64,
        shape=st.integers(0, 400),
        elements=st.integers(-(2**60), 2**60),
    )
)
@settings(max_examples=60, deadline=None)
def test_property_encoder_roundtrip(residuals):
    out = encoder.decode_residuals(encoder.encode_residuals(residuals))
    np.testing.assert_array_equal(out, residuals)


@given(
    st.sampled_from(["lorenzo", "interp", "none"]),
    arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
        elements=st.integers(-(2**40), 2**40),
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_predictor_bijective(kind, codes):
    back = predictor.reconstruct_codes(
        predictor.predict_residual(codes, kind), kind
    )
    np.testing.assert_array_equal(back, codes)
