"""Decoupled model/coder pipeline: byte identity + simulated overlap.

Two layers under test:

* the *real* dataflow — ``ac_compress_pipelined`` (bounded read-ahead
  between the model and coder stages) must emit byte-identical streams
  to the serial path at every queue depth;
* the *simulated* twin — :class:`repro.sched.DecoupledCodecPipeline`
  runs the stages as concurrent SoC processes; pipelining must never
  lose to serial and must approach the stage-bound speedup
  ``1 / max(f, 1-f)`` on many-chunk messages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.ac import ac_compress, ac_compress_pipelined, ac_decompress
from repro.dpu.calibration import AC_MODEL_FRACTION
from repro.dpu.device import make_device
from repro.dpu.specs import Algo, Direction
from repro.sched import DecoupledCodecPipeline, DecoupledConfig
from repro.sim import Environment


def _drive(env, generator):
    proc = env.process(generator)
    return env.run(until=proc)


def _payload(size: int, seed: int = 99) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 64, size=size, dtype=np.uint8).tobytes()


# -- real dataflow -----------------------------------------------------------


@pytest.mark.parametrize("queue_depth", [1, 2, 3, 8])
def test_pipelined_bytes_identical_across_depths(queue_depth):
    data = _payload(30_000)
    assert ac_compress_pipelined(data, queue_depth=queue_depth) == \
        ac_compress(data)


def test_pipelined_rejects_bad_depth():
    with pytest.raises(ValueError):
        ac_compress_pipelined(b"x" * 100, queue_depth=0)


def test_pipelined_roundtrip():
    data = _payload(12_000, seed=5)
    assert ac_decompress(ac_compress_pipelined(data)) == data


@pytest.mark.parametrize("data", [b"", b"\x07"])
def test_pipelined_flush_after_degenerate_feed(data):
    """Regression: a zero-length (or single-byte) payload means the
    coder stage flushes with zero (or one) chunks queued; the emitted
    terminator must still match the serial path byte-for-byte and
    round-trip."""
    blob = ac_compress_pipelined(data)
    assert blob == ac_compress(data)
    assert ac_decompress(blob) == data


# -- simulated twin ----------------------------------------------------------


def _run(sim_bytes: float, pipelined: bool, data: "bytes | None" = None,
         config: "DecoupledConfig | None" = None):
    env = Environment()
    pipe = DecoupledCodecPipeline(make_device(env, "bf2"), config)
    return _drive(env, pipe.run(sim_bytes, data=data, pipelined=pipelined))


@pytest.mark.parametrize("sim_bytes", [1e3, 1e5, 1e6, 2e7])
def test_pipelined_never_loses_to_serial(sim_bytes):
    serial = _run(sim_bytes, pipelined=False)
    piped = _run(sim_bytes, pipelined=True)
    assert piped.sim_seconds <= serial.sim_seconds * (1 + 1e-12)
    assert piped.n_chunks == serial.n_chunks


def test_many_chunk_speedup_approaches_stage_bound():
    bound = 1.0 / max(AC_MODEL_FRACTION, 1.0 - AC_MODEL_FRACTION)
    serial = _run(2e7, pipelined=False)
    piped = _run(2e7, pipelined=True)
    speedup = serial.sim_seconds / piped.sim_seconds
    assert 0.9 * bound <= speedup <= bound + 1e-9


def test_single_chunk_degenerates_to_serial():
    serial = _run(100.0, pipelined=False)
    piped = _run(100.0, pipelined=True)
    assert piped.n_chunks == 1
    assert piped.sim_seconds == pytest.approx(serial.sim_seconds)


def test_queue_depth_one_serializes_the_stages():
    """depth 1 means the model cannot run ahead: makespan equals the
    serial sum (the bounded queue really is the throttle)."""
    config = DecoupledConfig(queue_depth=1)
    serial = _run(1e6, pipelined=False, config=config)
    piped = _run(1e6, pipelined=True, config=config)
    assert piped.sim_seconds == pytest.approx(serial.sim_seconds)


def test_stage_seconds_sum_to_calibrated_codec_time():
    env = Environment()
    device = make_device(env, "bf2")
    pipe = DecoupledCodecPipeline(device)
    model_s, coder_s, n_chunks = pipe.stage_seconds(1e6)
    total = device.soc.codec_time(Algo.AC, Direction.COMPRESS, 1e6)
    assert model_s + coder_s == pytest.approx(total)
    assert model_s == pytest.approx(total * AC_MODEL_FRACTION)
    assert n_chunks == int(np.ceil(1e6 / pipe.config.ac.chunk_bytes))


def test_sim_run_carries_real_bytes_identically():
    data = _payload(10_000, seed=7)
    serial = _run(1e6, pipelined=False, data=data)
    piped = _run(1e6, pipelined=True, data=data)
    assert serial.payload == piped.payload == ac_compress(data)
    assert ac_decompress(piped.payload) == data


def test_decoupled_config_validation():
    with pytest.raises(ValueError):
        DecoupledConfig(queue_depth=0)
    with pytest.raises(ValueError):
        DecoupledConfig(model_fraction=0.0)
    with pytest.raises(ValueError):
        DecoupledConfig(model_fraction=1.0)


def test_result_reports_stage_totals():
    res = _run(1e6, pipelined=True)
    assert res.pipelined
    assert res.queue_depth == 2
    assert res.model_seconds > 0 and res.coder_seconds > 0
    # Makespan is bounded below by the bottleneck stage.
    assert res.sim_seconds >= max(res.model_seconds, res.coder_seconds) - 1e-12
