"""Range coder unit tests: invariants, carry handling, typed failures.

The coder is model-agnostic — these tests drive it with hand-built
frequency tables so every claim in the module docstring is checked
without the context model in the loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.ac.rangecoder import (
    FLUSH_BYTES,
    MASK32,
    MAX_TOTAL,
    TOP,
    RangeDecoder,
    RangeEncoder,
)
from repro.errors import CorruptStreamError


def _table(freqs: "list[int]") -> "tuple[list[int], int]":
    """Cumulative lows + total for a frequency list."""
    cum = [0]
    for f in freqs:
        cum.append(cum[-1] + f)
    return cum, cum[-1]


def _roundtrip(symbols: "list[int]", freqs: "list[int]") -> None:
    cum, total = _table(freqs)
    enc = RangeEncoder()
    for sym in symbols:
        enc.encode(cum[sym], freqs[sym], total)
        # Renormalization invariant between encode calls.
        assert TOP <= enc.range <= MASK32
        assert 0 <= enc.low < (1 << 33)
    payload = enc.flush()
    dec = RangeDecoder(payload)
    out = []
    for _ in symbols:
        target = dec.decode_target(total)
        # Inverse map target -> symbol against the same table.
        sym = next(i for i in range(len(freqs)) if cum[i + 1] > target)
        dec.consume(cum[sym], freqs[sym], total)
        out.append(sym)
    assert out == symbols


def test_uniform_table_roundtrip():
    rng = np.random.default_rng(1)
    _roundtrip(rng.integers(0, 16, size=4000).tolist(), [1] * 16)


def test_skewed_table_roundtrip():
    rng = np.random.default_rng(2)
    freqs = [1000, 200, 30, 4, 1, 1]
    probs = np.array(freqs) / sum(freqs)
    symbols = rng.choice(len(freqs), size=6000, p=probs).tolist()
    _roundtrip(symbols, freqs)


def test_top_symbol_slack_path():
    """Sequences ending the table (cum_lo + freq == total) exercise the
    slack branch in both encoder and decoder."""
    _roundtrip([1, 1, 1, 1, 0, 1, 1, 1], [1, 3])


def test_carry_chain_stress():
    """Max-total two-symbol tables at extreme skew produce long 0xFF
    pending runs; the carry must resolve without corrupting output."""
    freqs = [MAX_TOTAL - 1, 1]
    symbols = [0] * 500 + [1] + [0] * 500 + [1, 1] + [0] * 100
    _roundtrip(symbols, freqs)


def test_flush_emits_exactly_five_trailing_shifts():
    enc = RangeEncoder()
    enc.encode(0, 1, 2)
    before = enc.range
    payload = enc.flush()
    assert before  # encode ran
    # cache_size bytes were pending plus the five flush shifts; the
    # stream always starts with the pad byte (cache starts at 0, so
    # byte 0 is 0 or 1 after a resolved carry).
    assert payload[0] in (0, 1)
    assert len(payload) >= FLUSH_BYTES


@pytest.mark.parametrize(
    "triple",
    [
        (0, 0, 4),        # zero freq
        (-1, 1, 4),       # negative cum_lo
        (3, 2, 4),        # interval past total
        (0, 1, MAX_TOTAL + 1),  # total above precision budget
    ],
)
def test_encoder_rejects_bad_triples(triple):
    enc = RangeEncoder()
    with pytest.raises(ValueError):
        enc.encode(*triple)


def test_decoder_rejects_empty_stream():
    with pytest.raises(CorruptStreamError):
        RangeDecoder(b"")


def test_decoder_rejects_short_init():
    with pytest.raises(CorruptStreamError):
        RangeDecoder(b"\x00" * (FLUSH_BYTES - 1))


def test_truncated_stream_raises_not_hangs():
    cum, total = _table([1] * 8)
    enc = RangeEncoder()
    rng = np.random.default_rng(3)
    symbols = rng.integers(0, 8, size=2000).tolist()
    for sym in symbols:
        enc.encode(cum[sym], 1, total)
    payload = enc.flush()
    dec = RangeDecoder(payload[: len(payload) // 2])
    with pytest.raises(CorruptStreamError):
        for _ in symbols:
            target = dec.decode_target(total)
            dec.consume(target, 1, total)


def test_decode_target_range_collapse_is_typed():
    dec = RangeDecoder(bytes(FLUSH_BYTES))
    with pytest.raises(CorruptStreamError):
        dec.decode_target(1 << 33)  # total > range forces r == 0


def test_decode_target_clamps_to_total():
    """The top-symbol slack can push the raw target to ``total``; the
    decoder must clamp instead of handing the model an invalid index."""
    dec = RangeDecoder(b"\x00" + b"\xff" * (FLUSH_BYTES - 1) + b"\xff" * 4)
    target = dec.decode_target(3)
    assert 0 <= target < 3


def test_bytes_consumed_monotonic():
    cum, total = _table([1, 1, 1, 1])
    enc = RangeEncoder()
    for sym in [0, 1, 2, 3] * 300:
        enc.encode(cum[sym], 1, total)
    payload = enc.flush()
    dec = RangeDecoder(payload)
    last = dec.bytes_consumed
    assert last == FLUSH_BYTES
    for sym in [0, 1, 2, 3] * 300:
        assert dec.decode_target(total) == sym
        dec.consume(cum[sym], 1, total)
        assert dec.bytes_consumed >= last
        last = dec.bytes_consumed
    assert last <= len(payload)
