"""Context-model unit tests: hashing twins, adaptation, halving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.ac.model import MAX_ORDER, ACConfig, ContextModel
from repro.errors import CorruptStreamError


def _config(**kw) -> ACConfig:
    base = dict(order=2, chunk_bytes=256, table_bits=10, max_total=1 << 10)
    base.update(kw)
    return ACConfig(**base)


@pytest.mark.parametrize("order", range(MAX_ORDER + 1))
def test_scalar_hash_matches_vectorized(order):
    """The decoder's scalar hash must agree with the encoder's
    vectorized hash at every position, including the zero-padded head."""
    config = _config(order=order)
    model = ContextModel(config)
    rng = np.random.default_rng(order)
    data = rng.integers(0, 256, size=700, dtype=np.uint8)
    vec = model.context_hashes(data, 0, len(data))
    history: list[int] = []
    for pos in range(len(data)):
        assert model.context_hash_scalar(history) == vec[pos], pos
        history.append(int(data[pos]))
        if len(history) > order:
            history.pop(0)


def test_chunk_triples_match_sequential_triples():
    config = _config()
    vec_model = ContextModel(config)
    seq_model = ContextModel(config)
    rng = np.random.default_rng(11)
    data = rng.integers(0, 64, size=600, dtype=np.uint8)
    for start in range(0, len(data), config.chunk_bytes):
        stop = min(start + config.chunk_bytes, len(data))
        lo, fr, tot = vec_model.chunk_triples(data, start, stop)
        history = [int(b) for b in data[max(0, start - config.order):start]]
        for i, pos in enumerate(range(start, stop)):
            ctx = seq_model.context_hash_scalar(history)
            s_lo, s_fr, s_tot = seq_model.triple(ctx, int(data[pos]))
            assert (lo[i], fr[i], tot[i]) == (s_lo, s_fr, s_tot)
            history.append(int(data[pos]))
            if len(history) > config.order:
                history.pop(0)
        vec_model.update_chunk(data, start, stop)
        seq_model.update_chunk(data, start, stop)


def test_tracked_rows_match_lazy_rows():
    config = _config()
    tracked = ContextModel(config, track_rows=True)
    lazy = ContextModel(config)
    rng = np.random.default_rng(12)
    data = rng.integers(0, 256, size=1024, dtype=np.uint8)
    for start in range(0, len(data), config.chunk_bytes):
        stop = min(start + config.chunk_bytes, len(data))
        tracked.update_chunk(data, start, stop)
        lazy.update_chunk(data, start, stop)
    for ctx in np.unique(tracked.context_hashes(data, 0, len(data))):
        assert tracked.cum_row(int(ctx)) == lazy.cum_row(int(ctx))


def test_untouched_context_is_uniform():
    model = ContextModel(_config())
    row = model.cum_row(0)
    assert row == list(range(257))
    assert model.triple(0, 255) == (255, 1, 256)


def test_update_is_deterministic():
    config = _config()
    rng = np.random.default_rng(13)
    data = rng.integers(0, 256, size=2048, dtype=np.uint8)
    models = [ContextModel(config) for _ in range(2)]
    for model in models:
        for start in range(0, len(data), config.chunk_bytes):
            stop = min(start + config.chunk_bytes, len(data))
            model.update_chunk(data, start, stop)
    assert np.array_equal(models[0]._counts, models[1]._counts)
    assert np.array_equal(models[0]._totals, models[1]._totals)


def test_halving_keeps_totals_inside_coder_budget():
    """Hammer one context until it halves; smoothed totals must stay
    within max_total (the range coder's precision budget)."""
    config = _config(order=0, max_total=1 << 10)
    model = ContextModel(config)
    data = np.zeros(4096, dtype=np.uint8)  # all mass on one symbol
    for start in range(0, len(data), config.chunk_bytes):
        model.update_chunk(data, start, start + config.chunk_bytes)
        row = model.cum_row(0)
        assert row[256] <= config.max_total
    # The dominant symbol kept its rank through the halvings.
    assert model.triple(0, 0)[1] > model.triple(0, 1)[1]


def test_symbol_from_target_inverts_triple():
    config = _config()
    model = ContextModel(config)
    rng = np.random.default_rng(14)
    data = rng.integers(0, 32, size=512, dtype=np.uint8)
    model.update_chunk(data, 0, 256)
    ctx = int(model.context_hashes(data, 256, 257)[0])
    for symbol in (0, 17, 255):
        lo, fr, tot = model.triple(ctx, symbol)
        for target in (lo, lo + fr - 1):
            assert model.symbol_from_target(ctx, target) == symbol


def test_symbol_from_target_rejects_out_of_range():
    model = ContextModel(_config())
    with pytest.raises(CorruptStreamError):
        model.symbol_from_target(0, 256)
    with pytest.raises(CorruptStreamError):
        model.symbol_from_target(0, -1)


@pytest.mark.parametrize(
    "kw",
    [
        dict(order=-1),
        dict(order=MAX_ORDER + 1),
        dict(chunk_bytes=100),     # not a power of two
        dict(chunk_bytes=128),     # below the floor
        dict(table_bits=7),
        dict(table_bits=21),
        dict(max_total=1 << 9),
        dict(max_total=1 << 17),
    ],
)
def test_config_validation(kw):
    with pytest.raises(ValueError):
        _config(**kw)


def test_chunk_log2_round_trips():
    config = ACConfig(chunk_bytes=8192)
    assert 1 << config.chunk_log2 == 8192
