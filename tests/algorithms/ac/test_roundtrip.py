"""Round-trip identity and encoder determinism for the ``ac`` codec.

Two complementary corpora, mirroring the library-wide property suite:

* **hypothesis** — generic byte distributions shrink counterexamples;
* **seeded corpus** — structured shapes (runs, text, float grids,
  noise) from 0 bytes up to 1 MiB, rotated nightly via
  ``REPRO_FUZZ_SEED`` like :mod:`tests.algorithms.test_roundtrip_properties`.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.ac import (
    ACConfig,
    HEADER_BYTES,
    ac_compress,
    ac_compress_pipelined,
    ac_decompress,
    parse_header,
)
from repro.errors import OutputOverflowError
from tests.algorithms.test_roundtrip_properties import GENERATORS

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))

SMALL_CONFIG = ACConfig(order=1, chunk_bytes=256, table_bits=10)


def corpus_case(gen_name: str, size: int, variant: int) -> bytes:
    rng = np.random.default_rng(
        [BASE_SEED, sum(gen_name.encode()), size, variant]
    )
    return GENERATORS[gen_name](rng, size)


@given(data=st.binary(max_size=2048))
@settings(max_examples=60, deadline=None)
def test_hypothesis_roundtrip_default_config(data):
    assert ac_decompress(ac_compress(data)) == data


@given(data=st.binary(max_size=2048))
@settings(max_examples=60, deadline=None)
def test_hypothesis_roundtrip_small_chunks(data):
    """Small chunks force many model-adaptation boundaries."""
    assert ac_decompress(ac_compress(data, SMALL_CONFIG)) == data


@given(data=st.binary(max_size=1024))
@settings(max_examples=30, deadline=None)
def test_hypothesis_encode_twice_is_deterministic(data):
    assert ac_compress(data) == ac_compress(data)


@pytest.mark.parametrize("gen_name", sorted(GENERATORS))
@pytest.mark.parametrize("size", (0, 1, 3, 64, 700, 4096, 20_000))
def test_corpus_roundtrip(gen_name, size):
    for variant in range(2):
        payload = corpus_case(gen_name, size, variant)
        blob = ac_compress(payload)
        assert ac_decompress(blob) == payload
        # Deterministic encoder: a second pass emits identical bytes.
        assert ac_compress(payload) == blob


@pytest.mark.slow
@pytest.mark.parametrize("gen_name", ["noise", "text_like"])
def test_corpus_roundtrip_one_mebibyte(gen_name):
    """The [0 B, 1 MiB] ceiling of the fuzz envelope: one random and
    one structured megabyte case (slow — real coding work)."""
    payload = corpus_case(gen_name, 1 << 20, 0)
    assert ac_decompress(ac_compress(payload)) == payload


@pytest.mark.parametrize("order", range(5))
def test_every_order_roundtrips(order):
    config = ACConfig(order=order, chunk_bytes=512, table_bits=12)
    payload = corpus_case("text_like", 3000, order)
    assert ac_decompress(ac_compress(payload, config)) == payload


def test_empty_input_is_header_only():
    blob = ac_compress(b"")
    assert len(blob) == HEADER_BYTES
    assert ac_decompress(blob) == b""


def test_header_is_self_describing():
    config = ACConfig(order=3, chunk_bytes=1024, table_bits=12)
    blob = ac_compress(b"abc" * 100, config)
    parsed, length, _ = parse_header(blob)
    assert parsed == config
    assert length == 300


def test_pipelined_compress_is_byte_identical():
    for gen_name in ("runs", "noise", "text_like"):
        payload = corpus_case(gen_name, 20_000, 1)
        serial = ac_compress(payload)
        for depth in (1, 2, 4):
            assert ac_compress_pipelined(payload, queue_depth=depth) == serial


def test_max_output_overflow_is_typed():
    blob = ac_compress(b"x" * 4096)
    with pytest.raises(OutputOverflowError):
        ac_decompress(blob, max_output=100)
    assert ac_decompress(blob, max_output=4096) == b"x" * 4096


def test_adaptation_actually_compresses_skewed_data():
    """Sanity: the model learns — skewed data beats the 1 MiB noise
    incompressibility floor by a wide margin."""
    payload = corpus_case("low_entropy", 50_000, 0)
    noise = corpus_case("noise", 50_000, 0)
    assert len(ac_compress(payload)) < len(ac_compress(noise)) * 0.5
