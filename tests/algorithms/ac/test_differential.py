"""Differential test: fast range coder vs the bitwise reference coder.

Both coders consume the *same* model trace (``model_batches`` is
deterministic), so any disagreement is a coder bug, not a model
artifact.  Checked per case: both decode back to the original; checked
across the corpus: the fast coder's aggregate payload is within 0.1 %
of the reference coder's (the byte-wise renormalization may pad a
handful of bytes per stream, never a systematic loss).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms.ac import ACConfig, ac_compress, ac_decompress
from repro.algorithms.ac.codec import HEADER_BYTES
from repro.algorithms.ac.rangecoder import FLUSH_BYTES
from repro.algorithms.ac.reference import (
    reference_compress_payload,
    reference_decompress_payload,
)
from tests.algorithms.test_roundtrip_properties import GENERATORS

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))

CONFIG = ACConfig(order=2, chunk_bytes=1024, table_bits=12)

CORPUS = [
    (gen_name, size, variant)
    for gen_name in sorted(GENERATORS)
    for size in (1, 130, 3000, 9000)
    for variant in (0,)
]


def _case(gen_name: str, size: int, variant: int) -> bytes:
    rng = np.random.default_rng(
        [BASE_SEED, sum(gen_name.encode()), size, variant]
    )
    return GENERATORS[gen_name](rng, size)


@pytest.mark.parametrize("gen_name,size,variant", CORPUS)
def test_reference_decodes_what_it_encodes(gen_name, size, variant):
    payload = _case(gen_name, size, variant)
    coded = reference_compress_payload(payload, CONFIG)
    assert reference_decompress_payload(coded, len(payload), CONFIG) == payload


@pytest.mark.parametrize("gen_name,size,variant", CORPUS)
def test_fast_and_reference_decode_identically(gen_name, size, variant):
    """Same trace through both coders: both must reproduce the input
    exactly (the strongest possible agreement on decoded output)."""
    payload = _case(gen_name, size, variant)
    fast = ac_compress(payload, CONFIG)
    assert ac_decompress(fast) == payload
    ref = reference_compress_payload(payload, CONFIG)
    assert reference_decompress_payload(ref, len(payload), CONFIG) == payload


def test_corpus_ratio_within_a_tenth_of_a_percent():
    """Aggregate coded size of the fast coder vs the reference oracle.

    The two coders terminate streams differently — the range coder
    spends a leading pad byte plus a 5-byte carry flush, the WNC
    reference a couple of disambiguating bits — so every stream carries
    a small *constant* termination gap.  The per-symbol coding cost is
    the thing that must agree: after deducting the shared fixed
    termination cost, the corpus totals must match within 0.1 %, and no
    individual stream may drift beyond the flush-size envelope (which
    would indicate a real efficiency bug, not framing)."""
    diffs = []
    ref_total = 0
    for gen_name, size, variant in CORPUS:
        payload = _case(gen_name, size, variant)
        fast = len(ac_compress(payload, CONFIG)) - HEADER_BYTES
        ref = len(reference_compress_payload(payload, CONFIG))
        diffs.append(fast - ref)
        ref_total += ref
    assert ref_total > 0
    # Fixed termination cost: present on every stream, bounded by the
    # flush tail, and never negative (the fast coder cannot "win" by
    # under-coding).
    term = min(diffs)
    assert 0 <= term <= FLUSH_BYTES, diffs
    assert max(diffs) <= term + FLUSH_BYTES, diffs
    coding_drift = sum(d - term for d in diffs)
    assert coding_drift / ref_total < 1e-3, (coding_drift, ref_total)
