"""Adaptive-context range coder test suite (see DESIGN.md §5i)."""
