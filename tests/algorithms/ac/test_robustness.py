"""Adversarial decoder sweeps: truncation, bit flips, garbage.

The ``ac`` container is CRC-protected, so the contract is strict:
every corrupted stream either raises a typed
:class:`~repro.errors.ReproError` subclass or decodes to the *exact*
original bytes (flips or cuts in never-read trailing slack) — silent
wrong output is impossible, and no input may hang the decoder.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.ac import ACConfig, HEADER_BYTES, ac_compress, ac_decompress
from repro.errors import ReproError

# Small operating point keeps the exhaustive sweeps fast while still
# crossing several chunk boundaries.
CONFIG = ACConfig(order=1, chunk_bytes=256, table_bits=10)
PAYLOAD = (b"adaptive context range coder " * 6 + bytes(range(256)))[:384]
STREAM = ac_compress(PAYLOAD, CONFIG)
MAX_OUT = len(PAYLOAD) * 4 + 64


def _decode_or_typed_error(blob: bytes) -> "bytes | None":
    """Decode; returns output bytes or None after a typed error.

    Anything else (hang is excluded by bounded loops; untyped
    exceptions propagate) fails the test.
    """
    try:
        return ac_decompress(blob, max_output=MAX_OUT)
    except ReproError:
        return None


def test_every_truncation_fails_cleanly_or_matches():
    """Exhaustive prefix sweep over the whole stream."""
    for cut in range(len(STREAM)):
        out = _decode_or_typed_error(STREAM[:cut])
        assert out is None or out == PAYLOAD, f"truncation at {cut}"


def test_every_single_bit_flip_fails_cleanly_or_matches():
    """Exhaustive single-bit-flip sweep: header, CRC, and payload."""
    for position in range(len(STREAM) * 8):
        corrupted = bytearray(STREAM)
        corrupted[position // 8] ^= 1 << (position % 8)
        out = _decode_or_typed_error(bytes(corrupted))
        assert out is None or out == PAYLOAD, f"bit flip at {position}"


def test_payload_flips_never_pass_the_crc():
    """Flips strictly inside the coded payload must never return wrong
    bytes; a subset decode-completes and is caught by the CRC."""
    for byte_index in range(HEADER_BYTES, len(STREAM)):
        corrupted = bytearray(STREAM)
        corrupted[byte_index] ^= 0xA5
        out = _decode_or_typed_error(bytes(corrupted))
        assert out is None or out == PAYLOAD


@given(blob=st.binary(max_size=600))
@settings(max_examples=80, deadline=None)
def test_random_garbage_fails_cleanly(blob):
    out = _decode_or_typed_error(blob)
    # Random blobs essentially never carry a valid magic+CRC; accept a
    # clean decode only for the empty container case.
    assert out is None or isinstance(out, bytes)


def test_empty_and_tiny_inputs_are_typed():
    for blob in (b"", b"R", b"RAC1", STREAM[: HEADER_BYTES - 1]):
        assert _decode_or_typed_error(blob) is None


def test_truncated_header_variants():
    """Every header-only prefix of a valid stream is a typed error
    (the declared length promises a payload that is not there)."""
    for cut in range(HEADER_BYTES + 1):
        assert _decode_or_typed_error(STREAM[:cut]) is None


def test_wrong_magic_is_typed():
    assert _decode_or_typed_error(b"XXXX" + STREAM[4:]) is None


def test_reserved_byte_must_be_zero():
    corrupted = bytearray(STREAM)
    corrupted[7] = 1
    assert _decode_or_typed_error(bytes(corrupted)) is None


def test_declared_length_inflation_is_typed():
    """Inflate the length field: decode must hit truncation or CRC
    failure, never run away."""
    corrupted = bytearray(STREAM)
    corrupted[8:12] = (len(PAYLOAD) * 3).to_bytes(4, "little")
    assert _decode_or_typed_error(bytes(corrupted)) is None


@pytest.mark.parametrize("byte_index", [4, 5, 6])
def test_header_parameter_corruption_is_typed_or_caught(byte_index):
    """Corrupt order/chunk/table fields across all 256 values: either
    the header validator rejects them or the CRC catches the desync."""
    for value in range(256):
        corrupted = bytearray(STREAM)
        corrupted[byte_index] = value
        out = _decode_or_typed_error(bytes(corrupted))
        assert out is None or out == PAYLOAD
