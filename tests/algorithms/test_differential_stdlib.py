"""Differential testing against CPython's zlib/gzip.

Our DEFLATE/zlib/gzip implementations claim RFC 1950/1951/1952
conformance; the strongest check available without golden hardware is
the battle-tested stdlib:

* our decoders must decode ``zlib.compress`` output at *every* level
  (0 = stored blocks, 1 = fast/fixed-heavy, 9 = dynamic-heavy) and raw
  deflate streams (``wbits=-15``);
* the stdlib must accept our encoders' output byte-streams.

Corpus shapes mirror the property suite but stay small enough that the
full level sweep (10 levels x both directions) remains fast.
"""

from __future__ import annotations

import gzip as std_gzip
import zlib as std_zlib

import numpy as np
import pytest

from repro.algorithms.deflate import (
    DeflateConfig,
    deflate_compress,
    deflate_decompress,
)
from repro.algorithms.gzip_format import gzip_compress, gzip_decompress
from repro.algorithms.zlib_format import zlib_compress, zlib_decompress

ALL_LEVELS = list(range(10))


def _corpus() -> "list[tuple[str, bytes]]":
    rng = np.random.default_rng(1729)
    ramp = (np.arange(3000) % 253).astype(np.uint8).tobytes()
    return [
        ("empty", b""),
        ("single", b"A"),
        ("text", b"the quick brown fox jumps over the lazy dog. " * 60),
        ("runs", b"\x00" * 2500 + b"\xff" * 2500 + b"ab" * 500),
        ("ramp", ramp),
        ("noise", rng.bytes(3000)),
        ("floats", np.sin(np.linspace(0, 9, 800))
                     .astype(np.float32).tobytes()),
        ("mixed", rng.bytes(700) + b"\x55" * 900 + ramp[:700]),
    ]


CORPUS = _corpus()
CORPUS_IDS = [name for name, _ in CORPUS]


class TestStdlibToOurs:
    """Streams produced by CPython must decode on our side."""

    @pytest.mark.parametrize("level", ALL_LEVELS)
    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_zlib_all_levels(self, payload, level):
        stream = std_zlib.compress(payload, level)
        assert zlib_decompress(stream) == payload

    @pytest.mark.parametrize("level", ALL_LEVELS)
    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_raw_deflate_all_levels(self, payload, level):
        compressor = std_zlib.compressobj(level, std_zlib.DEFLATED, -15)
        stream = compressor.compress(payload) + compressor.flush()
        assert deflate_decompress(stream) == payload

    @pytest.mark.parametrize("level", [1, 6, 9])
    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_gzip(self, payload, level):
        stream = std_gzip.compress(payload, compresslevel=level)
        assert gzip_decompress(stream) == payload

    def test_gzip_with_filename_header(self, tmp_path):
        # gzip.open writes FNAME/MTIME header fields our parser must skip.
        path = tmp_path / "sample.gz"
        with std_gzip.open(path, "wb") as fh:
            fh.write(b"payload with a named header" * 40)
        assert gzip_decompress(path.read_bytes()) == \
            b"payload with a named header" * 40

    def test_zlib_dictionary_free_default_window(self):
        # wbits=15 (64K window) streams with long-range matches.
        payload = (b"X" * 20000) + b"Y" + (b"X" * 20000)
        stream = std_zlib.compress(payload, 9)
        assert zlib_decompress(stream) == payload


class TestOursToStdlib:
    """Streams produced by our encoders must decode in CPython."""

    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_zlib_stream_accepted(self, payload):
        assert std_zlib.decompress(zlib_compress(payload)) == payload

    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_raw_deflate_accepted(self, payload):
        decompressor = std_zlib.decompressobj(-15)
        out = decompressor.decompress(deflate_compress(payload))
        out += decompressor.flush()
        assert out == payload

    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_gzip_stream_accepted(self, payload):
        assert std_gzip.decompress(gzip_compress(payload)) == payload

    @pytest.mark.parametrize("strategy", ["auto", "fixed", "dynamic",
                                          "stored"])
    def test_every_block_strategy_accepted(self, strategy):
        payload = b"strategy sweep " * 200
        stream = deflate_compress(payload, DeflateConfig(strategy=strategy))
        decompressor = std_zlib.decompressobj(-15)
        assert decompressor.decompress(stream) + decompressor.flush() == payload


class TestCrossAgreement:
    """Both stacks agree on intermediate artifacts."""

    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_adler32_matches(self, payload):
        # zlib trailer = Adler-32 of the plaintext; decode with stdlib,
        # re-encode ours, and compare the trailers directly.
        ours = zlib_compress(payload)
        assert ours[-4:] == std_zlib.adler32(payload).to_bytes(4, "big")

    @pytest.mark.parametrize("payload", [p for _, p in CORPUS], ids=CORPUS_IDS)
    def test_crc32_matches(self, payload):
        ours = gzip_compress(payload)
        assert ours[-8:-4] == std_zlib.crc32(payload).to_bytes(4, "little")

    def test_ping_pong(self):
        # ours -> stdlib -> ours -> stdlib survives unchanged.
        payload = bytes(range(256)) * 30
        hop1 = std_zlib.decompress(zlib_compress(payload))
        hop2 = zlib_decompress(std_zlib.compress(hop1, 7))
        assert hop2 == payload
