"""LZ4 block + frame format."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lz4 import (
    Lz4Config,
    lz4_block_compress,
    lz4_block_decompress,
    lz4_compress,
    lz4_decompress,
)
from repro.algorithms.lz4.frame import MAGIC
from repro.errors import ChecksumMismatchError, CorruptStreamError, OutputOverflowError


SAMPLES = [
    b"",
    b"a",
    b"short",
    b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
    b"the quick brown fox jumps over the lazy dog. " * 200,
    np.random.default_rng(0).bytes(4000),
    b"\x00" * 100000,
    bytes(range(256)) * 16,
]


class TestBlock:
    @pytest.mark.parametrize("idx", range(len(SAMPLES)))
    def test_roundtrip(self, idx):
        data = SAMPLES[idx]
        assert lz4_block_decompress(lz4_block_compress(data)) == data

    def test_acceleration_levels(self, text_payload):
        for accel in (1, 4, 16):
            block = lz4_block_compress(text_payload, Lz4Config(acceleration=accel))
            assert lz4_block_decompress(block) == text_payload

    def test_bad_acceleration(self):
        with pytest.raises(ValueError):
            Lz4Config(acceleration=0)

    def test_run_compresses_well(self):
        data = b"z" * 10000
        block = lz4_block_compress(data)
        assert len(block) < 100

    def test_last_five_bytes_are_literals(self):
        # Decode the final sequence: it must be literal-only.
        data = b"abcdefgh" * 50
        block = lz4_block_compress(data)
        assert lz4_block_decompress(block) == data

    def test_zero_offset_rejected(self):
        # token: 1 literal + match; offset 0 is illegal.
        bad = bytes([0x10 | 0x0, ord("x"), 0x00, 0x00])
        with pytest.raises(CorruptStreamError):
            lz4_block_decompress(bad)

    def test_truncated_literal_run(self):
        bad = bytes([0xF0])  # promises >= 15 literals, none present
        with pytest.raises(CorruptStreamError):
            lz4_block_decompress(bad)

    def test_offset_before_start_rejected(self):
        bad = bytes([0x10, ord("x"), 0x05, 0x00])  # offset 5 > output 1
        with pytest.raises(CorruptStreamError):
            lz4_block_decompress(bad)

    def test_output_limit(self):
        data = b"q" * 50000
        block = lz4_block_compress(data)
        with pytest.raises(OutputOverflowError):
            lz4_block_decompress(block, max_output=100)

    def test_long_match_extension_bytes(self):
        # A >270-byte match exercises the 255-saturated extension path.
        data = b"Lorem ipsum " + b"A" * 2000 + b" dolor sit amet"
        block = lz4_block_compress(data)
        assert lz4_block_decompress(block) == data


class TestFrame:
    @pytest.mark.parametrize("idx", range(len(SAMPLES)))
    def test_roundtrip(self, idx):
        data = SAMPLES[idx]
        assert lz4_decompress(lz4_compress(data)) == data

    def test_magic_number(self, text_payload):
        frame = lz4_compress(text_payload)
        assert struct.unpack_from("<I", frame, 0)[0] == MAGIC

    def test_bad_magic_rejected(self, text_payload):
        frame = bytearray(lz4_compress(text_payload))
        frame[0] ^= 1
        with pytest.raises(CorruptStreamError):
            lz4_decompress(bytes(frame))

    def test_header_checksum_verified(self, text_payload):
        frame = bytearray(lz4_compress(text_payload))
        # HC byte is at offset 4 (magic) + 2 (FLG/BD) + 8 (content size).
        frame[14] ^= 0xFF
        with pytest.raises(ChecksumMismatchError):
            lz4_decompress(bytes(frame))

    def test_content_checksum_verified(self, text_payload):
        frame = bytearray(lz4_compress(text_payload))
        frame[-1] ^= 0xFF
        with pytest.raises(ChecksumMismatchError):
            lz4_decompress(bytes(frame))

    def test_multi_block_frames(self):
        data = (b"block content " * 6000)[: 3 * 65536 + 17]
        frame = lz4_compress(data, block_size_code=4)  # 64 KiB blocks
        assert lz4_decompress(frame) == data

    def test_incompressible_blocks_stored(self):
        rng = np.random.default_rng(5)
        data = rng.bytes(200000)
        frame = lz4_compress(data)
        # Stored-block fallback: bounded expansion.
        assert len(frame) < len(data) + 64
        assert lz4_decompress(frame) == data

    def test_invalid_block_size_code(self):
        with pytest.raises(ValueError):
            lz4_compress(b"x", block_size_code=3)

    def test_truncated_frame(self, text_payload):
        frame = lz4_compress(text_payload)
        with pytest.raises(CorruptStreamError):
            lz4_decompress(frame[:20])

    def test_reserved_flg_bits_rejected(self):
        frame = bytearray(lz4_compress(b"data"))
        frame[4] |= 0x03
        with pytest.raises(CorruptStreamError):
            lz4_decompress(bytes(frame))


@given(st.binary(max_size=4000))
@settings(max_examples=60, deadline=None)
def test_property_block_roundtrip(blob):
    assert lz4_block_decompress(lz4_block_compress(blob)) == blob


@given(st.binary(max_size=4000))
@settings(max_examples=40, deadline=None)
def test_property_frame_roundtrip(blob):
    assert lz4_decompress(lz4_compress(blob)) == blob


@given(st.lists(st.sampled_from(b"abcd"), min_size=0, max_size=3000))
@settings(max_examples=30, deadline=None)
def test_property_low_entropy_block(symbols):
    blob = bytes(symbols)
    assert lz4_block_decompress(lz4_block_compress(blob)) == blob
