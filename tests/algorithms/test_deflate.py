"""DEFLATE: roundtrips, stdlib interop, block strategies, corruption."""

import zlib as stdzlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.deflate import (
    DeflateConfig,
    deflate_compress,
    deflate_decompress,
)
from repro.algorithms.lz77 import MatcherConfig
from repro.errors import CorruptStreamError, OutputOverflowError


def std_deflate(data: bytes, level: int = 6) -> bytes:
    """Raw DEFLATE stream from the stdlib (strip zlib wrapper)."""
    compressor = stdzlib.compressobj(level, stdzlib.DEFLATED, -15)
    return compressor.compress(data) + compressor.flush()


SAMPLES = [
    b"",
    b"a",
    b"aaaaaaaaaaaaaaaaaaaaaaaaa",
    b"the quick brown fox jumps over the lazy dog. " * 100,
    bytes(range(256)) * 20,
    np.random.default_rng(0).bytes(3000),
    b"\x00" * 70000,  # forces >1 stored chunk if stored is chosen
]


class TestRoundtrip:
    @pytest.mark.parametrize("idx", range(len(SAMPLES)))
    def test_roundtrip(self, idx):
        data = SAMPLES[idx]
        assert deflate_decompress(deflate_compress(data)) == data

    @pytest.mark.parametrize("strategy", ["auto", "fixed", "dynamic", "stored"])
    def test_strategies(self, strategy, text_payload):
        cfg = DeflateConfig(strategy=strategy)
        stream = deflate_compress(text_payload, cfg)
        assert deflate_decompress(stream) == text_payload

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            DeflateConfig(strategy="best")

    def test_oversized_window_rejected(self):
        with pytest.raises(ValueError):
            DeflateConfig(matcher=MatcherConfig(window_size=65536))

    def test_oversized_match_rejected(self):
        with pytest.raises(ValueError):
            DeflateConfig(matcher=MatcherConfig(max_match=512))

    def test_multi_block(self, text_payload):
        cfg = DeflateConfig(block_tokens=64)
        stream = deflate_compress(text_payload, cfg)
        assert deflate_decompress(stream) == text_payload

    def test_stored_fallback_on_random(self):
        rng = np.random.default_rng(1)
        data = rng.bytes(100000)
        stream = deflate_compress(data)
        # Random data must not expand meaningfully (stored fallback).
        assert len(stream) < len(data) * 1.01
        assert deflate_decompress(stream) == data

    def test_compressible_text_ratio(self, text_payload):
        stream = deflate_compress(text_payload)
        assert len(text_payload) / len(stream) > 5.0


class TestStdlibInterop:
    @pytest.mark.parametrize("idx", range(len(SAMPLES)))
    def test_stdlib_inflates_ours(self, idx):
        data = SAMPLES[idx]
        assert stdzlib.decompress(deflate_compress(data), wbits=-15) == data

    @pytest.mark.parametrize("idx", range(len(SAMPLES)))
    def test_we_inflate_stdlib(self, idx):
        data = SAMPLES[idx]
        assert deflate_decompress(std_deflate(data)) == data

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_we_inflate_all_stdlib_levels(self, level, text_payload):
        assert deflate_decompress(std_deflate(text_payload, level)) == text_payload

    def test_stdlib_inflates_fixed_blocks(self, text_payload):
        stream = deflate_compress(text_payload[:500], DeflateConfig(strategy="fixed"))
        assert stdzlib.decompress(stream, wbits=-15) == text_payload[:500]

    def test_stdlib_inflates_stored_blocks(self):
        data = b"\x01\x02" * 40000
        stream = deflate_compress(data, DeflateConfig(strategy="stored"))
        assert stdzlib.decompress(stream, wbits=-15) == data


class TestCorruption:
    def test_truncated_stream(self, text_payload):
        stream = deflate_compress(text_payload)
        with pytest.raises(CorruptStreamError):
            deflate_decompress(stream[: len(stream) // 2])

    def test_reserved_block_type(self):
        with pytest.raises(CorruptStreamError):
            deflate_decompress(bytes([0b111]))  # BFINAL=1, BTYPE=3

    def test_stored_len_nlen_mismatch(self):
        # BFINAL=1, BTYPE=00, aligned, LEN=5, NLEN=5 (must be ~5).
        with pytest.raises(CorruptStreamError):
            deflate_decompress(bytes([0b001, 5, 0, 5, 0]) + b"hello")

    def test_output_limit_enforced(self, text_payload):
        stream = deflate_compress(text_payload)
        with pytest.raises(OutputOverflowError):
            deflate_decompress(stream, max_output=10)

    def test_output_limit_exact_size_passes(self, text_payload):
        stream = deflate_compress(text_payload)
        out = deflate_decompress(stream, max_output=len(text_payload))
        assert out == text_payload

    def test_empty_input_stream(self):
        with pytest.raises(CorruptStreamError):
            deflate_decompress(b"")


@given(st.binary(max_size=4000))
@settings(max_examples=50, deadline=None)
def test_property_roundtrip(blob):
    assert deflate_decompress(deflate_compress(blob)) == blob


@given(st.binary(max_size=4000))
@settings(max_examples=50, deadline=None)
def test_property_stdlib_differential(blob):
    """Our stream decodes under stdlib; stdlib's decodes under ours."""
    assert stdzlib.decompress(deflate_compress(blob), wbits=-15) == blob
    assert deflate_decompress(std_deflate(blob)) == blob


@given(
    st.lists(
        st.tuples(st.sampled_from([b"abc", b"xy", b"hello world ", b"\x00\x00"]),
                  st.integers(1, 50)),
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_structured_repetition(chunks):
    blob = b"".join(piece * count for piece, count in chunks)
    stream = deflate_compress(blob)
    assert deflate_decompress(stream) == blob
    assert stdzlib.decompress(stream, wbits=-15) == blob
