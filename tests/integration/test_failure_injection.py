"""Failure injection: corrupted messages and misuse must fail loudly.

The PEDAL header + per-format checksums are the integrity story of the
wire protocol; these tests flip bits at every layer and assert the
right error class surfaces (never silent corruption).
"""

import numpy as np
import pytest

from repro.core import PedalContext
from repro.core.designs import Placement
from repro.dpu import make_device
from repro.errors import (
    ChecksumMismatchError,
    CorruptStreamError,
    HeaderError,
    ReproError,
)
from repro.sim import Environment


@pytest.fixture
def ctx(env, bf2, run_sim):
    context = PedalContext(bf2)
    run_sim(env, context.init())
    return context


def _flip(blob: bytes, index: int) -> bytes:
    out = bytearray(blob)
    out[index] ^= 0xFF
    return bytes(out)


class TestWireCorruption:
    def test_corrupt_header_sentinel(self, env, ctx, run_sim, text_payload):
        comp = run_sim(env, ctx.compress(text_payload, "C-Engine_zlib"))
        with pytest.raises(HeaderError):
            run_sim(env, ctx.decompress(_flip(comp.message, 0)))

    def test_corrupt_algo_id(self, env, ctx, run_sim, text_payload):
        comp = run_sim(env, ctx.compress(text_payload, "SoC_DEFLATE"))
        bad = bytearray(comp.message)
        bad[1] = 77  # unknown AlgoID
        with pytest.raises(HeaderError):
            run_sim(env, ctx.decompress(bytes(bad)))

    def test_zlib_payload_bitflip_detected(self, env, ctx, run_sim, text_payload):
        comp = run_sim(env, ctx.compress(text_payload, "C-Engine_zlib"))
        # Flip the adler trailer: checksum must catch it.
        with pytest.raises((ChecksumMismatchError, CorruptStreamError)):
            run_sim(env, ctx.decompress(_flip(comp.message, len(comp.message) - 1)))

    def test_lz4_frame_bitflip_detected(self, env, ctx, run_sim, text_payload):
        comp = run_sim(env, ctx.compress(text_payload, "SoC_LZ4"))
        with pytest.raises((ChecksumMismatchError, CorruptStreamError)):
            run_sim(env, ctx.decompress(_flip(comp.message, len(comp.message) - 2)))

    def test_truncated_message(self, env, ctx, run_sim, text_payload):
        comp = run_sim(env, ctx.compress(text_payload, "SoC_DEFLATE"))
        with pytest.raises(ReproError):
            run_sim(env, ctx.decompress(comp.message[: len(comp.message) // 3]))

    def test_sz3_header_corruption(self, env, ctx, run_sim, smooth_field):
        comp = run_sim(env, ctx.compress(smooth_field, "C-Engine_SZ3"))
        # Corrupt the SZ3R format header (dtype code region).
        with pytest.raises(ReproError):
            run_sim(
                env,
                ctx.decompress(_flip(comp.message, 8), Placement.CENGINE),
            )

    def test_sz3_zstdlite_backend_blob_corruption_detected(
        self, env, ctx, run_sim, smooth_field
    ):
        """The SoC design's zstd-lite backend carries an xxh32 content
        checksum, so blob corruption is caught.  (The C-Engine design's
        raw-DEFLATE backend has no integrity check — as with real
        SZ3-over-DOCA — so only the format headers protect that path.)"""
        comp = run_sim(env, ctx.compress(smooth_field, "SoC_SZ3"))
        with pytest.raises(ReproError):
            run_sim(
                env,
                ctx.decompress(
                    _flip(comp.message, len(comp.message) // 2), Placement.SOC
                ),
            )

    @pytest.mark.parametrize("position", [0.1, 0.5, 0.9])
    def test_deflate_bitflips_never_return_wrong_bytes(
        self, env, ctx, run_sim, text_payload, position
    ):
        """A flipped bit either raises or (rarely, e.g. inside a dynamic
        tree's unused entry) still decodes to the original bytes —
        never silently to different bytes for zlib (checksummed)."""
        comp = run_sim(env, ctx.compress(text_payload, "SoC_zlib"))
        index = 3 + int((len(comp.message) - 4) * position)
        try:
            dec = run_sim(env, ctx.decompress(_flip(comp.message, index)))
        except ReproError:
            return
        assert dec.data == text_payload


class TestMpiLevelCorruption:
    def test_corrupted_wire_payload_fails_at_receiver(self, text_payload):
        """Corruption injected between send and recv surfaces as an
        error in the receiving rank (and aborts the job)."""
        from repro.mpi import CommConfig, CommMode, run_mpi

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, text_payload, sim_bytes=5.1e6)
                return None
            envlp = yield from ctx.comm.recv(ctx.rank, source=0)
            envlp_payload = _flip(envlp.payload, len(envlp.payload) - 1)
            data = yield from ctx.layer.inbound(envlp_payload, envlp.meta)
            return data

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_zlib")
        with pytest.raises(ReproError):
            run_mpi(program, 2, "bf2", cfg)


class TestResourceMisuse:
    def test_compress_after_finalize(self, env, ctx, run_sim, text_payload):
        from repro.errors import PedalNotInitializedError

        run_sim(env, ctx.finalize())
        with pytest.raises(PedalNotInitializedError):
            run_sim(env, ctx.compress(text_payload, "SoC_DEFLATE"))

    def test_lossy_design_rejects_bytes(self, env, ctx, run_sim, text_payload):
        from repro.errors import UnsupportedDataError

        with pytest.raises(UnsupportedDataError):
            run_sim(env, ctx.compress(text_payload, "SoC_SZ3"))

    def test_lossless_design_accepts_float_arrays_as_bytes(
        self, env, ctx, run_sim, smooth_field
    ):
        comp = run_sim(env, ctx.compress(smooth_field, "SoC_DEFLATE"))
        dec = run_sim(env, ctx.decompress(comp.message, Placement.SOC))
        out = np.frombuffer(dec.data, dtype=np.float32)
        np.testing.assert_array_equal(out, smooth_field)
