"""Cross-subsystem integration scenarios."""

import numpy as np
import pytest

from repro.core import PedalContext
from repro.core.designs import ALL_DESIGNS
from repro.datasets import DATASETS, get_dataset
from repro.dpu import make_device
from repro.mpi import CommConfig, CommMode, run_mpi
from repro.sim import Environment


class TestEveryDesignOnEveryDataset:
    """The full (design x dataset x device) cube round-trips."""

    @pytest.mark.parametrize("device_kind", ["bf2", "bf3"])
    def test_cube(self, device_kind):
        env = Environment()
        device = make_device(env, device_kind)
        ctx = PedalContext(device)
        env.run(until=env.process(ctx.init()))

        def drive(gen):
            return env.run(until=env.process(gen))

        for dataset in DATASETS.values():
            payload = dataset.generate(16 * 1024)
            for design in ALL_DESIGNS:
                if design.is_lossy != (dataset.kind == "lossy"):
                    continue
                comp = drive(ctx.compress(payload, design, dataset.nominal_bytes))
                dec = drive(
                    ctx.decompress(
                        comp.message, design.placement, dataset.nominal_bytes
                    )
                )
                if design.is_lossy:
                    err = np.abs(
                        dec.data.astype(np.float64) - payload.astype(np.float64)
                    ).max()
                    assert err <= 1e-4 + 1e-6, (dataset.key, design.label)
                else:
                    assert dec.data == payload, (dataset.key, design.label)


class TestMixedClusterPipeline:
    def test_bf2_sender_bf3_receiver(self, text_payload):
        """Heterogeneous pt2pt: compressed on BF2, decompressed on BF3
        (whose C-Engine *can* decompress DEFLATE natively)."""
        env = Environment()
        devices = [make_device(env, "bf2"), make_device(env, "bf3")]

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, text_payload, sim_bytes=5.1e6)
                return None
            data = yield from ctx.recv(source=0)
            return data

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        result = run_mpi(program, 2, devices=devices, env=env, comm_config=cfg)
        assert result.returns[1] == text_payload

    def test_many_rank_halo_exchange(self):
        """A 1-D halo exchange (the classic stencil pattern) with SZ3
        compression of float boundaries."""
        n_ranks = 6
        fields = [
            np.sin(np.linspace(0, 10, 50000) + r).astype(np.float32)
            for r in range(n_ranks)
        ]

        def program(ctx):
            mine = fields[ctx.rank]
            left = (ctx.rank - 1) % ctx.size
            right = (ctx.rank + 1) % ctx.size
            req = ctx.isend(right, mine, tag=1, sim_bytes=10e6)
            ghost = yield from ctx.recv(source=left, tag=1)
            yield from req.wait()
            err = np.abs(
                ghost.astype(np.float64) - fields[left].astype(np.float64)
            ).max()
            return float(err)

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_SZ3")
        result = run_mpi(program, n_ranks, "bf2", cfg)
        assert all(err <= 1e-4 + 1e-6 for err in result.returns)


class TestInitAmortisation:
    def test_init_cost_amortises_over_messages(self, text_payload):
        """PEDAL beats naive after a handful of messages despite paying
        DOCA init once in MPI_Init — the co-design's central claim."""

        def make_program(k_messages):
            def program(ctx):
                if ctx.rank == 0:
                    for _ in range(k_messages):
                        yield from ctx.send(1, text_payload, sim_bytes=5.1e6)
                    return ctx.wtime()
                for _ in range(k_messages):
                    yield from ctx.recv(source=0)
                return ctx.wtime()

            return program

        def total(mode, k):
            cfg = CommConfig(mode=mode, design="C-Engine_DEFLATE")
            result = run_mpi(make_program(k), 2, "bf2", cfg)
            # Include init for a fair end-to-end comparison.
            return result.init_seconds + result.elapsed_seconds

        # A few messages in, init (DOCA + ~400 ms of pool prewarm at
        # default sizing) still dominates and naive can win...
        # ...but by eight messages PEDAL is already ahead.
        assert total(CommMode.PEDAL, 8) < total(CommMode.NAIVE, 8)
        # And the gap widens dramatically.
        assert total(CommMode.PEDAL, 64) * 5 < total(CommMode.NAIVE, 64)


class TestDatasetToWire:
    def test_table_iv_payload_through_collective(self):
        """A Table IV dataset travelling through a compressed
        scatter+allgather broadcast on four nodes arrives intact."""
        payload = get_dataset("silesia/mozilla").generate(64 * 1024)

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            out = yield from ctx.bcast(
                data, root=0, sim_bytes=48.85e6, algorithm="scatter_allgather"
            )
            return out == payload

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_zlib")
        assert all(run_mpi(program, 4, "bf2", cfg).returns)
