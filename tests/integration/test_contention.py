"""Contention stress: shared C-Engine, core pool, and fabric under load.

The simulator's value over a spreadsheet is precisely these effects:
queueing on the single-server C-Engine, SoC core exhaustion, and wire
serialisation.  These tests pin the arithmetic down.
"""

import pytest

from repro.core import PedalContext
from repro.dpu import make_device
from repro.dpu.specs import Algo, Direction
from repro.mpi import CommConfig, CommMode, run_mpi
from repro.sim import Environment


class TestCEngineQueueing:
    def test_n_streams_serialise_linearly(self, text_payload):
        """K concurrent C-Engine compressions finish in ~K x one job."""
        nominal = 5.1e6
        results = {}
        from repro.core import PedalConfig

        for k in (1, 4, 8):
            env = Environment()
            device = make_device(env, "bf2")
            # Pool sized to the stream count: isolate pure queueing
            # (pool-miss effects are the mempool ablation's subject).
            ctx = PedalContext(device, PedalConfig(pool_buffers=8))
            env.run(until=env.process(ctx.init()))
            t0 = env.now

            def job(env, ctx):
                yield from ctx.compress(text_payload, "C-Engine_DEFLATE", nominal)

            procs = [env.process(job(env, ctx)) for _ in range(k)]
            env.run(until=env.all_of(procs))
            results[k] = env.now - t0
        one_job = make_device(Environment(), "bf2").cal.cengine_time(
            Algo.DEFLATE, Direction.COMPRESS, nominal
        )
        assert results[1] == pytest.approx(one_job, rel=0.01)
        assert results[8] == pytest.approx(8 * one_job, rel=0.01)

    def test_soc_designs_unaffected_by_engine_load(self, text_payload):
        """SoC compressions proceed while the engine is saturated."""
        env = Environment()
        device = make_device(env, "bf2")
        ctx = PedalContext(device)
        env.run(until=env.process(ctx.init()))

        def engine_hog(env, ctx):
            for _ in range(4):
                yield from ctx.compress(text_payload, "C-Engine_DEFLATE", 48.85e6)

        t0 = env.now  # after init

        def soc_job(env, ctx):
            yield from ctx.compress(text_payload, "SoC_LZ4", 5.1e6)
            return env.now - t0

        env.process(engine_hog(env, ctx))
        soc = env.process(soc_job(env, ctx))
        done = env.run(until=soc)
        expected = device.cal.soc_time(Algo.LZ4, Direction.COMPRESS, 5.1e6)
        assert done == pytest.approx(expected, rel=0.01)

    def test_soc_core_exhaustion_queues(self, text_payload):
        """More SoC streams than cores: completion steps by core count."""
        env = Environment()
        device = make_device(env, "bf2")  # 8 cores
        ctx = PedalContext(device)
        env.run(until=env.process(ctx.init()))
        finish = []

        def job(env, ctx):
            yield from ctx.compress(text_payload, "SoC_DEFLATE", 5.1e6)
            finish.append(env.now)

        base = env.now
        for _ in range(9):
            env.process(job(env, ctx))
        env.run()
        one = device.cal.soc_time(Algo.DEFLATE, Direction.COMPRESS, 5.1e6)
        # Eight finish together, the ninth a full slot later.
        assert finish[7] - base == pytest.approx(one, rel=0.01)
        assert finish[8] - base == pytest.approx(2 * one, rel=0.01)


class TestFabricContention:
    def test_fan_in_serialises_on_receiver_links(self):
        """Many senders to one receiver: distinct directed links, so
        transfers overlap (full-bisection switch), but the receiver's
        processing of rendezvous handshakes still interleaves."""
        payload = b"m" * 100000

        def program(ctx):
            if ctx.rank == 0:
                for src in range(1, ctx.size):
                    yield from ctx.recv(source=src)
                return ctx.wtime()
            yield from ctx.send(0, payload, sim_bytes=25e6)
            return None

        t4 = run_mpi(program, 4).returns[0]
        t2 = run_mpi(program, 2).returns[0]
        assert t4 > t2  # more senders -> strictly more receive time

    def test_compressed_fan_in_bottlenecks_on_receiver_engine(self):
        """With PEDAL C-Engine decompression, the receiver's single
        engine is the fan-in bottleneck: time grows ~linearly with
        the sender count."""
        payload = (b"pattern " * 20000)[:100000]

        def make(n):
            def program(ctx):
                if ctx.rank == 0:
                    t0 = ctx.wtime()  # excludes MPI_Init/PEDAL_init
                    for src in range(1, ctx.size):
                        yield from ctx.recv(source=src)
                    return ctx.wtime() - t0
                yield from ctx.send(0, payload, sim_bytes=5.1e6)
                return None

            return program

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        t3 = run_mpi(make(3), 3, "bf2", cfg).returns[0]
        t5 = run_mpi(make(5), 5, "bf2", cfg).returns[0]
        # 2 decompressions vs 4: engine-bound, so ~2x.
        assert t5 / t3 == pytest.approx(2.0, rel=0.25)
