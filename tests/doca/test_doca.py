"""DOCA-like SDK: session lifecycle, buffers, job submission."""

import pytest

from repro.doca import BufInventory, DocaSession, submit_job
from repro.dpu.specs import Algo, Direction
from repro.errors import DocaBufferError, DocaCapabilityError, DocaNotInitializedError


class TestSessionLifecycle:
    def test_open_charges_init_time(self, env, bf2, run_sim):
        session = DocaSession(bf2)
        assert not session.is_open
        seconds = run_sim(env, session.open())
        assert seconds == pytest.approx(bf2.cal.doca_init_time)
        assert session.is_open
        assert env.now == pytest.approx(seconds)

    def test_double_open_is_free(self, env, bf2, run_sim):
        session = DocaSession(bf2)
        run_sim(env, session.open())
        t = env.now
        assert run_sim(env, session.open()) == 0.0
        assert env.now == t

    def test_operations_require_open(self, env, bf2, run_sim):
        session = DocaSession(bf2)
        with pytest.raises(DocaNotInitializedError):
            run_sim(env, session.create_inventory())

    def test_close(self, env, bf2, run_sim):
        session = DocaSession(bf2)
        run_sim(env, session.open())
        session.close()
        assert not session.is_open


class TestBuffers:
    def _open(self, env, bf2, run_sim) -> tuple[DocaSession, BufInventory]:
        session = DocaSession(bf2)
        run_sim(env, session.open())
        inventory, seconds = run_sim(env, session.create_inventory())
        assert seconds == pytest.approx(bf2.cal.buffer_fixed_time)
        return session, inventory

    def test_map_buffer_charges_alloc_plus_map(self, env, bf2, run_sim):
        _, inv = self._open(env, bf2, run_sim)
        n = 10 * 1024 * 1024
        buf = run_sim(env, inv.map_buffer(n))
        expected = bf2.memory.alloc_time(n) + bf2.memory.dma_map_time(n)
        assert buf.map_seconds == pytest.approx(expected)
        assert inv.mapped_bytes == n
        assert inv.n_buffers == 1

    def test_negative_size_rejected(self, env, bf2, run_sim):
        _, inv = self._open(env, bf2, run_sim)
        with pytest.raises(DocaBufferError):
            run_sim(env, inv.map_buffer(-1))

    def test_release(self, env, bf2, run_sim):
        _, inv = self._open(env, bf2, run_sim)
        buf = run_sim(env, inv.map_buffer(1024))
        buf.release()
        assert not buf.is_live
        assert inv.n_buffers == 0
        buf.release()  # idempotent


class TestJobs:
    def _setup(self, env, bf2, run_sim):
        session = DocaSession(bf2)
        run_sim(env, session.open())
        inventory, _ = run_sim(env, session.create_inventory())
        buf = run_sim(env, inventory.map_buffer(int(6e6)))
        return session, buf

    def test_submit_compress(self, env, bf2, run_sim):
        session, buf = self._setup(env, bf2, run_sim)
        seconds = run_sim(
            env, submit_job(session, Algo.DEFLATE, Direction.COMPRESS, buf, int(5.1e6))
        )
        assert seconds == pytest.approx(
            bf2.cal.cengine_time(Algo.DEFLATE, Direction.COMPRESS, 5.1e6)
        )

    def test_defaults_to_full_buffer(self, env, bf2, run_sim):
        session, buf = self._setup(env, bf2, run_sim)
        seconds = run_sim(
            env, submit_job(session, Algo.DEFLATE, Direction.DECOMPRESS, buf)
        )
        assert seconds == pytest.approx(
            bf2.cal.cengine_time(Algo.DEFLATE, Direction.DECOMPRESS, buf.nbytes)
        )

    def test_oversized_job_rejected(self, env, bf2, run_sim):
        session, buf = self._setup(env, bf2, run_sim)
        with pytest.raises(DocaBufferError):
            run_sim(
                env,
                submit_job(
                    session, Algo.DEFLATE, Direction.COMPRESS, buf, buf.nbytes + 1
                ),
            )

    def test_released_buffer_rejected(self, env, bf2, run_sim):
        session, buf = self._setup(env, bf2, run_sim)
        buf.release()
        with pytest.raises(DocaBufferError):
            run_sim(env, submit_job(session, Algo.DEFLATE, Direction.COMPRESS, buf))

    def test_capability_error_on_bf3_compress(self, env, bf3, run_sim):
        session = DocaSession(bf3)
        run_sim(env, session.open())
        inventory, _ = run_sim(env, session.create_inventory())
        buf = run_sim(env, inventory.map_buffer(1024))
        with pytest.raises(DocaCapabilityError):
            run_sim(env, submit_job(session, Algo.DEFLATE, Direction.COMPRESS, buf))
