"""Deadlock/starvation stress: extreme depths, tiny rings, big batches."""

from __future__ import annotations

import pytest

from repro.dpu import make_device
from repro.dpu.specs import Direction
from repro.sched import PipelineScheduler, SchedConfig
from repro.sim import Environment


def _run(jobs, config, device_kind="bf2"):
    env = Environment()
    device = make_device(env, device_kind)
    sched = PipelineScheduler(device, config)
    proc = env.process(sched.submit_many(jobs))
    outcomes = env.run(until=proc)
    return env.now, outcomes


class TestExtremeDepths:
    def test_depth_one_completes(self, make_jobs):
        _, outcomes = _run(make_jobs(8), SchedConfig(depth=1))
        assert len(outcomes) == 8
        assert all(o.engine == "cengine" for o in outcomes)

    def test_depth_far_exceeding_jobs(self, make_jobs):
        # depth >> chunks: admission never blocks, the engine's single
        # server is the only serialisation point, and nothing deadlocks.
        _, outcomes = _run(make_jobs(4), SchedConfig(depth=64))
        assert len(outcomes) == 4

    def test_depth_grid_monotone_makespan(self, make_jobs):
        jobs = make_jobs(16, sim_bytes=6e6)
        times = [_run(jobs, SchedConfig(depth=d))[0] for d in (1, 2, 4, 16)]
        # Deeper queues never hurt the makespan...
        assert all(b <= a + 1e-12 for a, b in zip(times, times[1:]))
        # ...and depth 2 strictly beats serial.
        assert times[1] < times[0]

    def test_deep_queue_saturates_at_engine_rate(self, make_jobs):
        # Past depth 2 the single-server exec stage is the bottleneck:
        # going deeper buys (almost) nothing.
        jobs = make_jobs(16, sim_bytes=6e6)
        t2 = _run(jobs, SchedConfig(depth=2))[0]
        t16 = _run(jobs, SchedConfig(depth=16))[0]
        assert t16 == pytest.approx(t2, rel=0.05)


class TestTinyRings:
    def test_ring_smaller_than_depth_still_completes(self, make_jobs):
        # One mapped buffer for four queue slots: jobs backpressure on
        # the ring instead of the queue, but nothing deadlocks.
        _, outcomes = _run(
            make_jobs(12), SchedConfig(depth=4, ring_buffers=1)
        )
        assert len(outcomes) == 12
        assert [o.index for o in outcomes] == list(range(12))

    def test_single_slot_single_buffer(self, make_jobs):
        _, outcomes = _run(
            make_jobs(6), SchedConfig(depth=1, ring_buffers=1)
        )
        assert len(outcomes) == 6

    def test_tiny_ring_costs_throughput_not_correctness(self, make_jobs):
        jobs = make_jobs(12, sim_bytes=6e6)
        starved = _run(jobs, SchedConfig(depth=4, ring_buffers=1))[0]
        buffered = _run(jobs, SchedConfig(depth=4))[0]
        assert buffered <= starved


class TestMixedSizes:
    def test_growing_jobs_regrow_ring_slots(self, make_jobs):
        # Increasing sizes force ring_grow re-registrations; order and
        # payloads survive.
        from repro.dpu.specs import Algo
        from repro.sched import EngineJob

        jobs = [
            EngineJob(Algo.DEFLATE, Direction.COMPRESS, 1e5 * (i + 1),
                      payload=bytes([i]) * 32, tag=i)
            for i in range(10)
        ]
        _, outcomes = _run(jobs, SchedConfig(depth=2))
        assert [o.tag for o in outcomes] == list(range(10))
        assert [o.payload for o in outcomes] == [j.payload for j in jobs]

    def test_large_batch(self, make_jobs):
        _, outcomes = _run(make_jobs(64), SchedConfig(depth=3))
        assert len(outcomes) == 64
        assert [o.index for o in outcomes] == list(range(64))
