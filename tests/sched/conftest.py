"""Fixtures for the work-queue scheduler suite."""

from __future__ import annotations

import pytest

from repro.dpu.specs import Algo, Direction
from repro.faults import NULL_PLAN, set_fault_plan
from repro.sched import EngineJob


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Every test starts from (and restores) the no-fault plan."""
    previous = set_fault_plan(NULL_PLAN)
    yield
    set_fault_plan(previous)


@pytest.fixture
def make_jobs():
    """Build n DEFLATE compress jobs with distinct payloads and tags."""

    def _make(n: int, sim_bytes: float = 1e6,
              direction: Direction = Direction.COMPRESS):
        return [
            EngineJob(
                Algo.DEFLATE,
                direction,
                sim_bytes,
                payload=bytes([i % 251]) * 64,
                tag=f"job-{i}",
            )
            for i in range(n)
        ]

    return _make
