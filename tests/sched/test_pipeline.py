"""Core behavior of the bounded-depth pipelined work queue."""

from __future__ import annotations

import pytest

from repro import obs
from repro.dpu.specs import Algo, Direction
from repro.errors import DocaCapabilityError
from repro.sched import EngineJob, PipelineScheduler, SchedConfig


def run_many(device, jobs, config=None):
    sched = PipelineScheduler(device, config)
    env = device.env
    proc = env.process(sched.submit_many(jobs))
    return sched, env.run(until=proc)


class TestSubmission:
    def test_outcomes_in_submission_order(self, bf2, make_jobs):
        jobs = make_jobs(6)
        _, outcomes = run_many(bf2, jobs, SchedConfig(depth=3))
        assert [o.index for o in outcomes] == list(range(6))
        assert [o.tag for o in outcomes] == [j.tag for j in jobs]
        assert [o.payload for o in outcomes] == [j.payload for j in jobs]

    def test_empty_batch(self, bf2, run_sim):
        sched = PipelineScheduler(bf2)
        assert run_sim(bf2.env, sched.submit_many([])) == []

    def test_single_ticket_wait(self, bf2, make_jobs, run_sim):
        sched = PipelineScheduler(bf2)
        ticket = sched.submit(make_jobs(1)[0])
        assert not ticket.done
        outcome = run_sim(bf2.env, ticket.wait())
        assert ticket.done
        assert outcome.engine == "cengine"
        assert outcome.attempts == 1
        assert outcome.seconds > 0

    def test_counters(self, bf2, make_jobs):
        sched, _ = run_many(bf2, make_jobs(5))
        assert sched.jobs_completed == 5
        assert sched.jobs_stolen == 0
        assert sched.in_flight == 0
        assert sched.queued == 0


class TestValidation:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            SchedConfig(depth=0)

    def test_ring_must_be_positive(self):
        with pytest.raises(ValueError):
            SchedConfig(ring_buffers=0)

    def test_default_ring_is_depth_plus_one(self):
        assert SchedConfig(depth=3).ring_size == 4
        assert SchedConfig(depth=3, ring_buffers=2).ring_size == 2

    def test_negative_job_size_rejected(self):
        with pytest.raises(ValueError):
            EngineJob(Algo.DEFLATE, Direction.COMPRESS, -1.0)


class TestCapability:
    def test_reject_raises_up_front_without_fallback(self, bf3, make_jobs):
        # BF3's engine is decompress-only (Table III).
        sched = PipelineScheduler(bf3, SchedConfig(soc_fallback=False))
        with pytest.raises(DocaCapabilityError):
            sched.submit(make_jobs(1)[0])

    def test_reject_steals_to_soc_with_fallback(self, bf3, make_jobs):
        sched, outcomes = run_many(bf3, make_jobs(3), SchedConfig(depth=2))
        assert [o.engine for o in outcomes] == ["soc"] * 3
        assert all(o.attempts == 0 for o in outcomes)
        assert sched.jobs_stolen == 3

    def test_supported_direction_uses_engine(self, bf3, make_jobs):
        jobs = make_jobs(3, direction=Direction.DECOMPRESS)
        _, outcomes = run_many(bf3, jobs)
        assert [o.engine for o in outcomes] == ["cengine"] * 3


class TestPipelining:
    def test_depth_two_beats_serial(self, make_jobs):
        jobs = make_jobs(8, sim_bytes=6e6)
        serial, _ = _timed_fresh(jobs, SchedConfig(depth=1))
        piped, _ = _timed_fresh(jobs, SchedConfig(depth=2))
        assert piped < serial

    def test_occupancy_bounded_by_depth(self, bf2, make_jobs):
        metrics = obs.MetricsRegistry()
        prev = obs.set_metrics(metrics)
        try:
            run_many(bf2, make_jobs(8, sim_bytes=6e6), SchedConfig(depth=2))
        finally:
            obs.set_metrics(prev)
        gauge = metrics.gauge("sched.occupancy")
        assert gauge.max == 2.0
        assert gauge.min == 0.0

    def test_ring_reuse_after_warmup(self, bf2, make_jobs):
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            run_many(bf2, make_jobs(8, sim_bytes=6e6), SchedConfig(depth=2))
        finally:
            obs.set_tracer(prev)
        sources = [
            s.attrs.get("source") for s in tracer.spans if s.name == "sched.map"
        ]
        # The ring maps lazily: at depth 2 only two buffers are ever
        # needed concurrently, so two cold maps and the rest reuse.
        assert sources.count("ring_map") == 2
        assert sources.count("ring_reuse") == 6


def _timed(device, jobs, config):
    sched = PipelineScheduler(device, config)
    env = device.env
    start = env.now
    proc = env.process(sched.submit_many(jobs))
    outcomes = env.run(until=proc)
    return env.now - start, outcomes


def _timed_fresh(jobs, config):
    from repro.dpu import make_device
    from repro.sim import Environment

    env = Environment()
    device = make_device(env, "bf2")
    return _timed(device, jobs, config)
