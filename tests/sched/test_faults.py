"""Fault-injection interplay: slot release, retry re-entry, work-steal."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.parallel import ParallelCompressor, ParallelConfig
from repro.dpu import make_device
from repro.errors import DocaTransientError
from repro.faults import FaultPlan, set_fault_plan
from repro.faults.policy import RetryPolicy
from repro.sched import PipelineScheduler, SchedConfig
from repro.sim import Environment

_NOMINAL = 48.85e6


def _run(jobs, config, plan=None, device_kind="bf2"):
    prev = set_fault_plan(plan) if plan is not None else None
    try:
        env = Environment()
        device = make_device(env, device_kind)
        sched = PipelineScheduler(device, config)
        proc = env.process(sched.submit_many(jobs))
        outcomes = env.run(until=proc)
    finally:
        if plan is not None:
            set_fault_plan(prev)
    return env.now, sched, outcomes


class TestRetryBudget:
    def test_persistent_failure_steals_to_soc(self, make_jobs):
        _, sched, outcomes = _run(
            make_jobs(4), SchedConfig(depth=2),
            plan=FaultPlan(seed=3, engine_fail=1.0),
        )
        assert [o.engine for o in outcomes] == ["soc"] * 4
        assert all(o.attempts == 3 for o in outcomes)
        assert sched.jobs_stolen == 4

    def test_persistent_failure_raises_without_fallback(self, make_jobs):
        with pytest.raises(DocaTransientError):
            _run(
                make_jobs(2), SchedConfig(depth=2, soc_fallback=False),
                plan=FaultPlan(seed=3, engine_fail=1.0),
            )

    def test_stall_mid_pipeline_releases_slot_and_retries(self, make_jobs):
        # A stall surfaces as DocaTimeoutError: the job's slot frees,
        # the stall time is charged to its exec stage, and the retry
        # re-enters the pipeline until the budget exhausts.
        clean_t, _, _ = _run(make_jobs(4, sim_bytes=6e6), SchedConfig(depth=2))
        stall_t, sched, outcomes = _run(
            make_jobs(4, sim_bytes=6e6), SchedConfig(depth=2),
            plan=FaultPlan(seed=5, engine_stall=1.0, stall_factor=8.0),
        )
        assert all(o.attempts == 3 for o in outcomes)
        assert sched.jobs_stolen == 4
        assert all(o.exec_seconds > 0 for o in outcomes)
        assert stall_t > clean_t

    def test_retry_metrics_recorded(self, make_jobs):
        metrics = obs.MetricsRegistry()
        prev = obs.set_metrics(metrics)
        try:
            _run(
                make_jobs(3), SchedConfig(depth=2),
                plan=FaultPlan(seed=3, engine_fail=1.0),
            )
        finally:
            obs.set_metrics(prev)
        # 3 jobs x 3 failed attempts each.
        assert metrics.counter("sched.retries").value == 9
        assert metrics.counter("sched.soc_steals").value == 3


class TestSlotRelease:
    def test_backoff_does_not_hold_the_slot(self, make_jobs):
        """With depth 1 and a long backoff, two always-failing jobs must
        interleave their backoff waits: if a failed job kept its slot
        while backing off, the makespan would be ~2 backoff chains."""
        chain = 0.01 * (1 + 2)  # base * (2^0 + 2^1) per job
        config = SchedConfig(
            depth=1, retry=RetryPolicy(backoff_base=0.01),
        )
        t, _, outcomes = _run(
            make_jobs(2, sim_bytes=1e5), config,
            plan=FaultPlan(seed=3, engine_fail=1.0),
        )
        assert all(o.engine == "soc" for o in outcomes)
        # Interleaved: one chain plus execution slack, far below two.
        assert t < 2 * chain
        assert t >= chain

    def test_queue_drains_while_one_job_backs_off(self, make_jobs):
        """Mixed failure run at depth 1: nothing deadlocks, every job
        completes, order is preserved."""
        _, _, outcomes = _run(
            make_jobs(8), SchedConfig(depth=1),
            plan=FaultPlan(seed=7, engine_fail=0.4, corrupt_output=0.2),
        )
        assert [o.index for o in outcomes] == list(range(8))
        assert all(o.engine in ("cengine", "soc") for o in outcomes)


class TestCorruptionAtDrain:
    def test_corruption_forces_reexecution(self, make_jobs):
        metrics = obs.MetricsRegistry()
        prev = obs.set_metrics(metrics)
        try:
            _, _, outcomes = _run(
                make_jobs(4), SchedConfig(depth=2),
                plan=FaultPlan(seed=11, corrupt_output=1.0),
            )
        finally:
            obs.set_metrics(prev)
        # Every drain detects the flip; jobs exhaust retries and steal.
        assert metrics.counter("faults.corruptions_detected").value > 0
        assert all(o.engine == "soc" for o in outcomes)
        # Payloads are never the corrupted bytes — they pass through.
        assert [o.payload for o in outcomes] == [
            bytes([i % 251]) * 64 for i in range(4)
        ]


class TestChunkOrderUnderFaults:
    def test_ppar_container_identical_with_and_without_faults(
        self, text_payload
    ):
        def compress(plan):
            prev = set_fault_plan(plan) if plan is not None else None
            try:
                env = Environment()
                device = make_device(env, "bf2")
                pc = ParallelCompressor(
                    device, ParallelConfig(n_chunks=8, pipeline_depth=2)
                )
                proc = env.process(pc.compress(text_payload, _NOMINAL))
                return env.run(until=proc)
            finally:
                if plan is not None:
                    set_fault_plan(prev)

        clean = compress(None)
        faulty = compress(
            FaultPlan(seed=7, engine_fail=0.4, corrupt_output=0.3)
        )
        # Retries re-enter the pipeline out of band, but the PPAR
        # container keeps its chunks in submission order: byte-identical.
        assert faulty.payload == clean.payload

    def test_roundtrip_under_faults(self, text_payload):
        plan = FaultPlan(seed=13, engine_fail=0.3, corrupt_output=0.2)
        prev = set_fault_plan(plan)
        try:
            env = Environment()
            device = make_device(env, "bf2")
            pc = ParallelCompressor(
                device, ParallelConfig(n_chunks=8, pipeline_depth=3)
            )
            proc = env.process(pc.compress(text_payload, _NOMINAL))
            container = env.run(until=proc).payload

            env2 = Environment()
            pc2 = ParallelCompressor(
                make_device(env2, "bf2"),
                ParallelConfig(n_chunks=8, pipeline_depth=3),
            )
            proc2 = env2.process(pc2.decompress(container, _NOMINAL))
            restored = env2.run(until=proc2).payload
        finally:
            set_fault_plan(prev)
        assert restored == text_payload
