"""Determinism under interleaving: same seed, same simulated history."""

from __future__ import annotations

from repro import obs
from repro.core.parallel import ParallelCompressor, ParallelConfig
from repro.dpu import make_device
from repro.faults import FaultPlan, set_fault_plan
from repro.sched import PipelineScheduler, SchedConfig
from repro.sim import Environment

_NOMINAL = 48.85e6


def _traced_parallel_run(seed, payload, depth=2, fault_kwargs=None):
    """One pipelined compress under a seeded fault plan, spans recorded."""
    plan = FaultPlan(seed=seed, **(fault_kwargs or {}))
    tracer = obs.Tracer()
    prev_tracer = obs.set_tracer(tracer)
    prev_plan = set_fault_plan(plan)
    try:
        env = Environment()
        device = make_device(env, "bf2")
        pc = ParallelCompressor(
            device, ParallelConfig(n_chunks=8, pipeline_depth=depth)
        )
        proc = env.process(pc.compress(payload, _NOMINAL))
        result = env.run(until=proc)
    finally:
        set_fault_plan(prev_plan)
        obs.set_tracer(prev_tracer)
    trace = [
        (s.name, s.sim_start, s.sim_end, tuple(sorted(s.attrs.items())))
        for s in tracer.spans
    ]
    return result, trace


class TestSameSeedSameHistory:
    def test_identical_span_trace_fault_free(self, text_payload):
        r1, t1 = _traced_parallel_run(0, text_payload)
        r2, t2 = _traced_parallel_run(0, text_payload)
        assert t1 == t2
        assert r1.payload == r2.payload
        assert r1.sim_seconds == r2.sim_seconds

    def test_identical_span_trace_under_faults(self, text_payload):
        kwargs = {"engine_fail": 0.4, "corrupt_output": 0.3}
        r1, t1 = _traced_parallel_run(7, text_payload, fault_kwargs=kwargs)
        r2, t2 = _traced_parallel_run(7, text_payload, fault_kwargs=kwargs)
        assert len(t1) > 0
        assert t1 == t2
        assert r1.payload == r2.payload

    def test_different_seeds_may_diverge_in_time_not_bytes(self, text_payload):
        kwargs = {"engine_fail": 0.5}
        ra, _ = _traced_parallel_run(1, text_payload, fault_kwargs=kwargs)
        rb, _ = _traced_parallel_run(2, text_payload, fault_kwargs=kwargs)
        # Different fault histories, identical artifact bytes.
        assert ra.payload == rb.payload


class TestSchedulerTraceShape:
    def test_stage_spans_emitted_per_job(self, bf2, make_jobs):
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            sched = PipelineScheduler(bf2, SchedConfig(depth=2))
            proc = bf2.env.process(sched.submit_many(make_jobs(5)))
            bf2.env.run(until=proc)
        finally:
            obs.set_tracer(prev)
        names = [s.name for s in tracer.spans]
        assert names.count("sched.map") == 5
        assert names.count("sched.exec") == 5
        assert names.count("sched.drain") == 5

    def test_exec_stages_overlap_map_stages(self, bf2, make_jobs):
        """Pipelining is visible in the trace: some job's map stage
        starts while another job's exec stage is still running."""
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            sched = PipelineScheduler(bf2, SchedConfig(depth=2))
            proc = bf2.env.process(
                sched.submit_many(make_jobs(6, sim_bytes=6e6))
            )
            bf2.env.run(until=proc)
        finally:
            obs.set_tracer(prev)
        execs = [s for s in tracer.spans if s.name == "sched.exec"]
        maps = [s for s in tracer.spans if s.name == "sched.map"]
        overlaps = any(
            m.sim_start < e.sim_end and e.sim_start < m.sim_end
            and m.attrs.get("job") != e.attrs.get("job")
            for e in execs
            for m in maps
        )
        assert overlaps
