"""Acceptance: pipelined output is byte-identical to serial, everywhere.

Every codec/device combination the parallel layer exposes must produce
the same artifact bytes at every queue depth — only the sim clock may
differ.  Also covers the SDK batch path and the MPI overlap wiring.
"""

from __future__ import annotations

import pytest

from repro.core.parallel import ParallelCompressor, ParallelConfig
from repro.doca import DocaSession
from repro.dpu import make_device
from repro.dpu.specs import Algo, Direction
from repro.sched import EngineJob
from repro.sim import Environment

_NOMINAL = 48.85e6
_DEPTHS = (1, 2, 4)


def _compress(device_kind, payload, depth, n_chunks=8):
    env = Environment()
    pc = ParallelCompressor(
        make_device(env, device_kind),
        ParallelConfig(n_chunks=n_chunks, pipeline_depth=depth),
    )
    proc = env.process(pc.compress(payload, _NOMINAL))
    return env.run(until=proc)


def _decompress(device_kind, container, depth, n_chunks=8):
    env = Environment()
    pc = ParallelCompressor(
        make_device(env, device_kind),
        ParallelConfig(n_chunks=n_chunks, pipeline_depth=depth),
    )
    proc = env.process(pc.decompress(container, _NOMINAL))
    return env.run(until=proc)


@pytest.mark.parametrize("device_kind", ["bf2", "bf3"])
class TestParallelByteIdentity:
    def test_containers_identical_across_depths(self, device_kind,
                                                text_payload):
        containers = [
            _compress(device_kind, text_payload, d).payload for d in _DEPTHS
        ]
        assert containers[0] == containers[1] == containers[2]

    def test_roundtrip_identical_across_depths(self, device_kind,
                                               text_payload):
        container = _compress(device_kind, text_payload, 1).payload
        for depth in _DEPTHS:
            restored = _decompress(device_kind, container, depth).payload
            assert restored == text_payload

    def test_cross_device_containers_identical(self, device_kind,
                                               text_payload):
        # The artifact must not depend on the device either: BF3 steals
        # compression to the SoC, BF2 runs it on the engine — same bytes.
        mine = _compress(device_kind, text_payload, 2).payload
        other = "bf3" if device_kind == "bf2" else "bf2"
        theirs = _compress(other, text_payload, 2).payload
        assert mine == theirs

    def test_depth_two_multi_chunk_is_faster_or_equal(self, device_kind,
                                                      text_payload):
        serial = _compress(device_kind, text_payload, 1)
        piped = _compress(device_kind, text_payload, 2)
        if device_kind == "bf2":
            # Engine-capable: strictly faster (tentpole acceptance).
            assert piped.sim_seconds < serial.sim_seconds
        else:
            # BF3 compression never reaches the engine; clock unchanged.
            assert piped.sim_seconds == pytest.approx(serial.sim_seconds)


class TestSessionBatchPath:
    def test_submit_many_payload_passthrough(self, bf2, run_sim):
        session = DocaSession(bf2)
        run_sim(bf2.env, session.open())
        payloads = [bytes([i]) * 128 for i in range(6)]
        jobs = [
            EngineJob(Algo.DEFLATE, Direction.COMPRESS, 1e6,
                      payload=p, tag=i)
            for i, p in enumerate(payloads)
        ]
        outcomes = run_sim(bf2.env, session.submit_many(jobs, depth=3))
        assert [o.payload for o in outcomes] == payloads
        assert [o.tag for o in outcomes] == list(range(6))
        assert all(o.engine == "cengine" for o in outcomes)

    def test_submit_many_tuple_form(self, bf2, run_sim):
        session = DocaSession(bf2)
        run_sim(bf2.env, session.open())
        outcomes = run_sim(
            bf2.env,
            session.submit_many(
                [(Algo.DEFLATE, Direction.COMPRESS, 2e6)] * 3
            ),
        )
        assert len(outcomes) == 3

    def test_submit_many_requires_open_session(self, bf2, run_sim):
        from repro.errors import DocaNotInitializedError

        session = DocaSession(bf2)
        with pytest.raises(DocaNotInitializedError):
            run_sim(
                bf2.env,
                session.submit_many([(Algo.DEFLATE, Direction.COMPRESS, 1e6)]),
            )


class TestMpiOverlap:
    def test_request_can_await_pipeline_ticket(self, bf2, run_sim):
        from repro.mpi.nonblocking import from_ticket
        from repro.sched import PipelineScheduler

        sched = PipelineScheduler(bf2)
        ticket = sched.submit(
            EngineJob(Algo.DEFLATE, Direction.COMPRESS, 1e6,
                      payload=b"x" * 64, tag="mpi")
        )
        request = from_ticket(ticket)
        outcome = run_sim(bf2.env, request.wait())
        assert outcome.tag == "mpi"
        assert outcome.payload == b"x" * 64
