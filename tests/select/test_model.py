"""CostModel: the closed-form mirror of what PedalContext charges."""

from __future__ import annotations

import math

import pytest

from repro.core.api import PedalContext
from repro.core.designs import CompressionDesign, Placement
from repro.dpu.specs import Algo, Direction
from repro.select import ALL_PATHS, PATH_CENGINE, PATH_SOC, CostModel

LOSSLESS = (Algo.DEFLATE, Algo.ZLIB, Algo.LZ4)
DIRECTIONS = (Direction.COMPRESS, Direction.DECOMPRESS)


@pytest.fixture
def pedal_bf2(bf2, run_sim, env):
    ctx = PedalContext(bf2)
    run_sim(env, ctx.init())
    return ctx


class TestCapabilities:
    def test_bf2_deflate_both_directions(self, bf2):
        model = CostModel(bf2)
        for direction in DIRECTIONS:
            assert model.capable_paths(Algo.DEFLATE, direction) == ALL_PATHS

    def test_bf3_compress_soc_only(self, bf3):
        model = CostModel(bf3)
        for algo in (Algo.DEFLATE, Algo.ZLIB, Algo.SZ3):
            assert model.capable_paths(algo, Direction.COMPRESS) == (PATH_SOC,)

    def test_bf3_decompress_engine_capable(self, bf3):
        model = CostModel(bf3)
        assert PATH_CENGINE in model.capable_paths(
            Algo.DEFLATE, Direction.DECOMPRESS
        )

    def test_zlib_rides_the_deflate_core(self, bf2, bf3):
        assert CostModel(bf2).engine_capable(Algo.ZLIB, Direction.COMPRESS)
        assert not CostModel(bf3).engine_capable(Algo.ZLIB, Direction.COMPRESS)

    def test_unknown_path_rejected(self, bf2):
        with pytest.raises(ValueError, match="unknown path"):
            CostModel(bf2).path_seconds(
                Algo.DEFLATE, Direction.COMPRESS, 1024.0, "host"
            )


class TestMatchesSimulator:
    """The model must predict the simulated breakdown *exactly* for
    every forced (algo, direction, path) — the selector's zero-slack
    guarantee rests on this."""

    @pytest.mark.parametrize("algo", LOSSLESS)
    @pytest.mark.parametrize("n", [512.0, 64e3, 5.1e6])
    @pytest.mark.parametrize(
        "placement,path",
        [(Placement.SOC, PATH_SOC), (Placement.CENGINE, PATH_CENGINE)],
    )
    def test_compress(self, pedal_bf2, env, run_sim, text_payload,
                      algo, n, placement, path):
        model = CostModel(pedal_bf2.device)
        result = run_sim(env, pedal_bf2.compress(
            text_payload, CompressionDesign(algo, placement), sim_bytes=n
        ))
        assert result.sim_seconds == pytest.approx(
            model.path_seconds(algo, Direction.COMPRESS, n, path),
            rel=1e-12,
        )

    @pytest.mark.parametrize("n", [512.0, 5.1e6])
    @pytest.mark.parametrize(
        "placement,path",
        [(Placement.SOC, PATH_SOC), (Placement.CENGINE, PATH_CENGINE)],
    )
    def test_decompress(self, pedal_bf2, env, run_sim, text_payload,
                        n, placement, path):
        model = CostModel(pedal_bf2.device)
        message = run_sim(env, pedal_bf2.compress(
            text_payload, "C-Engine_DEFLATE"
        )).message
        result = run_sim(env, pedal_bf2.decompress(
            message, placement=placement, sim_bytes=n
        ))
        assert result.sim_seconds == pytest.approx(
            model.path_seconds(Algo.DEFLATE, Direction.DECOMPRESS, n, path),
            rel=1e-12,
        )

    def test_sz3_with_measured_stage_hint(self, pedal_bf2, env, run_sim,
                                          smooth_field):
        """With the measured entropy-stage size the SZ3 hybrid
        prediction is exact too."""
        from repro.core.codecs import real_compress

        n = 10e6
        dsg = CompressionDesign(Algo.SZ3, Placement.CENGINE)
        real = real_compress(dsg, smooth_field, pedal_bf2.config.codecs)
        scale = n / real.original_bytes
        stage = real.cengine_stage_bytes * scale
        result = run_sim(env, pedal_bf2.compress(
            smooth_field, dsg, sim_bytes=n
        ))
        model = CostModel(pedal_bf2.device)
        assert result.sim_seconds == pytest.approx(
            model.path_seconds(Algo.SZ3, Direction.COMPRESS, n, PATH_CENGINE,
                               stage_bytes=stage),
            rel=1e-12,
        )


class TestAffinity:
    """Every path cost is affine in n — the crossover closed form's
    precondition."""

    @pytest.mark.parametrize("algo", LOSSLESS + (Algo.SZ3,))
    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize("path", ALL_PATHS)
    @pytest.mark.parametrize("amortized", [True, False])
    def test_affine(self, bf2, algo, direction, path, amortized):
        model = CostModel(bf2)
        t = lambda n: model.path_seconds(  # noqa: E731
            algo, direction, n, path, amortized=amortized
        )
        a = t(0.0)
        # Estimate the slope from a large point — n=1 would lose the
        # slope to float cancellation against the fixed overheads.
        slope = (t(2.0**20) - a) / 2.0**20
        for n in (3_333.0, 1e6, 64e6):
            assert t(n) == pytest.approx(a + slope * n, rel=1e-9)

    def test_amortization_only_adds_cost(self, bf2):
        model = CostModel(bf2)
        for path in ALL_PATHS:
            for n in (0.0, 1024.0, 5.1e6):
                assert model.path_seconds(
                    Algo.DEFLATE, Direction.COMPRESS, n, path, amortized=False
                ) > model.path_seconds(
                    Algo.DEFLATE, Direction.COMPRESS, n, path, amortized=True
                )

    def test_naive_engine_pays_doca_init(self, bf2):
        model = CostModel(bf2)
        amortized = model.path_seconds(
            Algo.DEFLATE, Direction.COMPRESS, 0.0, PATH_CENGINE
        )
        naive = model.path_seconds(
            Algo.DEFLATE, Direction.COMPRESS, 0.0, PATH_CENGINE,
            amortized=False,
        )
        assert naive - amortized >= bf2.cal.doca_init_time


class TestJobCosts:
    def test_engine_job_matches_calibration(self, bf2):
        model = CostModel(bf2)
        assert model.engine_job_seconds(
            Algo.DEFLATE, Direction.COMPRESS, 1e6
        ) == bf2.cal.cengine_time(Algo.DEFLATE, Direction.COMPRESS, 1e6)

    def test_soc_job_matches_calibration(self, bf2):
        model = CostModel(bf2)
        assert model.soc_job_seconds(
            Algo.DEFLATE, Direction.DECOMPRESS, 1e6
        ) == bf2.cal.soc_time(Algo.DEFLATE, Direction.DECOMPRESS, 1e6)

    def test_math_is_finite(self, bf2):
        model = CostModel(bf2)
        for path in ALL_PATHS:
            value = model.path_seconds(
                Algo.DEFLATE, Direction.COMPRESS, 64 * 2**20, path
            )
            assert math.isfinite(value) and value > 0
