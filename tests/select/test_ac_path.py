"""Path selection for the ``ac`` backend: SoC-only pricing.

The adaptive-context range coder has no C-Engine implementation on
either BlueField generation, so the selector must (a) advertise only
the SoC path, (b) report an infinite crossover, and (c) price the SoC
path exactly off the 12/15 MB/s calibration anchors — ``path="auto"``
then always lands on the SoC, at every size.
"""

from __future__ import annotations

import math

import pytest

from repro.core.api import PedalContext
from repro.dpu.specs import Algo, Direction
from repro.select import PATH_SOC, CostModel, PathSelector

DIRECTIONS = (Direction.COMPRESS, Direction.DECOMPRESS)


class TestCapability:
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_soc_only_on_both_generations(self, bf2, bf3, direction):
        for device in (bf2, bf3):
            model = CostModel(device)
            assert model.capable_paths(Algo.AC, direction) == (PATH_SOC,)
            assert not model.engine_capable(Algo.AC, direction)

    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_crossover_is_infinite(self, bf2, direction):
        selector = PathSelector(bf2)
        assert selector.crossover_bytes(Algo.AC, direction) == math.inf

    @pytest.mark.parametrize("sim_bytes", [512.0, 5.1e6, 64e6])
    def test_auto_routes_to_soc_at_every_size(self, bf2, sim_bytes):
        """No size is big enough to reach an engine that does not
        exist — unlike DEFLATE, where large ops cross over."""
        selector = PathSelector(bf2)
        decision = selector.choose(Algo.AC, Direction.COMPRESS, sim_bytes)
        assert decision.path == PATH_SOC
        assert decision.crossover_bytes == math.inf
        assert set(decision.costs) == {PATH_SOC}

    def test_job_costs_have_no_engine_lane(self, bf2):
        selector = PathSelector(bf2)
        costs = selector.job_costs(Algo.AC, Direction.COMPRESS, 1e6, 1e6)
        assert set(costs) == {PATH_SOC}
        assert selector.job_engine(
            Algo.AC, Direction.COMPRESS, 1e6, 1e6
        ) == PATH_SOC


class TestPricing:
    @pytest.mark.parametrize("direction,mb_per_s", [
        (Direction.COMPRESS, 12.0),
        (Direction.DECOMPRESS, 15.0),
    ])
    def test_soc_job_matches_calibration_anchor(self, bf2, direction,
                                                mb_per_s):
        model = CostModel(bf2)
        assert model.soc_job_seconds(Algo.AC, direction, 12e6) \
            == pytest.approx(12e6 / (mb_per_s * 1e6))
        assert model.soc_job_seconds(Algo.AC, direction, 1e6) \
            == bf2.cal.soc_time(Algo.AC, direction, 1e6)

    def test_bf3_soc_carries_the_generation_scale(self, bf2, bf3):
        scale = bf3.spec.soc.perf_scale
        for direction in DIRECTIONS:
            t2 = bf2.cal.soc_time(Algo.AC, direction, 1e6)
            t3 = bf3.cal.soc_time(Algo.AC, direction, 1e6)
            assert t3 == pytest.approx(t2 / scale)

    def test_auto_prediction_matches_simulated_compress(
        self, bf2, env, run_sim, text_payload
    ):
        """Zero-slack check for the new algo: the selector's predicted
        seconds equal what the simulator actually charges under
        ``path="auto"``."""
        ctx = PedalContext(bf2)
        run_sim(env, ctx.init())
        n = 5.1e6
        result = run_sim(env, ctx.compress(
            text_payload, Algo.AC, sim_bytes=n, path="auto"
        ))
        model = CostModel(bf2)
        assert result.sim_seconds == pytest.approx(
            model.path_seconds(Algo.AC, Direction.COMPRESS, n, PATH_SOC),
            rel=1e-12,
        )
