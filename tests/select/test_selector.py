"""PathSelector: crossover cache, choice consistency, online refinement."""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.core.api import PedalContext
from repro.core.designs import Placement
from repro.dpu.specs import Algo, Direction
from repro.select import PATH_CENGINE, PATH_SOC, PathSelector

C, D = Direction.COMPRESS, Direction.DECOMPRESS


class TestCrossoverCache:
    def test_first_lookup_misses_then_hits(self, bf2):
        sel = PathSelector(bf2)
        n_star = sel.crossover_bytes(Algo.DEFLATE, C)
        assert sel.cache_info() == {"hits": 0, "misses": 1, "size": 1}
        assert sel.crossover_bytes(Algo.DEFLATE, C) == n_star
        assert sel.cache_info()["hits"] == 1

    def test_paper_shaped_values(self, bf2, bf3):
        """The calibrated crossovers land where Tables II/III put them:
        a few KiB for BF-2 DEFLATE compression, ~hundreds of KiB for
        decompression, and *never* for BF-3 compression (decompress-only
        engine)."""
        s2, s3 = PathSelector(bf2), PathSelector(bf3)
        assert 4e3 < s2.crossover_bytes(Algo.DEFLATE, C) < 16e3
        assert 128e3 < s2.crossover_bytes(Algo.DEFLATE, D) < 512e3
        assert 32e3 < s3.crossover_bytes(Algo.DEFLATE, D) < 128e3
        assert s3.crossover_bytes(Algo.DEFLATE, C) == math.inf

    def test_crossover_sits_on_the_cost_tie(self, bf2):
        """n* is exactly where the two affine cost lines meet."""
        sel = PathSelector(bf2)
        n_star = sel.crossover_bytes(Algo.DEFLATE, C)
        costs = sel.predict(Algo.DEFLATE, C, n_star)
        assert costs[PATH_SOC] == pytest.approx(costs[PATH_CENGINE], rel=1e-9)

    def test_amortization_raises_the_crossover(self, bf2):
        """Paying per-op DOCA init pushes the break-even size up."""
        sel = PathSelector(bf2)
        assert sel.crossover_bytes(Algo.DEFLATE, C, amortized=False) \
            > sel.crossover_bytes(Algo.DEFLATE, C, amortized=True)

    def test_decision_records_cache_provenance(self, bf2):
        sel = PathSelector(bf2)
        first = sel.choose(Algo.DEFLATE, C, 1024.0)
        second = sel.choose(Algo.DEFLATE, C, 1 << 20)
        assert not first.from_cache
        assert second.from_cache
        assert first.crossover_bytes == second.crossover_bytes


class TestChoose:
    @pytest.mark.parametrize("n", [1.0, 1024.0, 6304.0, 6305.0, 1 << 26])
    def test_choice_is_the_argmin(self, bf2, n):
        sel = PathSelector(bf2)
        decision = sel.choose(Algo.DEFLATE, C, n)
        assert decision.predicted_seconds == min(decision.costs.values())
        assert decision.path == min(
            decision.costs, key=lambda p: (decision.costs[p], p != PATH_CENGINE)
        )

    def test_small_soc_large_engine(self, bf2):
        sel = PathSelector(bf2)
        assert sel.choose(Algo.DEFLATE, C, 1024.0).path == PATH_SOC
        assert sel.choose(Algo.DEFLATE, C, 1 << 20).path == PATH_CENGINE

    def test_tie_goes_to_the_engine(self, bf2):
        sel = PathSelector(bf2)
        n_star = sel.crossover_bytes(Algo.DEFLATE, C)
        assert sel.choose(Algo.DEFLATE, C, n_star).path == PATH_CENGINE

    def test_bf3_compress_always_soc(self, bf3):
        sel = PathSelector(bf3)
        for n in (1.0, 1 << 20, 1 << 26):
            decision = sel.choose(Algo.DEFLATE, C, n)
            assert decision.path == PATH_SOC
            assert decision.crossover_bytes == math.inf
            assert PATH_CENGINE not in decision.costs

    def test_allow_engine_false_forces_soc(self, bf2):
        """Models a context whose DOCA bring-up failed."""
        sel = PathSelector(bf2)
        decision = sel.choose(Algo.DEFLATE, C, 1 << 26, allow_engine=False)
        assert decision.path == PATH_SOC

    def test_placement_property(self, bf2):
        sel = PathSelector(bf2)
        assert sel.choose(Algo.DEFLATE, C, 1.0).placement is Placement.SOC
        assert sel.choose(Algo.DEFLATE, C, 1 << 26).placement \
            is Placement.CENGINE

    def test_sz3_stage_hint_compares_costs_directly(self, bf2):
        """A measured stage size shifts the engine path off its cached
        affine line, so the decision must match the direct argmin."""
        sel = PathSelector(bf2)
        n = 10e6
        for stage in (n / 10.0, n / 3.0, n):
            decision = sel.choose(Algo.SZ3, C, n, stage_bytes=stage)
            assert decision.predicted_seconds == min(decision.costs.values())


class TestJobCosts:
    def test_engine_lane_listed_only_when_supported(self, bf2, bf3):
        assert PATH_CENGINE in PathSelector(bf2).job_costs(
            Algo.DEFLATE, C, 1e6, 1e6
        )
        assert PATH_CENGINE not in PathSelector(bf3).job_costs(
            Algo.DEFLATE, C, 1e6, 1e6
        )

    def test_job_engine_prefers_cengine_on_bulk(self, bf2):
        sel = PathSelector(bf2)
        assert sel.job_engine(Algo.DEFLATE, C, 8e6, 8e6) == PATH_CENGINE
        assert sel.job_engine(Algo.DEFLATE, C, 64.0, 64.0) == PATH_SOC

    def test_bf3_jobs_always_soc(self, bf3):
        sel = PathSelector(bf3)
        assert sel.job_engine(Algo.DEFLATE, C, 8e6, 8e6) == PATH_SOC


class TestObserve:
    def test_exact_observation_changes_nothing(self, bf2):
        """Feeding back the model's own prediction leaves the
        correction at 1.0 and keeps the cache warm."""
        sel = PathSelector(bf2)
        predicted = sel.choose(Algo.DEFLATE, C, 1e6).predicted_seconds
        new = sel.observe(PATH_CENGINE, Algo.DEFLATE, C, 1e6, predicted)
        assert new == 1.0
        assert sel.cache_info()["size"] == 1

    def test_slow_path_observation_moves_the_crossover(self, bf2):
        """An engine observed 2x slower than calibrated shifts the
        break-even size up — and invalidates the memoized value."""
        sel = PathSelector(bf2)
        before = sel.crossover_bytes(Algo.DEFLATE, C)
        predicted = sel.model.path_seconds(Algo.DEFLATE, C, 1e6, PATH_CENGINE)
        sel.observe(PATH_CENGINE, Algo.DEFLATE, C, 1e6, 2.0 * predicted)
        assert sel.correction(PATH_CENGINE, Algo.DEFLATE, C) > 1.0
        assert sel.cache_info()["size"] == 0  # invalidated
        assert sel.crossover_bytes(Algo.DEFLATE, C) > before

    def test_ewma_step(self, bf2):
        sel = PathSelector(bf2, refine_alpha=0.25)
        predicted = sel.model.path_seconds(Algo.DEFLATE, C, 1e6, PATH_SOC)
        new = sel.observe(PATH_SOC, Algo.DEFLATE, C, 1e6, 2.0 * predicted)
        # old + alpha * (ratio - old) = 1 + 0.25 * (2 - 1)
        assert new == pytest.approx(1.25)

    def test_corrections_are_clamped(self, bf2):
        sel = PathSelector(bf2, correction_bounds=(0.25, 4.0))
        predicted = sel.model.path_seconds(Algo.DEFLATE, C, 1e6, PATH_SOC)
        for _ in range(100):
            sel.observe(PATH_SOC, Algo.DEFLATE, C, 1e6, 1000.0 * predicted)
        assert sel.correction(PATH_SOC, Algo.DEFLATE, C) == 4.0
        for _ in range(100):
            sel.observe(PATH_SOC, Algo.DEFLATE, C, 1e6, 1e-6 * predicted)
        assert sel.correction(PATH_SOC, Algo.DEFLATE, C) == 0.25

    def test_nonpositive_samples_ignored(self, bf2):
        sel = PathSelector(bf2)
        assert sel.observe(PATH_SOC, Algo.DEFLATE, C, 1e6, 0.0) == 1.0
        assert sel.observations == 0


class TestRefineFromSpans:
    def test_refines_from_recorded_pedal_spans(self, env, bf2, run_sim,
                                               text_payload):
        """Spans recorded by the real runtime feed straight back in —
        and because the model mirrors the simulator exactly, the
        corrections stay at 1.0."""
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            ctx = PedalContext(bf2)
            run_sim(env, ctx.init())
            comp = run_sim(env, ctx.compress(
                text_payload, "C-Engine_DEFLATE", sim_bytes=5.1e6
            ))
            run_sim(env, ctx.decompress(comp.message, sim_bytes=5.1e6))
        finally:
            obs.set_tracer(prev)

        sel = PathSelector(bf2)
        count = sel.refine_from_spans(tracer)
        assert count == 2
        assert sel.correction(PATH_CENGINE, Algo.DEFLATE, C) \
            == pytest.approx(1.0, rel=1e-9)
        assert sel.correction(PATH_CENGINE, Algo.DEFLATE, D) \
            == pytest.approx(1.0, rel=1e-9)

    def test_ignores_other_devices(self, env, bf2, bf3, run_sim,
                                   text_payload):
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            ctx = PedalContext(bf2)
            run_sim(env, ctx.init())
            run_sim(env, ctx.compress(text_payload, "C-Engine_DEFLATE"))
        finally:
            obs.set_tracer(prev)
        assert PathSelector(bf3).refine_from_spans(tracer) == 0

    def test_empty_tracer_is_a_noop(self, bf2):
        sel = PathSelector(bf2)
        assert sel.refine_from_spans(obs.Tracer()) == 0
        assert sel.observations == 0
