"""Property-based guarantees of the path selector (hypothesis).

Two contracts from the issue, over sizes in [1 B, 64 MiB]:

* **No regret** — the selector's choice is never beaten by a capable
  path it rejected by more than the model's stated ``tolerance``
  (checked against the *simulator*, not the model's own numbers).
* **Byte identity** — ``path="auto"`` produces the exact same message
  bytes as every forced path for the lossless designs (routing is a
  latency decision, never a format decision).
"""

from __future__ import annotations

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.api import PedalContext
from repro.dpu import make_device
from repro.dpu.specs import Algo, Direction
from repro.select import ALL_PATHS, PATH_CENGINE, PATH_SOC, PathSelector
from repro.sim import Environment

MAX_BYTES = 64 * 2**20
SIZES = st.integers(min_value=1, max_value=MAX_BYTES)
PAYLOAD = (b"the quick brown fox jumps over the lazy dog. " * 100)[:4096]

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _fresh_context(kind: str):
    env = Environment()
    ctx = PedalContext(make_device(env, kind))
    proc = env.process(ctx.init())
    env.run(until=proc)
    return env, ctx


def _seconds(env, gen) -> float:
    proc = env.process(gen)
    return env.run(until=proc).sim_seconds


@settings(max_examples=15, **_SETTINGS)
@given(n=SIZES, kind=st.sampled_from(["bf2", "bf3"]))
@example(n=6304, kind="bf2")    # just under the BF-2 compress crossover
@example(n=6305, kind="bf2")    # just over it
@example(n=1, kind="bf2")
@example(n=MAX_BYTES, kind="bf3")
def test_auto_never_beaten_beyond_tolerance(n, kind):
    """Simulated auto latency <= best forced latency * (1 + tolerance)."""
    env, ctx = _fresh_context(kind)
    tol = ctx.selector.tolerance
    forced = {
        path: _seconds(env, ctx.compress(
            PAYLOAD, Algo.DEFLATE, sim_bytes=float(n), path=path
        ))
        for path in ALL_PATHS
    }
    auto = _seconds(env, ctx.compress(
        PAYLOAD, Algo.DEFLATE, sim_bytes=float(n), path="auto"
    ))
    assert auto <= min(forced.values()) * (1.0 + tol)


@settings(max_examples=15, **_SETTINGS)
@given(
    n=SIZES,
    algo=st.sampled_from([Algo.DEFLATE, Algo.ZLIB, Algo.LZ4]),
)
def test_auto_bytes_identical_to_every_forced_path(n, algo):
    """The routed path never changes the wire format (lossless)."""
    env, ctx = _fresh_context("bf2")
    messages = {
        path: env.run(until=env.process(ctx.compress(
            PAYLOAD, algo, sim_bytes=float(n), path=path
        ))).message
        for path in ("auto",) + ALL_PATHS
    }
    assert messages["auto"] == messages[PATH_SOC] == messages[PATH_CENGINE]


@settings(max_examples=40, **_SETTINGS)
@given(
    n=SIZES,
    direction=st.sampled_from([Direction.COMPRESS, Direction.DECOMPRESS]),
    algo=st.sampled_from([Algo.DEFLATE, Algo.ZLIB, Algo.LZ4, Algo.SZ3]),
    kind=st.sampled_from(["bf2", "bf3"]),
    corrections=st.lists(
        st.floats(min_value=0.25, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=2,
    ),
)
def test_choice_is_argmin_of_corrected_costs(n, direction, algo, kind,
                                             corrections):
    """Even with learned per-path corrections (any clamped values), the
    crossover-cache decision equals the direct argmin of the corrected
    costs — no rejected capable path is ever cheaper."""
    sel = PathSelector(make_device(Environment(), kind), refine_alpha=1.0)
    for path, factor in zip(ALL_PATHS, corrections):
        predicted = sel.model.path_seconds(algo, direction, 1e6, path)
        # alpha=1.0 makes one observation set the correction exactly.
        sel.observe(path, algo, direction, 1e6, factor * predicted)
        assert abs(sel.correction(path, algo, direction) - factor) \
            <= 1e-12 * factor
    decision = sel.choose(algo, direction, float(n))
    assert decision.predicted_seconds == min(decision.costs.values())
    for path, cost in decision.costs.items():
        assert decision.predicted_seconds <= cost
    # ...and the tie-break is stable: engine on exact ties.
    if PATH_CENGINE in decision.costs and \
            decision.costs[PATH_CENGINE] == decision.costs[PATH_SOC]:
        assert decision.path == PATH_CENGINE


@settings(max_examples=25, **_SETTINGS)
@given(n=SIZES)
def test_bf3_compress_never_routes_to_engine(n):
    """BF-3's C-Engine is decompress-only — auto must never pick it
    for compression, at any size."""
    sel = PathSelector(make_device(Environment(), "bf3"))
    assert sel.choose(Algo.DEFLATE, Direction.COMPRESS, float(n)).path \
        == PATH_SOC
