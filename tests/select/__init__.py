"""Tests for repro.select — cost model, selector, and integration."""
