"""repro.select wired through the runtime, the router, and the scheduler."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.api import PATH_AUTO, PedalContext
from repro.core.designs import Placement, UnknownDesignError
from repro.dpu.specs import Algo, Direction
from repro.sched import EngineJob, PipelineScheduler, SchedConfig
from repro.select import PATH_CENGINE, PATH_SOC
from repro.serve import CostAwareRouter, DpuWorker, make_router


@pytest.fixture
def pedal(bf2, env, run_sim):
    ctx = PedalContext(bf2)
    run_sim(env, ctx.init())
    return ctx


class _Batch:
    """Router-facing batch stub with explicit billing sizes."""

    def __init__(self, direction, engine_bytes, soc_bytes=None):
        self.direction = direction
        self.engine_sim_bytes = float(engine_bytes)
        self.soc_sim_bytes = float(
            engine_bytes if soc_bytes is None else soc_bytes
        )


class TestPedalContextAuto:
    def test_small_compress_stays_on_soc(self, pedal, env, run_sim,
                                         text_payload):
        result = run_sim(env, pedal.compress(
            text_payload, Algo.DEFLATE, sim_bytes=1024.0, path="auto"
        ))
        assert result.resolved.engine_for(Direction.COMPRESS) == PATH_SOC

    def test_large_compress_takes_the_engine(self, pedal, env, run_sim,
                                             text_payload):
        result = run_sim(env, pedal.compress(
            text_payload, Algo.DEFLATE, sim_bytes=float(1 << 20), path="auto"
        ))
        assert result.resolved.engine_for(Direction.COMPRESS) == PATH_CENGINE

    def test_bare_algo_defaults_to_auto(self, pedal, env, run_sim,
                                        text_payload):
        """A bare algorithm spec (no placement) means "you pick"."""
        small = run_sim(env, pedal.compress(
            text_payload, "deflate", sim_bytes=1024.0
        ))
        large = run_sim(env, pedal.compress(
            text_payload, "deflate", sim_bytes=float(1 << 20)
        ))
        assert small.resolved.engine_for(Direction.COMPRESS) == PATH_SOC
        assert large.resolved.engine_for(Direction.COMPRESS) == PATH_CENGINE

    def test_full_design_keeps_its_placement(self, pedal, env, run_sim,
                                             text_payload):
        """An explicit design placement is never second-guessed."""
        result = run_sim(env, pedal.compress(
            text_payload, "C-Engine_DEFLATE", sim_bytes=1.0
        ))
        assert result.resolved.engine_for(Direction.COMPRESS) == PATH_CENGINE

    def test_forced_path_overrides_design(self, pedal, env, run_sim,
                                          text_payload):
        result = run_sim(env, pedal.compress(
            text_payload, "C-Engine_DEFLATE", sim_bytes=float(1 << 20),
            path=Placement.SOC,
        ))
        assert result.resolved.engine_for(Direction.COMPRESS) == PATH_SOC

    def test_auto_decompress_roundtrip(self, pedal, env, run_sim,
                                       text_payload):
        comp = run_sim(env, pedal.compress(text_payload, "deflate"))
        out = run_sim(env, pedal.decompress(comp.message, placement="auto"))
        assert out.data == text_payload

    def test_auto_decompress_picks_by_size(self, pedal, env, run_sim,
                                           text_payload):
        comp = run_sim(env, pedal.compress(text_payload, "deflate"))
        small = run_sim(env, pedal.decompress(
            comp.message, placement="auto", sim_bytes=1024.0
        ))
        large = run_sim(env, pedal.decompress(
            comp.message, placement="auto", sim_bytes=float(1 << 20)
        ))
        assert small.resolved.engine_for(Direction.DECOMPRESS) == PATH_SOC
        assert large.resolved.engine_for(Direction.DECOMPRESS) == PATH_CENGINE

    def test_bf3_auto_compress_never_engine(self, bf3, env, run_sim,
                                            text_payload):
        ctx = PedalContext(bf3)
        run_sim(env, ctx.init())
        result = run_sim(env, ctx.compress(
            text_payload, Algo.DEFLATE, sim_bytes=float(64 << 20), path="auto"
        ))
        assert result.resolved.engine_for(Direction.COMPRESS) == PATH_SOC

    def test_bf3_auto_decompress_uses_the_fast_engine(self, bf3, env, run_sim,
                                                      text_payload):
        ctx = PedalContext(bf3)
        run_sim(env, ctx.init())
        comp = run_sim(env, ctx.compress(text_payload, "deflate"))
        result = run_sim(env, ctx.decompress(
            comp.message, placement="auto", sim_bytes=float(1 << 20)
        ))
        assert result.resolved.engine_for(Direction.DECOMPRESS) == PATH_CENGINE

    def test_crossover_cache_is_warm_across_ops(self, pedal, env, run_sim,
                                                text_payload):
        for _ in range(4):
            run_sim(env, pedal.compress(
                text_payload, "deflate", sim_bytes=1024.0
            ))
        info = pedal.selector.cache_info()
        assert info["misses"] == 1
        assert info["hits"] >= 3

    def test_auto_spans_record_the_decision(self, bf2, env, run_sim,
                                            text_payload):
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            ctx = PedalContext(bf2)
            run_sim(env, ctx.init())
            run_sim(env, ctx.compress(
                text_payload, "deflate", sim_bytes=1024.0
            ))
        finally:
            obs.set_tracer(prev)
        (span,) = tracer.find("pedal.compress")
        assert span.attrs["path_mode"] == PATH_AUTO
        assert span.attrs["select_crossover_bytes"] > 0
        assert span.attrs["select_predicted_s"] > 0

    def test_unknown_path_string_rejected(self, pedal, env, run_sim,
                                          text_payload):
        with pytest.raises(UnknownDesignError):
            run_sim(env, pedal.compress(text_payload, "deflate", path="host"))


class TestCostAwareRouter:
    def test_registered(self):
        assert make_router("cost_aware").name == "cost_aware"

    def test_decompress_prefers_the_faster_engine(self, env):
        """At equal load, a bulk decompress batch lands on BF-3: its
        engine overhead is ~161 us vs BF-2's ~1 ms."""
        from repro.dpu import make_device

        bf2 = DpuWorker(make_device(env, "bf2"), SchedConfig())
        bf3 = DpuWorker(make_device(env, "bf3"), SchedConfig())
        pick = CostAwareRouter().pick(
            [bf2, bf3], _Batch(Direction.DECOMPRESS, 64 * 1024, 256 * 1024)
        )
        assert pick is bf3

    def test_compress_filtered_to_capable_workers(self, env):
        """BF-3 has no compress engine, so compress batches go to BF-2
        even when BF-3 sits first in fleet order."""
        from repro.dpu import make_device

        bf3 = DpuWorker(make_device(env, "bf3"), SchedConfig())
        bf2 = DpuWorker(make_device(env, "bf2"), SchedConfig())
        pick = CostAwareRouter().pick(
            [bf3, bf2], _Batch(Direction.COMPRESS, 1 << 20)
        )
        assert pick is bf2

    def test_load_scaling_diverts_from_busy_worker(self, env):
        """The cost x (load + 1) score routes around queue depth."""
        from repro.dpu import make_device

        class _Loaded(DpuWorker):
            __slots__ = ()

            @property
            def load(self):
                return 50

        busy_bf3 = _Loaded(make_device(env, "bf3"), SchedConfig())
        idle_bf2 = DpuWorker(make_device(env, "bf2"), SchedConfig())
        pick = CostAwareRouter().pick(
            [busy_bf3, idle_bf2],
            _Batch(Direction.DECOMPRESS, 64 * 1024, 256 * 1024),
        )
        assert pick is idle_bf2


class TestCostAwareSteal:
    def _run_one(self, env, bf2, run_sim, sim_bytes, **cfg):
        sched = PipelineScheduler(
            bf2, SchedConfig(cost_aware_steal=True, **cfg)
        )
        job = EngineJob(Algo.DEFLATE, Direction.COMPRESS, float(sim_bytes))
        (outcome,) = run_sim(env, sched.submit_many([job]))
        return sched, outcome

    def test_tiny_job_stolen_up_front(self, env, bf2, run_sim):
        """The fixed engine-job overhead dominates tiny jobs: the model
        prices them cheaper on an SoC core, so the scheduler never
        occupies an engine slot."""
        sched, outcome = self._run_one(env, bf2, run_sim, 64.0)
        assert outcome.engine == "soc"
        assert outcome.attempts == 0
        assert sched.jobs_stolen == 1

    def test_bulk_job_keeps_the_engine(self, env, bf2, run_sim):
        sched, outcome = self._run_one(env, bf2, run_sim, 8 << 20)
        assert outcome.engine == "cengine"
        assert sched.jobs_stolen == 0

    def test_steal_reason_recorded(self, env, bf2, run_sim):
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            self._run_one(env, bf2, run_sim, 64.0)
        finally:
            obs.set_tracer(prev)
        (span,) = tracer.find("sched.exec")
        assert span.attrs["steal_reason"] == "cost_model"

    def test_default_config_keeps_old_behavior(self, env, bf2, run_sim):
        """cost_aware_steal is opt-in: the default scheduler still
        submits tiny capable jobs to the engine."""
        sched = PipelineScheduler(bf2, SchedConfig())
        job = EngineJob(Algo.DEFLATE, Direction.COMPRESS, 64.0)
        (outcome,) = run_sim(env, sched.submit_many([job]))
        assert outcome.engine == "cengine"

    def test_payload_integrity_on_stolen_jobs(self, env, bf2, run_sim):
        payload = b"stolen-but-intact" * 8
        sched = PipelineScheduler(bf2, SchedConfig(cost_aware_steal=True))
        job = EngineJob(Algo.DEFLATE, Direction.COMPRESS, 64.0,
                        payload=payload, tag="t0")
        (outcome,) = run_sim(env, sched.submit_many([job]))
        assert outcome.engine == "soc"
        assert outcome.payload == payload
        assert outcome.tag == "t0"
