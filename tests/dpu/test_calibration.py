"""The calibration must reproduce the paper's headline factors exactly.

These are the anchors of DESIGN.md §4 / calibration.py's A1-A8 — if a
constant drifts, this file pins down which paper claim broke.
"""

import pytest

from repro.dpu.calibration import CAL_BF2, CAL_BF3, calibration_for
from repro.dpu.memory import MemoryModel
from repro.dpu.specs import BLUEFIELD2, BLUEFIELD3, Algo, Direction

MB = 1e6


class TestAnchors:
    def test_a2_deflate_compress_101_8x(self):
        soc = CAL_BF2.soc_time(Algo.DEFLATE, Direction.COMPRESS, 5.1 * MB)
        ce = CAL_BF2.cengine_time(Algo.DEFLATE, Direction.COMPRESS, 5.1 * MB)
        assert soc / ce == pytest.approx(101.8, rel=0.02)

    def test_a3_deflate_decompress_11_2x(self):
        soc = CAL_BF2.soc_time(Algo.DEFLATE, Direction.DECOMPRESS, 5.1 * MB)
        ce = CAL_BF2.cengine_time(Algo.DEFLATE, Direction.DECOMPRESS, 5.1 * MB)
        assert soc / ce == pytest.approx(11.2, rel=0.02)

    def test_a4_zlib_compress_84_6x(self):
        size = 48.85 * MB
        soc = CAL_BF2.soc_time(Algo.ZLIB, Direction.COMPRESS, size)
        ce = CAL_BF2.cengine_time(
            Algo.DEFLATE, Direction.COMPRESS, size
        ) + CAL_BF2.checksum_time(size)
        assert soc / ce == pytest.approx(84.6, rel=0.02)

    def test_a4_zlib_decompress_20x(self):
        size = 48.85 * MB
        soc = CAL_BF2.soc_time(Algo.ZLIB, Direction.DECOMPRESS, size)
        ce = CAL_BF2.cengine_time(
            Algo.DEFLATE, Direction.DECOMPRESS, size
        ) + CAL_BF2.checksum_time(size)
        assert soc / ce == pytest.approx(20.0, rel=0.02)

    @pytest.mark.parametrize("size_mb,factor", [(5.1, 1.78), (48.84, 1.28)])
    def test_a5_bf3_cengine_decompress_gap(self, size_mb, factor):
        bf2 = CAL_BF2.cengine_time(Algo.DEFLATE, Direction.DECOMPRESS, size_mb * MB)
        bf3 = CAL_BF3.cengine_time(Algo.DEFLATE, Direction.DECOMPRESS, size_mb * MB)
        assert bf2 / bf3 == pytest.approx(factor, rel=0.02)

    def test_a6_bf3_soc_uniform_scale(self):
        for key, value in CAL_BF2.soc_throughput.items():
            assert CAL_BF3.soc_throughput[key] == pytest.approx(value * 1.67)

    def test_a7_naive_overhead_fraction_94_percent(self):
        memory = MemoryModel(BLUEFIELD2.memory, CAL_BF2.buffer_fixed_time)
        init = CAL_BF2.doca_init_time
        prep = memory.doca_buffer_prep_time(int(4 * 5.1 * MB))
        work = CAL_BF2.cengine_time(
            Algo.DEFLATE, Direction.COMPRESS, 5.1 * MB
        ) + CAL_BF2.cengine_time(Algo.DEFLATE, Direction.DECOMPRESS, 5.1 * MB)
        frac = (init + prep) / (init + prep + work)
        assert 0.90 <= frac <= 0.97  # paper: ~94%

    def test_a8_sz3_lossless_fraction_small(self):
        assert 0.05 <= CAL_BF2.sz3_lossless_fraction <= 0.2

    def test_decompress_faster_than_compress_everywhere(self):
        # Fig. 8 insight 2: decompression invariably faster.
        for cal in (CAL_BF2, CAL_BF3):
            for algo in (Algo.DEFLATE, Algo.ZLIB, Algo.LZ4, Algo.SZ3):
                assert cal.soc_throughput[(algo, Direction.DECOMPRESS)] > (
                    cal.soc_throughput[(algo, Direction.COMPRESS)]
                )


class TestLookup:
    def test_calibration_for_specs(self):
        assert calibration_for(BLUEFIELD2) is CAL_BF2
        assert calibration_for(BLUEFIELD3) is CAL_BF3

    def test_unknown_generation_rejected(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            calibration_for(replace(BLUEFIELD2, generation=4))

    def test_linear_model_shape(self):
        # time = overhead + bytes/throughput: doubling bytes less than
        # doubles C-Engine time (fixed overhead), exactly doubles SoC time.
        t1 = CAL_BF2.cengine_time(Algo.DEFLATE, Direction.COMPRESS, 1 * MB)
        t2 = CAL_BF2.cengine_time(Algo.DEFLATE, Direction.COMPRESS, 2 * MB)
        assert t2 < 2 * t1
        s1 = CAL_BF2.soc_time(Algo.DEFLATE, Direction.COMPRESS, 1 * MB)
        s2 = CAL_BF2.soc_time(Algo.DEFLATE, Direction.COMPRESS, 2 * MB)
        assert s2 == pytest.approx(2 * s1)
