"""Device specs: the paper's Table II capability matrix."""

import pytest

from repro.dpu.specs import BLUEFIELD2, BLUEFIELD3, Algo, Direction


class TestTable2CapabilityMatrix:
    """Exact transcription of paper Table II (native DOCA support)."""

    def test_bf2_deflate_both_directions(self):
        assert BLUEFIELD2.cengine_supports(Algo.DEFLATE, Direction.COMPRESS)
        assert BLUEFIELD2.cengine_supports(Algo.DEFLATE, Direction.DECOMPRESS)

    def test_bf3_deflate_decompress_only(self):
        assert not BLUEFIELD3.cengine_supports(Algo.DEFLATE, Direction.COMPRESS)
        assert BLUEFIELD3.cengine_supports(Algo.DEFLATE, Direction.DECOMPRESS)

    def test_lz4_decompress_bf3_only(self):
        assert not BLUEFIELD2.cengine_supports(Algo.LZ4, Direction.COMPRESS)
        assert not BLUEFIELD2.cengine_supports(Algo.LZ4, Direction.DECOMPRESS)
        assert not BLUEFIELD3.cengine_supports(Algo.LZ4, Direction.COMPRESS)
        assert BLUEFIELD3.cengine_supports(Algo.LZ4, Direction.DECOMPRESS)

    @pytest.mark.parametrize("algo", [Algo.ZLIB, Algo.SZ3])
    @pytest.mark.parametrize("spec", [BLUEFIELD2, BLUEFIELD3], ids=["bf2", "bf3"])
    def test_zlib_sz3_never_native(self, algo, spec):
        for direction in Direction:
            assert not spec.cengine_supports(algo, direction)


class TestHardwareParameters:
    def test_bf2_testbed_description(self):
        # §V-B: 8x A72 @ 2.75 GHz, 16 GB DDR4, ConnectX-6 @ 200 Gb/s.
        assert BLUEFIELD2.soc.n_cores == 8
        assert BLUEFIELD2.soc.clock_ghz == 2.75
        assert BLUEFIELD2.memory.kind == "DDR4"
        assert BLUEFIELD2.memory.size_gib == 16
        assert BLUEFIELD2.nic.rate_gbps == 200.0

    def test_bf3_testbed_description(self):
        # §II-A/§V-B: 16x A78, DDR5 (4.2x RAM throughput), CX-7 @ 400 Gb/s.
        assert BLUEFIELD3.soc.n_cores == 16
        assert BLUEFIELD3.memory.kind == "DDR5"
        assert BLUEFIELD3.nic.rate_gbps == 400.0
        assert BLUEFIELD3.memory.stream_bandwidth == pytest.approx(
            BLUEFIELD2.memory.stream_bandwidth * 4.2
        )

    def test_nic_byte_rate(self):
        assert BLUEFIELD2.nic.bytes_per_second == pytest.approx(25e9)
        assert BLUEFIELD3.nic.bytes_per_second == pytest.approx(50e9)

    def test_bf3_soc_faster_per_core(self):
        assert BLUEFIELD3.soc.perf_scale > BLUEFIELD2.soc.perf_scale == 1.0
