"""SoC, C-Engine, memory model, and device composition."""

import pytest

from repro.dpu import make_device
from repro.dpu.specs import Algo, Direction
from repro.errors import DocaCapabilityError


class TestMakeDevice:
    @pytest.mark.parametrize("kind,gen", [("bf2", 2), ("BF3", 3), ("BlueField-2", 2)])
    def test_factory(self, env, kind, gen):
        assert make_device(env, kind).generation == gen

    def test_unknown_kind(self, env):
        with pytest.raises(ValueError):
            make_device(env, "bf9")

    def test_repr(self, bf2):
        assert "BlueField-2" in repr(bf2)


class TestSoc:
    def test_run_codec_charges_time(self, env, bf2, run_sim):
        seconds = run_sim(
            env, bf2.soc.run_codec(Algo.DEFLATE, Direction.COMPRESS, int(25e6))
        )
        assert seconds == pytest.approx(1.0)
        assert env.now == pytest.approx(1.0)
        assert bf2.soc.busy_seconds == pytest.approx(1.0)

    def test_core_contention(self, env, bf2):
        n = bf2.spec.soc.n_cores
        finished = []

        def job(env, soc):
            yield from soc.run(1.0)
            finished.append(env.now)

        for _ in range(n + 1):
            env.process(job(env, bf2.soc))
        env.run()
        # n jobs run in parallel; the extra one waits a full slot.
        assert finished == [1.0] * n + [2.0]

    def test_checksum_time(self, bf2):
        assert bf2.soc.checksum_time(10e9) == pytest.approx(1.0)


class TestCEngine:
    def test_supported_job(self, env, bf2, run_sim):
        seconds = run_sim(
            env, bf2.cengine.submit(Algo.DEFLATE, Direction.COMPRESS, int(5.1e6))
        )
        assert seconds > 0
        assert bf2.cengine.jobs_completed == 1

    def test_unsupported_job_rejected(self, env, bf2):
        with pytest.raises(DocaCapabilityError):
            bf2.cengine.job_time(Algo.LZ4, Direction.COMPRESS, 1000)

    def test_bf3_compression_rejected(self, env, bf3):
        with pytest.raises(DocaCapabilityError):
            bf3.cengine.job_time(Algo.DEFLATE, Direction.COMPRESS, 1000)

    def test_single_server_fifo(self, env, bf2):
        done = []

        def job(env, engine, tag):
            yield from engine.submit(Algo.DEFLATE, Direction.COMPRESS, int(29.08e6))
            done.append((tag, env.now))

        env.process(job(env, bf2.cengine, "a"))
        env.process(job(env, bf2.cengine, "b"))
        env.run()
        # Each job takes 0.25 ms + 10 ms; the second queues behind the first.
        assert done[0][0] == "a"
        assert done[1][1] == pytest.approx(2 * done[0][1])

    def test_busy_seconds_accumulates(self, env, bf2, run_sim):
        run_sim(env, bf2.cengine.submit(Algo.DEFLATE, Direction.DECOMPRESS, int(1e6)))
        assert bf2.cengine.busy_seconds > 0


class TestMemoryModel:
    def test_alloc_faster_than_dma_map(self, bf2):
        n = 10 * 1024 * 1024
        assert bf2.memory.alloc_time(n) < bf2.memory.dma_map_time(n)

    def test_doca_prep_includes_fixed_cost(self, bf2):
        small = bf2.memory.doca_buffer_prep_time(0)
        assert small >= bf2.cal.buffer_fixed_time

    def test_prep_scales_with_bytes(self, bf2):
        assert bf2.memory.doca_buffer_prep_time(
            20 * 1024 * 1024
        ) > bf2.memory.doca_buffer_prep_time(1024)

    def test_bf3_memory_faster(self, env):
        bf2 = make_device(env, "bf2")
        bf3 = make_device(env, "bf3")
        n = 50 * 1024 * 1024
        assert bf3.memory.dma_map_time(n) < bf2.memory.dma_map_time(n)
        assert bf3.memory.copy_time(n) < bf2.memory.copy_time(n)
