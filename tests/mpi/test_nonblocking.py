"""Non-blocking operations and the extended collectives."""

import numpy as np
import pytest

from repro.mpi import CommConfig, CommMode, run_mpi


class TestIsendIrecv:
    def test_isend_wait(self, text_payload):
        def program(ctx):
            if ctx.rank == 0:
                req = ctx.isend(1, text_payload)
                yield from req.wait()
                return req.complete
            data = yield from ctx.recv(source=0)
            return data == text_payload

        assert all(run_mpi(program, 2).returns)

    def test_irecv_returns_data(self, text_payload):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, text_payload)
                return None
            req = ctx.irecv(source=0)
            data = yield from req.wait()
            return data == text_payload

        assert run_mpi(program, 2).returns[1]

    def test_overlap_two_inflight_sends(self):
        """Both messages progress concurrently; neither blocks the other."""
        big = b"A" * 200000

        def program(ctx):
            if ctx.rank == 0:
                r1 = ctx.isend(1, big, tag=1)
                r2 = ctx.isend(1, big, tag=2)
                yield from ctx.waitall([r1, r2])
                return ctx.wtime()
            a = yield from ctx.recv(source=0, tag=2)  # out of posting order
            b = yield from ctx.recv(source=0, tag=1)
            return a == big and b == big

        result = run_mpi(program, 2)
        assert result.returns[1] is True

    def test_exchange_pattern_no_deadlock(self):
        """Symmetric exchange: blocking sends would deadlock; isend must not."""
        payload = b"x" * 300000

        def program(ctx):
            peer = 1 - ctx.rank
            req = ctx.isend(peer, payload)
            data = yield from ctx.recv(source=peer)
            yield from req.wait()
            return data == payload

        assert all(run_mpi(program, 2).returns)

    def test_complete_flag_before_and_after(self):
        def program(ctx):
            if ctx.rank == 0:
                req = ctx.isend(1, b"y" * 200000)
                started = req.complete  # not yet (rendezvous pending)
                yield from req.wait()
                return (started, req.complete)
            yield ctx.env.timeout(1.0)
            yield from ctx.recv(source=0)
            return None

        started, finished = run_mpi(program, 2).returns[0]
        assert started is False and finished is True


class TestExtendedCollectives:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_allgather(self, n):
        def program(ctx):
            out = yield from ctx.allgather(f"r{ctx.rank}")
            return out

        result = run_mpi(program, n)
        expected = [f"r{i}" for i in range(n)]
        assert all(r == expected for r in result.returns)

    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_allreduce_sum(self, n):
        def program(ctx):
            out = yield from ctx.allreduce(ctx.rank + 1, op=lambda a, b: a + b)
            return out

        result = run_mpi(program, n)
        assert all(v == n * (n + 1) // 2 for v in result.returns)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_alltoall(self, n):
        def program(ctx):
            chunks = [f"{ctx.rank}->{d}" for d in range(ctx.size)]
            out = yield from ctx.alltoall(chunks)
            return out

        result = run_mpi(program, n)
        for rank, row in enumerate(result.returns):
            assert row == [f"{src}->{rank}" for src in range(n)]

    def test_alltoall_wrong_chunk_count(self):
        def program(ctx):
            yield from ctx.alltoall(["only-one"])

        with pytest.raises(ValueError):
            run_mpi(program, 3)


class TestScatterAllgatherBcast:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bytes_payload(self, n, root):
        if root >= n:
            pytest.skip("root outside communicator")
        payload = bytes(range(256)) * 300

        def program(ctx):
            data = payload if ctx.rank == root else None
            out = yield from ctx.bcast(
                data, root=root, algorithm="scatter_allgather"
            )
            return out == payload

        assert all(run_mpi(program, n).returns)

    def test_ndarray_payload(self):
        arr = np.arange(10000, dtype=np.float32)

        def program(ctx):
            data = arr if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0, algorithm="scatter_allgather")
            return bool((out == arr).all())

        assert all(run_mpi(program, 4).returns)

    def test_auto_selects_by_size(self):
        payload = b"b" * 4096

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            # Large nominal size on >2 ranks -> scatter_allgather path.
            out = yield from ctx.bcast(
                data, root=0, sim_bytes=8e6, algorithm="auto"
            )
            return out == payload

        assert all(run_mpi(program, 4).returns)

    def test_unknown_algorithm(self):
        def program(ctx):
            yield from ctx.bcast(b"x", algorithm="magic")

        with pytest.raises(ValueError):
            run_mpi(program, 2)

    def test_under_pedal_compression(self):
        payload = (b"compressible pattern " * 20000)[: 1 << 18]

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            out = yield from ctx.bcast(
                data, root=0, sim_bytes=20.6e6, algorithm="scatter_allgather"
            )
            return out == payload

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        assert all(run_mpi(program, 4, "bf2", cfg).returns)

    def test_faster_than_binomial_for_large_messages_raw(self):
        payload = b"q" * 65536

        def make(algorithm):
            def program(ctx):
                data = payload if ctx.rank == 0 else None
                yield from ctx.bcast(
                    data, root=0, sim_bytes=48.8e6, algorithm=algorithm
                )
                return ctx.wtime()

            return program

        t_tree = max(run_mpi(make("binomial"), 8).returns)
        t_ring = max(run_mpi(make("scatter_allgather"), 8).returns)
        assert t_ring < t_tree
