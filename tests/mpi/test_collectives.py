"""Collective operations over the simulated runtime."""

import numpy as np
import pytest

from repro.mpi import CommConfig, CommMode, run_mpi


class TestBcast:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_ranks_receive(self, n, root):
        if root >= n:
            pytest.skip("root outside communicator")
        payload = b"broadcast me " * 10

        def program(ctx):
            data = payload if ctx.rank == root else None
            out = yield from ctx.bcast(data, root=root)
            return out

        result = run_mpi(program, n)
        assert all(r == payload for r in result.returns)

    def test_ndarray_payload(self):
        arr = np.arange(1000, dtype=np.float64)

        def program(ctx):
            data = arr if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0)
            return float(out.sum())

        result = run_mpi(program, 4)
        assert all(v == pytest.approx(arr.sum()) for v in result.returns)

    def test_binomial_faster_than_linear_chain(self):
        """The tree must finish in O(log p) serialized hops."""
        payload = b"x" * (1 << 20)

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            yield from ctx.bcast(data, root=0)
            return ctx.wtime()

        t8 = max(run_mpi(program, 8).returns)
        t2 = max(run_mpi(program, 2).returns)
        # log2(8)=3 levels; allow generous slack over the 1-level time.
        assert t8 < 4.5 * t2


class TestGatherScatterReduce:
    def test_gather_collects_in_rank_order(self):
        def program(ctx):
            out = yield from ctx.gather(f"rank{ctx.rank}", root=0)
            return out

        result = run_mpi(program, 4)
        assert result.returns[0] == ["rank0", "rank1", "rank2", "rank3"]
        assert result.returns[1:] == [None, None, None]

    def test_scatter_distributes(self):
        def program(ctx):
            chunks = [f"part{i}" for i in range(ctx.size)] if ctx.rank == 0 else None
            mine = yield from ctx.scatter(chunks, root=0)
            return mine

        result = run_mpi(program, 4)
        assert result.returns == ["part0", "part1", "part2", "part3"]

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_reduce_sum(self, n):
        def program(ctx):
            out = yield from ctx.reduce(ctx.rank + 1, op=lambda a, b: a + b, root=0)
            return out

        result = run_mpi(program, n)
        assert result.returns[0] == n * (n + 1) // 2
        assert all(v is None for v in result.returns[1:])

    def test_reduce_nonzero_root(self):
        def program(ctx):
            out = yield from ctx.reduce(ctx.rank, op=lambda a, b: a + b, root=2)
            return out

        result = run_mpi(program, 4)
        assert result.returns[2] == 6
        assert result.returns[0] is None


class TestCollectivesWithCompression:
    def test_bcast_under_pedal(self):
        payload = (b"pattern! " * 40000)[: 1 << 18]

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0, sim_bytes=5.1e6)
            return out == payload

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        result = run_mpi(program, 4, "bf2", cfg)
        assert all(result.returns)

    def test_gather_under_pedal_mixed_sizes(self):
        def program(ctx):
            blob = bytes([ctx.rank]) * (200000 + ctx.rank)
            out = yield from ctx.gather(blob, root=0)
            if ctx.rank == 0:
                return [len(x) for x in out]
            return None

        cfg = CommConfig(mode=CommMode.PEDAL, design="SoC_LZ4")
        result = run_mpi(program, 3, "bf2", cfg)
        assert result.returns[0] == [200000, 200001, 200002]
