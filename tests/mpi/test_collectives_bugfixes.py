"""Regression tests for the collectives hot-path bugfix sweep.

Two historical defects pinned here:

* ``bcast(algorithm="auto")`` with no ``sim_bytes`` hint treated the
  payload as zero bytes and *always* picked binomial — long messages
  silently lost the scatter+allgather bandwidth win.  The fix sizes the
  decision from the root's actual payload (shared over a tiny control
  broadcast so every rank agrees and nothing deadlocks).
* ``_split`` with ``parts > len(data)`` produces empty tail chunks;
  that is deliberate and must round-trip losslessly through scatter /
  alltoall / the PEDAL compression shim — and ``parts < 1`` must be
  rejected rather than return garbage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.mpi import CommConfig, CommMode, run_mpi
from repro.mpi.collectives import BCAST_LONG_MSG_BYTES, _join, _split


def _bcast_algorithms(program, n, *run_args):
    """Run a program and return {rank: chosen bcast algorithm}."""
    tracer = obs.Tracer()
    prev = obs.set_tracer(tracer)
    try:
        result = run_mpi(program, n, *run_args)
    finally:
        obs.set_tracer(prev)
    algos = {
        span.attrs["rank"]: span.attrs["algorithm"]
        for span in tracer.find("mpi.bcast")
    }
    return result, algos


class TestBcastAutoSizing:
    def test_payload_above_threshold_switches(self):
        """The regression: a long message with no sim_bytes hint must
        pick scatter_allgather from the *actual* payload size (the old
        code sized a missing hint as 0 and always chose binomial)."""
        payload = b"x" * (BCAST_LONG_MSG_BYTES + 1)

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0, algorithm="auto")
            return out == payload

        result, algos = _bcast_algorithms(program, 4)
        assert all(result.returns)  # no deadlock, payload intact
        assert algos == {r: "scatter_allgather" for r in range(4)}

    def test_switchover_pinned_at_threshold(self):
        """Exactly BCAST_LONG_MSG_BYTES stays binomial (strict >)."""
        payload = b"x" * BCAST_LONG_MSG_BYTES

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0, algorithm="auto")
            return out == payload

        result, algos = _bcast_algorithms(program, 4)
        assert all(result.returns)
        assert algos == {r: "binomial" for r in range(4)}

    def test_hint_still_wins_over_payload(self):
        """An explicit sim_bytes hint decides without a control hop —
        even when the actual payload is tiny."""

        def program(ctx):
            data = b"tiny" if ctx.rank == 0 else None
            out = yield from ctx.bcast(
                data, root=0, sim_bytes=float(BCAST_LONG_MSG_BYTES + 1),
                algorithm="auto",
            )
            return out == b"tiny"

        result, algos = _bcast_algorithms(program, 4)
        assert all(result.returns)
        assert algos == {r: "scatter_allgather" for r in range(4)}

    def test_two_rank_communicator_stays_binomial(self):
        """scatter_allgather needs > 2 ranks to pay off."""
        payload = b"x" * (BCAST_LONG_MSG_BYTES * 2)

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0, algorithm="auto")
            return out == payload

        result, algos = _bcast_algorithms(program, 2)
        assert all(result.returns)
        assert algos == {0: "binomial", 1: "binomial"}

    def test_nonzero_root_agrees_everywhere(self):
        payload = b"y" * (BCAST_LONG_MSG_BYTES + 7)

        def program(ctx):
            data = payload if ctx.rank == 2 else None
            out = yield from ctx.bcast(data, root=2, algorithm="auto")
            return out == payload

        result, algos = _bcast_algorithms(program, 5)
        assert all(result.returns)
        assert set(algos.values()) == {"scatter_allgather"}

    def test_ndarray_payload_sized_by_nbytes(self):
        """ndarray sizing must use .nbytes, not len() (element count)."""
        arr = np.zeros(BCAST_LONG_MSG_BYTES // 8 + 1, dtype=np.float64)

        def program(ctx):
            data = arr if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0, algorithm="auto")
            return bool((out == arr).all())

        result, algos = _bcast_algorithms(program, 4)
        assert all(result.returns)
        assert set(algos.values()) == {"scatter_allgather"}

    def test_auto_under_pedal_shim(self):
        """The control broadcast and the data broadcast both survive the
        compression shim."""
        payload = (b"pattern! " * 80000)[: BCAST_LONG_MSG_BYTES + 64]

        def program(ctx):
            data = payload if ctx.rank == 0 else None
            out = yield from ctx.bcast(data, root=0, algorithm="auto")
            return out == payload

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        result, algos = _bcast_algorithms(program, 4, "bf2", cfg)
        assert all(result.returns)
        assert set(algos.values()) == {"scatter_allgather"}


class TestSplit:
    @pytest.mark.parametrize("parts", [1, 2, 3, 5, 8])
    def test_bytes_roundtrip(self, parts):
        data = bytes(range(97))
        chunks = _split(data, parts)
        assert len(chunks) == parts
        assert _join(chunks) == data

    @pytest.mark.parametrize("parts", [1, 3, 7])
    def test_ndarray_roundtrip(self, parts):
        data = np.arange(50, dtype=np.float32)
        chunks = _split(data, parts)
        assert len(chunks) == parts
        assert (_join(chunks) == data).all()

    def test_more_parts_than_elements_pads_with_empty(self):
        chunks = _split(b"ab", 5)
        assert chunks == [b"a", b"b", b"", b"", b""]
        assert _join(chunks) == b"ab"

    def test_ndarray_empty_tail_chunks(self):
        chunks = _split(np.arange(2, dtype=np.int64), 5)
        assert [len(c) for c in chunks] == [1, 1, 0, 0, 0]
        assert (_join(chunks) == np.arange(2, dtype=np.int64)).all()

    def test_empty_payload_splits_to_all_empty(self):
        assert _split(b"", 4) == [b"", b"", b"", b""]

    @pytest.mark.parametrize("parts", [0, -1])
    def test_nonpositive_parts_rejected(self, parts):
        with pytest.raises(ValueError, match="parts must be >= 1"):
            _split(b"data", parts)


class TestEmptyChunkCollectives:
    """Empty chunks must flow through every collective and the shim."""

    def test_scatter_empty_chunks(self):
        def program(ctx):
            chunks = _split(b"ab", ctx.size) if ctx.rank == 0 else None
            mine = yield from ctx.scatter(chunks, root=0)
            return mine

        result = run_mpi(program, 4)
        assert result.returns == [b"a", b"b", b"", b""]

    def test_scatter_gather_roundtrip_with_empties(self):
        def program(ctx):
            chunks = _split(b"xyz", ctx.size) if ctx.rank == 0 else None
            mine = yield from ctx.scatter(chunks, root=0)
            out = yield from ctx.gather(mine, root=0)
            return _join(out) if ctx.rank == 0 else None

        result = run_mpi(program, 5)
        assert result.returns[0] == b"xyz"

    def test_alltoall_with_empty_chunks(self):
        def program(ctx):
            # Rank r sends r bytes to everyone — rank 0 sends empties.
            chunks = [bytes([ctx.rank]) * ctx.rank for _ in range(ctx.size)]
            out = yield from ctx.alltoall(chunks)
            return [len(c) for c in out]

        result = run_mpi(program, 4)
        assert all(r == [0, 1, 2, 3] for r in result.returns)

    def test_scatter_allgather_bcast_short_payload(self):
        """Forcing the long-message algorithm onto a payload shorter
        than the communicator still round-trips (empty tail chunks)."""

        def program(ctx):
            data = b"ab" if ctx.rank == 0 else None
            out = yield from ctx.bcast(
                data, root=0, algorithm="scatter_allgather"
            )
            return out == b"ab"

        assert all(run_mpi(program, 5).returns)

    def test_empty_chunks_under_pedal_shim(self):
        """Zero-byte messages pass the compression shim unharmed."""

        def program(ctx):
            chunks = _split(b"q", ctx.size) if ctx.rank == 0 else None
            mine = yield from ctx.scatter(chunks, root=0)
            out = yield from ctx.gather(mine, root=0)
            return _join(out) if ctx.rank == 0 else None

        cfg = CommConfig(mode=CommMode.PEDAL, design="SoC_LZ4")
        result = run_mpi(program, 4, "bf2", cfg)
        assert result.returns[0] == b"q"

    def test_zero_byte_engine_billing_is_overhead_only(self, bf2):
        """A zero-byte engine job bills the fixed overhead, nothing
        proportional — the empty-chunk path stays finite and cheap."""
        from repro.dpu.specs import Algo, Direction

        t0 = bf2.cal.cengine_time(Algo.DEFLATE, Direction.COMPRESS, 0.0)
        t1 = bf2.cal.cengine_time(Algo.DEFLATE, Direction.COMPRESS, 1 << 20)
        assert 0.0 < t0 < t1
