"""The fabric model: transfer timing, link contention, loopback."""

import pytest

from repro.dpu import make_device
from repro.mpi.network import CONTROL_MESSAGE_BYTES, Fabric
from repro.sim import Environment


@pytest.fixture
def cluster2(env):
    nodes = [make_device(env, "bf2") for _ in range(2)]
    return Fabric(env, nodes), nodes


@pytest.fixture
def mixed(env):
    nodes = [make_device(env, "bf2"), make_device(env, "bf3")]
    return Fabric(env, nodes), nodes


class TestTiming:
    def test_transfer_time_formula(self, cluster2):
        fabric, nodes = cluster2
        t = fabric.transfer_time(0, 1, 25e9)  # 1 second of wire at 200Gb/s
        assert t == pytest.approx(1.0 + nodes[0].spec.nic.base_latency_s)

    def test_mixed_link_uses_min_bandwidth(self, mixed):
        fabric, _ = mixed
        # BF2 (25 GB/s) to BF3 (50 GB/s): min is 25 GB/s.
        assert fabric.link_bandwidth(0, 1) == pytest.approx(25e9)

    def test_mixed_link_uses_max_latency(self, mixed):
        fabric, nodes = mixed
        assert fabric.link_latency(0, 1) == pytest.approx(
            max(n.spec.nic.base_latency_s for n in nodes)
        )

    def test_transfer_charges_clock(self, env, cluster2, run_sim):
        fabric, _ = cluster2
        seconds = run_sim(env, fabric.transfer(0, 1, 25e6))
        assert env.now == pytest.approx(seconds)
        assert fabric.bytes_moved == 25e6

    def test_control_message(self, env, cluster2, run_sim):
        fabric, _ = cluster2
        seconds = run_sim(env, fabric.control(0, 1))
        assert seconds == pytest.approx(
            fabric.transfer_time(0, 1, CONTROL_MESSAGE_BYTES)
        )

    def test_loopback_is_memory_copy(self, env, cluster2, run_sim):
        fabric, nodes = cluster2
        seconds = run_sim(env, fabric.transfer(0, 0, 17e9))
        assert seconds == pytest.approx(nodes[0].memory.copy_time(int(17e9)))
        assert fabric.bytes_moved == 0  # loopback never hits the wire


class TestContention:
    def test_same_link_serialises(self, env, cluster2):
        fabric, _ = cluster2
        done = []

        def sender(env, fabric, tag):
            yield from fabric.transfer(0, 1, 25e9)  # ~1 s each
            done.append((tag, env.now))

        env.process(sender(env, fabric, "a"))
        env.process(sender(env, fabric, "b"))
        env.run()
        assert done[1][1] == pytest.approx(2 * done[0][1], rel=1e-3)

    def test_disjoint_directions_parallel(self, env, cluster2):
        fabric, _ = cluster2
        done = []

        def sender(env, fabric, src, dst):
            yield from fabric.transfer(src, dst, 25e9)
            done.append(env.now)

        env.process(sender(env, fabric, 0, 1))
        env.process(sender(env, fabric, 1, 0))
        env.run()
        assert done[0] == pytest.approx(done[1])
