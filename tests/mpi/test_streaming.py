"""Streaming rendezvous: byte identity, overlap wins, and gating.

The streamed path must be invisible to correctness (every payload
decodes byte-identical to the whole-message twin, across designs and
collectives) and visible to the clock (per-chunk codec work overlaps
fabric transfer, so SoC-placement streaming strictly beats the
serialized whole-message path on large messages).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import get_dataset
from repro.dpu.specs import Algo
from repro.mpi import CommConfig, CommMode, run_mpi
from repro.mpi.protocol import EAGER_THRESHOLD_BYTES

SIM_4MIB = 4.0 * 1024 * 1024


def _config(streaming: bool, design: str = "SoC_DEFLATE", **kw) -> CommConfig:
    kw.setdefault("stream_chunk_bytes", 2048)
    kw.setdefault("stream_depth", 4)
    return CommConfig(
        mode=CommMode.PEDAL, design=design, streaming=streaming, **kw
    )


@pytest.fixture(scope="module")
def payload() -> bytes:
    return get_dataset("net_telemetry").generate(16 * 1024)


def _pt2pt(config: CommConfig, payload: bytes, sim_bytes: float):
    """Returns (one-way seconds, received bytes)."""

    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.wtime()
            yield from ctx.send(1, payload, sim_bytes=sim_bytes)
            yield from ctx.recv(source=1)
            return ctx.wtime() - t0
        data = yield from ctx.recv(source=0)
        yield from ctx.send(0, data, sim_bytes=sim_bytes)
        return bytes(data)

    result = run_mpi(program, 2, "bf2", config)
    return result.returns[0], result.returns[1]


class TestByteIdentity:
    @pytest.mark.parametrize(
        "design", ["SoC_DEFLATE", "C-Engine_DEFLATE", "SoC_LZ4"]
    )
    def test_streamed_equals_whole(self, payload, design):
        _, streamed = _pt2pt(_config(True, design), payload, SIM_4MIB)
        _, whole = _pt2pt(_config(False, design), payload, SIM_4MIB)
        assert streamed == whole == payload

    def test_streamed_across_chunk_sizes(self, payload):
        for chunk_bytes in (333, 4096, len(payload) + 1):
            cfg = _config(True, stream_chunk_bytes=chunk_bytes)
            _, got = _pt2pt(cfg, payload, SIM_4MIB)
            assert got == payload

    def test_bcast_streamed_identical(self, payload):
        def program(ctx):
            data = payload if ctx.rank == 0 else None
            data = yield from ctx.bcast(data, root=0, sim_bytes=SIM_4MIB)
            return bytes(data) == payload

        result = run_mpi(program, 4, "bf2", _config(True))
        assert all(result.returns)

    def test_irecv_of_streamed_message(self, payload):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, payload, sim_bytes=SIM_4MIB)
                return True
            req = ctx.irecv(source=0)
            (data,) = yield from ctx.waitall([req])
            return bytes(data) == payload

        result = run_mpi(program, 2, "bf2", _config(True))
        assert all(result.returns)


class TestOverlapWins:
    def test_soc_streaming_beats_whole_message(self, payload):
        streamed_t, _ = _pt2pt(_config(True), payload, SIM_4MIB)
        whole_t, _ = _pt2pt(_config(False), payload, SIM_4MIB)
        assert streamed_t < whole_t

    def test_win_grows_with_message_size(self, payload):
        ratios = []
        for sim_mb in (1.0, 16.0):
            sim = sim_mb * 1024 * 1024
            streamed_t, _ = _pt2pt(_config(True), payload, sim)
            whole_t, _ = _pt2pt(_config(False), payload, sim)
            ratios.append(whole_t / streamed_t)
        assert ratios[-1] >= ratios[0] * 0.999  # monotone (within noise)
        assert ratios[-1] > 1.0

    def test_layer_counters_updated(self, payload):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, payload, sim_bytes=SIM_4MIB)
            else:
                yield from ctx.recv(source=0)

        result = run_mpi(program, 2, "bf2", _config(True))
        assert result.layers[0].compress_seconds > 0
        assert result.layers[1].decompress_seconds > 0


class TestGating:
    """wants_stream: streaming applies only where it is well-defined —
    PEDAL mode, a streamable single-stage codec, bytes payloads above
    the compress threshold."""

    def _wants(self, config: CommConfig, data, sim_bytes: float) -> bool:
        from repro.mpi import streaming

        def program(ctx):
            yield ctx.env.timeout(0)
            return streaming.wants_stream(ctx.layer, data, sim_bytes)

        return run_mpi(program, 1, "bf2", config).returns[0]

    def test_streams_above_threshold(self, payload):
        assert self._wants(_config(True), payload, SIM_4MIB)

    def test_disabled_by_default(self, payload):
        assert not self._wants(_config(False), payload, SIM_4MIB)

    def test_raw_mode_never_streams(self, payload):
        cfg = CommConfig(streaming=True, stream_chunk_bytes=2048)
        assert not self._wants(cfg, payload, SIM_4MIB)

    def test_below_threshold_stays_whole(self, payload):
        assert not self._wants(
            _config(True), payload, float(EAGER_THRESHOLD_BYTES)
        )

    def test_lossy_design_stays_whole(self, payload):
        assert not self._wants(
            _config(True, design="C-Engine_SZ3"), payload, SIM_4MIB
        )

    def test_non_bytes_payload_stays_whole(self):
        arr = np.zeros(1024, dtype=np.float32)
        assert not self._wants(_config(True), arr, SIM_4MIB)

    def test_empty_payload_stays_whole(self):
        assert not self._wants(_config(True), b"", SIM_4MIB)

    def test_small_messages_still_roundtrip_with_streaming_enabled(self):
        small = b"tiny message"

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, small, sim_bytes=256.0)
                return True
            data = yield from ctx.recv(source=0)
            return bytes(data) == small

        result = run_mpi(program, 2, "bf2", _config(True))
        assert all(result.returns)


class TestStreamedAlgos:
    @pytest.mark.parametrize("design", ["SoC_LZ4", "C-Engine_LZ4"])
    def test_lz4_designs_stream(self, payload, design):
        from repro.mpi import streaming

        def program(ctx):
            yield ctx.env.timeout(0)
            cfg = ctx.layer.config
            dsg = cfg.resolved_design()
            assert dsg.algo is Algo.LZ4
            return streaming.wants_stream(ctx.layer, payload, SIM_4MIB)

        assert run_mpi(program, 1, "bf2", _config(True, design)).returns[0]
