"""The MPI job runtime: ranks, barrier, timing, modes, failures."""

import numpy as np
import pytest

from repro.errors import MpiAbortError, SimDeadlockError
from repro.mpi import CommConfig, CommMode, run_mpi


class TestBasics:
    def test_single_rank(self):
        def program(ctx):
            return (ctx.rank, ctx.size)
            yield  # pragma: no cover

        result = run_mpi(program, 1)
        assert result.returns == [(0, 1)]

    def test_rank_identity(self):
        def program(ctx):
            yield ctx.env.timeout(0)
            return ctx.rank

        assert run_mpi(program, 5).returns == [0, 1, 2, 3, 4]

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_mpi(lambda ctx: iter(()), 0)

    def test_device_list_length_checked(self, env, bf2):
        with pytest.raises(ValueError):
            run_mpi(lambda ctx: iter(()), 2, devices=[bf2], env=env)

    def test_heterogeneous_cluster(self, env):
        from repro.dpu import make_device

        devices = [make_device(env, "bf2"), make_device(env, "bf3")]

        def program(ctx):
            yield ctx.env.timeout(0)
            return ctx.device.generation

        result = run_mpi(program, 2, devices=devices, env=env)
        assert result.returns == [2, 3]


class TestSendRecv:
    def test_pingpong_roundtrip(self, text_payload):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, text_payload)
                back = yield from ctx.recv(source=1)
                return back == text_payload
            data = yield from ctx.recv(source=0)
            yield from ctx.send(0, data)
            return True

        assert all(run_mpi(program, 2).returns)

    def test_deadlock_detected(self):
        def program(ctx):
            # Everyone receives, nobody sends.
            yield from ctx.recv(source=(ctx.rank + 1) % ctx.size)

        with pytest.raises(SimDeadlockError):
            run_mpi(program, 2)

    def test_abort(self):
        def program(ctx):
            yield ctx.env.timeout(0)
            if ctx.rank == 1:
                ctx.abort("bad input")
            return "ok"

        with pytest.raises(MpiAbortError):
            run_mpi(program, 2)

    def test_wtime_monotonic(self):
        def program(ctx):
            t0 = ctx.wtime()
            yield ctx.env.timeout(1.5)
            return ctx.wtime() - t0

        assert run_mpi(program, 1).returns[0] == pytest.approx(1.5)


class TestBarrier:
    def test_barrier_synchronises(self):
        def program(ctx):
            yield ctx.env.timeout(float(ctx.rank))  # staggered arrival
            yield from ctx.barrier()
            return ctx.wtime()

        result = run_mpi(program, 4)
        assert all(t == pytest.approx(3.0) for t in result.returns)

    def test_barrier_reusable(self):
        def program(ctx):
            times = []
            for round_no in range(3):
                yield ctx.env.timeout(ctx.rank * 0.1 + 0.01)
                yield from ctx.barrier()
                times.append(ctx.wtime())
            return times

        result = run_mpi(program, 3)
        for round_no in range(3):
            marks = {r[round_no] for r in result.returns}
            assert len(marks) == 1  # all ranks agree per round


class TestModes:
    def _pingpong(self, payload, sim_bytes):
        def program(ctx):
            if ctx.rank == 0:
                t0 = ctx.wtime()
                yield from ctx.send(1, payload, sim_bytes=sim_bytes)
                yield from ctx.recv(source=1)
                return (ctx.wtime() - t0) / 2
            data = yield from ctx.recv(source=0)
            yield from ctx.send(0, data, sim_bytes=sim_bytes)
            return None

        return program

    def test_mode_requires_design(self):
        with pytest.raises(ValueError):
            CommConfig(mode=CommMode.PEDAL)

    def test_pedal_init_runs_in_mpi_init(self, text_payload):
        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        result = run_mpi(self._pingpong(text_payload, 1e6), 2, "bf2", cfg)
        assert result.init_seconds > 0.05  # DOCA init + pool prewarm
        assert all(
            layer.pedal is not None and layer.pedal.is_initialized
            for layer in result.layers
        )

    def test_raw_mode_has_no_init_cost(self, text_payload):
        result = run_mpi(self._pingpong(text_payload, 1e6), 2)
        assert result.init_seconds == 0.0

    def test_ordering_raw_vs_pedal_vs_naive(self, text_payload):
        latencies = {}
        for mode, design in [
            (CommMode.RAW, None),
            (CommMode.PEDAL, "C-Engine_DEFLATE"),
            (CommMode.NAIVE, "C-Engine_DEFLATE"),
        ]:
            cfg = CommConfig(mode=mode, design=design)
            result = run_mpi(self._pingpong(text_payload, 5.1e6), 2, "bf2", cfg)
            latencies[mode] = result.returns[0]
        # For this message size: raw < pedal << naive.
        assert latencies[CommMode.RAW] < latencies[CommMode.PEDAL]
        assert latencies[CommMode.PEDAL] * 10 < latencies[CommMode.NAIVE]

    def test_pedal_passthrough_below_threshold(self):
        small = b"tiny" * 100  # default sim size << rndv threshold

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, small)
                return None
            data = yield from ctx.recv(source=0)
            return data

        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        result = run_mpi(program, 2, "bf2", cfg)
        assert result.returns[1] == small

    def test_ndarray_through_pedal_sz3(self, smooth_field):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, smooth_field, sim_bytes=10e6)
                return None
            data = yield from ctx.recv(source=0)
            return data

        cfg = CommConfig(mode=CommMode.PEDAL, design="SoC_SZ3")
        result = run_mpi(program, 2, "bf2", cfg)
        out = result.returns[1]
        assert isinstance(out, np.ndarray)
        err = np.abs(out.astype(np.float64) - smooth_field.astype(np.float64)).max()
        assert err <= 1e-4 + 1e-6

    def test_compression_layer_accounting(self, text_payload):
        cfg = CommConfig(mode=CommMode.PEDAL, design="SoC_DEFLATE")
        result = run_mpi(self._pingpong(text_payload, 5.1e6), 2, "bf2", cfg)
        assert result.layers[0].compress_seconds > 0
        assert result.layers[0].decompress_seconds > 0  # echo comes back
