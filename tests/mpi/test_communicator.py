"""MPI matching semantics: ordering, wildcards, rendezvous, truncation."""

import pytest

from repro.dpu import make_device
from repro.errors import MpiTruncationError
from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.network import Fabric
from repro.mpi.protocol import EAGER_THRESHOLD_BYTES, Protocol


@pytest.fixture
def comm(env):
    nodes = [make_device(env, "bf2") for _ in range(3)]
    fabric = Fabric(env, nodes)
    return Communicator(env, nodes, fabric, EAGER_THRESHOLD_BYTES)


def test_eager_send_before_recv(env, comm):
    """Unexpected-message queue: send completes without a posted recv."""
    got = []

    def sender(env, comm):
        yield from comm.send(0, 1, tag=5, payload="hello", wire_bytes=100)

    def receiver(env, comm):
        yield env.timeout(1.0)  # post late
        envlp = yield from comm.recv(1, source=0, tag=5)
        got.append((envlp.payload, env.now))

    env.process(sender(env, comm))
    env.process(receiver(env, comm))
    env.run()
    assert got == [("hello", 1.0)]


def test_recv_blocks_until_send(env, comm):
    got = []

    def receiver(env, comm):
        envlp = yield from comm.recv(1, source=0, tag=0)
        got.append((envlp.payload, env.now))

    def sender(env, comm):
        yield env.timeout(2.0)
        yield from comm.send(0, 1, tag=0, payload="late", wire_bytes=10)

    env.process(receiver(env, comm))
    env.process(sender(env, comm))
    env.run()
    assert got[0][0] == "late"
    assert got[0][1] >= 2.0


def test_non_overtaking_order_same_key(env, comm):
    order = []

    def sender(env, comm):
        yield from comm.send(0, 1, tag=9, payload="first", wire_bytes=10)
        yield from comm.send(0, 1, tag=9, payload="second", wire_bytes=10)

    def receiver(env, comm):
        a = yield from comm.recv(1, source=0, tag=9)
        b = yield from comm.recv(1, source=0, tag=9)
        order.extend([a.payload, b.payload])

    env.process(sender(env, comm))
    env.process(receiver(env, comm))
    env.run()
    assert order == ["first", "second"]


def test_tag_selectivity(env, comm):
    got = []

    def sender(env, comm):
        yield from comm.send(0, 1, tag=1, payload="one", wire_bytes=10)
        yield from comm.send(0, 1, tag=2, payload="two", wire_bytes=10)

    def receiver(env, comm):
        second = yield from comm.recv(1, source=0, tag=2)
        first = yield from comm.recv(1, source=0, tag=1)
        got.extend([second.payload, first.payload])

    env.process(sender(env, comm))
    env.process(receiver(env, comm))
    env.run()
    assert got == ["two", "one"]


def test_any_source_any_tag(env, comm):
    got = []

    def sender(env, comm, src, payload):
        yield env.timeout(src)
        yield from comm.send(src, 2, tag=src * 10, payload=payload, wire_bytes=10)

    def receiver(env, comm):
        a = yield from comm.recv(2, source=ANY_SOURCE, tag=ANY_TAG)
        b = yield from comm.recv(2, source=ANY_SOURCE, tag=ANY_TAG)
        got.extend([(a.source, a.payload), (b.source, b.payload)])

    env.process(sender(env, comm, 0, "from0"))
    env.process(sender(env, comm, 1, "from1"))
    env.process(receiver(env, comm))
    env.run()
    assert got == [(0, "from0"), (1, "from1")]


def test_rendezvous_handshake_blocks_sender(env, comm):
    """RNDV send cannot complete before the receive is posted."""
    events = []
    big = EAGER_THRESHOLD_BYTES * 4

    def sender(env, comm):
        yield from comm.send(0, 1, tag=0, payload="bulk", wire_bytes=big)
        events.append(("send_done", env.now))

    def receiver(env, comm):
        yield env.timeout(5.0)
        envlp = yield from comm.recv(1, source=0, tag=0)
        assert envlp.protocol is Protocol.RENDEZVOUS
        events.append(("recv_done", env.now))

    env.process(sender(env, comm))
    env.process(receiver(env, comm))
    env.run()
    send_done = dict(events)["send_done"]
    assert send_done >= 5.0  # held until CTS


def test_eager_sender_completes_immediately(env, comm):
    events = []

    def sender(env, comm):
        yield from comm.send(0, 1, tag=0, payload="small", wire_bytes=64)
        events.append(env.now)

    def receiver(env, comm):
        yield env.timeout(9.0)
        yield from comm.recv(1, source=0, tag=0)

    env.process(sender(env, comm))
    env.process(receiver(env, comm))
    env.run()
    assert events[0] < 1.0  # sender returned long before the recv


def test_truncation_error(env, comm):
    def sender(env, comm):
        yield from comm.send(0, 1, tag=0, payload="big", wire_bytes=5000)

    def receiver(env, comm):
        yield from comm.recv(1, source=0, tag=0, max_bytes=100)

    env.process(sender(env, comm))
    proc = env.process(receiver(env, comm))
    with pytest.raises(MpiTruncationError):
        env.run(until=proc)


def test_messages_sent_counter(env, comm, run_sim):
    def sender(env, comm):
        yield from comm.send(0, 1, tag=0, payload="x", wire_bytes=8)

    def receiver(env, comm):
        yield from comm.recv(1)

    env.process(sender(env, comm))
    env.process(receiver(env, comm))
    env.run()
    assert comm.messages_sent == 1
