"""Eager/rendezvous selection and the PEDAL compression rule."""

from repro.mpi.protocol import (
    EAGER_THRESHOLD_BYTES,
    Protocol,
    protocol_for,
    should_compress,
)


class TestProtocolSelection:
    def test_small_is_eager(self):
        assert protocol_for(1024) is Protocol.EAGER

    def test_threshold_inclusive_eager(self):
        assert protocol_for(EAGER_THRESHOLD_BYTES) is Protocol.EAGER

    def test_large_is_rendezvous(self):
        assert protocol_for(EAGER_THRESHOLD_BYTES + 1) is Protocol.RENDEZVOUS

    def test_custom_threshold(self):
        assert protocol_for(100, eager_threshold=10) is Protocol.RENDEZVOUS
        assert protocol_for(100, eager_threshold=1000) is Protocol.EAGER


class TestShouldCompress:
    def test_pedal_only_compresses_rendezvous_path(self):
        # Paper §IV: PEDAL operates on RNDV, not Eager.
        assert not should_compress(EAGER_THRESHOLD_BYTES)
        assert should_compress(EAGER_THRESHOLD_BYTES + 1)

    def test_custom_threshold(self):
        assert should_compress(2048, rndv_threshold=1024)
        assert not should_compress(512, rndv_threshold=1024)
