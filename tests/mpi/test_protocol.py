"""Eager/rendezvous selection and the PEDAL compression rule.

Both deciders read the *same* byte domain — the pre-compression
(``sim_uncompressed``) size — so a message is compressed iff it is
rendezvous.  The boundary tests pin the convention at exactly the
threshold and one byte above it, and the communicator tests prove the
protocol choice ignores the post-compression wire size.
"""

import pytest

from repro.dpu import make_device
from repro.errors import MpiConfigError
from repro.mpi.communicator import Communicator
from repro.mpi.network import Fabric
from repro.mpi.pedal_integration import CommConfig, CommMode
from repro.mpi.protocol import (
    EAGER_THRESHOLD_BYTES,
    Protocol,
    protocol_for,
    should_compress,
)


class TestProtocolSelection:
    def test_small_is_eager(self):
        assert protocol_for(1024) is Protocol.EAGER

    def test_threshold_inclusive_eager(self):
        assert protocol_for(EAGER_THRESHOLD_BYTES) is Protocol.EAGER

    def test_large_is_rendezvous(self):
        assert protocol_for(EAGER_THRESHOLD_BYTES + 1) is Protocol.RENDEZVOUS

    def test_custom_threshold(self):
        assert protocol_for(100, eager_threshold=10) is Protocol.RENDEZVOUS
        assert protocol_for(100, eager_threshold=1000) is Protocol.EAGER


class TestShouldCompress:
    def test_pedal_only_compresses_rendezvous_path(self):
        # Paper §IV: PEDAL operates on RNDV, not Eager.
        assert not should_compress(EAGER_THRESHOLD_BYTES)
        assert should_compress(EAGER_THRESHOLD_BYTES + 1)

    def test_custom_threshold(self):
        assert should_compress(2048, rndv_threshold=1024)
        assert not should_compress(512, rndv_threshold=1024)


class TestDecidersAgreeAtBoundary:
    """The bug this sweep fixed: protocol_for used wire bytes while
    should_compress used sim bytes, so a compressible rendezvous
    message could shrink below the eager threshold and go out eager —
    compressed.  Both deciders now share the pre-compression domain
    and must flip at the same byte."""

    @pytest.mark.parametrize(
        "sim_bytes", [EAGER_THRESHOLD_BYTES, EAGER_THRESHOLD_BYTES + 1]
    )
    def test_compress_iff_rendezvous(self, sim_bytes):
        compressed = should_compress(sim_bytes)
        rendezvous = protocol_for(sim_bytes) is Protocol.RENDEZVOUS
        assert compressed == rendezvous

    @pytest.mark.parametrize("threshold", [0, 1, 1024])
    def test_compress_iff_rendezvous_custom_threshold(self, threshold):
        for sim_bytes in (threshold, threshold + 1):
            assert should_compress(sim_bytes, rndv_threshold=threshold) == (
                protocol_for(sim_bytes, eager_threshold=threshold)
                is Protocol.RENDEZVOUS
            )


class TestProtocolPinnedToPreCompressionSize:
    """Communicator-level: the envelope's protocol follows
    ``meta["sim_uncompressed"]``, not the (possibly much smaller)
    wire size."""

    @pytest.fixture
    def comm(self, env):
        nodes = [make_device(env, "bf2") for _ in range(2)]
        return Communicator(env, nodes, Fabric(env, nodes),
                            EAGER_THRESHOLD_BYTES)

    def _exchange(self, env, comm, wire_bytes, meta):
        box = []

        def sender(env, comm):
            yield from comm.send(0, 1, tag=0, payload="p",
                                 wire_bytes=wire_bytes, meta=meta)

        def receiver(env, comm):
            envlp = yield from comm.recv(1, source=0, tag=0)
            box.append(envlp)

        env.process(sender(env, comm))
        env.process(receiver(env, comm))
        env.run()
        return box[0]

    def test_compressed_message_stays_rendezvous(self, env, comm):
        # 1 MiB message compressed down to 100 wire bytes: still RNDV.
        envlp = self._exchange(
            env, comm, wire_bytes=100.0,
            meta={"sim_uncompressed": 2.0 ** 20, "compressed": True},
        )
        assert envlp.protocol is Protocol.RENDEZVOUS

    def test_exactly_threshold_is_eager(self, env, comm):
        envlp = self._exchange(
            env, comm, wire_bytes=float(EAGER_THRESHOLD_BYTES),
            meta={"sim_uncompressed": float(EAGER_THRESHOLD_BYTES)},
        )
        assert envlp.protocol is Protocol.EAGER

    def test_one_byte_above_threshold_is_rendezvous(self, env, comm):
        envlp = self._exchange(
            env, comm, wire_bytes=float(EAGER_THRESHOLD_BYTES + 1),
            meta={"sim_uncompressed": float(EAGER_THRESHOLD_BYTES + 1)},
        )
        assert envlp.protocol is Protocol.RENDEZVOUS

    def test_bare_send_falls_back_to_wire_bytes(self, env, comm):
        envlp = self._exchange(
            env, comm, wire_bytes=float(EAGER_THRESHOLD_BYTES * 4), meta={}
        )
        assert envlp.protocol is Protocol.RENDEZVOUS


class TestCommConfigValidation:
    """Inconsistent thresholds are a construction-time typed error,
    not a silent protocol/compression divergence at send time."""

    def test_divergent_thresholds_rejected(self):
        with pytest.raises(MpiConfigError, match="rndv_threshold"):
            CommConfig(
                mode=CommMode.PEDAL,
                design="C-Engine_DEFLATE",
                rndv_threshold=EAGER_THRESHOLD_BYTES * 2,
            )

    def test_matching_custom_thresholds_accepted(self):
        cfg = CommConfig(rndv_threshold=1024, eager_threshold=1024)
        assert cfg.rndv_threshold == cfg.eager_threshold == 1024

    def test_negative_threshold_rejected(self):
        with pytest.raises(MpiConfigError, match="eager_threshold"):
            CommConfig(rndv_threshold=-1, eager_threshold=-1)

    def test_bad_stream_chunk_bytes_rejected(self):
        with pytest.raises(MpiConfigError, match="stream_chunk_bytes"):
            CommConfig(stream_chunk_bytes=0)

    def test_bad_stream_depth_rejected(self):
        with pytest.raises(MpiConfigError, match="stream_depth"):
            CommConfig(stream_depth=0)

    def test_mpi_config_error_is_typed(self):
        from repro.errors import MpiError

        assert issubclass(MpiConfigError, MpiError)
