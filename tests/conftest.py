"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.codecs import clear_codec_cache
from repro.dpu import make_device
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _fresh_codec_cache():
    """Isolate the real-codec memo cache between tests."""
    clear_codec_cache()
    yield
    clear_codec_cache()


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def bf2(env):
    return make_device(env, "bf2")


@pytest.fixture
def bf3(env):
    return make_device(env, "bf3")


@pytest.fixture
def text_payload() -> bytes:
    """A compressible, structured byte payload."""
    return (b"the quick brown fox jumps over the lazy dog. " * 400)[:16384]


@pytest.fixture
def binary_payload() -> bytes:
    """A mixed-compressibility payload with runs and noise."""
    rng = np.random.default_rng(7)
    return (
        rng.bytes(4096)
        + b"\x00" * 4096
        + bytes(rng.integers(0, 16, size=4096, dtype=np.uint8))
    )


@pytest.fixture
def smooth_field() -> np.ndarray:
    """A smooth float32 field suitable for SZ3."""
    t = np.linspace(0.0, 30.0, 40000)
    return (np.sin(t) + 0.2 * np.sin(7.1 * t)).astype(np.float32)


def drive(environment: Environment, generator):
    """Run a simulation generator to completion; return its value."""
    proc = environment.process(generator)
    return environment.run(until=proc)


@pytest.fixture
def run_sim():
    return drive
