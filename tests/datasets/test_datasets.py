"""Synthetic dataset generators and the Table IV registry."""

import numpy as np
import pytest

from repro.datasets import DATASETS, get_dataset, lossless_datasets, lossy_datasets
from repro.util.stats import byte_entropy

N = 64 * 1024


class TestRegistry:
    def test_nine_datasets(self):
        # Paper Table IV (five lossless + three lossy) plus the
        # post-paper hypersparse telemetry stream; kind "telemetry"
        # keeps the Table IV figure sweeps at their pinned row counts.
        assert len(DATASETS) == 9
        assert len(lossless_datasets()) == 5
        assert len(lossy_datasets()) == 3
        assert get_dataset("net_telemetry").kind == "telemetry"

    def test_nominal_sizes_match_table4(self):
        expected = {
            "silesia/xml": 5.1,
            "silesia/mr": 9.51,
            "silesia/samba": 20.61,
            "obs_error": 30.0,
            "silesia/mozilla": 48.85,
            "exaalt-dataset1": 10.0,
            "exaalt-dataset3": 31.0,
            "exaalt-dataset2": 64.0,
        }
        for key, mb in expected.items():
            assert get_dataset(key).nominal_mb == pytest.approx(mb)

    def test_sorted_by_size(self):
        sizes = [d.nominal_bytes for d in lossless_datasets()]
        assert sizes == sorted(sizes)

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            get_dataset("silesia/dickens")

    def test_sim_scale(self):
        ds = get_dataset("silesia/xml")
        assert ds.sim_scale(1_000_000) == pytest.approx(5.1)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            get_dataset("silesia/xml").generate(0)


class TestGeneration:
    @pytest.mark.parametrize("key", sorted(DATASETS))
    def test_deterministic(self, key):
        ds = get_dataset(key)
        a = ds.generate(N)
        b = ds.generate(N)
        if isinstance(a, np.ndarray):
            np.testing.assert_array_equal(a, b)
        else:
            assert a == b

    @pytest.mark.parametrize("key", sorted(DATASETS))
    def test_requested_size(self, key):
        ds = get_dataset(key)
        data = ds.generate(N)
        assert ds.payload_nbytes(data) == pytest.approx(N, abs=64)

    def test_lossless_are_bytes(self):
        for ds in lossless_datasets():
            assert isinstance(ds.generate(4096), bytes)

    def test_lossy_are_float32(self):
        for ds in lossy_datasets():
            arr = ds.generate(4096)
            assert isinstance(arr, np.ndarray)
            assert arr.dtype == np.float32
            assert np.isfinite(arr).all()

    def test_different_sizes_share_prefix_character(self):
        # Not byte-identical prefixes (rng reseeds by size), but the
        # compressibility class must be stable across sizes.
        from repro.algorithms.lz4 import lz4_block_compress

        ds = get_dataset("silesia/xml")
        small, large = ds.generate(32 * 1024), ds.generate(128 * 1024)
        r_small = len(small) / len(lz4_block_compress(small))
        r_large = len(large) / len(lz4_block_compress(large))
        assert r_small == pytest.approx(r_large, rel=0.35)


class TestCompressibilityOrdering:
    """Byte-entropy ordering must reflect the paper's Table V ordering."""

    def test_xml_below_samba_entropy(self):
        # Order-0 entropy tracks LZ compressibility only within a data
        # class; compare like with like (xml vs samba are both text).
        entropies = {
            ds.key: byte_entropy(ds.generate(N)) for ds in lossless_datasets()
        }
        assert entropies["silesia/xml"] < entropies["silesia/samba"]

    def test_obs_error_highest_entropy(self):
        entropies = {
            ds.key: byte_entropy(ds.generate(N)) for ds in lossless_datasets()
        }
        assert entropies["obs_error"] == max(entropies.values())

    def test_exaalt_profiles_ordered(self):
        # dataset1 is the "hottest" (least compressible under SZ3).
        from repro.algorithms.sz3 import SZ3Config, sz3_compress

        cfg = SZ3Config(error_bound=1e-4)
        ratios = {}
        for ds in lossy_datasets():
            arr = ds.generate(N)
            ratios[ds.key] = arr.nbytes / len(sz3_compress(arr, cfg))
        assert ratios["exaalt-dataset1"] < ratios["exaalt-dataset2"]
        assert ratios["exaalt-dataset1"] < ratios["exaalt-dataset3"]

    def test_exaalt_invalid_index(self):
        from repro.datasets.exaalt import generate_exaalt

        with pytest.raises(ValueError):
            generate_exaalt(4, 1024)


class TestNetTelemetry:
    """The hypersparse telemetry stream must be *extremely* sparse."""

    def test_hypersparse_profile(self):
        data = get_dataset("net_telemetry").generate(N)
        # Most bytes are zero (sorted-coordinate deltas + empty
        # histogram regions), so order-0 entropy is far below text.
        zero_fraction = data.count(0) / len(data)
        assert zero_fraction > 0.6
        assert byte_entropy(data) < 3.0

    def test_stresses_ratio_model(self):
        # Much more compressible than every Table IV lossless dataset:
        # the extreme-sparsity regime the GraphBLAS-on-DPU traffic
        # lives in, which whole-corpus-tuned ratio estimators misprice.
        from repro.algorithms.lz4 import lz4_block_compress

        telemetry = get_dataset("net_telemetry").generate(N)
        ratio = len(telemetry) / len(lz4_block_compress(telemetry))
        for ds in lossless_datasets():
            blob = ds.generate(N)
            assert ratio > len(blob) / len(lz4_block_compress(blob))
