"""The synthetic corpora must land near the paper's Table V ratios.

Bands are deliberately loose (the generators were tuned at 256 KiB;
this test runs smaller for speed), but the *ordering* assertions are
strict — they are what makes the reproduction meaningful.
"""

import pytest

from repro.algorithms.deflate import deflate_compress
from repro.algorithms.lz4 import lz4_compress
from repro.algorithms.sz3 import SZ3Config, sz3_compress
from repro.datasets import get_dataset

N = 128 * 1024

PAPER_DEFLATE = {
    "silesia/xml": 7.769,
    "silesia/samba": 3.963,
    "silesia/mr": 2.712,
    "silesia/mozilla": 2.683,
    "obs_error": 1.469,
}


@pytest.fixture(scope="module")
def deflate_ratios():
    out = {}
    for key in PAPER_DEFLATE:
        data = get_dataset(key).generate(N)
        out[key] = len(data) / len(deflate_compress(data))
    return out


class TestLosslessBands:
    @pytest.mark.parametrize("key,paper", sorted(PAPER_DEFLATE.items()))
    def test_deflate_within_25_percent(self, deflate_ratios, key, paper):
        assert deflate_ratios[key] == pytest.approx(paper, rel=0.25)

    def test_ordering_matches_paper(self, deflate_ratios):
        measured_order = sorted(deflate_ratios, key=deflate_ratios.get)
        paper_order = sorted(PAPER_DEFLATE, key=PAPER_DEFLATE.get)
        assert measured_order == paper_order

    def test_lz4_below_deflate_everywhere(self, deflate_ratios):
        # Table V(a): LZ4 trails DEFLATE on every dataset.
        for key in PAPER_DEFLATE:
            data = get_dataset(key).generate(N)
            lz4_ratio = len(data) / len(lz4_compress(data))
            assert lz4_ratio < deflate_ratios[key]


class TestLossyBands:
    PAPER_SZ3 = {
        "exaalt-dataset1": 2.941,
        "exaalt-dataset3": 5.745,
        "exaalt-dataset2": 5.378,
    }

    @pytest.mark.parametrize("key,paper", sorted(PAPER_SZ3.items()))
    def test_sz3_within_25_percent(self, key, paper):
        arr = get_dataset(key).generate(N)
        ratio = arr.nbytes / len(sz3_compress(arr, SZ3Config(error_bound=1e-4)))
        assert ratio == pytest.approx(paper, rel=0.25)
