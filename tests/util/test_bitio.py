"""Tests for LSB-first bit I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptStreamError
from repro.util.bitio import BitReader, BitWriter, reverse_bits


class TestReverseBits:
    def test_single_bit(self):
        assert reverse_bits(1, 1) == 1
        assert reverse_bits(0, 1) == 0

    def test_known_patterns(self):
        assert reverse_bits(0b110, 3) == 0b011
        assert reverse_bits(0b10000000, 8) == 0b00000001
        assert reverse_bits(0b1011, 4) == 0b1101

    def test_involution(self):
        for value in range(256):
            assert reverse_bits(reverse_bits(value, 8), 8) == value


class TestBitWriter:
    def test_empty(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte_lsb_order(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.write_bits(0b0, 1)
        w.write_bits(0b1, 1)
        # bits fill from the LSB: 0b...101
        assert w.getvalue() == bytes([0b101])

    def test_cross_byte_value(self):
        w = BitWriter()
        w.write_bits(0xABC, 12)
        data = w.getvalue()
        assert data[0] == 0xBC
        assert data[1] == 0x0A

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(0b100, 2)

    def test_negative_nbits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_zero_bits_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.getvalue() == b""
        assert w.bit_length == 0

    def test_align_pads_with_zeros(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.align_to_byte()
        assert w.getvalue() == bytes([0b1])
        assert w.bit_length == 8

    def test_write_bytes_aligns_first(self):
        w = BitWriter()
        w.write_bits(0b11, 2)
        w.write_bytes(b"\xaa")
        assert w.getvalue() == bytes([0b11, 0xAA])

    def test_bit_length_tracks_pending(self):
        w = BitWriter()
        w.write_bits(0b111, 3)
        assert w.bit_length == 3
        w.write_bits(0x1F, 5)
        assert w.bit_length == 8


class TestWriteCodeArray:
    def test_matches_scalar_writes(self):
        rng = np.random.default_rng(3)
        lengths = rng.integers(0, 16, size=500).astype(np.int64)
        codes = np.array(
            [rng.integers(0, 1 << l) if l else 0 for l in lengths], dtype=np.uint32
        )
        bulk = BitWriter()
        bulk.write_bits(0b10, 2)  # unaligned prefix
        bulk.write_code_array(codes, lengths)
        scalar = BitWriter()
        scalar.write_bits(0b10, 2)
        for c, l in zip(codes, lengths):
            scalar.write_bits(int(c), int(l))
        assert bulk.getvalue() == scalar.getvalue()
        assert bulk.bit_length == scalar.bit_length

    def test_empty_array(self):
        w = BitWriter()
        w.write_code_array(np.zeros(0, np.uint32), np.zeros(0, np.int64))
        assert w.getvalue() == b""

    def test_all_zero_lengths(self):
        w = BitWriter()
        w.write_code_array(np.zeros(5, np.uint32), np.zeros(5, np.int64))
        assert w.getvalue() == b""

    def test_shape_mismatch_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_code_array(np.zeros(3, np.uint32), np.zeros(4, np.int64))

    def test_32_bit_codes(self):
        w = BitWriter()
        w.write_code_array(
            np.array([0xDEADBEEF], dtype=np.uint32), np.array([32], dtype=np.int64)
        )
        r = BitReader(w.getvalue())
        assert r.read_bits(32) == 0xDEADBEEF


class TestBitReader:
    def test_roundtrip_mixed(self):
        w = BitWriter()
        fields = [(0b101, 3), (0xFF, 8), (0, 1), (0x3FFF, 14), (1, 1)]
        for value, nbits in fields:
            w.write_bits(value, nbits)
        r = BitReader(w.getvalue())
        for value, nbits in fields:
            assert r.read_bits(nbits) == value

    def test_peek_does_not_consume(self):
        r = BitReader(bytes([0b10110101]))
        assert r.peek_bits(4) == 0b0101
        assert r.peek_bits(4) == 0b0101
        assert r.read_bits(4) == 0b0101
        assert r.read_bits(4) == 0b1011

    def test_peek_beyond_end_zero_fills(self):
        r = BitReader(bytes([0xFF]))
        assert r.peek_bits(16) == 0x00FF

    def test_read_beyond_end_raises(self):
        r = BitReader(b"")
        with pytest.raises(CorruptStreamError):
            r.read_bits(1)

    def test_skip_more_than_buffered_raises(self):
        r = BitReader(bytes([0xFF]))
        r.peek_bits(4)
        with pytest.raises(CorruptStreamError):
            r.skip_bits(20)

    def test_align_and_read_bytes(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.write_bytes(b"hello")
        r = BitReader(w.getvalue())
        assert r.read_bits(1) == 1
        assert r.read_bytes(5) == b"hello"

    def test_read_bytes_from_buffered_bits(self):
        r = BitReader(b"abcd")
        r.peek_bits(16)  # buffers two bytes
        assert r.read_bytes(3) == b"abc"
        assert r.read_bytes(1) == b"d"

    def test_read_bytes_beyond_end_raises(self):
        r = BitReader(b"ab")
        with pytest.raises(CorruptStreamError):
            r.read_bytes(3)

    def test_bits_consumed(self):
        r = BitReader(bytes([0xFF, 0xFF]))
        r.read_bits(3)
        assert r.bits_consumed == 3
        r.read_bits(8)
        assert r.bits_consumed == 11


@given(
    st.lists(
        st.integers(min_value=0, max_value=24).flatmap(
            lambda n: st.tuples(st.integers(0, (1 << n) - 1 if n else 0), st.just(n))
        ),
        max_size=200,
    )
)
@settings(max_examples=60)
def test_property_writer_reader_roundtrip(fields):
    w = BitWriter()
    for value, nbits in fields:
        w.write_bits(value, nbits)
    r = BitReader(w.getvalue())
    for value, nbits in fields:
        assert r.read_bits(nbits) == value
