"""Byte statistics."""

import numpy as np
import pytest

from repro.util.stats import byte_entropy, byte_histogram, compression_ratio


class TestHistogram:
    def test_empty(self):
        hist = byte_histogram(b"")
        assert hist.shape == (256,)
        assert hist.sum() == 0

    def test_counts(self):
        hist = byte_histogram(b"aab")
        assert hist[ord("a")] == 2
        assert hist[ord("b")] == 1
        assert hist.sum() == 3

    def test_full_range(self):
        hist = byte_histogram(bytes(range(256)))
        assert (hist == 1).all()


class TestEntropy:
    def test_empty_is_zero(self):
        assert byte_entropy(b"") == 0.0

    def test_constant_is_zero(self):
        assert byte_entropy(b"\x42" * 1000) == 0.0

    def test_uniform_is_eight_bits(self):
        assert byte_entropy(bytes(range(256)) * 16) == pytest.approx(8.0)

    def test_two_symbols_is_one_bit(self):
        assert byte_entropy(b"ab" * 500) == pytest.approx(1.0)

    def test_random_data_near_eight(self):
        rng = np.random.default_rng(0)
        assert byte_entropy(rng.bytes(100000)) > 7.9


class TestCompressionRatio:
    def test_basic(self):
        assert compression_ratio(100, 50) == 2.0

    def test_expansion_below_one(self):
        assert compression_ratio(100, 200) == 0.5

    def test_zero_compressed_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(100, 0)
