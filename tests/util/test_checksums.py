"""CRC-32 / Adler-32 against the stdlib oracle."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.checksums import adler32, crc32


KNOWN = [
    b"",
    b"a",
    b"abc",
    b"hello world",
    b"\x00" * 1000,
    bytes(range(256)) * 10,
]


class TestCrc32:
    @pytest.mark.parametrize("blob", KNOWN, ids=range(len(KNOWN)))
    def test_matches_stdlib(self, blob):
        assert crc32(blob) == zlib.crc32(blob)

    def test_known_vector(self):
        # The classic "123456789" check value.
        assert crc32(b"123456789") == 0xCBF43926

    def test_incremental_matches_oneshot(self):
        blob = b"the quick brown fox" * 50
        running = 0
        for i in range(0, len(blob), 97):
            running = crc32(blob[i : i + 97], running)
        assert running == crc32(blob)

    def test_accepts_memoryview(self):
        blob = b"some data"
        assert crc32(memoryview(blob)) == crc32(blob)


class TestAdler32:
    @pytest.mark.parametrize("blob", KNOWN, ids=range(len(KNOWN)))
    def test_matches_stdlib(self, blob):
        assert adler32(blob) == zlib.adler32(blob)

    def test_known_vector(self):
        assert adler32(b"Wikipedia") == 0x11E60398

    def test_incremental_matches_oneshot(self):
        blob = bytes(range(256)) * 300
        running = 1
        for i in range(0, len(blob), 1009):
            running = adler32(blob[i : i + 1009], running)
        assert running == adler32(blob)

    def test_large_block_mod_handling(self):
        # Exercise the chunked modulo path (> _BLOCK bytes of 0xFF).
        blob = b"\xff" * (3 << 20)
        assert adler32(blob) == zlib.adler32(blob)


@given(st.binary(max_size=5000))
@settings(max_examples=80)
def test_property_both_match_stdlib(blob):
    assert crc32(blob) == zlib.crc32(blob)
    assert adler32(blob) == zlib.adler32(blob)


@given(st.binary(max_size=2000), st.binary(max_size=2000))
@settings(max_examples=40)
def test_property_incremental_split(a, b):
    assert crc32(b, crc32(a)) == crc32(a + b)
    assert adler32(b, adler32(a)) == adler32(a + b)
