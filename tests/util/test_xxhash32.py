"""xxHash32 against the official test vectors."""

import pytest

from repro.util.xxhash32 import xxh32


# Official XXH32 vectors (from the xxHash repository's test suite).
VECTORS = [
    (b"", 0, 0x02CC5D05),
    (b"", 1, 0x0B2CB792),
    (b"a", 0, 0x550D7456),
    (b"as", 0, 0x9D5A0464),
    (b"asd", 0, 0x3D83552B),
    (b"Hello World", 0, 0xB1FD16EE),
]


@pytest.mark.parametrize("data,seed,expected", VECTORS)
def test_official_vectors(data, seed, expected):
    assert xxh32(data, seed) == expected


def test_long_input_stripe_path():
    data = bytes(range(256)) * 64  # > 16 bytes: main 4-lane loop
    # Self-consistency + sensitivity checks.
    assert xxh32(data) == xxh32(bytes(data))
    assert xxh32(data) != xxh32(data[:-1])
    assert xxh32(data, seed=1) != xxh32(data, seed=2)


def test_all_tail_lengths():
    base = bytes(range(64))
    seen = {xxh32(base[:n]) for n in range(40)}
    assert len(seen) == 40  # every length hashes differently


def test_seed_masking():
    data = b"seed masking"
    assert xxh32(data, seed=2**32) == xxh32(data, seed=0)


def test_accepts_bytearray_and_memoryview():
    blob = b"0123456789abcdef" * 4
    assert xxh32(bytearray(blob)) == xxh32(blob)
    assert xxh32(memoryview(blob)) == xxh32(blob)
