"""OSU-style benchmark functions."""

import pytest

from repro.bench.osu import format_osu_report, osu_bcast, osu_bw, osu_latency
from repro.mpi import CommConfig, CommMode

SIZES = [1 << 16, 1 << 20, 1 << 22]


class TestOsuLatency:
    def test_latency_monotone_in_size(self):
        rows = osu_latency(sizes=SIZES)
        latencies = [lat for _, lat in rows]
        assert latencies == sorted(latencies)

    def test_latency_approaches_wire_rate(self):
        (size, lat), = osu_latency(sizes=[1 << 24])
        # 16 MiB over 200 Gb/s ~= 671 us plus protocol overheads.
        assert lat == pytest.approx(size / 25e9, rel=0.05)

    def test_with_pedal_compression(self):
        cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
        rows = osu_latency(comm_config=cfg, sizes=SIZES)
        assert all(lat > 0 for _, lat in rows)


class TestOsuBw:
    def test_bw_increases_with_size(self):
        rows = osu_bw(sizes=SIZES, window=8)
        bws = [bw for _, bw in rows]
        assert bws == sorted(bws)

    def test_bw_saturates_near_link_rate(self):
        (_, bw), = osu_bw(sizes=[1 << 24], window=16)
        assert bw == pytest.approx(25e9, rel=0.05)

    def test_bf3_doubles_bf2(self):
        (_, bw2), = osu_bw("bf2", sizes=[1 << 24], window=8)
        (_, bw3), = osu_bw("bf3", sizes=[1 << 24], window=8)
        assert bw3 / bw2 == pytest.approx(2.0, rel=0.05)


class TestOsuBcast:
    @pytest.mark.parametrize("algorithm", ["binomial", "scatter_allgather"])
    def test_bcast_runs(self, algorithm):
        rows = osu_bcast(n_ranks=4, sizes=SIZES, algorithm=algorithm)
        times = [t for _, t in rows]
        assert times == sorted(times)

    def test_more_ranks_cost_more(self):
        (_, t2), = osu_bcast(n_ranks=2, sizes=[1 << 22])
        (_, t8), = osu_bcast(n_ranks=8, sizes=[1 << 22])
        assert t8 > t2


class TestReport:
    def test_format(self):
        text = format_osu_report("OSU Latency Test", [(1024, 2.5e-6)], unit="us")
        assert "# OSU Latency Test" in text
        assert "1024" in text and "2.50" in text

    def test_bandwidth_unit(self):
        text = format_osu_report("BW", [(1024, 12.5e9)], unit="MB/s")
        assert "12500.00" in text
