"""Experiment smoke tests with small payloads: shape assertions only.

The full-size headline-band assertions live in ``benchmarks/`` (the
pytest-benchmark drivers); here we check each experiment runs, produces
its grid, and preserves the qualitative orderings at reduced scale.
"""

import pytest

from repro.bench.harness import run_experiment

SMALL = 16 * 1024


@pytest.fixture(scope="module")
def fig7():
    return run_experiment("fig7", actual_bytes=SMALL)


@pytest.fixture(scope="module")
def fig8():
    return run_experiment("fig8", actual_bytes=SMALL)


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9", actual_bytes=SMALL)


class TestFig7:
    def test_grid_complete(self, fig7):
        # 2 devices x 6 designs x 5 datasets.
        assert len(fig7.rows) == 60

    def test_overhead_dominates_bf2_engine_at_small_sizes(self, fig7):
        frac = fig7.headlines[
            "bf2_cengine_deflate_xml_overhead_frac (paper ~0.94)"
        ]
        assert 0.85 <= frac <= 0.99

    def test_soc_designs_have_no_doca_init(self, fig7):
        for row in fig7.rows:
            if row["design"].startswith("SoC_"):
                assert row["doca_init_s"] == 0.0

    def test_engine_rows_have_doca_init(self, fig7):
        for row in fig7.rows:
            if row["device"] == "bf2" and row["design"] == "C-Engine_DEFLATE":
                assert row["doca_init_s"] > 0


class TestFig8:
    def test_grid_complete(self, fig8):
        assert len(fig8.rows) == 60

    def test_headline_bands(self, fig8):
        h = fig8.headlines
        assert h["bf2_deflate_xml_compress_speedup (paper 101.8)"] == pytest.approx(
            101.8, rel=0.05
        )
        assert h["bf2_deflate_xml_decompress_speedup (paper 11.2)"] == pytest.approx(
            11.2, rel=0.05
        )
        assert h["bf3_vs_bf2_cengine_deflate_decomp_5MB (paper 1.78)"] == pytest.approx(
            1.78, rel=0.05
        )

    def test_times_scale_with_dataset_size(self, fig8):
        # Fig. 8 insight 1: larger datasets take longer, per design.
        for device in ("bf2", "bf3"):
            for design in ("SoC_DEFLATE", "C-Engine_DEFLATE", "SoC_zlib"):
                rows = [
                    r
                    for r in fig8.rows
                    if r["device"] == device and r["design"] == design
                ]
                times = [r["compress_s"] for r in rows]
                assert times == sorted(times)

    def test_decompress_faster_than_compress_on_soc(self, fig8):
        # Fig. 8 insight 2 — checked on the SoC paths.  (On the C-Engine
        # at ~5 MB the paper's own factors imply the opposite: its
        # decompression job overhead exceeds its compression overhead.)
        for row in fig8.rows:
            if row["design"].startswith("SoC_"):
                assert row["decompress_s"] < row["compress_s"]


class TestFig9:
    def test_grid_complete(self, fig9):
        # 2 devices x 2 designs x 3 datasets.
        assert len(fig9.rows) == 12

    def test_bf2_designs_comparable(self, fig9):
        ratio = fig9.headlines["bf2_cengine_over_soc_total_10MB (paper ~1.0)"]
        assert 0.8 <= ratio <= 1.2

    def test_bf3_soc_wins(self, fig9):
        ratio = fig9.headlines["bf3_soc_speedup_over_cengine_10MB (paper ~1.58)"]
        assert 1.2 <= ratio <= 2.0


class TestTable5:
    def test_rows_and_deviation(self):
        # Generators were tuned at 256 KiB; at this reduced size the
        # band is looser.  The tight (<15%) check runs in benchmarks/.
        result = run_experiment("table5", actual_bytes=64 * 1024)
        assert len(result.rows) == 8
        assert result.headlines["max_deflate_ratio_rel_error"] < 0.45

    def test_zlib_equals_deflate_ratio(self):
        result = run_experiment("table5", actual_bytes=32 * 1024)
        for row in result.rows:
            if "zlib" in row and row.get("zlib"):
                assert row["zlib"] == pytest.approx(row["DEFLATE"], rel=0.01)


class TestMpiExperiments:
    def test_fig10_shapes(self):
        result = run_experiment("fig10", actual_bytes=SMALL)
        assert result.headlines[
            "bf2_cengine_best_speedup_vs_baseline (paper ~88)"
        ] > 20
        assert 0.2 <= result.headlines[
            "bf3_soc_latency_reduction_vs_bf2 (paper ~0.40)"
        ] <= 0.5
        assert result.headlines[
            "bf3_cengine_worst_latency_over_baseline (paper >1)"
        ] > 1.0

    def test_fig11_shapes(self):
        result = run_experiment("fig11", actual_bytes=SMALL)
        assert result.headlines[
            "bf2_cengine_best_speedup_vs_baseline (paper ~68)"
        ] > 10
        assert 0.3 <= result.headlines[
            "bf3_soc_mean_bcast_reduction (paper ~0.49)"
        ] <= 0.65
