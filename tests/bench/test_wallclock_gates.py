"""Wall-clock gates over the kernel-vectorization report (BENCH_PR8.json).

Unlike the sim trajectories, every number here is a host-local
wall-clock reading, so nothing is compared exactly: the committed file
must sit inside the generous ``WALL_BANDS`` / per-codec MB/s floors,
and one fresh measurement re-checks the headline claim — the
vectorized DEFLATE pipeline beats the scalar reference on the
literal-dominated (``lz77.match_loop``-bound) payload — on whatever
machine runs the tests.
"""

from __future__ import annotations

import pathlib
import time

from repro.bench import regress
from repro.util.kernels import SCALAR, VECTORIZED, force_kernel_mode

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
WALL_REPORT_PATH = REPO_ROOT / regress.DEFAULT_WALL_REPORT_PATH


@pytest.fixture(scope="module")
def committed_report():
    if not WALL_REPORT_PATH.exists():
        pytest.skip(
            f"{regress.DEFAULT_WALL_REPORT_PATH} missing — regenerate it "
            "with `python benchmarks/regress.py`"
        )
    return regress.load_report(WALL_REPORT_PATH)


def test_committed_report_passes_bands(committed_report):
    assert regress.gate_wallclock(committed_report) == []


def test_committed_report_schema(committed_report):
    assert committed_report["schema"] == regress.WALL_SCHEMA
    headlines = committed_report["wall"]["headlines"]
    for key in regress.WALL_BANDS:
        assert key in headlines
    for codec in regress.WALL_CODEC_FLOORS_MBPS:
        assert f"wall_mbps_{codec}" in headlines


def test_committed_rows_are_byte_identical_across_kernels(committed_report):
    """The recorded rows must all have certified kernel equivalence."""
    rows = committed_report["wall"]["rows"]
    assert len(rows) >= 5
    for row in rows:
        assert row["scalar_s"] > 0 and row["vectorized_s"] > 0
        assert row["speedup"] == pytest.approx(
            row["scalar_s"] / row["vectorized_s"], rel=1e-9
        )


def test_top_kernel_is_lz77(committed_report):
    assert committed_report["wall"]["top_kernel"].startswith("lz77.")


def test_gate_reports_band_violation(committed_report):
    broken = {
        "schema": committed_report["schema"],
        "wall": {
            "headlines": dict(committed_report["wall"]["headlines"]),
            "rows": committed_report["wall"]["rows"],
            "top_kernel": committed_report["wall"]["top_kernel"],
        },
    }
    broken["wall"]["headlines"]["wall_vec_speedup_noise"] = 0.01
    violations = regress.gate_wallclock(broken)
    assert any("wall_vec_speedup_noise" in v for v in violations)


def test_gate_reports_codec_floor_violation(committed_report):
    broken = {
        "schema": committed_report["schema"],
        "wall": {
            "headlines": dict(committed_report["wall"]["headlines"]),
            "rows": committed_report["wall"]["rows"],
            "top_kernel": committed_report["wall"]["top_kernel"],
        },
    }
    broken["wall"]["headlines"]["wall_mbps_deflate"] = 1e-6
    violations = regress.gate_wallclock(broken)
    assert any("wall_mbps_deflate" in v for v in violations)


def test_fresh_vectorized_beats_scalar_on_literal_payload():
    """One live measurement on this host: vec >= 1.2x scalar at 1 MiB.

    The measured margin is ~4-5x on the noise payload (where the scalar
    profile is lz77.match_loop-dominated); 1.2x is the generous floor
    that still catches a vectorized path silently falling back to the
    scalar reference.  Single rep per mode with a small warm call —
    this is a sanity check, not a benchmark.
    """
    from repro.algorithms.deflate import deflate_compress

    data = regress._wall_payload("noise", 1 << 20)
    warm = data[:4096]
    times = {}
    blobs = {}
    for mode in (SCALAR, VECTORIZED):
        with force_kernel_mode(mode):
            deflate_compress(warm)
            start = time.perf_counter()
            blobs[mode] = deflate_compress(data)
            times[mode] = time.perf_counter() - start
    assert blobs[SCALAR] == blobs[VECTORIZED]  # byte-identical first
    speedup = times[SCALAR] / times[VECTORIZED]
    assert speedup > 1.2, (
        f"vectorized DEFLATE only {speedup:.2f}x scalar on noise payload"
    )
