"""End-to-end ``python -m repro.bench`` CLI: trace/metrics/json outputs."""

import json

import pytest

from repro.bench.__main__ import main
from repro.obs import NULL_METRICS, NULL_TRACER, get_metrics, get_tracer


@pytest.fixture(scope="module")
def fig7_outputs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    trace = tmp / "fig7.trace.json"
    metrics = tmp / "fig7.metrics.json"
    out = tmp / "fig7.json"
    rc = main([
        "fig7",
        "--actual-bytes", "4096",
        "--trace", str(trace),
        "--metrics", str(metrics),
        "--json", str(out),
    ])
    assert rc == 0
    return (
        json.loads(trace.read_text()),
        json.loads(metrics.read_text()),
        json.loads(out.read_text()),
    )


class TestChromeTraceAcceptance:
    def test_every_event_has_required_keys(self, fig7_outputs):
        trace, _, _ = fig7_outputs
        events = trace["traceEvents"]
        assert events
        for event in events:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event

    def test_expected_spans_present(self, fig7_outputs):
        trace, _, _ = fig7_outputs
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        for want in ("doca.init", "buffer.prep", "cengine.compress"):
            assert want in names

    def test_nesting_consistent_on_each_track(self, fig7_outputs):
        """Child span intervals lie within some enclosing span's interval."""
        trace, _, _ = fig7_outputs
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_tid = {}
        for e in spans:
            by_tid.setdefault(e["tid"], []).append(e)
        eps = 1e-6  # trace timestamps are micros; float slop
        for name in ("doca.init", "cengine.compress"):
            for child in (e for e in spans if e["name"] == name):
                outers = [
                    e for e in by_tid[child["tid"]]
                    if e is not child
                    and e["ts"] <= child["ts"] + eps
                    and child["ts"] + child["dur"] <= e["ts"] + e["dur"] + eps
                ]
                assert outers, f"unparented {name} at ts={child['ts']}"

    def test_total_duration_matches_experiment(self, fig7_outputs):
        trace, _, out = fig7_outputs
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        trace_total = max(e["ts"] + e["dur"] for e in spans) / 1e6
        rows = out["experiments"][0]["rows"]
        sim_total = sum(row["total_s"] for row in rows)
        assert trace_total == pytest.approx(sim_total, rel=0.01)
        assert trace["otherData"]["sim_seconds_total"] == pytest.approx(
            trace_total, rel=0.01
        )

    def test_timestamps_monotone_in_creation_order(self, fig7_outputs):
        trace, _, _ = fig7_outputs
        starts = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert starts == sorted(starts)


class TestMetricsOutput:
    def test_expected_instruments_collected(self, fig7_outputs):
        _, metrics, _ = fig7_outputs
        counters = metrics["counters"]
        assert counters["cengine.jobs"] > 0
        assert counters["cengine.bytes.compress"] > 0
        assert counters["codec.deflate.bytes_in"] > 0
        assert counters["codec.deflate.bytes_out"] > 0
        assert "cengine.queue_depth" in metrics["histograms"]
        assert "cengine.queue_wait_s" in metrics["histograms"]


class TestJsonOutput:
    def test_rows_and_metadata(self, fig7_outputs):
        _, _, out = fig7_outputs
        assert out["generator"] == "repro.bench"
        (exp,) = out["experiments"]
        assert exp["experiment"] == "fig7"
        assert exp["rows"]
        assert set(exp["columns"]) <= set(exp["rows"][0])
        assert exp["headlines"]
        assert out["args"]["actual_bytes"] == 4096


class TestGlobalStateRestored:
    def test_cli_restores_noop_tracer_and_metrics(self, fig7_outputs):
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
