"""Text rendering of experiment tables."""

from repro.bench.reporting import format_ratio, format_seconds, format_table


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(2.5e-6) == "2.5 us"

    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.3 ms"

    def test_seconds(self):
        assert format_seconds(3.21) == "3.21 s"


def test_format_ratio():
    assert format_ratio(2.71828) == "2.718"


class TestFormatTable:
    ROWS = [
        {"name": "alpha", "value": 1.23456},
        {"name": "b", "value": 7},
    ]

    def test_header_and_rows(self):
        out = format_table(self.ROWS, ["name", "value"])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "1.235" in lines[2]

    def test_title(self):
        out = format_table(self.ROWS, ["name"], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "=" * len("My Table")

    def test_missing_column_blank(self):
        out = format_table([{"a": 1}], ["a", "b"])
        assert out.splitlines()[-1].split("|")[1].strip() == ""

    def test_custom_formatter(self):
        out = format_table(
            [{"t": 0.005}], ["t"], formatters={"t": format_seconds}
        )
        assert "5 ms" in out

    def test_empty_rows(self):
        out = format_table([], ["col"])
        assert "col" in out
