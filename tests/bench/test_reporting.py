"""Text rendering of experiment tables."""

from repro.bench.reporting import (
    format_bytes,
    format_ratio,
    format_seconds,
    format_table,
)


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(2.5e-6) == "2.5 us"

    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.3 ms"

    def test_seconds(self):
        assert format_seconds(3.21) == "3.21 s"

    def test_zero_is_seconds_not_microseconds(self):
        assert format_seconds(0.0) == "0 s"

    def test_large_values_keep_whole_seconds(self):
        # %.3g would render 1234.5 as "1.23e+03 s", losing whole seconds.
        assert format_seconds(1234.5) == "1234.5 s"
        assert format_seconds(1000.0) == "1000.0 s"

    def test_just_below_threshold_keeps_sig_digits(self):
        assert format_seconds(999.0) == "999 s"


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"

    def test_binary_units(self):
        assert format_bytes(1024) == "1 KiB"
        assert format_bytes(96 * 1024) == "96 KiB"
        assert format_bytes(1536) == "1.5 KiB"
        assert format_bytes(1 << 20) == "1 MiB"
        assert format_bytes(1 << 30) == "1 GiB"
        assert format_bytes(1 << 40) == "1 TiB"

    def test_huge_values_stay_in_tib(self):
        assert format_bytes(1 << 50) == "1.02e+03 TiB"


def test_format_ratio():
    assert format_ratio(2.71828) == "2.718"


class TestFormatTable:
    ROWS = [
        {"name": "alpha", "value": 1.23456},
        {"name": "b", "value": 7},
    ]

    def test_header_and_rows(self):
        out = format_table(self.ROWS, ["name", "value"])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "1.235" in lines[2]

    def test_title(self):
        out = format_table(self.ROWS, ["name"], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "=" * len("My Table")

    def test_missing_column_blank(self):
        out = format_table([{"a": 1}], ["a", "b"])
        assert out.splitlines()[-1].split("|")[1].strip() == ""

    def test_custom_formatter(self):
        out = format_table(
            [{"t": 0.005}], ["t"], formatters={"t": format_seconds}
        )
        assert "5 ms" in out

    def test_empty_rows(self):
        out = format_table([], ["col"])
        assert "col" in out
