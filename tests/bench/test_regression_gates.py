"""Regression gates over the committed perf trajectory (BENCH_PR3.json).

Two layers of protection:

* **Bands** — the headline ratios the reproduction stands on (PEDAL
  beats naive, BF3 engine beats BF2 on decompress, pipelined beats
  serial, the work queue reaches its depth) must hold both in the
  committed file and when recomputed from scratch.
* **Exact trajectory** — the sim clock is deterministic, so a fresh
  :func:`repro.bench.regress.collect` must reproduce the committed
  numbers bit-for-bit.  Any cost-model or scheduler change shows up as
  a diff here and requires regenerating the file
  (``python benchmarks/regress.py``) in the same PR.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import regress

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
REPORT_PATH = REPO_ROOT / regress.DEFAULT_REPORT_PATH


@pytest.fixture(scope="module")
def fresh_report():
    return regress.collect()


@pytest.fixture(scope="module")
def committed_report():
    if not REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_REPORT_PATH} missing — regenerate it with "
            f"'python benchmarks/regress.py'"
        )
    return regress.load_report(REPORT_PATH)


def test_fresh_numbers_pass_bands(fresh_report):
    assert regress.gate(fresh_report) == []


def test_committed_report_passes_bands(committed_report):
    assert regress.gate(committed_report) == []


def test_committed_report_schema(committed_report):
    assert committed_report["schema"] == regress.SCHEMA
    assert set(regress.BANDS) <= set(committed_report["headlines"])


def test_trajectory_is_reproduced_exactly(fresh_report, committed_report):
    """The sim clock is deterministic: recomputed headlines and raw
    sim-second rows must match the committed file bit-for-bit."""
    for key, recorded in committed_report["headlines"].items():
        assert fresh_report["headlines"][key] == pytest.approx(
            recorded, rel=1e-12, abs=0.0
        ), f"headline {key} drifted — regenerate BENCH_PR3.json"
    for key, recorded in committed_report["rows"].items():
        assert fresh_report["rows"][key] == pytest.approx(
            recorded, rel=1e-12, abs=0.0
        ), f"row {key} drifted — regenerate BENCH_PR3.json"


def test_pipelined_strictly_beats_serial(fresh_report):
    """Tentpole acceptance: >=8-chunk PPAR at depth>=2 is strictly
    faster than serial on every engine-capable grid point."""
    rows = fresh_report["rows"]
    for device, direction in (
        ("bf2", "compress"), ("bf2", "decompress"), ("bf3", "decompress")
    ):
        serial = rows[f"ppar_{device}_{direction}_serial_s"]
        piped = rows[f"ppar_{device}_{direction}_depth2_s"]
        assert piped < serial


def test_gate_reports_violations():
    bad = {"headlines": {key: -1.0 for key in regress.BANDS}}
    violations = regress.gate(bad)
    assert len(violations) == len(regress.BANDS)
    assert all("below floor" in v for v in violations)


def test_gate_reports_missing_headline():
    violations = regress.gate({"headlines": {}})
    assert all("missing" in v for v in violations)
