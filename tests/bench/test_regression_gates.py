"""Regression gates over the committed perf trajectories
(BENCH_PR3.json — core runtime; BENCH_PR4.json — serving layer;
BENCH_PR5.json — path-selection crossover sweep; BENCH_PR6.json —
telemetry plane: deterministic sim section + band-only wall section;
BENCH_PR7.json — EDPC decoupled model/coder pipeline).

Two layers of protection:

* **Bands** — the headline ratios the reproduction stands on (PEDAL
  beats naive, BF3 engine beats BF2 on decompress, pipelined beats
  serial, the work queue reaches its depth; batched gateway goodput
  beats unbatched at saturating load, admission bounds pending at
  overload) must hold both in the committed files and when recomputed
  from scratch.
* **Exact trajectory** — the sim clock is deterministic, so a fresh
  :func:`repro.bench.regress.collect` / ``collect_serve`` must
  reproduce the committed numbers bit-for-bit.  Any cost-model or
  scheduler change shows up as a diff here and requires regenerating
  the files (``python benchmarks/regress.py``) in the same PR.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import regress

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
REPORT_PATH = REPO_ROOT / regress.DEFAULT_REPORT_PATH
SERVE_REPORT_PATH = REPO_ROOT / regress.DEFAULT_SERVE_REPORT_PATH
SELECT_REPORT_PATH = REPO_ROOT / regress.DEFAULT_SELECT_REPORT_PATH
OBS_REPORT_PATH = REPO_ROOT / regress.DEFAULT_OBS_REPORT_PATH
EDPC_REPORT_PATH = REPO_ROOT / regress.DEFAULT_EDPC_REPORT_PATH


def assert_deep_exact(fresh, recorded, where):
    """Recursive bit-for-bit comparison (floats at rel=1e-12)."""
    if isinstance(recorded, float) and isinstance(fresh, float):
        assert fresh == pytest.approx(recorded, rel=1e-12, abs=0.0), (
            f"{where} drifted"
        )
    elif isinstance(recorded, dict):
        assert set(fresh) == set(recorded), f"{where} keys drifted"
        for key in recorded:
            assert_deep_exact(fresh[key], recorded[key], f"{where}.{key}")
    elif isinstance(recorded, list):
        assert len(fresh) == len(recorded), f"{where} length drifted"
        for i, (f, r) in enumerate(zip(fresh, recorded)):
            assert_deep_exact(f, r, f"{where}[{i}]")
    else:
        assert fresh == recorded, f"{where} drifted"


@pytest.fixture(scope="module")
def fresh_report():
    return regress.collect()


@pytest.fixture(scope="module")
def committed_report():
    if not REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_REPORT_PATH} missing — regenerate it with "
            f"'python benchmarks/regress.py'"
        )
    return regress.load_report(REPORT_PATH)


@pytest.fixture(scope="module")
def fresh_serve_report():
    return regress.collect_serve()


@pytest.fixture(scope="module")
def committed_serve_report():
    if not SERVE_REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_SERVE_REPORT_PATH} missing — regenerate it "
            f"with 'python benchmarks/regress.py'"
        )
    return regress.load_report(SERVE_REPORT_PATH)


@pytest.fixture(scope="module")
def fresh_select_report():
    return regress.collect_select()


@pytest.fixture(scope="module")
def committed_select_report():
    if not SELECT_REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_SELECT_REPORT_PATH} missing — regenerate it "
            f"with 'python benchmarks/regress.py'"
        )
    return regress.load_report(SELECT_REPORT_PATH)


def test_fresh_numbers_pass_bands(fresh_report):
    assert regress.gate(fresh_report) == []


def test_committed_report_passes_bands(committed_report):
    assert regress.gate(committed_report) == []


def test_committed_report_schema(committed_report):
    assert committed_report["schema"] == regress.SCHEMA
    assert set(regress.BANDS) <= set(committed_report["headlines"])


def test_trajectory_is_reproduced_exactly(fresh_report, committed_report):
    """The sim clock is deterministic: recomputed headlines and raw
    sim-second rows must match the committed file bit-for-bit."""
    for key, recorded in committed_report["headlines"].items():
        assert fresh_report["headlines"][key] == pytest.approx(
            recorded, rel=1e-12, abs=0.0
        ), f"headline {key} drifted — regenerate BENCH_PR3.json"
    for key, recorded in committed_report["rows"].items():
        assert fresh_report["rows"][key] == pytest.approx(
            recorded, rel=1e-12, abs=0.0
        ), f"row {key} drifted — regenerate BENCH_PR3.json"


def test_pipelined_strictly_beats_serial(fresh_report):
    """Tentpole acceptance: >=8-chunk PPAR at depth>=2 is strictly
    faster than serial on every engine-capable grid point."""
    rows = fresh_report["rows"]
    for device, direction in (
        ("bf2", "compress"), ("bf2", "decompress"), ("bf3", "decompress")
    ):
        serial = rows[f"ppar_{device}_{direction}_serial_s"]
        piped = rows[f"ppar_{device}_{direction}_depth2_s"]
        assert piped < serial


def test_gate_reports_violations():
    bad = {"headlines": {key: -1.0 for key in regress.BANDS}}
    violations = regress.gate(bad)
    assert len(violations) == len(regress.BANDS)
    assert all("below floor" in v for v in violations)


def test_gate_reports_missing_headline():
    violations = regress.gate({"headlines": {}})
    assert all("missing" in v for v in violations)


# ---------------------------------------------------------------------------
# Serving-layer trajectory (BENCH_PR4.json)
# ---------------------------------------------------------------------------

def test_serve_fresh_numbers_pass_bands(fresh_serve_report):
    assert regress.gate_serve(fresh_serve_report) == []


def test_serve_committed_report_passes_bands(committed_serve_report):
    assert regress.gate_serve(committed_serve_report) == []


def test_serve_committed_report_schema(committed_serve_report):
    assert committed_serve_report["schema"] == regress.SERVE_SCHEMA
    assert set(regress.SERVE_BANDS) <= set(committed_serve_report["headlines"])
    assert set(committed_serve_report["curves"]) == {"batched", "unbatched"}


def test_serve_trajectory_is_reproduced_exactly(
    fresh_serve_report, committed_serve_report
):
    """Same determinism screw as the core report: the committed curves
    must come back bit-for-bit."""
    for key, recorded in committed_serve_report["headlines"].items():
        assert fresh_serve_report["headlines"][key] == pytest.approx(
            recorded, rel=1e-12, abs=0.0
        ), f"serve headline {key} drifted — regenerate BENCH_PR4.json"
    for label, recorded_curve in committed_serve_report["curves"].items():
        fresh_curve = fresh_serve_report["curves"][label]
        assert len(fresh_curve) == len(recorded_curve)
        for fresh_pt, recorded_pt in zip(fresh_curve, recorded_curve):
            for key, recorded_val in recorded_pt.items():
                if isinstance(recorded_val, float):
                    assert fresh_pt[key] == pytest.approx(
                        recorded_val, rel=1e-12, abs=0.0
                    ), f"serve curve {label}/{key} drifted"
                else:
                    assert fresh_pt[key] == recorded_val, (
                        f"serve curve {label}/{key} drifted"
                    )


def test_serve_batched_goodput_beats_unbatched_at_saturation(fresh_serve_report):
    """Tentpole acceptance: at the saturating (top) offered load the
    batched gateway serves strictly more bytes per second."""
    batched = fresh_serve_report["curves"]["batched"][-1]
    unbatched = fresh_serve_report["curves"]["unbatched"][-1]
    assert batched["offered_req_s"] == unbatched["offered_req_s"]
    assert batched["goodput_bytes_s"] > unbatched["goodput_bytes_s"]


def test_serve_queue_depth_bounded_under_overload(fresh_serve_report):
    """Tentpole acceptance: the top sweep point is >2x the unbatched
    fleet capacity, yet pending never exceeds the admission bound —
    overload is shed, not queued."""
    max_pending = fresh_serve_report["config"]["max_pending"]
    for label in ("batched", "unbatched"):
        top = fresh_serve_report["curves"][label][-1]
        assert top["peak_pending"] <= max_pending
    overload = fresh_serve_report["curves"]["unbatched"][-1]
    assert overload["shed"] > 0  # the bound actually engaged


def test_serve_gate_reports_violations():
    bad = {"headlines": {key: -1.0 for key in regress.SERVE_BANDS}}
    violations = regress.gate_serve(bad)
    # Every floor-banded headline trips; ceiling-only ones pass at -1.
    assert all("below floor" in v for v in violations)
    assert violations


# ---------------------------------------------------------------------------
# Path-selection trajectory (BENCH_PR5.json)
# ---------------------------------------------------------------------------

def test_select_fresh_numbers_pass_bands(fresh_select_report):
    assert regress.gate_select(fresh_select_report) == []


def test_select_committed_report_passes_bands(committed_select_report):
    assert regress.gate_select(committed_select_report) == []


def test_select_committed_report_schema(committed_select_report):
    assert committed_select_report["schema"] == regress.SELECT_SCHEMA
    assert set(regress.SELECT_BANDS) <= set(
        committed_select_report["headlines"]
    )
    assert committed_select_report["config"]["tolerance"] \
        == regress.SELECT_TOLERANCE


def test_select_trajectory_is_reproduced_exactly(
    fresh_select_report, committed_select_report
):
    """Same determinism screw: every per-size row (forced soc/cengine
    seconds, auto seconds, auto's chosen path) must come back
    bit-for-bit."""
    for key, recorded in committed_select_report["headlines"].items():
        assert fresh_select_report["headlines"][key] == pytest.approx(
            recorded, rel=1e-12, abs=0.0
        ), f"select headline {key} drifted — regenerate BENCH_PR5.json"
    assert set(fresh_select_report["rows"]) \
        == set(committed_select_report["rows"])
    for key, recorded_row in committed_select_report["rows"].items():
        fresh_row = fresh_select_report["rows"][key]
        for col, recorded_val in recorded_row.items():
            if isinstance(recorded_val, float):
                assert fresh_row[col] == pytest.approx(
                    recorded_val, rel=1e-12, abs=0.0
                ), f"select row {key}/{col} drifted"
            else:  # auto_path is a string
                assert fresh_row[col] == recorded_val, (
                    f"select row {key}/{col} drifted"
                )


def test_select_auto_never_loses_to_best_static(fresh_select_report):
    """Tentpole acceptance: per sweep point, auto latency <= the best
    forced path within the stated tolerance."""
    tol = fresh_select_report["config"]["tolerance"]
    for key, row in fresh_select_report["rows"].items():
        best = min(row["soc_s"], row["cengine_s"])
        assert row["auto_s"] <= best * (1.0 + tol), key


def test_select_paper_shaped_crossover(fresh_select_report):
    """SoC wins at the smallest size, the engine wins at the largest,
    and the calibrated crossover sits inside the sweep — on every
    engine-capable grid line."""
    headlines = fresh_select_report["headlines"]
    assert headlines["select_paper_shape_ok"] == 1.0
    sizes = fresh_select_report["config"]["sizes"]
    for grid in ("bf2_compress", "bf2_decompress", "bf3_decompress"):
        crossover = headlines[f"select_crossover_{grid}_bytes"]
        assert sizes[0] < crossover < sizes[-1]
        device, direction = grid.split("_")
        first = fresh_select_report["rows"][f"{device}_{direction}_{sizes[0]}"]
        last = fresh_select_report["rows"][f"{device}_{direction}_{sizes[-1]}"]
        assert first["soc_s"] < first["cengine_s"]
        assert last["cengine_s"] < last["soc_s"]
        assert first["auto_path"] == "soc"
        assert last["auto_path"] == "cengine"


def test_select_bf3_compress_never_routes_to_engine(fresh_select_report):
    assert fresh_select_report["headlines"][
        "select_bf3_compress_engine_picks"
    ] == 0.0
    sizes = fresh_select_report["config"]["sizes"]
    for size in sizes:
        row = fresh_select_report["rows"][f"bf3_compress_{size}"]
        assert row["auto_path"] == "soc"


def test_select_gate_reports_violations():
    bad = {"headlines": {key: -1.0 for key in regress.SELECT_BANDS}}
    violations = regress.gate_select(bad)
    assert all("below floor" in v for v in violations)
    assert violations


def test_select_gate_reports_missing_headline():
    violations = regress.gate_select({"headlines": {}})
    assert len(violations) == len(regress.SELECT_BANDS)
    assert all("missing" in v for v in violations)


# ---------------------------------------------------------------------------
# Telemetry-plane trajectory (BENCH_PR6.json)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fresh_obs_report():
    return regress.collect_obs()


@pytest.fixture(scope="module")
def committed_obs_report():
    if not OBS_REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_OBS_REPORT_PATH} missing — regenerate it "
            f"with 'python benchmarks/regress.py'"
        )
    return regress.load_report(OBS_REPORT_PATH)


def test_obs_fresh_numbers_pass_bands(fresh_obs_report):
    assert regress.gate_obs(fresh_obs_report) == []


def test_obs_committed_sim_section_passes_bands(committed_obs_report):
    """Only the sim section of the committed file is gated: the wall
    section records the generating host's measurements, which the fresh
    fixture re-measures on this host instead of trusting."""
    assert regress._gate_bands(
        committed_obs_report["sim"], regress.OBS_SIM_BANDS
    ) == []


def test_obs_committed_report_schema(committed_obs_report):
    assert committed_obs_report["schema"] == regress.OBS_SCHEMA
    assert set(regress.OBS_SIM_BANDS) <= set(
        committed_obs_report["sim"]["headlines"]
    )
    assert set(regress.OBS_WALL_BANDS) <= set(
        committed_obs_report["wall"]["headlines"]
    )
    assert committed_obs_report["config"]["overhead_ceiling"] \
        == regress.OBS_OVERHEAD_CEILING


def test_obs_sim_trajectory_is_reproduced_exactly(
    fresh_obs_report, committed_obs_report
):
    """The sim section — fleet quantiles, alert stream, per-gateway
    rows, the serve point — is pure sim-clock arithmetic and must come
    back bit-for-bit.  The wall section is deliberately excluded."""
    assert_deep_exact(
        fresh_obs_report["sim"], committed_obs_report["sim"], "obs sim"
    )


def test_obs_telemetry_is_bit_for_bit(fresh_obs_report):
    """Tentpole acceptance: the serve experiment's simulated numbers
    are identical with telemetry on and off."""
    assert fresh_obs_report["sim"]["headlines"]["obs_bit_for_bit"] == 1.0


def test_obs_fleet_quantile_error_within_alpha(fresh_obs_report):
    headlines = fresh_obs_report["sim"]["headlines"]
    alpha = headlines["obs_sketch_alpha"]
    assert headlines["obs_fleet_p50_rel_err"] <= alpha
    assert headlines["obs_fleet_p99_rel_err"] <= alpha


def test_obs_overhead_and_top_kernel(fresh_obs_report):
    """Tentpole acceptance: telemetry costs <= the ceiling on this
    host, and the flamegraph names the LZ77 match loop as the top
    kernel on the DEFLATE compress path."""
    wall = fresh_obs_report["wall"]
    assert wall["headlines"]["obs_overhead_ratio"] \
        <= regress.OBS_OVERHEAD_CEILING
    assert wall["top_kernel"] == "lz77.match_loop"
    assert wall["headlines"]["obs_top_kernel_is_lz77"] == 1.0


def test_obs_gate_reports_violations():
    bad = {
        "sim": {"headlines": {key: -1.0 for key in regress.OBS_SIM_BANDS}},
        "wall": {"headlines": {key: 9.0 for key in regress.OBS_WALL_BANDS}},
    }
    violations = regress.gate_obs(bad)
    assert violations
    assert any("below floor" in v for v in violations)
    assert any("above ceiling" in v for v in violations)


def test_obs_gate_reports_missing_sections():
    violations = regress.gate_obs({})
    assert len(violations) == (
        len(regress.OBS_SIM_BANDS) + len(regress.OBS_WALL_BANDS)
    )
    assert all("missing" in v for v in violations)


# ---------------------------------------------------------------------------
# EDPC decoupled-pipeline trajectory (BENCH_PR7.json)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fresh_edpc_report():
    return regress.collect_edpc()


@pytest.fixture(scope="module")
def committed_edpc_report():
    if not EDPC_REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_EDPC_REPORT_PATH} missing — regenerate it "
            f"with 'python benchmarks/regress.py'"
        )
    return regress.load_report(EDPC_REPORT_PATH)


def test_edpc_fresh_numbers_pass_bands(fresh_edpc_report):
    assert regress.gate_edpc(fresh_edpc_report) == []


def test_edpc_committed_report_passes_bands(committed_edpc_report):
    assert regress.gate_edpc(committed_edpc_report) == []


def test_edpc_committed_report_schema(committed_edpc_report):
    assert committed_edpc_report["schema"] == regress.EDPC_SCHEMA
    assert set(regress.EDPC_BANDS) <= set(committed_edpc_report["headlines"])
    sections = {row["section"] for row in committed_edpc_report["rows"]}
    assert sections == {"ratio", "pipeline"}


def test_edpc_trajectory_is_reproduced_exactly(
    fresh_edpc_report, committed_edpc_report
):
    """Both the sim clock and the real codec bytes are deterministic,
    so the whole report must come back bit-for-bit."""
    assert_deep_exact(fresh_edpc_report, committed_edpc_report, "edpc")


def test_edpc_pipelined_never_slower_at_any_size(fresh_edpc_report):
    """Satellite acceptance: pipelined sim time <= unpipelined at every
    swept size, with the headline speedup at the largest."""
    pipeline_rows = [
        row for row in fresh_edpc_report["rows"]
        if row["section"] == "pipeline"
    ]
    assert pipeline_rows
    for row in pipeline_rows:
        assert row["pipelined_s"] <= row["serial_s"] * (1 + 1e-12)
    largest = max(pipeline_rows, key=lambda row: row["sim_mb"])
    assert largest["speedup"] == pytest.approx(
        fresh_edpc_report["headlines"]["edpc_pipelined_vs_unpipelined_large"]
    )
    # Real bytes ride the sim at the largest size and must be identical.
    assert largest["bytes_identical"] is True


def test_edpc_ratio_rows_are_honest(fresh_edpc_report):
    """AC trades ratio for adaptivity on these corpora: every dataset
    row must carry a real measured ratio (> 1) and the deflate
    comparison the headline bands pin."""
    ratio = {}
    for row in fresh_edpc_report["rows"]:
        if row["section"] == "ratio":
            assert row["ratio"] > 1.0
            ratio[(row["dataset"], row["algo"])] = row["ratio"]
    for dataset in ("silesia/xml", "silesia/mozilla", "obs_error"):
        assert (dataset, "ac") in ratio and (dataset, "deflate") in ratio


def test_edpc_gate_reports_violations():
    bad = {"headlines": {key: -1.0 for key in regress.EDPC_BANDS}}
    violations = regress.gate_edpc(bad)
    assert all("below floor" in v for v in violations)
    assert violations


def test_edpc_gate_reports_missing_headline():
    violations = regress.gate_edpc({"headlines": {}})
    assert len(violations) == len(regress.EDPC_BANDS)
    assert all("missing" in v for v in violations)
