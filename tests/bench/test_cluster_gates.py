"""Regression gates over the committed fleet-cluster trajectory
(``BENCH_PR9.json``).

Same two-layer discipline as the other trajectory files:

* **Bands** — the tentpole's shape claims (goodput saturates instead of
  collapsing at 100x the PR 4 offered load, per-shard pending never
  exceeds the shard admission budget, the mid-run whole-worker kill
  recovers >= 90 % of the pre-kill completion rate, both admission
  layers drain to zero) must hold in the committed file and when the
  sweep is recomputed from scratch.
* **Exact trajectory** — every number, including the BLAKE2b routing
  digests over shard lookups / batch dispatches / failover re-picks /
  shard-map heals, is a pure function of the seed and the cost model,
  so a fresh :func:`repro.bench.regress.collect_cluster` must reproduce
  the committed report bit-for-bit.  Any routing, admission, or
  failover change shows up as a diff here and requires regenerating the
  file (``python benchmarks/regress.py``) in the same PR.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import regress
from tests.bench.test_regression_gates import assert_deep_exact

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CLUSTER_REPORT_PATH = REPO_ROOT / regress.DEFAULT_CLUSTER_REPORT_PATH


@pytest.fixture(scope="module")
def fresh_cluster_report():
    return regress.collect_cluster()


@pytest.fixture(scope="module")
def committed_cluster_report():
    if not CLUSTER_REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_CLUSTER_REPORT_PATH} missing — regenerate it "
            f"with 'python benchmarks/regress.py'"
        )
    return regress.load_report(CLUSTER_REPORT_PATH)


def test_fresh_numbers_pass_bands(fresh_cluster_report):
    assert regress.gate_cluster(fresh_cluster_report) == []


def test_committed_report_passes_bands(committed_cluster_report):
    assert regress.gate_cluster(committed_cluster_report) == []


def test_committed_report_schema(committed_cluster_report):
    assert committed_cluster_report["schema"] == regress.CLUSTER_SCHEMA
    assert set(regress.CLUSTER_BANDS) <= set(
        committed_cluster_report["headlines"]
    )


def test_trajectory_is_reproduced_exactly(fresh_cluster_report,
                                          committed_cluster_report):
    """Bit-for-bit: headlines, every curve record, the failover record,
    and — via the digests inside each record — every routing decision."""
    assert_deep_exact(
        fresh_cluster_report, committed_cluster_report, "BENCH_PR9"
    )


def test_routing_digests_are_pinned(committed_cluster_report):
    """The committed file actually carries a digest per run — the exact
    gate above is only as strong as the fields in the report."""
    records = committed_cluster_report["curve"] + [
        committed_cluster_report["failover"]
    ]
    for rec in records:
        digest = rec["routing_digest"]
        assert isinstance(digest, str) and len(digest) == 32
        int(digest, 16)  # hex-decodes


def test_goodput_saturates_not_collapses(committed_cluster_report):
    """Redundant with the bands, but spelled out against the raw curve:
    goodput at each successive load never drops below 90 % of the
    previous point, and sheds (not queue growth) absorb the overload."""
    curve = committed_cluster_report["curve"]
    goodputs = [r["goodput_bytes_s"] for r in curve]
    for prev, cur in zip(goodputs, goodputs[1:]):
        assert cur >= 0.9 * prev
    overload = curve[-1]
    assert overload["shed_global"] + overload["shed_shard"] > 0
    assert overload["max_shard_pending"] <= (
        committed_cluster_report["config"]["shard_max_pending"]
    )


def test_failover_record_shape(committed_cluster_report):
    fo = committed_cluster_report["failover"]
    assert fo["killed_workers"] == ["bf2-0"]
    assert fo["failovers"] >= 1
    assert fo["recovery_ratio"] >= 0.9
    assert fo["pending_after_drain"] == 0
    # One worker died but its shard survived on replicas: no heal.
    assert fo["epoch"] == 0
    # The kill's latency spike tripped the deterministic alert stream.
    assert fo["slo_alerts"] >= 1
