"""Regression gates over the streaming-rendezvous trajectory
(BENCH_PR10.json).

Same two layers as the other committed trajectories:

* **Bands** — streaming must be no worse than whole-message rendezvous
  at 4 MiB on the gated SoC DEFLATE design, strictly better at 16 MiB
  and on the 4-rank bcast, and byte-identical everywhere.
* **Exact trajectory** — the sweep is pure sim clock, so a fresh
  ``collect_stream`` must reproduce the committed file bit-for-bit.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import regress

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
STREAM_REPORT_PATH = REPO_ROOT / regress.DEFAULT_STREAM_REPORT_PATH


@pytest.fixture(scope="module")
def fresh_stream_report():
    return regress.collect_stream()


@pytest.fixture(scope="module")
def committed_stream_report():
    if not STREAM_REPORT_PATH.exists():
        pytest.fail(
            f"{regress.DEFAULT_STREAM_REPORT_PATH} missing — regenerate it "
            f"with 'python benchmarks/regress.py'"
        )
    return regress.load_report(STREAM_REPORT_PATH)


def test_fresh_numbers_pass_bands(fresh_stream_report):
    assert regress.gate_stream(fresh_stream_report) == []


def test_committed_report_passes_bands(committed_stream_report):
    assert regress.gate_stream(committed_stream_report) == []


def test_committed_report_schema(committed_stream_report):
    assert committed_stream_report["schema"] == regress.STREAM_SCHEMA
    assert set(regress.STREAM_BANDS) <= set(
        committed_stream_report["headlines"]
    )


def test_trajectory_is_reproduced_exactly(
    fresh_stream_report, committed_stream_report
):
    for key, recorded in committed_stream_report["headlines"].items():
        assert fresh_stream_report["headlines"][key] == pytest.approx(
            recorded, rel=1e-12, abs=0.0
        ), f"headline {key} drifted — regenerate BENCH_PR10.json"
    assert len(fresh_stream_report["rows"]) == len(
        committed_stream_report["rows"]
    )
    for fresh, recorded in zip(
        fresh_stream_report["rows"], committed_stream_report["rows"]
    ):
        for col, value in recorded.items():
            if isinstance(value, float):
                assert fresh[col] == pytest.approx(value, rel=1e-12, abs=0.0)
            else:
                assert fresh[col] == value


def test_streaming_wins_are_material(committed_stream_report):
    """The headline overlap win on the gated SoC design is a multiple,
    not a rounding artifact (recorded ~4.26x at every size)."""
    headlines = committed_stream_report["headlines"]
    assert headlines["stream_vs_whole_latency_16mib"] > 2.0
    assert headlines["stream_byte_identical"] == 1.0


def test_cengine_rows_present_but_ungated(committed_stream_report):
    """Per-chunk engine-job overhead makes chunked C-Engine streaming
    chunk-size sensitive; the sweep records it without gating it."""
    designs = {row["design"] for row in committed_stream_report["rows"]}
    assert designs == {"SoC_DEFLATE", "C-Engine_DEFLATE"}
    gated_keys = set(regress.STREAM_BANDS)
    assert not any("c-engine" in key.lower() for key in gated_keys)
