"""Experiment harness plumbing."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    generate_payload,
    run_experiment,
    run_naive_roundtrip,
    run_pedal_roundtrip,
)

SMALL = 16 * 1024


class TestPayloadCache:
    def test_cached_identity(self):
        a = generate_payload("silesia/xml", SMALL)
        b = generate_payload("silesia/xml", SMALL)
        assert a is b

    def test_distinct_per_size(self):
        a = generate_payload("silesia/xml", SMALL)
        b = generate_payload("silesia/xml", SMALL * 2)
        assert len(a) != len(b)


class TestRoundtripDrivers:
    def test_pedal_roundtrip_record(self):
        rec = run_pedal_roundtrip(
            "bf2", "C-Engine_DEFLATE", "silesia/xml", actual_bytes=SMALL
        )
        assert rec.compress_seconds > 0
        assert rec.decompress_seconds > 0
        assert rec.ratio > 2
        assert rec.init_seconds > 0.05  # DOCA init charged at init

    def test_naive_roundtrip_record(self):
        rec = run_naive_roundtrip(
            "bf2", "C-Engine_DEFLATE", "silesia/xml", actual_bytes=SMALL
        )
        assert rec.init_seconds == 0.0  # charged per op instead
        assert rec.compress_seconds > run_pedal_roundtrip(
            "bf2", "C-Engine_DEFLATE", "silesia/xml", actual_bytes=SMALL
        ).compress_seconds

    def test_sim_bytes_override(self):
        small = run_pedal_roundtrip(
            "bf2", "SoC_DEFLATE", "silesia/xml", sim_bytes=1e6, actual_bytes=SMALL
        )
        large = run_pedal_roundtrip(
            "bf2", "SoC_DEFLATE", "silesia/xml", sim_bytes=2e6, actual_bytes=SMALL
        )
        assert large.compress_seconds == pytest.approx(
            2 * small.compress_seconds
        )


class TestRegistry:
    def test_all_experiments_registered(self):
        from repro.bench.harness import EXPERIMENTS
        import repro.bench.experiments  # noqa: F401 — triggers registration

        assert {
            "fig7", "fig8", "fig9", "fig10", "fig11", "table4", "table5"
        } <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_table4_runs_and_renders(self):
        result = run_experiment("table4", actual_bytes=SMALL)
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 8
        rendered = result.render()
        assert "silesia/xml" in rendered
        assert "exaalt-dataset2" in rendered
