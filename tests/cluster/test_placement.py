"""Placement-policy tests: capability spread vs locality blocks."""

from __future__ import annotations

import pytest

from repro.cluster import device_supports, plan_placement
from repro.dpu import make_device
from repro.dpu.specs import Direction
from repro.errors import ClusterError


def test_device_supports_mirrors_engine_capabilities(env):
    bf2 = make_device(env, "bf2")
    bf3 = make_device(env, "bf3")
    assert device_supports(bf2, Direction.COMPRESS)
    assert device_supports(bf2, Direction.DECOMPRESS)
    # BF-3's C-Engine is decompress-only (paper Tables II/III).
    assert not device_supports(bf3, Direction.COMPRESS)
    assert device_supports(bf3, Direction.DECOMPRESS)


def test_capability_spread_gives_every_shard_a_compress_engine(env, fleet):
    shards = plan_placement(fleet, 2, "capability_spread")
    assert len(shards) == 2
    assert sorted(len(s) for s in shards) == [3, 3]
    for members in shards:
        assert any(device_supports(d, Direction.COMPRESS) for d in members)


def test_capability_spread_balances_replica_counts(env):
    # 1 BF-2 + 5 BF-3: the lone compress engine lands on one shard, the
    # decompress-only remainder fills smallest-first, sizes within one.
    devices = [make_device(env, "bf2", name="bf2-0")] + [
        make_device(env, "bf3", name=f"bf3-{i}") for i in range(5)
    ]
    shards = plan_placement(devices, 3, "capability_spread")
    assert sorted(len(s) for s in shards) == [2, 2, 2]


def test_locality_blocked_keeps_fleet_order_contiguous(env, fleet):
    shards = plan_placement(fleet, 2, "locality_blocked")
    names = [[d.name for d in members] for members in shards]
    assert names == [
        ["bf2-0", "bf2-1", "bf2-2"],
        ["bf2-3", "bf3-0", "bf3-1"],
    ]


def test_locality_blocked_spreads_remainder(env, fleet):
    shards = plan_placement(fleet, 4, "locality_blocked")
    assert [len(s) for s in shards] == [2, 2, 1, 1]


def test_placement_is_deterministic(env, fleet):
    a = plan_placement(fleet, 3, "capability_spread")
    b = plan_placement(fleet, 3, "capability_spread")
    assert [[d.name for d in s] for s in a] == [[d.name for d in s] for s in b]


def test_placement_rejects_bad_arguments(env, fleet):
    with pytest.raises(ClusterError):
        plan_placement(fleet, 0)
    with pytest.raises(ClusterError):
        plan_placement(fleet, len(fleet) + 1)
    with pytest.raises(ClusterError):
        plan_placement(fleet, 2, "unknown-policy")
