"""Unit tests for the consistent-hash ring and the versioned shard map."""

from __future__ import annotations

import pytest

from repro.cluster import ConsistentHashRing, ShardMap, hash64
from repro.errors import ShardMapError

KEYS = [f"tenant-{i}" for i in range(500)]


def test_hash64_is_stable_and_64_bit():
    assert hash64("tenant-0") == hash64("tenant-0")
    assert hash64("tenant-0") != hash64("tenant-1")
    for key in KEYS[:50]:
        assert 0 <= hash64(key) < 2**64


def test_ring_is_order_independent():
    a = ConsistentHashRing(["s0", "s1", "s2"])
    b = ConsistentHashRing(["s2", "s0", "s1"])
    assert a.members == b.members
    assert all(a.lookup(k) == b.lookup(k) for k in KEYS)


def test_ring_lookup_covers_all_members():
    ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
    owners = {ring.lookup(k) for k in KEYS}
    assert owners == {"s0", "s1", "s2", "s3"}


def test_ring_removal_only_moves_removed_members_keys():
    ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
    before = {k: ring.lookup(k) for k in KEYS}
    shrunk = ring.without_member("s2")
    for key, owner in before.items():
        if owner != "s2":
            assert shrunk.lookup(key) == owner
        else:
            assert shrunk.lookup(key) != "s2"


def test_ring_join_only_steals_for_the_new_member():
    ring = ConsistentHashRing(["s0", "s1", "s2"])
    before = {k: ring.lookup(k) for k in KEYS}
    grown = ring.with_member("s3")
    for key, owner in before.items():
        assert grown.lookup(key) in (owner, "s3")


def test_ring_membership_protocol():
    ring = ConsistentHashRing(["s0", "s1"])
    assert len(ring) == 2
    assert "s0" in ring and "s9" not in ring
    assert sorted(ring) == ["s0", "s1"]
    assert ring.with_member("s0").members == ring.members  # idempotent join
    with pytest.raises(ShardMapError):
        ring.without_member("s9")


def test_ring_rejects_bad_vnodes_and_empty_lookup():
    with pytest.raises(ValueError):
        ConsistentHashRing(["s0"], vnodes=0)
    with pytest.raises(ShardMapError):
        ConsistentHashRing([]).lookup("tenant-0")


def test_shard_map_epoch_bumps_and_logs():
    smap = ShardMap(["s0", "s1", "s2"])
    assert smap.epoch == 0
    assert smap.assignment_log == []
    assert smap.remove_shard("s1") == 1
    assert smap.add_shard("s3") == 2
    assert smap.assignment_log == [(1, "remove", "s1"), (2, "add", "s3")]
    assert smap.shards == ("s0", "s2", "s3")


def test_shard_map_versioned_lookup_tracks_epoch():
    smap = ShardMap(["s0", "s1"])
    owner, epoch = smap.lookup_versioned("tenant-7")
    assert owner == smap.lookup("tenant-7")
    assert epoch == 0
    smap.remove_shard("s0" if owner == "s1" else "s1")
    _, epoch = smap.lookup_versioned("tenant-7")
    assert epoch == 1


def test_shard_map_refuses_to_remove_last_shard():
    smap = ShardMap(["s0", "s1"])
    smap.remove_shard("s0")
    with pytest.raises(ShardMapError):
        smap.remove_shard("s1")


def test_shard_map_rejects_duplicate_join_and_empty_init():
    smap = ShardMap(["s0"])
    with pytest.raises(ShardMapError):
        smap.add_shard("s0")
    with pytest.raises(ShardMapError):
        ShardMap([])
