"""Worker death in the cluster: in-shard failover, deterministic
shard-map healing, and the no-survivors failure path."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError, NoCapableWorkerError
from repro.faults.workers import WorkerKill, WorkerKillSchedule, worker_kill_process
from repro.serve import ServeRequest
from repro.dpu.specs import Direction

PAYLOAD = b"failover-payload " * 64


def _requests(n: int, tenant: str):
    return [
        ServeRequest(Direction.COMPRESS, PAYLOAD, sim_bytes=64e3,
                     req_id=i, tenant=tenant)
        for i in range(n)
    ]


def _run(env, cluster, kill_after_s, victims, tenant, n=8):
    """Submit ``n`` one-tenant requests, kill ``victims`` mid-flight,
    drain; returns the tickets."""
    tickets = [cluster.submit(r) for r in _requests(n, tenant)]
    assert all(not t.shed for t in tickets)

    def killer(env):
        yield env.timeout(kill_after_s)
        for name in victims:
            cluster.kill_worker(name)

    env.process(killer(env))

    def driver(env):
        yield env.timeout(0.0)
        yield from cluster.drain()

    env.run(until=env.process(driver(env)))
    return tickets


def test_replica_kill_fails_over_in_shard(env, make_cluster):
    cluster = make_cluster()
    tenant = "tenant-ha"
    shard = cluster.shard_for(tenant)
    gateway = cluster.gateways[shard]
    victim = gateway.workers[0].name
    tickets = _run(env, cluster, 1e-6, [victim], tenant)

    # Every in-flight batch on the dead worker re-dispatched and every
    # request completed on a surviving replica.
    assert all(t.event.ok for t in tickets)
    assert cluster.completed == len(tickets)
    assert cluster.pending == 0
    assert gateway.admission.pending == 0
    kinds = [rec[1] for rec in gateway.routing_log]
    assert "failover" in kinds
    # A replica died but the shard survived: the map never healed.
    assert cluster.shard_map.epoch == 0
    assert shard in cluster.shard_map.shards


def test_whole_shard_death_heals_the_map(env, make_cluster):
    cluster = make_cluster()
    tenant = "tenant-doomed"
    shard = cluster.shard_for(tenant)
    victims = [w.name for w in cluster.gateways[shard].workers]
    tickets = _run(env, cluster, 1e-6, victims, tenant)

    # No survivors: the in-flight requests fail with the typed error...
    for ticket in tickets:
        assert ticket.event.triggered and not ticket.event.ok
        with pytest.raises(NoCapableWorkerError):
            ticket.event.value
    # ...both admission layers drained anyway (the slot-leak fix)...
    assert cluster.pending == 0
    assert cluster.gateways[shard].admission.pending == 0
    # ...and the map healed deterministically at the kill instant.
    assert cluster.shard_map.epoch == 1
    assert shard not in cluster.shard_map.shards
    assert cluster.shard_map.assignment_log == [(1, "remove", shard)]

    # Future submits for the dead shard's tenants remap and complete.
    new_shard = cluster.shard_for(tenant)
    assert new_shard != shard
    ticket = cluster.submit(_requests(1, tenant)[0])
    assert not ticket.shed
    assert cluster.routing_log[-1][2] == new_shard
    assert cluster.routing_log[-1][3] == 1

    def driver(env):
        yield from cluster.drain()

    env.run(until=env.process(driver(env)))
    assert ticket.event.ok
    assert cluster.pending == 0


def test_kill_unknown_worker_raises(env, make_cluster):
    cluster = make_cluster()
    with pytest.raises(ClusterError):
        cluster.kill_worker("no-such-dpu")


def test_worker_kill_process_applies_schedule(env, make_cluster):
    cluster = make_cluster()
    tenant = "tenant-sched"
    shard = cluster.shard_for(tenant)
    victim = cluster.gateways[shard].workers[0].name
    schedule = WorkerKillSchedule([WorkerKill(1e-6, victim)])
    tickets = [cluster.submit(r) for r in _requests(8, tenant)]
    kill_proc = env.process(worker_kill_process(env, cluster, schedule))

    def driver(env):
        yield env.timeout(0.0)
        yield from cluster.drain()

    env.run(until=env.process(driver(env)))
    assert env.run(until=kill_proc) == [WorkerKill(1e-6, victim)]
    dead = [w for w in cluster.workers if not w.alive]
    assert [w.name for w in dead] == [victim]
    assert all(t.event.ok for t in tickets)


def test_seeded_kill_schedule_is_deterministic_and_bounded():
    workers = [f"w{i}" for i in range(5)]
    a = WorkerKillSchedule.seeded(workers, seed=7, duration_s=1.0, kills=3)
    b = WorkerKillSchedule.seeded(workers, seed=7, duration_s=1.0, kills=3)
    assert list(a) == list(b)
    assert len(a) == 3
    assert len({k.worker for k in a}) == 3       # distinct victims
    assert all(0.0 <= k.at_s < 1.0 for k in a)
    assert [k.at_s for k in a] == sorted(k.at_s for k in a)
    # A different seed draws a different schedule.
    assert list(WorkerKillSchedule.seeded(workers, 8, 1.0, kills=3)) != list(a)
    # Never kills the whole fleet: capped at len(workers) - 1.
    capped = WorkerKillSchedule.seeded(workers, 7, 1.0, kills=99)
    assert len(capped) == len(workers) - 1
    with pytest.raises(ValueError):
        WorkerKillSchedule.seeded(workers, 7, duration_s=0.0)
