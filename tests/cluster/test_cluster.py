"""ServeCluster behavior: the global-vs-per-shard admission split,
routing determinism, and cluster-wide stats."""

from __future__ import annotations

import pytest

from repro.errors import NoLatencySamplesError
from repro.serve import ServeRequest
from repro.dpu.specs import Direction
from tests.conftest import drive

PAYLOAD = b"cluster-admission " * 64


def _compress_request(i: int, tenant: str) -> ServeRequest:
    return ServeRequest(Direction.COMPRESS, PAYLOAD, sim_bytes=64e3,
                        req_id=i, tenant=tenant)


def _drain(env, cluster):
    drive(env, cluster.drain())


def test_submit_routes_by_tenant_hash(env, make_cluster, make_requests):
    cluster = make_cluster()
    tickets = [cluster.submit(r) for r in make_requests(12)]
    assert all(not t.shed for t in tickets)
    # Every admitted request got a routed log entry agreeing with the map.
    assert len(cluster.routing_log) == 12
    for _, tenant, shard, epoch in cluster.routing_log:
        assert shard == cluster.shard_for(tenant)
        assert epoch == 0
    _drain(env, cluster)
    assert cluster.completed == 12
    assert cluster.pending == 0


def test_many_tenants_spread_over_all_shards(env, make_cluster):
    cluster = make_cluster()
    for i in range(64):
        cluster.submit(_compress_request(i, f"tenant-{i % 16}"))
    shards_hit = {rec[2] for rec in cluster.routing_log}
    assert shards_hit == set(cluster.shard_names)
    _drain(env, cluster)
    assert cluster.pending == 0


def test_shard_shed_releases_the_global_slot(env, make_cluster):
    """A shard refusal must not burn global budget: the cluster's
    pending count equals only the *shard-admitted* requests."""
    cluster = make_cluster(global_max_pending=64, shard_max_pending=16)
    tenant = "hot-tenant"
    tickets = [cluster.submit(_compress_request(i, tenant))
               for i in range(40)]
    accepted = [t for t in tickets if not t.shed]
    assert len(accepted) == 16          # the shard budget
    assert cluster.shed_shard == 24
    assert cluster.shed_global == 0
    # Global slots held == shard-admitted only (sheds released theirs).
    assert cluster.pending == 16
    _drain(env, cluster)
    assert cluster.pending == 0
    assert cluster.completed == 16


def test_global_budget_sheds_before_shard_lookup(env, make_cluster):
    cluster = make_cluster(global_max_pending=8, shard_max_pending=64)
    tickets = [cluster.submit(_compress_request(i, f"tenant-{i % 16}"))
               for i in range(20)]
    assert sum(1 for t in tickets if t.shed) == 12
    assert cluster.shed_global == 12
    assert cluster.shed_shard == 0
    # Globally shed requests never reach the shard map or its log.
    assert len(cluster.routing_log) == 8
    _drain(env, cluster)
    assert cluster.pending == 0


def test_global_release_is_exactly_once(env, make_cluster):
    """Over-releasing the global controller raises inside complete();
    a clean overloaded run + drain is the regression probe."""
    cluster = make_cluster(global_max_pending=12, shard_max_pending=8)
    for i in range(48):
        cluster.submit(_compress_request(i, f"tenant-{i % 16}"))
    _drain(env, cluster)
    assert cluster.pending == 0
    assert cluster.admission.peak_pending <= 12
    for name in cluster.shard_names:
        assert cluster.gateways[name].admission.pending == 0
    # The budget is usable again: nothing leaked, nothing double-freed.
    ticket = cluster.submit(_compress_request(99, "tenant-0"))
    assert not ticket.shed
    _drain(env, cluster)
    assert cluster.pending == 0


def test_peak_shard_pending_respects_budget(env, make_cluster):
    cluster = make_cluster(global_max_pending=64, shard_max_pending=4)
    for i in range(64):
        cluster.submit(_compress_request(i, f"tenant-{i % 16}"))
    _drain(env, cluster)
    peaks = cluster.peak_shard_pending()
    assert set(peaks) == set(cluster.shard_names)
    assert all(peak <= 4 for peak in peaks.values())


def test_cluster_stats_roll_up(env, make_cluster, make_requests):
    cluster = make_cluster()
    with pytest.raises(NoLatencySamplesError):
        cluster.latency_percentile(99)
    requests = make_requests(16)
    for request in requests:
        cluster.submit(request)
    _drain(env, cluster)
    assert cluster.completed == 16
    assert cluster.sample_count == 16
    assert cluster.completed_sim_bytes == sum(r.sim_bytes for r in requests)
    assert cluster.latency_percentile(99) > 0.0
    with pytest.raises(ValueError):
        cluster.latency_percentile(101)
    assert len(cluster.workers) == 6
    assert cluster.shed == cluster.shed_global + cluster.shed_shard == 0
