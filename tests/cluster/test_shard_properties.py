"""Property tests (hypothesis) for the consistent-hash shard map.

The two claims the cluster stands on, under adversarial member sets:

* **bounded movement** — removing (or adding) one member moves only
  ~K/N of K keys, not the whole tenant space;
* **coordination-free agreement** — gateways that build their rings
  independently from the same member set resolve every key to the
  same owner at the same epoch.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ConsistentHashRing, ShardMap

members = st.lists(
    st.text(alphabet="abcdefghijklmnop-0123456789", min_size=1, max_size=12),
    min_size=2, max_size=8, unique=True,
)

KEYS = [f"tenant-{i}" for i in range(400)]


@settings(max_examples=40, deadline=None)
@given(members=members)
def test_removal_moves_about_k_over_n_keys(members):
    """Dropping one of N members moves ~K/N keys; the rest stay put.

    The expected fraction is 1/N; virtual nodes keep the variance small
    but not zero, so the bound allows 3x the expectation plus an
    absolute slack for tiny rings.
    """
    ring = ConsistentHashRing(members)
    victim = members[0]
    before = {k: ring.lookup(k) for k in KEYS}
    shrunk = ring.without_member(victim)
    moved = sum(
        1 for k in KEYS
        if before[k] != victim and shrunk.lookup(k) != before[k]
    )
    assert moved == 0  # non-victim keys never move on a removal
    stolen = sum(1 for k in KEYS if before[k] == victim)
    assert stolen <= 3.0 * len(KEYS) / len(members) + 25


@settings(max_examples=40, deadline=None)
@given(members=members)
def test_join_moves_about_k_over_n_keys(members):
    ring = ConsistentHashRing(members[:-1])
    before = {k: ring.lookup(k) for k in KEYS}
    grown = ring.with_member(members[-1])
    moved = [k for k in KEYS if grown.lookup(k) != before[k]]
    assert all(grown.lookup(k) == members[-1] for k in moved)
    n = len(members)
    assert len(moved) <= 3.0 * len(KEYS) / n + 25


@settings(max_examples=40, deadline=None)
@given(members=members, key=st.text(min_size=1, max_size=20))
def test_independent_rings_agree(members, key):
    """Construction order and object identity never matter."""
    a = ConsistentHashRing(list(members))
    b = ConsistentHashRing(list(reversed(members)))
    assert a.lookup(key) == b.lookup(key)


@settings(max_examples=30, deadline=None)
@given(members=members)
def test_shard_maps_agree_after_identical_heal_sequences(members):
    """Two gateways replaying the same membership deltas stay in
    lock-step: same epoch, same owner for every key."""
    a = ShardMap(members)
    b = ShardMap(tuple(reversed(members)))
    victim = sorted(members)[0]
    a.remove_shard(victim)
    b.remove_shard(victim)
    a.add_shard("late-joiner")
    b.add_shard("late-joiner")
    assert a.epoch == b.epoch == 2
    for key in KEYS[:100]:
        assert a.lookup_versioned(key) == b.lookup_versioned(key)
