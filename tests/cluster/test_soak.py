"""Cluster soak: seeded traffic + fault injection until a wall budget.

The fast CI job runs one iteration (the default budget is zero wall
seconds, which still guarantees a single pass); the nightly job exports
``REPRO_SOAK_SECONDS=600`` and this test keeps running freshly seeded
iterations — new environment, new cluster, new traffic schedule, new
worker-kill schedule — until the budget is spent.  Every iteration
checks the same invariants the bench gates pin: both admission layers
drain to zero, per-shard peaks respect the budget, and every admitted
request resolves exactly once (completed or failed, never leaked).
"""

from __future__ import annotations

import os
import time

from repro.cluster import (
    ClusterConfig,
    ServeCluster,
    TenantProfile,
    TrafficConfig,
    build_schedule,
    traffic_process,
)
from repro.dpu import make_device
from repro.dpu.specs import Direction
from repro.faults.workers import WorkerKillSchedule, worker_kill_process
from repro.serve import BatchPolicy, ServeConfig
from repro.sim import Environment

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "0"))

_DURATION_S = 0.004
_RATE_REQ_S = 40_000.0
_SHARD_MAX_PENDING = 16
_GLOBAL_MAX_PENDING = 128

_TENANTS = tuple(
    TenantProfile(f"writer-{i}", weight=2.0, direction=Direction.COMPRESS,
                  size_dist="pareto", median_bytes=32e3, pareto_alpha=1.4)
    for i in range(4)
) + tuple(
    TenantProfile(f"reader-{i}", weight=3.0, direction=Direction.DECOMPRESS,
                  size_dist="lognormal", median_bytes=16e3, sigma=0.8)
    for i in range(4)
)


def _soak_iteration(seed: int) -> dict:
    env = Environment()
    devices = [
        make_device(env, kind, name=f"{kind}-{i}")
        for i, kind in enumerate(("bf2", "bf2", "bf2", "bf2", "bf3", "bf3"))
    ]
    cluster = ServeCluster(
        env,
        devices,
        ClusterConfig(
            num_shards=2,
            global_max_pending=_GLOBAL_MAX_PENDING,
            shard_max_pending=_SHARD_MAX_PENDING,
            serve=ServeConfig(batch=BatchPolicy(max_msgs=4),
                              router="capability"),
        ),
    )
    schedule = build_schedule(TrafficConfig(
        rate_req_s=_RATE_REQ_S,
        duration_s=_DURATION_S,
        seed=seed,
        tenants=_TENANTS,
    ))
    kills = WorkerKillSchedule.seeded(
        [w.name for w in cluster.workers], seed=seed,
        duration_s=_DURATION_S, kills=1,
    )
    env.process(worker_kill_process(env, cluster, kills))

    def driver(env):
        tickets = yield from traffic_process(env, schedule, cluster.submit)
        yield from cluster.drain()
        return tickets

    tickets = env.run(until=env.process(driver(env)))

    # -- invariants -----------------------------------------------------
    accepted = [t for t in tickets if not t.shed]
    shed = len(tickets) - len(accepted)
    assert shed == cluster.shed
    # Exactly-once resolution: every admitted ticket's event fired.
    resolved_ok = sum(1 for t in accepted if t.event.processed and t.event.ok)
    resolved_bad = sum(
        1 for t in accepted if t.event.processed and not t.event.ok
    )
    assert resolved_ok + resolved_bad == len(accepted)
    assert resolved_ok == cluster.completed
    # Both admission layers drained: no leaked slots anywhere.
    assert cluster.pending == 0
    for name in cluster.shard_names:
        assert cluster.gateways[name].admission.pending == 0
    # Backpressure held even with a worker dying mid-run.
    assert all(
        peak <= _SHARD_MAX_PENDING
        for peak in cluster.peak_shard_pending().values()
    )
    assert cluster.admission.peak_pending <= _GLOBAL_MAX_PENDING
    # The seeded kill actually happened.
    assert sum(1 for w in cluster.workers if not w.alive) == len(kills) == 1
    return {
        "arrivals": len(tickets),
        "completed": resolved_ok,
        "failed": resolved_bad,
        "shed": shed,
    }


def test_soak_survives_seeded_traffic_and_kills():
    deadline = time.monotonic() + SOAK_SECONDS
    iteration = 0
    totals = {"arrivals": 0, "completed": 0, "failed": 0, "shed": 0}
    while True:
        stats = _soak_iteration(seed=iteration)
        for key, value in stats.items():
            totals[key] += value
        iteration += 1
        if time.monotonic() >= deadline:
            break
    assert iteration >= 1
    assert totals["arrivals"] > 0
    assert totals["completed"] > 0


def test_soak_iteration_is_seed_deterministic():
    a = _soak_iteration(seed=1234)
    b = _soak_iteration(seed=1234)
    assert a == b
