"""Open-loop traffic generator: determinism, tail shape, diurnal swing,
and payload validity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.deflate import deflate_decompress
from repro.algorithms.lz4 import lz4_decompress
from repro.cluster import (
    DEFAULT_TENANTS,
    TenantProfile,
    TrafficConfig,
    build_schedule,
    traffic_process,
)
from repro.dpu.specs import Algo, Direction
from tests.conftest import drive


def _config(**kwargs):
    defaults = dict(rate_req_s=20_000.0, duration_s=0.05, seed=42)
    defaults.update(kwargs)
    return TrafficConfig(**defaults)


def test_schedule_is_a_pure_function_of_config():
    a = build_schedule(_config())
    b = build_schedule(_config())
    assert a.arrivals == b.arrivals
    assert len(a) == len(b) > 0
    c = build_schedule(_config(seed=43))
    assert c.arrivals != a.arrivals


def test_arrivals_are_ordered_and_in_window():
    schedule = build_schedule(_config())
    times = [a.t_s for a in schedule.arrivals]
    assert times == sorted(times)
    assert all(0.0 <= t < 0.05 for t in times)
    # Offered count lands near rate * duration (Poisson, generous band).
    assert 0.5 * 1000 <= len(schedule) <= 1.5 * 1000


def test_sizes_respect_clip_bounds_and_heavy_tail():
    config = _config(
        rate_req_s=100_000.0,
        min_bytes=256.0, max_bytes=64e6,
        tenants=(TenantProfile("tail", size_dist="pareto",
                               median_bytes=16e3, pareto_alpha=1.1),),
    )
    schedule = build_schedule(config)
    sizes = np.array([a.sim_bytes for a in schedule.arrivals])
    assert sizes.min() >= 256.0 and sizes.max() <= 64e6
    # Heavy tail: the max dwarfs the median by orders of magnitude.
    assert sizes.max() > 20.0 * np.median(sizes)
    # ...and the mean sits well above the median (skew, not symmetry).
    assert sizes.mean() > 1.5 * np.median(sizes)


def test_diurnal_modulation_shifts_arrivals_into_the_peak_half():
    """One sinusoidal cycle per run: rate(t) > base over the first half
    window, < base over the second, so arrivals concentrate early."""
    config = _config(rate_req_s=50_000.0, diurnal_amplitude=0.6)
    schedule = build_schedule(config)
    half = config.duration_s / 2.0
    first = sum(1 for a in schedule.arrivals if a.t_s < half)
    second = len(schedule) - first
    assert first > 1.2 * second
    # Amplitude zero keeps the halves statistically even.
    flat = build_schedule(_config(rate_req_s=50_000.0,
                                  diurnal_amplitude=0.0))
    first = sum(1 for a in flat.arrivals if a.t_s < half)
    second = len(flat) - first
    assert 0.75 <= first / second <= 1.33


def test_tenant_mix_follows_weights():
    schedule = build_schedule(_config(rate_req_s=100_000.0))
    counts = {t.name: 0 for t in DEFAULT_TENANTS}
    for arrival in schedule.arrivals:
        counts[arrival.tenant] += 1
    # weights bulk:reader:restore = 2:3:1
    assert counts["reader"] > counts["bulk"] > counts["restore"]


def test_decompress_payloads_are_valid_streams():
    tenants = (
        TenantProfile("d-deflate", direction=Direction.DECOMPRESS,
                      algo=Algo.DEFLATE),
        TenantProfile("d-lz4", direction=Direction.DECOMPRESS,
                      algo=Algo.LZ4),
    )
    config = _config(rate_req_s=2_000.0, tenants=tenants, actual_bytes=2048)
    schedule = build_schedule(config)
    seen = set()
    for arrival in schedule.arrivals:
        payload = schedule.payload(arrival)
        if (arrival.algo, payload) in seen:
            continue
        seen.add((arrival.algo, payload))
        decode = (deflate_decompress if arrival.algo is Algo.DEFLATE
                  else lz4_decompress)
        assert len(decode(payload)) == 2048
    assert seen  # the pools were exercised


def test_request_carries_arrival_fields():
    schedule = build_schedule(_config(rate_req_s=2_000.0))
    arrival = schedule.arrivals[0]
    request = schedule.request(arrival, req_id=7)
    assert request.tenant == arrival.tenant
    assert request.direction is arrival.direction
    assert request.algo is arrival.algo
    assert request.sim_bytes == arrival.sim_bytes
    assert request.req_id == 7


def test_traffic_process_replays_open_loop(env):
    schedule = build_schedule(_config(rate_req_s=2_000.0, duration_s=0.01))
    submitted = []

    def submit(request):
        submitted.append((env.now, request))
        return request.req_id

    tickets = drive(env, traffic_process(env, schedule, submit))
    assert tickets == list(range(len(schedule)))
    assert len(submitted) == len(schedule)
    for (at, request), arrival in zip(submitted, schedule.arrivals):
        assert at == pytest.approx(arrival.t_s, abs=1e-12)
        assert request.tenant == arrival.tenant


def test_config_validation():
    with pytest.raises(ValueError):
        TrafficConfig(rate_req_s=0.0, duration_s=1.0)
    with pytest.raises(ValueError):
        TrafficConfig(rate_req_s=1.0, duration_s=0.0)
    with pytest.raises(ValueError):
        TrafficConfig(rate_req_s=1.0, duration_s=1.0, diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        TrafficConfig(rate_req_s=1.0, duration_s=1.0, tenants=())
    with pytest.raises(ValueError):
        TenantProfile("bad", size_dist="zipf")
    with pytest.raises(ValueError):
        TenantProfile("bad", weight=0.0)
