"""Fixtures for the fleet-cluster suite."""

from __future__ import annotations

import pytest

from repro.algorithms.deflate import deflate_compress
from repro.cluster import ClusterConfig, ServeCluster
from repro.dpu import make_device
from repro.dpu.specs import Direction
from repro.faults import NULL_PLAN, set_fault_plan
from repro.serve import BatchPolicy, ServeConfig, ServeRequest


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    previous = set_fault_plan(NULL_PLAN)
    yield
    set_fault_plan(previous)


@pytest.fixture
def fleet(env):
    """Six named devices: four BF-2 (compress-capable) + two BF-3."""
    return [
        make_device(env, kind, name=name)
        for kind, name in (
            ("bf2", "bf2-0"), ("bf2", "bf2-1"), ("bf2", "bf2-2"),
            ("bf2", "bf2-3"), ("bf3", "bf3-0"), ("bf3", "bf3-1"),
        )
    ]


@pytest.fixture
def make_cluster(env, fleet):
    """Cluster factory over the six-device fleet (2 shards by default)."""

    def _make(num_shards=2, global_max_pending=64, shard_max_pending=16,
              **kwargs):
        return ServeCluster(
            env,
            fleet,
            ClusterConfig(
                num_shards=num_shards,
                global_max_pending=global_max_pending,
                shard_max_pending=shard_max_pending,
                serve=ServeConfig(
                    batch=BatchPolicy(max_msgs=4), router="capability"
                ),
                **kwargs,
            ),
        )

    return _make


@pytest.fixture
def make_requests():
    """Deterministic mixed-direction, multi-tenant request trace."""

    def _make(n: int, nominal: float = 64 * 1024):
        requests = []
        for i in range(n):
            raw = (b"cluster-req-%04d " % i) * 64
            tenant = f"tenant-{i % 5}"
            if i % 3 == 2:
                requests.append(ServeRequest(
                    Direction.DECOMPRESS, deflate_compress(raw),
                    sim_bytes=nominal, req_id=i, tenant=tenant,
                ))
            else:
                requests.append(ServeRequest(
                    Direction.COMPRESS, raw, sim_bytes=nominal, req_id=i,
                    tenant=tenant,
                ))
        return requests

    return _make
