"""Batcher flush triggers: size, bytes, deadline, and epoch hygiene."""

from __future__ import annotations

import pytest

from repro.dpu.specs import Direction
from repro.serve import BatchEntry, Batcher, BatchPolicy, ServeRequest


@pytest.fixture
def flushed():
    return []


@pytest.fixture
def make_batcher(env, flushed):
    def _make(**policy_kwargs):
        return Batcher(env, BatchPolicy(**policy_kwargs), flushed.append)

    return _make


def _entry(env, direction=Direction.COMPRESS, engine_bytes=1000.0,
           soc_bytes=1000.0):
    request = ServeRequest(direction, b"payload", req_id=id(object()))
    return BatchEntry(
        request=request,
        output=b"out",
        engine_sim_bytes=engine_bytes,
        soc_sim_bytes=soc_bytes,
        accepted_s=env.now,
        event=env.event(),
    )


class TestSizeFlush:
    def test_flushes_at_max_msgs(self, env, make_batcher, flushed):
        batcher = make_batcher(max_msgs=3)
        for _ in range(2):
            batcher.add(_entry(env))
        assert flushed == [] and batcher.open_count == 2
        batcher.add(_entry(env))
        assert len(flushed) == 1
        assert flushed[0].size == 3
        assert batcher.open_count == 0

    def test_flushes_at_max_bytes(self, env, make_batcher, flushed):
        batcher = make_batcher(max_msgs=100, max_sim_bytes=2500.0)
        batcher.add(_entry(env, engine_bytes=1000.0))
        batcher.add(_entry(env, engine_bytes=1000.0))
        assert flushed == []
        batcher.add(_entry(env, engine_bytes=1000.0))  # 3000 >= 2500
        assert len(flushed) == 1
        assert flushed[0].engine_sim_bytes == pytest.approx(3000.0)

    def test_single_message_policy_is_passthrough(self, env, make_batcher,
                                                  flushed):
        batcher = make_batcher(max_msgs=1)
        for _ in range(4):
            batcher.add(_entry(env))
        assert len(flushed) == 4
        assert all(batch.size == 1 for batch in flushed)

    def test_directions_batch_separately(self, env, make_batcher, flushed):
        batcher = make_batcher(max_msgs=2)
        batcher.add(_entry(env, Direction.COMPRESS))
        batcher.add(_entry(env, Direction.DECOMPRESS))
        assert flushed == []  # one of each: neither batch is full
        batcher.add(_entry(env, Direction.COMPRESS))
        assert len(flushed) == 1
        assert flushed[0].direction is Direction.COMPRESS
        batcher.flush_all()
        assert len(flushed) == 2
        assert flushed[1].direction is Direction.DECOMPRESS


class TestDeadlineFlush:
    def test_deadline_flushes_partial_batch(self, env, make_batcher, flushed):
        batcher = make_batcher(max_msgs=16, flush_deadline_s=1e-3)

        def scenario(env):
            batcher.add(_entry(env))
            batcher.add(_entry(env))
            yield env.timeout(0.5e-3)
            assert flushed == []  # before the deadline
            yield env.timeout(0.6e-3)
            assert len(flushed) == 1 and flushed[0].size == 2

        env.run(until=env.process(scenario(env)))

    def test_deadline_measured_from_batch_open(self, env, make_batcher,
                                               flushed):
        batcher = make_batcher(max_msgs=16, flush_deadline_s=1e-3)

        def scenario(env):
            batcher.add(_entry(env))
            yield env.timeout(0.9e-3)
            batcher.add(_entry(env))  # late joiner must not reset the clock
            yield env.timeout(0.2e-3)
            assert len(flushed) == 1  # 1.1 ms after open > 1 ms deadline

        env.run(until=env.process(scenario(env)))

    def test_stale_timer_does_not_flush_successor(self, env, make_batcher,
                                                  flushed):
        batcher = make_batcher(max_msgs=2, flush_deadline_s=1e-3)

        def scenario(env):
            batcher.add(_entry(env))
            yield env.timeout(0.5e-3)
            batcher.add(_entry(env))  # size-flush; timer from t=0 now stale
            assert len(flushed) == 1
            batcher.add(_entry(env))  # successor batch opens at t=0.5ms
            yield env.timeout(0.6e-3)  # stale timer fired at t=1ms: no-op
            assert len(flushed) == 1
            yield env.timeout(0.5e-3)  # successor's own deadline at t=1.5ms
            assert len(flushed) == 2

        env.run(until=env.process(scenario(env)))


class TestFlushAll:
    def test_flush_all_empty_is_noop(self, env, make_batcher, flushed):
        make_batcher(max_msgs=4).flush_all()
        assert flushed == []

    def test_batch_ids_are_unique_and_ordered(self, env, make_batcher,
                                              flushed):
        batcher = make_batcher(max_msgs=1)
        for _ in range(3):
            batcher.add(_entry(env))
        assert [batch.batch_id for batch in flushed] == [0, 1, 2]


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_msgs": 0},
        {"max_sim_bytes": 0.0},
        {"flush_deadline_s": 0.0},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)
