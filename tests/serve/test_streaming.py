"""StreamingSession: gateway-backed chunked (de)compression.

The session must produce containers byte-identical to the one-shot
:func:`repro.stream.stream_compress` (same codec config) so streams
move freely between the serving plane and the MPI fabric path, and it
must raise the same typed errors on corrupt containers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpu import make_device
from repro.dpu.specs import Algo
from repro.errors import StreamChecksumError, StreamCorruptError, StreamError
from repro.serve import ServeConfig, ServeGateway, StreamingSession
from repro.sim import Environment
from repro.stream import StreamConfig, stream_compress, stream_decompress

CHUNK = 1024


def _payload(size: int = 5000, seed: int = 11) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.choice(
        np.frombuffer(b"serve\x00\x00\x00", dtype=np.uint8), size=size
    ).tobytes()


def _run(generator, env):
    proc = env.process(generator)
    return env.run(until=proc)


@pytest.fixture
def gateway():
    env = Environment()
    devices = [make_device(env, kind) for kind in ("bf2", "bf3")]
    return ServeGateway(env, devices, ServeConfig(max_pending=10_000)), env


class TestContainerIdentity:
    @pytest.mark.parametrize("algo", [Algo.DEFLATE, Algo.AC, Algo.LZ4])
    def test_matches_one_shot_stream_compress(self, gateway, algo):
        gw, env = gateway
        session = StreamingSession(gw, algo=algo, chunk_bytes=CHUNK)
        payload = _payload()
        blob = _run(session.compress(payload), env)
        assert blob == stream_compress(payload, session.config)

    def test_mpi_side_can_decode_gateway_container(self, gateway):
        gw, env = gateway
        session = StreamingSession(gw, chunk_bytes=CHUNK)
        payload = _payload(seed=12)
        blob = _run(session.compress(payload), env)
        assert stream_decompress(blob) == payload

    def test_gateway_can_decode_mpi_container(self, gateway):
        gw, env = gateway
        session = StreamingSession(gw, chunk_bytes=CHUNK)
        payload = _payload(seed=13)
        blob = stream_compress(
            payload, StreamConfig(chunk_bytes=CHUNK)
        )
        assert _run(session.decompress(blob), env) == payload

    def test_roundtrip_through_gateway_both_ways(self, gateway):
        gw, env = gateway
        session = StreamingSession(gw, algo=Algo.LZ4, chunk_bytes=CHUNK)
        payload = _payload(seed=14)
        blob = _run(session.compress(payload), env)
        assert _run(session.decompress(blob), env) == payload

    def test_empty_payload(self, gateway):
        gw, env = gateway
        session = StreamingSession(gw, chunk_bytes=CHUNK)
        blob = _run(session.compress(b""), env)
        assert blob == stream_compress(b"", session.config)
        assert _run(session.decompress(blob), env) == b""


class TestTypedErrors:
    def test_truncated_container(self, gateway):
        gw, env = gateway
        session = StreamingSession(gw, chunk_bytes=CHUNK)
        blob = stream_compress(_payload(), StreamConfig(chunk_bytes=CHUNK))
        with pytest.raises(StreamCorruptError, match="truncated"):
            _run(session.decompress(blob[:-4]), env)

    def test_flipped_payload_byte(self, gateway):
        gw, env = gateway
        session = StreamingSession(gw, chunk_bytes=CHUNK)
        blob = bytearray(
            stream_compress(_payload(), StreamConfig(chunk_bytes=CHUNK))
        )
        blob[40] ^= 0x01  # inside the first chunk's DEFLATE payload
        with pytest.raises(StreamError):
            _run(session.decompress(bytes(blob)), env)

    def test_flipped_chunk_crc(self, gateway):
        gw, env = gateway
        session = StreamingSession(gw, chunk_bytes=CHUNK)
        blob = bytearray(
            stream_compress(_payload(), StreamConfig(chunk_bytes=CHUNK))
        )
        blob[12 + 9] ^= 0xFF  # first data frame's crc32 field
        with pytest.raises(StreamChecksumError):
            _run(session.decompress(bytes(blob)), env)
