"""Fixtures for the serving-gateway suite."""

from __future__ import annotations

import pytest

from repro.algorithms.deflate import deflate_compress
from repro.dpu import make_device
from repro.dpu.specs import Direction
from repro.faults import NULL_PLAN, set_fault_plan
from repro.serve import ServeRequest


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    previous = set_fault_plan(NULL_PLAN)
    yield
    set_fault_plan(previous)


@pytest.fixture
def fleet(env):
    """Mixed-generation fleet on one sim clock: 2x BF-2 + 1x BF-3."""
    return [make_device(env, kind) for kind in ("bf2", "bf2", "bf3")]


@pytest.fixture
def make_requests():
    """Deterministic mixed-direction request trace."""

    def _make(n: int, nominal: float = 64 * 1024):
        requests = []
        for i in range(n):
            raw = (b"serve-req-%04d " % i) * 64
            if i % 3 == 2:  # every third request is a decompress
                requests.append(
                    ServeRequest(
                        Direction.DECOMPRESS,
                        deflate_compress(raw),
                        sim_bytes=nominal,
                        req_id=i,
                    )
                )
            else:
                requests.append(
                    ServeRequest(
                        Direction.COMPRESS, raw, sim_bytes=nominal, req_id=i
                    )
                )
        return requests

    return _make
