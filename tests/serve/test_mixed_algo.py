"""Mixed-algorithm traffic through the gateway.

With the ``ac`` backend in the fleet the batcher keys batches by
(direction, algo): a batch must stay a *single* engine job, so AC and
DEFLATE requests can never share one.  AC batches always execute on
the SoC lane (no engine supports the algo); DEFLATE keeps its engine
eligibility.  Output stays byte-identical to the standalone codecs.
"""

from __future__ import annotations

import pytest

from repro.algorithms.ac import ac_compress, ac_decompress
from repro.algorithms.deflate import deflate_compress
from repro.dpu import make_device
from repro.dpu.specs import Algo, Direction
from repro.serve import (
    BatchPolicy,
    ServeConfig,
    ServeGateway,
    ServeRequest,
)
from repro.sim import Environment


def _serve_all(env, gateway, requests, spacing=1e-5):
    responses = {}

    def client(env):
        tickets = [gateway.submit(r) for r in requests]
        for _ in requests:
            yield env.timeout(spacing)
        yield from gateway.drain()
        for ticket in tickets:
            if ticket.accepted:
                response = ticket.event.value
                responses[response.req_id] = response

    env.run(until=env.process(client(env)))
    return responses


def _gateway(env, kinds=("bf2", "bf3"), router="cost_aware", max_msgs=8):
    devices = [make_device(env, kind) for kind in kinds]
    return ServeGateway(
        env,
        devices,
        ServeConfig(
            batch=BatchPolicy(max_msgs=max_msgs),
            router=router,
            max_pending=10_000,
        ),
    )


def _mixed_trace(n=12, nominal=64 * 1024):
    """Interleaved AC / DEFLATE compress requests."""
    requests = []
    for i in range(n):
        raw = (b"mixed-algo-%04d " % i) * 64
        algo = Algo.AC if i % 2 else Algo.DEFLATE
        requests.append(ServeRequest(
            Direction.COMPRESS, raw, sim_bytes=nominal, req_id=i, algo=algo,
        ))
    return requests


class TestBatchSeparation:
    def test_algos_never_share_a_batch(self, env):
        gateway = _gateway(env)
        responses = _serve_all(env, gateway, _mixed_trace())
        assert len(responses) == 12
        batch_algo = {}
        for req_id, response in responses.items():
            algo = Algo.AC if req_id % 2 else Algo.DEFLATE
            batch_algo.setdefault(response.batch_id, set()).add(algo)
        assert all(len(algos) == 1 for algos in batch_algo.values())
        # Both algos actually got batched (not degraded to singletons).
        assert any(r.batch_size > 1 for r in responses.values())

    def test_ac_batches_run_on_the_soc_lane(self, env):
        gateway = _gateway(env)
        responses = _serve_all(env, gateway, _mixed_trace())
        for req_id, response in responses.items():
            if req_id % 2:  # AC requests
                assert response.engine == "soc"

    @pytest.mark.parametrize("router", ["round_robin", "least_queue_depth",
                                        "capability", "cost_aware"])
    def test_identity_across_routers(self, router):
        requests = _mixed_trace()
        env = Environment()
        responses = _serve_all(env, _gateway(env, router=router), requests)
        for request in requests:
            expected = (
                ac_compress(request.payload)
                if request.algo is Algo.AC
                else deflate_compress(request.payload)
            )
            assert responses[request.req_id].payload == expected


class TestAcRoundTrip:
    def test_decompress_through_the_gateway(self, env):
        raws = [(b"ac-roundtrip-%04d " % i) * 48 for i in range(6)]
        requests = [
            ServeRequest(
                Direction.DECOMPRESS, ac_compress(raw),
                sim_bytes=48 * 1024, req_id=i, algo=Algo.AC,
            )
            for i, raw in enumerate(raws)
        ]
        gateway = _gateway(env)
        responses = _serve_all(env, gateway, requests)
        for i, raw in enumerate(raws):
            assert responses[i].payload == raw
            assert responses[i].engine == "soc"

    def test_gateway_output_decodes_standalone(self, env):
        raw = b"compress on the fleet, decode anywhere " * 40
        request = ServeRequest(
            Direction.COMPRESS, raw, sim_bytes=64 * 1024, req_id=0,
            algo=Algo.AC,
        )
        responses = _serve_all(env, _gateway(env), [request])
        assert ac_decompress(responses[0].payload) == raw


class TestDirectionAlgoKeying:
    def test_four_way_split(self, env):
        """compress/decompress x deflate/ac -> four distinct batches."""
        raw = b"four-way split payload " * 32
        requests = []
        for i, (direction, algo) in enumerate([
            (Direction.COMPRESS, Algo.DEFLATE),
            (Direction.COMPRESS, Algo.AC),
            (Direction.DECOMPRESS, Algo.DEFLATE),
            (Direction.DECOMPRESS, Algo.AC),
        ] * 2):
            payload = raw
            if direction is Direction.DECOMPRESS:
                payload = (
                    ac_compress(raw) if algo is Algo.AC
                    else deflate_compress(raw)
                )
            requests.append(ServeRequest(
                direction, payload, sim_bytes=32 * 1024, req_id=i, algo=algo,
            ))
        responses = _serve_all(env, _gateway(env), requests)
        assert len(responses) == 8
        batches = {}
        for i, response in responses.items():
            batches.setdefault(response.batch_id, []).append(i % 4)
        # Each batch holds exactly one (direction, algo) class.
        assert all(len(set(members)) == 1 for members in batches.values())
        assert len(batches) == 4
