"""Admission control: the bounded queue and its shed accounting."""

from __future__ import annotations

import pytest

from repro import obs
from repro.serve import AdmissionController


class TestBound:
    def test_admits_up_to_bound_then_sheds(self):
        admission = AdmissionController(max_pending=3)
        assert [admission.try_admit() for _ in range(5)] == [
            True, True, True, False, False
        ]
        assert admission.pending == 3
        assert admission.accepted == 3
        assert admission.shed == 2

    def test_complete_frees_a_slot(self):
        admission = AdmissionController(max_pending=1)
        assert admission.try_admit()
        assert not admission.try_admit()
        admission.complete()
        assert admission.try_admit()

    def test_peak_pending_tracks_high_water_mark(self):
        admission = AdmissionController(max_pending=10)
        for _ in range(4):
            admission.try_admit()
        for _ in range(3):
            admission.complete()
        admission.try_admit()
        assert admission.pending == 2
        assert admission.peak_pending == 4

    def test_over_complete_rejected(self):
        admission = AdmissionController(max_pending=2)
        with pytest.raises(RuntimeError):
            admission.complete()

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)


class TestMetrics:
    def test_shed_and_accept_counters_recorded(self):
        with obs.collecting() as metrics:
            admission = AdmissionController(max_pending=2)
            for _ in range(5):
                admission.try_admit()
            admission.complete()
        assert metrics.counter("serve.accepted").value == 2
        assert metrics.counter("serve.shed").value == 3
        assert metrics.gauge("serve.pending").max == 2
        assert metrics.gauge("serve.pending").value == 1
