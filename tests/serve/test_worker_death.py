"""Whole-worker death at the single-gateway layer: the admission
slot-leak regression, the failover race, and router liveness/cloning."""

from __future__ import annotations

import pytest

from repro.dpu import make_device
from repro.dpu.specs import Direction
from repro.errors import NoCapableWorkerError
from repro.serve import BatchPolicy, ServeConfig, ServeGateway, ServeRequest
from repro.serve.router import RoundRobinRouter

PAYLOAD = b"death-payload " * 64


def _requests(n: int):
    return [
        ServeRequest(Direction.COMPRESS, PAYLOAD, sim_bytes=64e3, req_id=i)
        for i in range(n)
    ]


def _gateway(env, n_workers=2, failover=False, **kwargs):
    devices = [
        make_device(env, "bf2", name=f"bf2-{i}") for i in range(n_workers)
    ]
    config = ServeConfig(batch=BatchPolicy(max_msgs=4), failover=failover,
                         **kwargs)
    return ServeGateway(env, devices, config)


def _kill_dispatched_worker(env, gateway, at_s=1e-6):
    """Kill whichever worker the first batch was dispatched to."""

    def killer(env):
        yield env.timeout(at_s)
        dispatched = [rec for rec in gateway.routing_log
                      if rec[1] == "dispatch"]
        gateway.kill_worker(dispatched[0][2])

    env.process(killer(env))


def _drain(env, gateway):
    def driver(env):
        yield env.timeout(0.0)
        yield from gateway.drain()

    env.run(until=env.process(driver(env)))


def test_worker_death_without_failover_releases_every_slot(env):
    """The slot-leak regression: pending must drain to zero after a
    mid-batch kill, leaving the budget fully usable.  Without the
    failover race the kill only stops new placements — in-flight
    batches run to completion against the cost model."""
    gateway = _gateway(env, n_workers=1, failover=False, max_pending=8)
    tickets = [gateway.submit(r) for r in _requests(4)]
    assert gateway.admission.pending == 4
    _kill_dispatched_worker(env, gateway)
    _drain(env, gateway)

    assert all(t.event.ok for t in tickets)
    assert gateway.admission.pending == 0
    assert gateway.completed == 4
    # The budget is intact: a fresh full batch admits again.
    assert all(not gateway.submit(r).shed for r in _requests(4))


def test_failover_with_no_survivor_fails_tickets_and_drains(env):
    """The slot-leak regression's sharp edge: the batch fails *after*
    admission (worker died, nobody left to re-dispatch to) and every
    slot still releases exactly once."""
    gateway = _gateway(env, n_workers=1, failover=True, max_pending=8)
    tickets = [gateway.submit(r) for r in _requests(4)]
    assert gateway.admission.pending == 4
    _kill_dispatched_worker(env, gateway)
    _drain(env, gateway)

    for ticket in tickets:
        assert ticket.event.triggered and not ticket.event.ok
        with pytest.raises(NoCapableWorkerError):
            ticket.event.value
    assert gateway.admission.pending == 0
    assert gateway.completed == 0
    # The budget is intact; the fleet is dead, so new submits are
    # admitted then failed at dispatch — and still release their slots.
    more = [gateway.submit(r) for r in _requests(4)]
    assert all(not t.shed for t in more)
    _drain(env, gateway)
    assert gateway.admission.pending == 0


def test_worker_death_with_failover_redispatches_in_flight(env):
    gateway = _gateway(env, n_workers=2, failover=True, max_pending=8)
    tickets = [gateway.submit(r) for r in _requests(4)]
    _kill_dispatched_worker(env, gateway)
    _drain(env, gateway)

    assert all(t.event.ok for t in tickets)
    assert gateway.completed == 4
    assert gateway.admission.pending == 0
    kinds = [rec[1] for rec in gateway.routing_log]
    assert kinds.count("failover") >= 1
    # The re-pick landed on the survivor.
    survivor = next(w for w in gateway.workers if w.alive)
    responses = [t.event.value for t in tickets]
    assert {r.device for r in responses} == {survivor.name}


def test_dead_fleet_fails_tickets_with_typed_error(env):
    """No survivors: submit-side dispatch raises the typed
    NoCapableWorkerError (never a bare IndexError) and the tickets fail
    with it, slots released."""
    gateway = _gateway(env, n_workers=2, failover=False, max_pending=8)
    for worker in list(gateway.workers):
        gateway.kill_worker(worker.name)
    tickets = [gateway.submit(r) for r in _requests(4)]
    assert all(not t.shed for t in tickets)  # admission is not the router
    _drain(env, gateway)
    for ticket in tickets:
        with pytest.raises(NoCapableWorkerError):
            ticket.event.value
    assert gateway.admission.pending == 0


def test_kill_worker_is_idempotent_and_checks_names(env):
    gateway = _gateway(env, n_workers=2)
    worker = gateway.kill_worker("bf2-0")
    assert not worker.alive
    assert gateway.kill_worker("bf2-0") is worker  # second kill: no-op
    with pytest.raises(ValueError):
        gateway.kill_worker("nope")


def test_routers_skip_dead_workers(env):
    gateway = _gateway(env, n_workers=2, failover=False)
    gateway.kill_worker("bf2-0")
    tickets = [gateway.submit(r) for r in _requests(4)]
    _drain(env, gateway)
    assert all(t.event.ok for t in tickets)
    assert {t.event.value.device for t in tickets} == {"bf2-1"}


def test_shared_router_instance_is_cloned_per_gateway(env):
    """Two gateways handed the *same* RoundRobinRouter object must not
    alias one cursor: each clones it and starts from worker 0."""
    shared = RoundRobinRouter()
    gw_a = _gateway(env, n_workers=2, router=shared)
    gw_b = _gateway(env, n_workers=2, router=shared)
    assert gw_a.router is not shared
    assert gw_b.router is not shared
    assert gw_a.router is not gw_b.router

    tickets_a = [gw_a.submit(r) for r in _requests(4)]
    tickets_b = [gw_b.submit(r) for r in _requests(4)]

    def driver(env):
        yield env.timeout(0.0)
        yield from gw_a.drain()
        yield from gw_b.drain()

    env.run(until=env.process(driver(env)))
    # Un-aliased cursors: each gateway's first batch went to *its*
    # first worker (an aliased cursor would advance b onto worker 1).
    assert tickets_a[0].event.value.device == gw_a.workers[0].name
    assert tickets_b[0].event.value.device == gw_b.workers[0].name
    # The shared instance's own cursor never moved.
    assert shared._next == 0


def test_round_robin_raises_typed_error_on_dead_fleet(env):
    router = RoundRobinRouter()
    gateway = _gateway(env, n_workers=2)
    for worker in gateway.workers:
        worker.kill()

    class _Batch:
        direction = Direction.COMPRESS
        algo = None

    with pytest.raises(NoCapableWorkerError) as excinfo:
        router.pick(gateway.workers, _Batch())
    assert excinfo.value.direction == Direction.COMPRESS
