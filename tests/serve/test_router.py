"""Routing policies: determinism, load signals, capability filtering."""

from __future__ import annotations

import pytest

from repro.dpu.specs import Direction
from repro.serve import (
    ROUTERS,
    CapabilityAwareRouter,
    LeastQueueDepthRouter,
    RoundRobinRouter,
    Router,
    make_router,
)


class FakeWorker:
    """Minimal router-facing worker: a load number + capability set."""

    def __init__(self, name, load=0, directions=(Direction.COMPRESS,
                                                 Direction.DECOMPRESS)):
        self.name = name
        self.load = load
        self._directions = set(directions)

    def supports(self, direction):
        return direction in self._directions


class FakeBatch:
    def __init__(self, direction=Direction.COMPRESS):
        self.direction = direction


class TestRoundRobin:
    def test_cycles_through_fleet(self):
        router = RoundRobinRouter()
        workers = [FakeWorker("a"), FakeWorker("b"), FakeWorker("c")]
        picks = [router.pick(workers, FakeBatch()).name for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]


class TestLeastQueueDepth:
    def test_picks_least_loaded(self):
        workers = [FakeWorker("a", load=3), FakeWorker("b", load=1),
                   FakeWorker("c", load=2)]
        assert LeastQueueDepthRouter().pick(workers, FakeBatch()).name == "b"

    def test_tie_breaks_on_fleet_order(self):
        workers = [FakeWorker("a", load=2), FakeWorker("b", load=2)]
        assert LeastQueueDepthRouter().pick(workers, FakeBatch()).name == "a"


class TestCapabilityAware:
    def test_filters_to_capable_devices(self):
        """A BF-3-shaped worker (decompress-only engine) never receives
        compress batches while an engine-capable device exists."""
        bf2 = FakeWorker("bf2", load=9)
        bf3 = FakeWorker("bf3", load=0, directions=(Direction.DECOMPRESS,))
        router = CapabilityAwareRouter()
        assert router.pick([bf2, bf3], FakeBatch(Direction.COMPRESS)) is bf2
        # ...but decompress goes to the least-loaded capable device.
        assert router.pick([bf2, bf3], FakeBatch(Direction.DECOMPRESS)) is bf3

    def test_falls_back_to_whole_fleet(self):
        """If nobody has the engine capability, route by load anyway —
        the scheduler's SoC fallback still completes the work."""
        a = FakeWorker("a", load=2, directions=())
        b = FakeWorker("b", load=1, directions=())
        assert CapabilityAwareRouter().pick(
            [a, b], FakeBatch(Direction.COMPRESS)
        ) is b


class TestRealWorkersRoute(object):
    def test_capability_router_on_real_fleet(self, env, fleet):
        from repro.serve import DpuWorker
        from repro.sched import SchedConfig

        workers = [DpuWorker(device, SchedConfig()) for device in fleet]
        router = CapabilityAwareRouter()
        pick = router.pick(workers, FakeBatch(Direction.COMPRESS))
        assert pick.device.spec.generation == 2  # BF-3 has no compress engine


class TestRegistry:
    def test_known_names(self):
        assert set(ROUTERS) == {"round_robin", "least_queue_depth",
                                "capability", "cost_aware"}
        for name in ROUTERS:
            assert make_router(name).name == name

    def test_instance_passthrough(self):
        router = RoundRobinRouter()
        assert make_router(router) is router

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("hash_ring")

    def test_base_router_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Router().pick([FakeWorker("a")], FakeBatch())
