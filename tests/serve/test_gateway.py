"""End-to-end gateway behavior: identity, accounting, drain, failure."""

from __future__ import annotations

import pytest

from repro.dpu import make_device
from repro.dpu.specs import Direction
from repro.errors import DocaCapabilityError
from repro.sched import SchedConfig
from repro.serve import BatchPolicy, ServeConfig, ServeGateway, ServeRequest
from repro.sim import Environment


def _serve_all(env, gateway, requests, spacing=1e-5):
    """Submit a trace with fixed spacing, drain, return {req_id: resp}."""
    responses = {}

    def client(env):
        tickets = []
        for request in requests:
            tickets.append(gateway.submit(request))
            yield env.timeout(spacing)
        yield from gateway.drain()
        for ticket in tickets:
            if ticket.accepted:
                response = ticket.event.value
                responses[response.req_id] = response

    env.run(until=env.process(client(env)))
    return responses


def _run_config(requests, fleet_kinds, batch_msgs, router):
    env = Environment()
    devices = [make_device(env, kind) for kind in fleet_kinds]
    gateway = ServeGateway(
        env,
        devices,
        ServeConfig(
            batch=BatchPolicy(max_msgs=batch_msgs),
            router=router,
            max_pending=10_000,
        ),
    )
    return _serve_all(env, gateway, requests), gateway, env


class TestByteIdentity:
    """Acceptance: batched output is byte-identical to per-request
    output, whatever the fleet, router, or batch shape."""

    def test_batched_equals_unbatched(self, make_requests):
        requests = make_requests(24)
        unbatched, _, _ = _run_config(requests, ("bf2", "bf3"), 1,
                                      "least_queue_depth")
        batched, _, _ = _run_config(requests, ("bf2", "bf3"), 8,
                                    "least_queue_depth")
        assert set(unbatched) == set(batched) == {r.req_id for r in requests}
        for req_id in unbatched:
            assert unbatched[req_id].payload == batched[req_id].payload

    @pytest.mark.parametrize("router", ["round_robin", "least_queue_depth",
                                        "capability"])
    @pytest.mark.parametrize("fleet", [("bf2",), ("bf3", "bf3"),
                                       ("bf2", "bf2", "bf3")])
    def test_identity_across_routers_and_fleets(self, make_requests, router,
                                                fleet):
        requests = make_requests(12)
        reference, _, _ = _run_config(requests, ("bf2",), 1, "round_robin")
        got, _, _ = _run_config(requests, fleet, 4, router)
        for req_id in reference:
            assert got[req_id].payload == reference[req_id].payload

    def test_identity_under_engine_faults(self, make_requests):
        from repro.faults import FaultPlan, set_fault_plan

        requests = make_requests(12)
        reference, _, _ = _run_config(requests, ("bf2", "bf3"), 4,
                                      "capability")
        set_fault_plan(FaultPlan(seed=11, engine_fail=0.5))
        try:
            faulty, _, _ = _run_config(requests, ("bf2", "bf3"), 4,
                                       "capability")
        finally:
            from repro.faults import NULL_PLAN
            set_fault_plan(NULL_PLAN)
        for req_id in reference:
            assert faulty[req_id].payload == reference[req_id].payload

    def test_roundtrip_through_gateway(self, env, fleet, make_requests):
        """Compress responses decompress back to the original bytes."""
        from repro.algorithms.deflate import deflate_decompress

        requests = [r for r in make_requests(9)
                    if r.direction is Direction.COMPRESS]
        gateway = ServeGateway(env, fleet)
        responses = _serve_all(env, gateway, requests)
        for request in requests:
            assert deflate_decompress(
                responses[request.req_id].payload
            ) == request.payload


class TestAccounting:
    def test_latency_and_completion_counters(self, env, fleet, make_requests):
        requests = make_requests(12)
        gateway = ServeGateway(env, fleet)
        responses = _serve_all(env, gateway, requests)
        assert gateway.completed == len(requests)
        assert gateway.submitted == len(requests)
        assert len(gateway.latencies) == len(requests)
        for response in responses.values():
            assert response.completed_s >= response.accepted_s
            assert response.latency_s > 0
        assert gateway.completed_sim_bytes == pytest.approx(
            sum(r.sim_bytes for r in requests)
        )

    def test_batch_metadata_on_responses(self, env, fleet, make_requests):
        requests = [r for r in make_requests(8)
                    if r.direction is Direction.COMPRESS]
        gateway = ServeGateway(
            env, fleet,
            ServeConfig(batch=BatchPolicy(max_msgs=len(requests))),
        )
        responses = _serve_all(env, gateway, requests, spacing=1e-7)
        batch_ids = {r.batch_id for r in responses.values()}
        assert len(batch_ids) == 1  # all coalesced into one batch
        assert all(r.batch_size == len(requests) for r in responses.values())
        assert all(r.device for r in responses.values())
        assert all(r.engine in ("cengine", "soc") for r in responses.values())

    def test_worker_counters(self, env, fleet, make_requests):
        gateway = ServeGateway(env, fleet)
        _serve_all(env, gateway, make_requests(12))
        assert sum(w.requests_served for w in gateway.workers) == 12
        assert sum(w.batches_served for w in gateway.workers) == (
            gateway.batcher.batches_flushed
        )

    def test_auto_request_ids(self, env, fleet):
        gateway = ServeGateway(env, fleet)
        requests = [ServeRequest(Direction.COMPRESS, b"x" * 256)
                    for _ in range(4)]
        responses = _serve_all(env, gateway, requests)
        assert set(responses) == {0, 1, 2, 3}

    def test_percentile_validation(self, env, fleet, make_requests):
        gateway = ServeGateway(env, fleet)
        with pytest.raises(ValueError):
            gateway.latency_percentile(99)  # nothing completed yet
        _serve_all(env, gateway, make_requests(6))
        assert gateway.latency_percentile(0) <= gateway.latency_percentile(100)
        with pytest.raises(ValueError):
            gateway.latency_percentile(101)

    def test_percentile_on_empty_gateway_is_typed(self, env, fleet):
        """Zero completed requests raises the dedicated error — which
        stays a ValueError subclass for older callers — instead of a
        bare statistics crash."""
        from repro.errors import NoLatencySamplesError, ServeError

        gateway = ServeGateway(env, fleet)
        with pytest.raises(NoLatencySamplesError) as excinfo:
            gateway.latency_percentile(50)
        assert isinstance(excinfo.value, ServeError)
        assert isinstance(excinfo.value, ValueError)

    def test_serve_bench_tolerates_zero_load(self):
        """At a vanishing offered load the bench point reports nan
        percentiles rather than crashing — with an explicit
        ``sample_count`` of 0 so the nan is typed, not mysterious."""
        import math

        from repro.bench.experiments.serve_gateway import run_serve_point

        row = run_serve_point(
            offered_req_s=1.0, batch_msgs=1, duration_s=1e-4,
            fleet=("bf2",),
        )
        assert row["offered"] == 0
        assert row["completed"] == 0
        assert row["sample_count"] == 0
        assert math.isnan(row["p50_s"])
        assert math.isnan(row["p99_s"])

    def test_serve_bench_row_carries_sample_count(self):
        from repro.bench.experiments.serve_gateway import run_serve_point

        row = run_serve_point(
            offered_req_s=5_000.0, batch_msgs=4, duration_s=2e-3,
            fleet=("bf2",),
        )
        assert isinstance(row["sample_count"], int)
        assert row["sample_count"] == row["completed"] > 0
        assert row["p99_s"] >= row["p50_s"] > 0.0


class TestTelemetry:
    """PR 6: sketch-backed percentiles + labeled tenant registries."""

    def _telemetry_run(self, make_requests, aggregator=None, tenants=None):
        from repro.serve import TelemetryConfig

        env = Environment()
        devices = [make_device(env, kind) for kind in ("bf2", "bf3")]
        gateway = ServeGateway(
            env,
            devices,
            ServeConfig(
                batch=BatchPolicy(max_msgs=4),
                telemetry=TelemetryConfig(
                    gateway="gw-test",
                    aggregator=aggregator,
                ),
            ),
        )
        requests = make_requests(12)
        if tenants:
            import dataclasses

            requests = [
                dataclasses.replace(r, tenant=tenants[i % len(tenants)])
                for i, r in enumerate(requests)
            ]
        _serve_all(env, gateway, requests)
        return gateway

    def test_percentile_within_sketch_bound_of_exact(self, env, fleet,
                                                     make_requests):
        import math

        gateway = ServeGateway(env, fleet)
        _serve_all(env, gateway, make_requests(24))
        ordered = sorted(gateway.latencies)
        for q in (50, 90, 99, 100):
            rank = max(1, math.ceil(len(ordered) * q / 100))
            exact = ordered[rank - 1]
            got = gateway.latency_percentile(q)
            assert abs(got - exact) <= gateway.latency_sketch.alpha * exact

    def test_sample_count_tracks_completions(self, env, fleet, make_requests):
        gateway = ServeGateway(env, fleet)
        assert gateway.sample_count == 0
        _serve_all(env, gateway, make_requests(6))
        assert gateway.sample_count == 6 == gateway.completed

    def test_worker_and_tenant_registries_labeled(self, make_requests):
        gateway = self._telemetry_run(make_requests, tenants=("hot", "cold"))
        label_sets = [r.label_dict for r in gateway.registries]
        worker_labels = [l for l in label_sets if "tenant" not in l]
        tenant_labels = [l for l in label_sets if "tenant" in l]
        assert len(worker_labels) == 2  # one per fleet device
        assert all(l["gateway"] == "gw-test" for l in label_sets)
        assert {l["tenant"] for l in tenant_labels} == {"hot", "cold"}
        assert all("worker" in l for l in label_sets)

    def test_tenant_registries_carry_slo_inputs(self, make_requests):
        from repro.obs.slo import GOODPUT_COUNTER, LATENCY_METRIC

        gateway = self._telemetry_run(make_requests, tenants=("hot",))
        tenant_registries = [
            r for r in gateway.registries if "tenant" in r.label_dict
        ]
        assert tenant_registries
        total = 0
        for registry in tenant_registries:
            hist = registry.histograms[LATENCY_METRIC]
            total += hist.count
            assert registry.counters[GOODPUT_COUNTER].value > 0
        assert total == gateway.completed

    def test_untenanted_requests_use_default_tenant(self, make_requests):
        gateway = self._telemetry_run(make_requests)  # no tenant set
        tenants = {
            r.label_dict["tenant"]
            for r in gateway.registries if "tenant" in r.label_dict
        }
        assert tenants == {"default"}

    def test_registries_auto_register_with_aggregator(self, make_requests):
        from repro.obs import FleetAggregator

        aggregator = FleetAggregator()
        gateway = self._telemetry_run(make_requests, aggregator=aggregator)
        assert set(aggregator.members) >= set(gateway.registries)
        snapshot = aggregator.scrape(0.0, group_by=("tenant",))
        assert snapshot.group("default") is not None

    def test_telemetry_off_means_no_registries(self, env, fleet,
                                               make_requests):
        gateway = ServeGateway(env, fleet)
        _serve_all(env, gateway, make_requests(6))
        assert gateway.registries == ()

    def test_telemetry_is_sim_neutral(self, make_requests):
        """Acceptance: telemetry on/off produces bit-identical sim
        results — same finish time, same latency stream, same bytes."""

        def run(telemetry_on):
            from repro.serve import TelemetryConfig

            env = Environment()
            devices = [make_device(env, kind) for kind in ("bf2", "bf3")]
            gateway = ServeGateway(
                env,
                devices,
                ServeConfig(
                    batch=BatchPolicy(max_msgs=4),
                    telemetry=TelemetryConfig() if telemetry_on else None,
                ),
            )
            responses = _serve_all(env, gateway, make_requests(12))
            payloads = tuple(
                responses[req_id].payload for req_id in sorted(responses)
            )
            return env.now, tuple(gateway.latencies), payloads

        assert run(False) == run(True)


class TestDrain:
    def test_drain_flushes_partial_batches(self, env, fleet):
        gateway = ServeGateway(
            env, fleet,
            ServeConfig(batch=BatchPolicy(max_msgs=64, flush_deadline_s=10.0)),
        )

        def client(env):
            ticket = gateway.submit(
                ServeRequest(Direction.COMPRESS, b"y" * 512, req_id="only")
            )
            yield from gateway.drain()
            assert ticket.done

        env.run(until=env.process(client(env)))
        assert gateway.completed == 1

    def test_gateway_reusable_after_drain(self, env, fleet, make_requests):
        gateway = ServeGateway(env, fleet)
        _serve_all(env, gateway, make_requests(6))
        _serve_all(env, gateway, make_requests(6))
        assert gateway.completed == 12

    def test_drain_with_nothing_pending(self, env, fleet, run_sim):
        gateway = ServeGateway(env, fleet)
        run_sim(env, gateway.drain())
        assert gateway.completed == 0


class TestFailurePropagation:
    def test_capability_error_fans_out_to_tickets(self, env):
        """BF-3 cannot compress on the engine; with SoC fallback off the
        scheduler's refusal must reach every ticket in the batch rather
        than hang the drain."""
        gateway = ServeGateway(
            env,
            [make_device(env, "bf3")],
            ServeConfig(
                batch=BatchPolicy(max_msgs=2),
                sched=SchedConfig(soc_fallback=False),
            ),
        )

        def client(env):
            a = gateway.submit(
                ServeRequest(Direction.COMPRESS, b"a" * 256, req_id="a")
            )
            b = gateway.submit(
                ServeRequest(Direction.COMPRESS, b"b" * 256, req_id="b")
            )
            for ticket in (a, b):
                with pytest.raises(DocaCapabilityError):
                    yield from ticket.wait()

        env.run(until=env.process(client(env)))
        assert gateway.completed == 0
        assert gateway.admission.pending == 0  # slots were released

    def test_mismatched_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError, match="different Environment"):
            ServeGateway(env, [make_device(other, "bf2")])

    def test_empty_fleet_rejected(self, env):
        with pytest.raises(ValueError, match="at least one device"):
            ServeGateway(env, [])


class TestBatchingSpeedsUpSmallMessages:
    def test_batched_makespan_beats_unbatched(self, make_requests):
        requests = make_requests(32)
        _, _, env_unbatched = _run_config(
            requests, ("bf2", "bf2"), 1, "capability"
        )
        _, _, env_batched = _run_config(
            requests, ("bf2", "bf2"), 8, "capability"
        )
        assert env_batched.now < env_unbatched.now
