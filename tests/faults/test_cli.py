"""``python -m repro.bench --faults``: the Fig. 7 acceptance scenario.

A full fig7 regeneration with engine failure probability 1.0 must
complete via SoC fallback, leave nonzero ``faults.*`` counters, report
the same compression artifacts as a clean run (only timing columns may
differ), and restore the no-op plan afterwards.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import main
from repro.faults import NULL_PLAN, get_fault_plan


@pytest.fixture(scope="module")
def faulted_fig7(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli_faults")
    metrics = tmp / "m.json"
    out = tmp / "rows.json"
    clean_out = tmp / "rows_clean.json"
    rc = main([
        "fig7",
        "--actual-bytes", "4096",
        "--faults", "seed=42,engine_fail=1.0",
        "--metrics", str(metrics),
        "--json", str(out),
    ])
    assert rc == 0
    rc = main(["fig7", "--actual-bytes", "4096", "--json", str(clean_out)])
    assert rc == 0
    return (
        json.loads(metrics.read_text()),
        json.loads(out.read_text()),
        json.loads(clean_out.read_text()),
    )


class TestFaultedFig7:
    def test_fallbacks_counted(self, faulted_fig7):
        metrics, _, _ = faulted_fig7
        counters = metrics["counters"]
        assert counters["faults.fallbacks"] > 0
        assert counters["faults.injected.engine_fail"] > 0
        assert counters["faults.retries"] >= counters["faults.fallbacks"]

    def test_attempt_histogram_recorded(self, faulted_fig7):
        metrics, _, _ = faulted_fig7
        assert "faults.attempts" in metrics["histograms"]

    def test_spec_recorded_in_json(self, faulted_fig7):
        _, rows, clean = faulted_fig7
        assert rows["args"]["faults"] == "seed=42,engine_fail=1.0"
        assert clean["args"]["faults"] is None

    def test_artifacts_match_clean_run(self, faulted_fig7):
        """Fig. 7 rows under total engine failure differ from a clean
        run only in timing columns — sizes/ratios/identity are equal."""
        _, rows, clean = faulted_fig7
        timing = {"compression_s", "decompression_s", "total_s",
                  "overhead_frac", "doca_init_s", "buffer_prep_s"}
        for faulted_exp, clean_exp in zip(rows["experiments"],
                                          clean["experiments"]):
            for rf, rc_ in zip(faulted_exp["rows"], clean_exp["rows"]):
                assert set(rf) == set(rc_)
                for key in rf:
                    if key not in timing:
                        assert rf[key] == rc_[key], key

    def test_plan_restored_after_run(self, faulted_fig7):
        assert get_fault_plan() is NULL_PLAN


def test_bad_spec_raises_before_running(tmp_path):
    with pytest.raises(ValueError, match="bogus"):
        main(["fig7", "--faults", "bogus=1"])
