"""FaultPlan unit behaviour: determinism, rates, corruption, parsing."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultConfig,
    FaultDecision,
    FaultPlan,
    NO_FAULT,
    NULL_PLAN,
    get_fault_plan,
    injecting,
    parse_fault_spec,
    set_fault_plan,
)
from repro.faults.corrupt import corrupt_buffer, flip_bits, truncate
from repro.faults.plan import KIND_DEGRADE, KIND_FAIL, KIND_NONE, KIND_STALL


class TestFaultConfig:
    def test_defaults_are_inert(self):
        assert not FaultConfig().any_nonzero

    def test_any_nonzero(self):
        assert FaultConfig(engine_fail=0.1).any_nonzero
        assert FaultConfig(init_fail=1.0).any_nonzero
        assert FaultConfig(corrupt_output=0.5).any_nonzero

    @pytest.mark.parametrize("field", [
        "engine_fail", "engine_stall", "engine_degrade",
        "corrupt_output", "init_fail",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probability_bounds(self, field, bad):
        with pytest.raises(ValueError):
            FaultConfig(**{field: bad})

    def test_engine_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            FaultConfig(engine_fail=0.5, engine_stall=0.4, engine_degrade=0.2)
        # Exactly 1.0 is allowed.
        FaultConfig(engine_fail=0.5, engine_stall=0.3, engine_degrade=0.2)

    @pytest.mark.parametrize("kwargs", [
        {"stall_factor": 0.5},
        {"degrade_factor": 0.0},
        {"fail_latency_fraction": 1.5},
        {"max_corrupt_bits": 0},
    ])
    def test_severity_knob_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = FaultPlan(seed=7, engine_fail=0.5)
        b = FaultPlan(seed=7, engine_fail=0.5)
        da = [a.engine_job("bf2", "deflate", "compress", t / 10) for t in range(50)]
        db = [b.engine_job("bf2", "deflate", "compress", t / 10) for t in range(50)]
        assert da == db

    def test_different_seed_different_draws(self):
        a = FaultPlan(seed=1, engine_fail=0.5)
        b = FaultPlan(seed=2, engine_fail=0.5)
        da = [a.engine_job("bf2", "deflate", "compress", t / 10) for t in range(50)]
        db = [b.engine_job("bf2", "deflate", "compress", t / 10) for t in range(50)]
        assert da != db

    def test_sites_independent(self):
        """Draws at one site never perturb another site's sequence."""
        a = FaultPlan(seed=3, engine_fail=0.5)
        b = FaultPlan(seed=3, engine_fail=0.5)
        seq_a = [a.engine_job("bf2", "deflate", "compress", float(t))
                 for t in range(20)]
        # Interleave draws at an unrelated site on plan b only.
        seq_b = []
        for t in range(20):
            b.engine_job("bf3", "lz4", "decompress", float(t))
            seq_b.append(b.engine_job("bf2", "deflate", "compress", float(t)))
        assert seq_a == seq_b

    def test_corruption_deterministic(self):
        payload = bytes(range(256)) * 4
        a = FaultPlan(seed=11, corrupt_output=1.0)
        b = FaultPlan(seed=11, corrupt_output=1.0)
        assert (a.corrupt_engine_output("s", payload, 1.5)
                == b.corrupt_engine_output("s", payload, 1.5))


class TestEngineJobDecisions:
    def test_zero_probability_never_faults(self):
        plan = FaultPlan(seed=5)
        for t in range(100):
            assert plan.engine_job("bf2", "deflate", "compress",
                                   float(t)) is NO_FAULT

    def test_certain_failure(self):
        plan = FaultPlan(seed=5, engine_fail=1.0)
        for t in range(20):
            d = plan.engine_job("bf2", "deflate", "compress", float(t))
            assert d.kind == KIND_FAIL
            assert 1 <= d.code <= 7

    def test_certain_stall_carries_factor(self):
        plan = FaultPlan(seed=5, engine_stall=1.0, stall_factor=16.0)
        d = plan.engine_job("bf2", "deflate", "compress", 0.0)
        assert d.kind == KIND_STALL and d.factor == 16.0

    def test_certain_degrade_carries_factor(self):
        plan = FaultPlan(seed=5, engine_degrade=1.0, degrade_factor=3.0)
        d = plan.engine_job("bf2", "deflate", "compress", 0.0)
        assert d.kind == KIND_DEGRADE and d.factor == 3.0

    def test_mixed_rates_roughly_partition(self):
        plan = FaultPlan(seed=5, engine_fail=0.3, engine_stall=0.3,
                         engine_degrade=0.3)
        kinds = [plan.engine_job("bf2", "deflate", "compress", float(t)).kind
                 for t in range(600)]
        for kind in (KIND_FAIL, KIND_STALL, KIND_DEGRADE):
            frac = kinds.count(kind) / len(kinds)
            assert 0.2 < frac < 0.4, (kind, frac)
        assert 0.02 < kinds.count(KIND_NONE) / len(kinds) < 0.2

    def test_init_fail_rate(self):
        plan = FaultPlan(seed=5, init_fail=1.0)
        assert plan.session_init("bf2", 0.0)
        assert not FaultPlan(seed=5).session_init("bf2", 0.0)


class TestCorruption:
    def test_corrupt_output_always_differs(self):
        payload = b"a compressed payload of reasonable length" * 8
        plan = FaultPlan(seed=1, corrupt_output=1.0)
        for t in range(50):
            damaged, corrupted = plan.corrupt_engine_output(
                "site", payload, float(t))
            assert corrupted
            assert damaged != payload

    def test_empty_payload_never_corrupted(self):
        plan = FaultPlan(seed=1, corrupt_output=1.0)
        assert plan.corrupt_engine_output("site", b"", 0.0) == (b"", False)

    def test_flip_bits(self):
        out = flip_bits(b"\x00\x00", [0, 15])
        assert out == b"\x01\x80"

    def test_truncate_loses_at_least_one_byte(self):
        assert len(truncate(b"abcdef", 6)) < 6
        assert truncate(b"abcdef", 3) == b"abc"

    def test_corrupt_buffer_deterministic_and_differs(self):
        payload = bytes(range(200))
        fn = lambda tag: int.from_bytes(tag.encode()[:4].ljust(4, b"x"), "big")
        a = corrupt_buffer(payload, fn, max_bits=8)
        b = corrupt_buffer(payload, fn, max_bits=8)
        assert a == b
        assert a != payload


class TestGlobalPlan:
    def test_default_is_null_plan(self):
        assert get_fault_plan() is NULL_PLAN
        assert not NULL_PLAN.active

    def test_null_plan_is_inert(self):
        assert NULL_PLAN.engine_job("d", "a", "c", 0.0) is NO_FAULT
        assert not NULL_PLAN.session_init("d", 0.0)
        assert NULL_PLAN.corrupt_engine_output("s", b"xy", 0.0) == (b"xy", False)

    def test_set_and_reset(self):
        plan = FaultPlan(seed=1)
        previous = set_fault_plan(plan)
        assert get_fault_plan() is plan
        set_fault_plan(None)
        assert get_fault_plan() is NULL_PLAN
        set_fault_plan(previous)

    def test_injecting_scopes_plan(self):
        with injecting(seed=4, engine_fail=1.0) as plan:
            assert get_fault_plan() is plan
            assert plan.config.engine_fail == 1.0
        assert get_fault_plan() is NULL_PLAN

    def test_injecting_accepts_config(self):
        cfg = FaultConfig(seed=9, init_fail=0.5)
        with injecting(cfg) as plan:
            assert plan.config is cfg

    def test_injecting_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with injecting(seed=4):
                raise RuntimeError("boom")
        assert get_fault_plan() is NULL_PLAN


class TestParseFaultSpec:
    def test_round_trip(self):
        cfg = parse_fault_spec("seed=42,engine_fail=1.0,stall_factor=16")
        assert cfg == FaultConfig(seed=42, engine_fail=1.0, stall_factor=16.0)

    def test_empty_tokens_skipped(self):
        assert parse_fault_spec("seed=1,,") == FaultConfig(seed=1)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="nope"):
            parse_fault_spec("nope=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("seed")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="engine_fail"):
            parse_fault_spec("engine_fail=lots")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("engine_fail=2.0")


def test_decision_is_fault():
    assert not FaultDecision().is_fault
    assert FaultDecision(KIND_FAIL).is_fault
