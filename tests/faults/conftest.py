"""Fault-suite fixtures: never leak a plan or metrics across tests."""

from __future__ import annotations

import pytest

from repro import obs
from repro.faults import NULL_PLAN, set_fault_plan


@pytest.fixture(autouse=True)
def _no_plan_leak():
    previous = set_fault_plan(NULL_PLAN)
    yield
    set_fault_plan(previous)


@pytest.fixture
def metrics():
    """A recording registry installed for the duration of the test."""
    registry = obs.MetricsRegistry()
    previous = obs.set_metrics(registry)
    yield registry
    obs.set_metrics(previous)


def counters(registry, prefix="faults"):
    return {
        k: v
        for k, v in registry.as_dict()["counters"].items()
        if k.startswith(prefix)
    }
