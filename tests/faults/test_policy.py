"""Retry/fallback policy through the PEDAL and naive pipelines.

The acceptance behaviours of the fault layer:

* probability 0.0 is a provable no-op (identical sim-time and bytes);
* engine failure probability 1.0 still completes, byte-identical, via
  SoC fallback with a nonzero ``faults.fallbacks`` counter;
* same seed + plan => identical sim trace, metrics, and outputs.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.api import PedalConfig, PedalContext
from repro.core.baseline import NaiveCompressor
from repro.dpu.device import make_device
from repro.dpu.specs import Algo, Direction
from repro.errors import DocaInitError, DocaJobError, DocaTimeoutError
from repro.faults import (
    EngineFallback,
    FaultPlan,
    RetryPolicy,
    injecting,
)
from repro.faults.policy import PHASE_RETRY, engine_job_with_retry
from repro.sim import Environment, TimeBreakdown
from tests.conftest import drive

from .conftest import counters

PAYLOAD = (b"the quick brown fox jumps over the lazy dog. " * 300)[:12288]


def pedal_roundtrip(plan=None, design="C-Engine_DEFLATE", device="bf2",
                    config=None):
    """One init+compress+decompress; returns (env.now, message, data)."""
    env = Environment()
    dev = make_device(env, device)
    ctx = PedalContext(dev, config=config)

    def run():
        drive(env, ctx.init())
        comp = drive(env, ctx.compress(PAYLOAD, design))
        dec = drive(env, ctx.decompress(comp.message))
        return env.now, comp.message, dec.data, ctx

    if plan is None:
        return run()
    with injecting(plan):
        return run()


def naive_roundtrip(plan=None, design="C-Engine_DEFLATE"):
    env = Environment()
    dev = make_device(env, "bf2")
    naive = NaiveCompressor(dev)

    def run():
        comp = drive(env, naive.compress(PAYLOAD, design))
        dec = drive(env, naive.decompress(comp.message))
        return env.now, comp.message, dec.data

    if plan is None:
        return run()
    with injecting(plan):
        return run()


class TestRetryPolicy:
    def test_defaults_valid(self):
        p = RetryPolicy()
        assert p.max_attempts >= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -1.0},
        {"backoff_multiplier": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_is_exponential(self):
        p = RetryPolicy(backoff_base=1.0, backoff_multiplier=2.0)
        assert [p.backoff(n) for n in (1, 2, 3)] == [1.0, 2.0, 4.0]


class TestZeroProbabilityNoOp:
    def test_pedal_identical_time_and_bytes(self):
        t0, m0, d0, _ = pedal_roundtrip()
        t1, m1, d1, _ = pedal_roundtrip(FaultPlan(seed=123))
        assert t1 == t0
        assert m1 == m0
        assert d1 == d0 == PAYLOAD

    def test_naive_identical_time_and_bytes(self):
        t0, m0, _ = naive_roundtrip()
        t1, m1, _ = naive_roundtrip(FaultPlan(seed=123))
        assert (t1, m1) == (t0, m0)

    def test_no_fault_metrics_emitted(self, metrics):
        pedal_roundtrip(FaultPlan(seed=1))
        assert counters(metrics) == {}


class TestEngineFailureFallback:
    def test_certain_failure_completes_via_soc(self, metrics):
        t0, m0, _, _ = pedal_roundtrip()
        t1, m1, d1, _ = pedal_roundtrip(FaultPlan(seed=2, engine_fail=1.0))
        assert d1 == PAYLOAD
        assert m1 == m0            # artifacts never depend on the engine
        assert t1 > t0             # but the failed attempts cost sim time
        got = counters(metrics)
        assert got["faults.fallbacks"] > 0
        assert got["faults.retries"] >= got["faults.fallbacks"]
        assert got["faults.injected.engine_fail"] > 0

    def test_timeout_failure_also_falls_back(self, metrics):
        _, m1, d1, _ = pedal_roundtrip(FaultPlan(seed=2, engine_stall=1.0))
        assert d1 == PAYLOAD
        assert counters(metrics)["faults.fallbacks"] > 0

    def test_degrade_slows_without_fallback(self, metrics):
        t0, m0, _, _ = pedal_roundtrip()
        t1, m1, _, _ = pedal_roundtrip(FaultPlan(seed=2, engine_degrade=1.0))
        assert m1 == m0
        assert t1 > t0
        got = counters(metrics)
        assert got["faults.injected.engine_degrade"] > 0
        assert "faults.fallbacks" not in got
        assert "faults.retries" not in got

    def test_retry_then_success_below_budget(self, metrics):
        # ~50% failure with 3 attempts: some retries, artifacts intact.
        _, m1, d1, _ = pedal_roundtrip(FaultPlan(seed=6, engine_fail=0.5))
        t0, m0, _, _ = pedal_roundtrip()
        assert m1 == m0 and d1 == PAYLOAD
        assert counters(metrics).get("faults.retries", 0) > 0

    def test_naive_certain_failure(self, metrics):
        t0, m0, _ = naive_roundtrip()
        t1, m1, d1 = naive_roundtrip(FaultPlan(seed=2, engine_fail=1.0))
        assert m1 == m0 and d1 == PAYLOAD
        assert t1 > t0
        assert counters(metrics)["faults.fallbacks"] > 0

    def test_sz3_lossless_stage_falls_back(self, metrics, smooth_field):
        env = Environment()
        dev = make_device(env, "bf2")
        ctx = PedalContext(dev)
        with injecting(seed=3, engine_fail=1.0):
            drive(env, ctx.init())
            comp = drive(env, ctx.compress(smooth_field, "C-Engine_SZ3"))
            dec = drive(env, ctx.decompress(comp.message))
        assert counters(metrics)["faults.fallbacks"] > 0
        assert abs(dec.data.astype("f8") - smooth_field.astype("f8")).max() <= 1e-3


class TestCorruptionDetection:
    def test_corruption_detected_and_output_clean(self, metrics):
        _, m0, _, _ = pedal_roundtrip()
        _, m1, d1, _ = pedal_roundtrip(FaultPlan(seed=3, corrupt_output=1.0))
        assert m1 == m0            # damage never reaches the wire
        assert d1 == PAYLOAD
        got = counters(metrics)
        assert got["faults.corruptions_detected"] > 0
        assert got["faults.corruptions_detected"] == \
            got["faults.injected.corrupt_output"]
        assert got["faults.fallbacks"] > 0  # persists past the budget

    def test_occasional_corruption_retries_clean(self, metrics):
        _, m0, _, _ = pedal_roundtrip()
        _, m1, d1, _ = pedal_roundtrip(FaultPlan(seed=8, corrupt_output=0.4))
        assert m1 == m0 and d1 == PAYLOAD


class TestInitFailure:
    def test_pedal_init_gives_up_to_soc_only_context(self, metrics):
        t, m, d, ctx = pedal_roundtrip(FaultPlan(seed=4, init_fail=1.0))
        assert d == PAYLOAD
        assert not ctx.engine_available
        got = counters(metrics)
        assert got["faults.init_giveups"] == 1
        assert got["faults.fallbacks"] >= 1
        assert got["faults.injected.init_fail"] == \
            ctx.config.retry.max_attempts

    def test_pedal_transient_init_recovers(self, metrics):
        # ~50%: bring-up may need retries but usually lands engine-side.
        _, m0, _, _ = pedal_roundtrip()
        _, m1, d1, ctx = pedal_roundtrip(FaultPlan(seed=40, init_fail=0.5))
        assert m1 == m0 and d1 == PAYLOAD

    def test_doca_session_raises_and_stays_closed(self):
        from repro.doca.sdk import DocaSession

        env = Environment()
        dev = make_device(env, "bf2")
        session = DocaSession(dev)
        with injecting(seed=4, init_fail=1.0):
            with pytest.raises(DocaInitError) as excinfo:
                drive(env, session.open())
        assert not session.is_open
        assert excinfo.value.sim_seconds == dev.cal.doca_init_time
        # Charged despite failing: the bring-up walked before erroring.
        assert env.now == pytest.approx(dev.cal.doca_init_time)

    def test_naive_init_giveup_is_per_operation(self, metrics):
        t0, m0, _ = naive_roundtrip()
        _, m1, d1 = naive_roundtrip(FaultPlan(seed=4, init_fail=1.0))
        assert m1 == m0 and d1 == PAYLOAD
        # Both compress and decompress gave up independently.
        assert counters(metrics)["faults.init_giveups"] == 2


class TestDeterminism:
    def test_identical_runs_identical_everything(self):
        plan_kwargs = dict(seed=99, engine_fail=0.3, engine_stall=0.2,
                           corrupt_output=0.3, init_fail=0.3)
        reg_a = obs.MetricsRegistry()
        prev = obs.set_metrics(reg_a)
        try:
            a = pedal_roundtrip(FaultPlan(**plan_kwargs))
        finally:
            obs.set_metrics(prev)
        reg_b = obs.MetricsRegistry()
        prev = obs.set_metrics(reg_b)
        try:
            b = pedal_roundtrip(FaultPlan(**plan_kwargs))
        finally:
            obs.set_metrics(prev)
        assert a[0] == b[0]                       # sim clock
        assert a[1] == b[1] and a[2] == b[2]      # bytes
        assert reg_a.as_dict() == reg_b.as_dict() # every counter/histogram

    def test_identical_traces(self):
        def traced():
            tracer = obs.Tracer()
            prev = obs.set_tracer(tracer)
            try:
                pedal_roundtrip(FaultPlan(seed=7, engine_fail=0.5))
            finally:
                obs.set_tracer(prev)
            return [
                (s.name, s.sim_start, s.sim_end, dict(s.attrs))
                for s in tracer.spans
            ]

        assert traced() == traced()


class TestPolicyDriver:
    """engine_job_with_retry in isolation."""

    def test_raw_engine_errors_surface_without_policy(self):
        env = Environment()
        dev = make_device(env, "bf2")
        with injecting(seed=1, engine_fail=1.0):
            with pytest.raises(DocaJobError) as excinfo:
                drive(env, dev.cengine.submit(Algo.DEFLATE,
                                              Direction.COMPRESS, 4096))
        assert excinfo.value.sim_seconds > 0
        with injecting(seed=1, engine_stall=1.0):
            with pytest.raises(DocaTimeoutError):
                drive(env, dev.cengine.submit(Algo.DEFLATE,
                                              Direction.COMPRESS, 4096))

    def test_fallback_after_exact_budget(self, metrics):
        env = Environment()
        dev = make_device(env, "bf2")
        breakdown = TimeBreakdown()
        policy = RetryPolicy(max_attempts=4)
        with injecting(seed=1, engine_fail=1.0):
            with pytest.raises(EngineFallback) as excinfo:
                drive(env, engine_job_with_retry(
                    dev, Algo.DEFLATE, Direction.COMPRESS, 4096,
                    policy, breakdown, "phase"))
        assert excinfo.value.attempts == 4
        assert counters(metrics)["faults.retries"] == 4
        assert breakdown.get("phase") > 0          # burned engine time
        assert breakdown.get(PHASE_RETRY) > 0      # backoff waits

    def test_failed_attempt_time_charged_to_phase(self):
        env = Environment()
        dev = make_device(env, "bf2")
        breakdown = TimeBreakdown()
        nominal = drive(env, dev.cengine.submit(Algo.DEFLATE,
                                                Direction.COMPRESS, 4096))
        with injecting(seed=1, engine_fail=1.0, fail_latency_fraction=0.5):
            with pytest.raises(EngineFallback):
                drive(env, engine_job_with_retry(
                    dev, Algo.DEFLATE, Direction.COMPRESS, 4096,
                    RetryPolicy(max_attempts=2), breakdown, "phase"))
        assert breakdown.get("phase") == pytest.approx(2 * 0.5 * nominal)

    def test_engine_fallback_never_escapes_pipelines(self):
        # Even at 100% failure the public APIs raise nothing.
        _, _, d, _ = pedal_roundtrip(FaultPlan(
            seed=5, engine_fail=0.8, engine_stall=0.2, corrupt_output=1.0,
            init_fail=0.5))
        assert d == PAYLOAD

    def test_doca_job_errors_counter(self, metrics):
        from repro.doca.jobs import submit_job
        from repro.doca.sdk import DocaSession

        env = Environment()
        dev = make_device(env, "bf2")
        session = DocaSession(dev)
        drive(env, session.open())
        inventory, _ = drive(env, session.create_inventory())
        buf = drive(env, inventory.map_buffer(4096))
        with injecting(seed=1, engine_fail=1.0):
            with pytest.raises(DocaJobError):
                drive(env, submit_job(session, Algo.DEFLATE,
                                      Direction.COMPRESS, buf))
        assert metrics.as_dict()["counters"]["doca.job_errors"] == 1


class TestConfigKnobs:
    def test_custom_retry_policy_via_pedal_config(self, metrics):
        config = PedalConfig(retry=RetryPolicy(max_attempts=1))
        pedal_roundtrip(FaultPlan(seed=2, engine_fail=1.0), config=config)
        got = counters(metrics)
        # One attempt per engine job: every retry immediately falls back.
        assert got["faults.retries"] == got["faults.fallbacks"]
