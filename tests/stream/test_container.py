"""RST1 container format: encoders, the pull-based parser, violations."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.dpu.specs import Algo
from repro.errors import StreamCorruptError
from repro.stream import (
    ALGO_BY_ID,
    ALGO_IDS,
    FRAME_DATA,
    FRAME_END,
    FRAME_HEADER_BYTES,
    MAGIC,
    STREAM_HEADER_BYTES,
    VERSION,
    FrameParser,
    encode_data_frame,
    encode_end_frame,
    encode_stream_header,
)


def _container(chunks: "list[bytes]", chunk_bytes: int = 64) -> bytes:
    """Hand-rolled container whose "compressed" payloads are the raw
    chunks themselves (the parser never decodes payloads)."""
    out = bytearray(encode_stream_header(Algo.DEFLATE, chunk_bytes))
    crc = 0
    total = 0
    for chunk in chunks:
        out += encode_data_frame(chunk, len(chunk), zlib.crc32(chunk))
        crc = zlib.crc32(chunk, crc)
        total += len(chunk)
    out += encode_end_frame(total, crc)
    return bytes(out)


class TestEncoders:
    def test_stream_header_layout(self):
        blob = encode_stream_header(Algo.LZ4, 4096)
        assert len(blob) == STREAM_HEADER_BYTES == 12
        magic, version, algo_id, flags, reserved, chunk = struct.unpack(
            "<4sBBBBI", blob
        )
        assert magic == MAGIC and version == VERSION
        assert ALGO_BY_ID[algo_id] is Algo.LZ4
        assert flags == reserved == 0 and chunk == 4096

    def test_all_streamable_algos_have_distinct_ids(self):
        assert sorted(ALGO_IDS.values()) == sorted(set(ALGO_IDS.values()))
        assert {ALGO_BY_ID[i] for i in ALGO_IDS.values()} == set(ALGO_IDS)

    def test_header_rejects_non_streamable_algo(self):
        with pytest.raises(StreamCorruptError):
            encode_stream_header(Algo.SZ3, 4096)

    @pytest.mark.parametrize("chunk_bytes", [0, -1, 2**32])
    def test_header_rejects_bad_chunk_bytes(self, chunk_bytes):
        with pytest.raises(StreamCorruptError):
            encode_stream_header(Algo.DEFLATE, chunk_bytes)

    def test_data_frame_layout(self):
        blob = encode_data_frame(b"pay", 100, 0xDEAD)
        kind, comp_len, raw_len, crc = struct.unpack_from("<BIII", blob)
        assert kind == FRAME_DATA
        assert (comp_len, raw_len, crc) == (3, 100, 0xDEAD)
        assert blob[FRAME_HEADER_BYTES:] == b"pay"

    def test_data_frame_rejects_zero_raw_len(self):
        # Zero-length data frames are never produced (the flush-after-
        # empty-feed contract); the encoder enforces it at the source.
        with pytest.raises(StreamCorruptError):
            encode_data_frame(b"x", 0, 0)

    def test_data_frame_rejects_empty_payload(self):
        with pytest.raises(StreamCorruptError):
            encode_data_frame(b"", 1, 0)

    def test_end_frame_layout(self):
        blob = encode_end_frame(12345, 0xBEEF)
        assert len(blob) == FRAME_HEADER_BYTES == 13
        kind, comp_len, raw_len, crc = struct.unpack("<BIII", blob)
        assert kind == FRAME_END
        assert (comp_len, raw_len, crc) == (0, 12345, 0xBEEF)

    def test_end_frame_rejects_out_of_range_total(self):
        with pytest.raises(StreamCorruptError):
            encode_end_frame(2**32, 0)


class TestParser:
    def test_whole_container_one_feed(self):
        blob = _container([b"aaaa", b"bb"])
        parser = FrameParser()
        frames = parser.feed(blob)
        assert parser.finished
        assert [f.is_end for f in frames] == [False, False, True]
        assert [f.payload for f in frames[:-1]] == [b"aaaa", b"bb"]
        assert frames[-1].raw_len == 6
        assert parser.frames_parsed == 3
        assert parser.pending_bytes == 0

    def test_byte_at_a_time_equals_one_shot(self):
        blob = _container([b"hello", b"world!"])
        one_shot = FrameParser().feed(blob)
        parser = FrameParser()
        dribbled = []
        for i in range(len(blob)):
            dribbled += parser.feed(blob[i:i + 1])
        assert parser.finished
        assert dribbled == one_shot

    def test_header_parsed_lazily(self):
        blob = _container([b"x"])
        parser = FrameParser()
        parser.feed(blob[:STREAM_HEADER_BYTES - 1])
        assert parser.header is None
        parser.feed(blob[STREAM_HEADER_BYTES - 1:STREAM_HEADER_BYTES])
        assert parser.header is not None
        assert parser.header.algo is Algo.DEFLATE
        assert parser.header.chunk_bytes == 64

    def test_pending_bytes_bounded_by_one_frame(self):
        blob = _container([b"q" * 40])
        parser = FrameParser()
        for i in range(len(blob)):
            parser.feed(blob[i:i + 1])
            assert parser.pending_bytes <= FRAME_HEADER_BYTES + 40

    def test_feed_after_finish_is_noop_for_empty_data(self):
        parser = FrameParser()
        parser.feed(_container([]))
        assert parser.feed(b"") == []


class TestViolations:
    """Every format violation is a typed error at the earliest
    proving byte — never a hang, never a silent skip."""

    def _feed(self, blob: bytes):
        return FrameParser().feed(blob)

    def test_bad_magic(self):
        blob = bytearray(_container([b"x"]))
        blob[0] ^= 0xFF
        with pytest.raises(StreamCorruptError, match="magic"):
            self._feed(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(_container([b"x"]))
        blob[4] = 99
        with pytest.raises(StreamCorruptError, match="version"):
            self._feed(bytes(blob))

    def test_unknown_algo_id(self):
        blob = bytearray(_container([b"x"]))
        blob[5] = 0xEE
        with pytest.raises(StreamCorruptError, match="algo id"):
            self._feed(bytes(blob))

    @pytest.mark.parametrize("offset", [6, 7])
    def test_nonzero_flags_or_reserved(self, offset):
        blob = bytearray(_container([b"x"]))
        blob[offset] = 1
        with pytest.raises(StreamCorruptError, match="flags/reserved"):
            self._feed(bytes(blob))

    def test_zero_chunk_bytes_header(self):
        blob = bytearray(_container([b"x"]))
        blob[8:12] = b"\x00\x00\x00\x00"
        with pytest.raises(StreamCorruptError, match="chunk_bytes"):
            self._feed(bytes(blob))

    def test_unknown_frame_kind(self):
        blob = bytearray(_container([b"x"]))
        blob[STREAM_HEADER_BYTES] = 0x7F
        with pytest.raises(StreamCorruptError, match="frame kind"):
            self._feed(bytes(blob))

    def test_zero_length_data_payload(self):
        blob = bytearray(encode_stream_header(Algo.DEFLATE, 64))
        blob += struct.pack("<BIII", FRAME_DATA, 0, 1, 0)
        with pytest.raises(StreamCorruptError, match="zero-length"):
            self._feed(bytes(blob))

    def test_zero_raw_len_data_frame(self):
        blob = bytearray(encode_stream_header(Algo.DEFLATE, 64))
        blob += struct.pack("<BIII", FRAME_DATA, 1, 0, 0) + b"p"
        with pytest.raises(StreamCorruptError, match="raw_len"):
            self._feed(bytes(blob))

    def test_raw_len_above_chunk_bytes(self):
        blob = bytearray(encode_stream_header(Algo.DEFLATE, 64))
        blob += struct.pack("<BIII", FRAME_DATA, 1, 65, 0) + b"p"
        with pytest.raises(StreamCorruptError, match="raw_len"):
            self._feed(bytes(blob))

    def test_end_frame_with_payload_length(self):
        blob = bytearray(encode_stream_header(Algo.DEFLATE, 64))
        blob += struct.pack("<BIII", FRAME_END, 4, 0, 0)
        with pytest.raises(StreamCorruptError, match="end frame"):
            self._feed(bytes(blob))

    def test_trailing_bytes_same_feed(self):
        with pytest.raises(StreamCorruptError, match="trailing"):
            self._feed(_container([b"x"]) + b"garbage")

    def test_trailing_bytes_later_feed(self):
        parser = FrameParser()
        parser.feed(_container([b"x"]))
        with pytest.raises(StreamCorruptError, match="trailing"):
            parser.feed(b"g")

    def test_oversized_comp_len_is_truncation_not_hang(self):
        # A corrupt comp_len pointing past the end of input cannot make
        # the parser block: it just never completes the frame.
        blob = bytearray(_container([b"x" * 30]))
        blob[STREAM_HEADER_BYTES + 1:STREAM_HEADER_BYTES + 5] = struct.pack(
            "<I", 2**30
        )
        parser = FrameParser()
        assert parser.feed(bytes(blob)) == []
        assert not parser.finished
        assert parser.pending_bytes == len(blob) - STREAM_HEADER_BYTES
