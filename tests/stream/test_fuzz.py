"""Satellite fuzz suite: split-point invariance and corruption sweeps.

* **Split-point invariance** — feeding the same bytes at *any* cut
  points yields the identical container (hypothesis-driven, plus a
  seeded sweep whose base seed rotates via ``REPRO_FUZZ_SEED`` like
  the codec round-trip suites).
* **Corruption sweeps** — every truncation point raises a typed
  :class:`~repro.errors.StreamError` (at feed or at flush) and every
  single-bit flip either raises one or decodes *byte-identical*: the
  format has a few genuine don't-care bits (the header's
  ``chunk_bytes`` is only an upper bound, and DEFLATE's final byte
  carries padding bits), but silent *corruption* is impossible.
  Nothing ever hangs: the parser is pull-based, so corrupt lengths
  can only starve it, and starving is reported as truncation at
  flush.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpu.specs import Algo
from repro.errors import StreamError
from repro.stream import (
    Compressor,
    Decompressor,
    StreamConfig,
    stream_compress,
    stream_decompress,
)

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))

def _feed_at(data: bytes, cuts: "list[int]", config: StreamConfig) -> bytes:
    comp = Compressor(config)
    out = bytearray()
    prev = 0
    for cut in sorted(cuts) + [len(data)]:
        out += comp.feed(data[prev:cut])
        prev = cut
    return bytes(out + comp.flush())


class TestSplitPointInvariance:
    @given(
        data=st.binary(max_size=4096),
        cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_split_equals_one_shot(self, data, cuts):
        config = StreamConfig(chunk_bytes=512)
        cuts = [min(c, len(data)) for c in cuts]
        assert _feed_at(data, cuts, config) == stream_compress(data, config)

    @pytest.mark.parametrize("algo", [Algo.DEFLATE, Algo.AC, Algo.LZ4])
    @pytest.mark.parametrize("case", range(8))
    def test_seeded_random_splits(self, algo, case):
        rng = np.random.default_rng(BASE_SEED + case * 7919)
        size = int(rng.integers(0, 6000))
        data = rng.integers(0, 17, size=size, dtype=np.uint8).tobytes()
        n_cuts = int(rng.integers(0, 10))
        cuts = sorted(int(c) for c in rng.integers(0, size + 1, size=n_cuts))
        config = StreamConfig(algo=algo, chunk_bytes=int(rng.integers(64, 2048)))
        blob = _feed_at(data, cuts, config)
        assert blob == stream_compress(data, config)
        assert stream_decompress(blob) == data

    @given(data=st.binary(max_size=2048))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_arbitrary_bytes(self, data):
        blob = stream_compress(data, StreamConfig(chunk_bytes=256))
        assert stream_decompress(blob) == data


def _decode_all_at_once(blob: bytes) -> bytes:
    dec = Decompressor()
    out = dec.feed(blob)
    dec.flush()
    return out


def _reference_blob() -> "tuple[bytes, bytes]":
    rng = np.random.default_rng(BASE_SEED)
    data = rng.choice(
        np.frombuffer(b"stream\x00\x00", dtype=np.uint8), size=700
    ).tobytes()
    return data, stream_compress(data, StreamConfig(chunk_bytes=256))


class TestTruncationSweep:
    def test_every_prefix_raises_typed_error(self):
        _, blob = _reference_blob()
        for cut in range(len(blob)):
            dec = Decompressor()
            with pytest.raises(StreamError):
                dec.feed(blob[:cut])
                dec.flush()  # incomplete containers die here, typed

    def test_truncation_mid_end_frame(self):
        _, blob = _reference_blob()
        dec = Decompressor()
        dec.feed(blob[:-5])
        assert not dec.finished
        with pytest.raises(StreamError):
            dec.flush()


class TestBitFlipSweep:
    def test_every_bit_flip_detected_or_harmless(self):
        data, blob = _reference_blob()
        silent_corruption = []
        detected = 0
        for pos in range(len(blob)):
            for bit in range(8):
                corrupt = bytearray(blob)
                corrupt[pos] ^= 1 << bit
                try:
                    decoded = _decode_all_at_once(bytes(corrupt))
                except StreamError:
                    detected += 1
                    continue
                if decoded != data:
                    silent_corruption.append((pos, bit))
        assert silent_corruption == []
        # Nearly every flip lands in a checked field or a CRC-covered
        # payload; only genuine don't-care bits (chunk_bytes upper
        # bound, DEFLATE padding) may pass, and they decode identical.
        assert detected >= 0.98 * len(blob) * 8

    def test_flip_never_hangs_or_leaks_untyped(self):
        """Corrupt containers fail with StreamError (or subclass),
        never a bare struct/zlib/Value error escaping the decoder."""
        _, blob = _reference_blob()
        rng = np.random.default_rng(BASE_SEED + 1)
        for _ in range(64):
            pos = int(rng.integers(0, len(blob)))
            corrupt = bytearray(blob)
            corrupt[pos] = int(rng.integers(0, 256))
            try:
                _decode_all_at_once(bytes(corrupt))
            except StreamError:
                pass  # typed, expected
