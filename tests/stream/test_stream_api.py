"""Streaming Compressor/Decompressor: round-trips, state machine,
bounded buffering, and the flush-ordering contract for empty input.

Split-point invariance ("feed the same bytes at any cut points, get
the identical container") is the satellite-4 fuzz suite's job
(:mod:`tests.stream.test_fuzz`); here we pin the deterministic
contracts.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dpu.specs import Algo
from repro.errors import (
    OutputOverflowError,
    StreamError,
    StreamStateError,
    StreamTruncatedError,
)
from repro.stream import (
    STREAM_HEADER_BYTES,
    Compressor,
    Decompressor,
    StreamConfig,
    stream_compress,
    stream_decompress,
)

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))

ALGOS = [Algo.DEFLATE, Algo.AC, Algo.LZ4]


def _payload(size: int, seed_salt: int = 0) -> bytes:
    rng = np.random.default_rng(BASE_SEED + seed_salt)
    # Compressible-but-structured: low-cardinality symbols with runs.
    return rng.choice(
        np.frombuffer(b"abcdef\x00\x00", dtype=np.uint8), size=size
    ).tobytes()


class TestRoundTrip:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize(
        "size", [0, 1, 1023, 1024, 1025, 5000]
    )
    def test_one_shot(self, algo, size):
        config = StreamConfig(algo=algo, chunk_bytes=1024)
        data = _payload(size)
        blob = stream_compress(data, config)
        assert stream_decompress(blob) == data

    @pytest.mark.parametrize("algo", ALGOS)
    def test_incremental_equals_one_shot(self, algo):
        config = StreamConfig(algo=algo, chunk_bytes=512)
        data = _payload(3000, seed_salt=1)
        comp = Compressor(config)
        blob = comp.feed(data[:100]) + comp.feed(data[100:2049]) \
            + comp.feed(data[2049:]) + comp.flush()
        assert blob == stream_compress(data, config)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_incremental_decode(self, algo):
        config = StreamConfig(algo=algo, chunk_bytes=512)
        data = _payload(2000, seed_salt=2)
        blob = stream_compress(data, config)
        dec = Decompressor()
        out = b"".join(dec.feed(blob[i:i + 7]) for i in range(0, len(blob), 7))
        dec.flush()
        assert out == data
        assert dec.finished
        assert dec.algo is algo


class TestFlushOrdering:
    """Satellite: flush after an empty (or absent) feed must emit a
    well-formed header + terminator and never a zero-length frame."""

    def test_flush_with_no_feed(self):
        comp = Compressor()
        blob = comp.flush()
        assert len(blob) == STREAM_HEADER_BYTES + 13  # header + end only
        assert comp.chunks_emitted == 0
        assert stream_decompress(blob) == b""

    def test_flush_after_empty_feed(self):
        comp = Compressor()
        assert comp.feed(b"") == b""  # pure no-op: not even the header
        blob = comp.flush()
        assert stream_decompress(blob) == b""
        assert blob == stream_compress(b"")

    def test_empty_feed_between_chunks_changes_nothing(self):
        config = StreamConfig(chunk_bytes=256)
        data = _payload(600, seed_salt=3)
        comp = Compressor(config)
        blob = comp.feed(data[:300])
        assert comp.feed(b"") == b""
        blob += comp.feed(data[300:]) + comp.flush()
        assert blob == stream_compress(data, config)

    def test_one_byte_payload(self):
        blob = stream_compress(b"\x42")
        assert stream_decompress(blob) == b"\x42"

    @pytest.mark.parametrize("algo", ALGOS)
    def test_empty_and_tiny_across_algos(self, algo):
        config = StreamConfig(algo=algo)
        for data in (b"", b"z"):
            assert stream_decompress(stream_compress(data, config)) == data


class TestStateMachine:
    def test_feed_after_flush(self):
        comp = Compressor()
        comp.flush()
        assert comp.finished
        with pytest.raises(StreamStateError):
            comp.feed(b"x")

    def test_double_flush(self):
        comp = Compressor()
        comp.flush()
        with pytest.raises(StreamStateError):
            comp.flush()

    def test_decompressor_feed_after_flush(self):
        dec = Decompressor()
        dec.feed(stream_compress(b"hi"))
        dec.flush()
        with pytest.raises(StreamStateError):
            dec.feed(b"x")

    def test_decompressor_double_flush(self):
        dec = Decompressor()
        dec.feed(stream_compress(b"hi"))
        dec.flush()
        with pytest.raises(StreamStateError):
            dec.flush()

    def test_decompressor_flush_on_incomplete(self):
        blob = stream_compress(_payload(100))
        dec = Decompressor()
        dec.feed(blob[:-1])
        with pytest.raises(StreamTruncatedError):
            dec.flush()


class TestBoundedState:
    def test_compressor_buffers_less_than_one_chunk(self):
        config = StreamConfig(chunk_bytes=128)
        comp = Compressor(config)
        rng = np.random.default_rng(BASE_SEED)
        fed = 0
        while fed < 2000:
            piece = _payload(int(rng.integers(1, 300)), seed_salt=fed)
            comp.feed(piece)
            fed += len(piece)
            assert comp.buffered_bytes < config.chunk_bytes
        comp.flush()
        assert comp.buffered_bytes == 0

    def test_chunks_emitted_counts_data_frames(self):
        config = StreamConfig(chunk_bytes=100)
        comp = Compressor(config)
        comp.feed(_payload(250))
        assert comp.chunks_emitted == 2  # two full chunks
        comp.flush()
        assert comp.chunks_emitted == 3  # plus the 50-byte tail

    def test_decompressor_max_output(self):
        data = _payload(4096, seed_salt=9)
        blob = stream_compress(data, StreamConfig(chunk_bytes=512))
        dec = Decompressor(max_output=1000)
        with pytest.raises(OutputOverflowError):
            dec.feed(blob)
        assert stream_decompress(blob, max_output=len(data)) == data


class TestConfigValidation:
    def test_rejects_non_streamable_algo(self):
        with pytest.raises(StreamError):
            StreamConfig(algo=Algo.SZ3)

    @pytest.mark.parametrize("chunk_bytes", [0, -5, 2**32])
    def test_rejects_bad_chunk_bytes(self, chunk_bytes):
        with pytest.raises(StreamError):
            StreamConfig(chunk_bytes=chunk_bytes)
