"""DOCA job submission: compress/decompress on the C-Engine."""

from __future__ import annotations

from typing import Generator

from repro.doca.buffers import DocaBuffer
from repro.doca.sdk import DocaSession
from repro.dpu.specs import Algo, Direction
from repro.errors import DocaBufferError, DocaTransientError
from repro.obs import get_metrics

__all__ = ["submit_job"]


def submit_job(
    session: DocaSession,
    algo: Algo,
    direction: Direction,
    src: DocaBuffer,
    nbytes: int | None = None,
) -> Generator:
    """Submit one compression job against a mapped source buffer.

    ``nbytes`` defaults to the full buffer size.  Queues on the
    C-Engine (single-server FIFO) and returns the job's execution
    duration.  Raises :class:`~repro.errors.DocaCapabilityError` when the
    device does not support (algo, direction) — callers such as PEDAL
    check :meth:`CEngine.supports` first and fall back to the SoC.

    Under an installed fault plan (:mod:`repro.faults`) the engine may
    raise :class:`~repro.errors.DocaJobError` or
    :class:`~repro.errors.DocaTimeoutError`; direct DOCA users see the
    raw error (counted as ``doca.job_errors``) — retry/fallback is the
    PEDAL policy layer's job, not the SDK's.
    """
    session.require_open()
    if not src.is_live:
        raise DocaBufferError("source buffer has been released")
    size = src.nbytes if nbytes is None else nbytes
    if size < 0 or size > src.nbytes:
        raise DocaBufferError(
            f"job size {size} outside mapped buffer of {src.nbytes} bytes"
        )
    metrics = get_metrics()
    if metrics.recording:
        metrics.inc(f"doca.jobs.{algo.value}.{direction.value}")
    try:
        seconds = yield from session.device.cengine.submit(algo, direction, size)
    except DocaTransientError:
        if metrics.recording:
            metrics.inc("doca.job_errors")
        raise
    return seconds
