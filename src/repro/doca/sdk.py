"""DOCA session lifecycle."""

from __future__ import annotations

from typing import Generator, Iterable

from repro.doca.buffers import BufInventory
from repro.dpu.device import BlueFieldDPU
from repro.errors import DocaInitError, DocaNotInitializedError
from repro.faults.plan import get_fault_plan
from repro.obs import device_span

__all__ = ["DocaSession"]


class DocaSession:
    """A device context + work queue, as created by ``doca_*_create``.

    Opening the session charges the one-time DOCA initialisation cost
    (device/context/workq creation, engine bring-up).  All job
    submission requires an open session.
    """

    def __init__(self, device: BlueFieldDPU) -> None:
        self.device = device
        self._open = False
        self.init_seconds: float | None = None

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> Generator:
        """Initialise DOCA (simulated); returns the init duration.

        Under an installed fault plan bring-up may fail: the full init
        time is still charged (the hardware walked the bring-up before
        erroring) and :class:`~repro.errors.DocaInitError` is raised
        with the session left closed, so callers can retry.
        """
        if self._open:
            return 0.0
        seconds = self.device.cal.doca_init_time
        plan = get_fault_plan()
        fail = plan.active and plan.session_init(
            self.device.name, self.device.env.now
        )
        with device_span("doca.init", self.device, device=self.device.name) as span:
            if fail:
                span.set_attr("fault", "init_fail")
            yield self.device.env.timeout(seconds)
        if fail:
            raise DocaInitError(
                f"DOCA bring-up failed on {self.device.name}",
                sim_seconds=seconds,
            )
        self._open = True
        self.init_seconds = seconds
        return seconds

    def create_inventory(self) -> Generator:
        """Create a buffer inventory bound to this session.

        Returns ``(inventory, seconds)`` — inventory creation carries
        the fixed buffer-infrastructure cost.
        """
        self.require_open()
        seconds = self.device.cal.buffer_fixed_time
        with device_span("buffer.prep", self.device, what="inventory"):
            yield self.device.env.timeout(seconds)
        return BufInventory(self), seconds

    def submit_many(
        self,
        jobs: Iterable,
        depth: int = 2,
        config=None,
    ) -> Generator:
        """Batch-submit jobs through a pipelined work queue.

        ``jobs`` is an iterable of :class:`~repro.sched.EngineJob` (or
        ``(algo, direction, nbytes)`` tuples).  The jobs flow through a
        bounded-depth pipeline (:class:`~repro.sched.PipelineScheduler`)
        that overlaps buffer mapping, C-Engine execution, and result
        drain across consecutive jobs; ``depth`` bounds how many are in
        flight at once.  Returns the :class:`~repro.sched.JobOutcome`
        list in submission order.

        SDK semantics are preserved: a job the capability matrix
        rejects raises :class:`~repro.errors.DocaCapabilityError` up
        front, and a job that exhausts its retry budget under an
        installed fault plan surfaces the final DOCA error — SoC
        fallback is the PEDAL policy layer's job.  Pass a
        :class:`~repro.sched.SchedConfig` as ``config`` to override
        (e.g. ``soc_fallback=True``).
        """
        from repro.sched import EngineJob, PipelineScheduler, SchedConfig

        self.require_open()
        if config is None:
            config = SchedConfig(depth=depth, soc_fallback=False)
        specs = [
            job if isinstance(job, EngineJob) else EngineJob(*job)
            for job in jobs
        ]
        scheduler = PipelineScheduler(self.device, config)
        outcomes = yield from scheduler.submit_many(specs)
        return outcomes

    def require_open(self) -> None:
        if not self._open:
            raise DocaNotInitializedError(
                "DOCA session is not open; call open() first"
            )

    def close(self) -> None:
        """Tear down the session (instantaneous in the model)."""
        self._open = False
