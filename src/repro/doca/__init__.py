"""A DOCA-SDK-shaped interface over the simulated C-Engine.

Mirrors the NVIDIA DOCA workflow the paper's PEDAL implementation uses:

1. open a session (device context + work queue) — *expensive*;
2. create a buffer inventory and DMA-map buffers — *expensive*;
3. submit compress/decompress jobs referencing mapped buffers — cheap.

Steps 1–2 are what consume ~90-94% of a naive per-operation flow
(paper §III-C / Fig. 7); PEDAL performs them once inside ``PEDAL_Init``.

Public API
----------
:class:`DocaSession`, :class:`BufInventory`, :class:`DocaBuffer`,
:func:`submit_job`.
"""

from repro.doca.buffers import BufInventory, DocaBuffer
from repro.doca.jobs import submit_job
from repro.doca.sdk import DocaSession

__all__ = ["BufInventory", "DocaBuffer", "DocaSession", "submit_job"]
