"""DOCA buffer inventory and DMA-mapped buffers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import DocaBufferError

if TYPE_CHECKING:
    from repro.doca.sdk import DocaSession

__all__ = ["BufInventory", "DocaBuffer"]


class DocaBuffer:
    """A DMA-mapped region the C-Engine can read/write."""

    __slots__ = ("inventory", "nbytes", "map_seconds", "_live")

    def __init__(self, inventory: "BufInventory", nbytes: int, map_seconds: float) -> None:
        self.inventory = inventory
        self.nbytes = nbytes
        self.map_seconds = map_seconds
        self._live = True

    @property
    def is_live(self) -> bool:
        return self._live

    def release(self) -> None:
        """Unmap (instantaneous in the model; the cost was at map time)."""
        if self._live:
            self._live = False
            self.inventory._release(self)


class BufInventory:
    """Pool of DMA-mappable buffers bound to a session."""

    def __init__(self, session: "DocaSession") -> None:
        self.session = session
        self._buffers: list[DocaBuffer] = []

    @property
    def mapped_bytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers)

    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    def map_buffer(self, nbytes: int) -> Generator:
        """Allocate + register ``nbytes``; returns the :class:`DocaBuffer`.

        This is the per-buffer portion of "buffer preparation": a plain
        allocation followed by DMA registration at the (slow) map
        bandwidth.
        """
        if nbytes < 0:
            raise DocaBufferError(f"negative buffer size {nbytes}")
        self.session.require_open()
        memory = self.session.device.memory
        seconds = memory.alloc_time(nbytes) + memory.dma_map_time(nbytes)
        yield self.session.device.env.timeout(seconds)
        buf = DocaBuffer(self, nbytes, seconds)
        self._buffers.append(buf)
        return buf

    def _release(self, buf: DocaBuffer) -> None:
        try:
            self._buffers.remove(buf)
        except ValueError:
            raise DocaBufferError("buffer does not belong to this inventory")
