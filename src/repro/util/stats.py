"""Byte-level statistics used across the library.

The DEFLATE compressor uses :func:`byte_entropy` as part of its
stored-vs-compressed block heuristic, and the synthetic dataset
generators use it to validate that generated corpora land in the
compressibility band the paper's datasets occupy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["byte_histogram", "byte_entropy", "compression_ratio"]


def byte_histogram(data: bytes | bytearray | memoryview) -> np.ndarray:
    """Return the 256-bin histogram of byte values as ``int64``."""
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.bincount(buf, minlength=256).astype(np.int64)


def byte_entropy(data: bytes | bytearray | memoryview) -> float:
    """Shannon entropy of the byte distribution, in bits per byte.

    Returns 0.0 for empty input.  The value bounds the best achievable
    order-0 compression: ``entropy / 8`` is the order-0 minimum size
    fraction.
    """
    hist = byte_histogram(data)
    total = int(hist.sum())
    if total == 0:
        return 0.0
    p = hist[hist > 0] / total
    return float(-(p * np.log2(p)).sum())


def compression_ratio(original_size: int, compressed_size: int) -> float:
    """Paper's convention: original / compressed (larger is better)."""
    if compressed_size <= 0:
        raise ValueError("compressed_size must be positive")
    return original_size / compressed_size
