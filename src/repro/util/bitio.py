"""LSB-first bit stream I/O.

DEFLATE (RFC 1951) packs bits starting from the least-significant bit of
each output byte; Huffman codes are written most-significant-code-bit
first, which RFC 1951 expresses by storing codes bit-reversed.  This
module only deals with the raw LSB-first transport; code bit-reversal is
the concern of :mod:`repro.algorithms.huffman`.

The writer offers a numpy-vectorised bulk path
(:meth:`BitWriter.write_code_array`) because per-symbol Python calls are
the dominant cost when emitting a megabyte-scale token stream.  The
vectorized kernel combines each code into a pre-shifted 64-bit lane and
scatters whole *byte* planes with ``np.bitwise_or.at`` —
``ceil((maxlen + 7) / 8)`` passes (at most five for 32-bit codes)
instead of one pass per bit.  Its pack buffer is leased from the
host-side scratch pool (:mod:`repro.util.scratch`), so steady-state
emission does not allocate.  The scalar reference (one
:meth:`BitWriter.write_bits` call per code) is selected by
``REPRO_SCALAR_KERNELS`` / ``force_kernel_mode`` and is byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError
from repro.util.kernels import scalar_kernels
from repro.util.scratch import get_scratch_pool

__all__ = ["BitWriter", "BitReader", "reverse_bits"]


def reverse_bits(value: int, nbits: int) -> int:
    """Reverse the low ``nbits`` bits of ``value``.

    Used to convert canonical (MSB-first) Huffman codes into DEFLATE's
    LSB-first wire order.
    """
    out = 0
    for _ in range(nbits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


class BitWriter:
    """Accumulates an LSB-first bit stream into a growable byte buffer."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0  # pending bits, LSB = next bit on the wire
        self._nbits = 0

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far (including pending bits)."""
        return len(self._out) * 8 + self._nbits

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, LSB first."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return
        if value >> nbits:
            raise ValueError(f"value 0x{value:x} does not fit in {nbits} bits")
        self._acc |= value << self._nbits
        self._nbits += nbits
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def align_to_byte(self) -> None:
        """Pad with zero bits up to the next byte boundary."""
        if self._nbits:
            self._out.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0

    def write_bytes(self, data: bytes | bytearray | memoryview) -> None:
        """Byte-align, then append raw bytes (used for stored blocks)."""
        self.align_to_byte()
        self._out += data

    def write_code_array(self, codes: np.ndarray, lengths: np.ndarray) -> None:
        """Vectorised bulk append of many variable-length codes.

        Parameters
        ----------
        codes:
            Integer array; entry ``i`` holds the bits of code ``i`` already
            in LSB-first wire order.  Bits above ``lengths[i]`` are ignored.
        lengths:
            Bit length of each code; zero-length entries are skipped.
        """
        codes = np.ascontiguousarray(codes, dtype=np.uint32)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if codes.shape != lengths.shape:
            raise ValueError("codes and lengths must have identical shapes")
        if codes.size == 0:
            return
        if scalar_kernels():
            self._write_code_array_scalar(codes, lengths)
            return
        total = int(lengths.sum())
        if total == 0:
            return
        # Bit offset of each code relative to the start of the bulk region.
        offsets = np.empty(lengths.size, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(lengths[:-1], out=offsets[1:])

        start = self._nbits  # bulk region starts after the pending bits
        nbytes = (start + total + 7) // 8
        maxlen = int(lengths.max())
        base = offsets + start

        # Byte-plane scatter: each code, pre-shifted into position within
        # its first output byte, occupies at most maxlen + 7 bits of one
        # 64-bit lane — ceil((maxlen + 7) / 8) bitwise_or.at passes total.
        # A zeroed pack buffer comes from the scratch pool (with plane
        # slack so the top, all-zero planes of short codes stay in
        # bounds) instead of a fresh allocation per block.
        live = np.flatnonzero(lengths)
        base = base[live]
        val = (codes[live].astype(np.uint64)
               & ((np.uint64(1) << lengths[live].astype(np.uint64)) - np.uint64(1)))
        val <<= (base & 7).astype(np.uint64)
        byte_idx = base >> 3
        nplanes = (maxlen + 7 + 7) // 8
        pool = get_scratch_pool()
        buf = pool.acquire(nbytes + nplanes)
        try:
            if start:
                buf[0] = self._acc & 0xFF
            for k in range(nplanes):
                plane = ((val >> np.uint64(8 * k)) & np.uint64(0xFF)).astype(np.uint8)
                np.bitwise_or.at(buf, byte_idx + k, plane)

            end_bits = (start + total) % 8
            if end_bits:
                self._out += buf[: nbytes - 1].tobytes()
                self._acc = int(buf[nbytes - 1])
                self._nbits = end_bits
            else:
                self._out += buf[:nbytes].tobytes()
                self._acc = 0
                self._nbits = 0
        finally:
            pool.release(buf)

    def _write_code_array_scalar(self, codes: np.ndarray, lengths: np.ndarray) -> None:
        """Scalar reference for :meth:`write_code_array`: one
        :meth:`write_bits` call per code, byte-identical output."""
        write = self.write_bits
        for code, nbits in zip(codes.tolist(), lengths.tolist()):
            if nbits:
                write(code & ((1 << nbits) - 1), nbits)

    def getvalue(self) -> bytes:
        """Return the stream contents, zero-padding any final partial byte."""
        if self._nbits:
            return bytes(self._out) + bytes([self._acc & 0xFF])
        return bytes(self._out)


class BitReader:
    """Reads an LSB-first bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes | bytearray | memoryview) -> None:
        self._data = bytes(data)
        self._pos = 0  # byte cursor
        self._acc = 0
        self._nbits = 0

    @property
    def bits_consumed(self) -> int:
        """Number of bits consumed from the underlying byte stream."""
        return self._pos * 8 - self._nbits

    @property
    def bytes_consumed(self) -> int:
        """Bytes consumed, rounding the current partial byte up."""
        return self._pos - (self._nbits // 8)

    def _fill(self, nbits: int) -> None:
        data = self._data
        while self._nbits < nbits:
            if self._pos >= len(data):
                raise CorruptStreamError("unexpected end of bit stream")
            self._acc |= data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8

    def read_bits(self, nbits: int) -> int:
        """Consume and return ``nbits`` bits (LSB-first)."""
        if nbits == 0:
            return 0
        self._fill(nbits)
        value = self._acc & ((1 << nbits) - 1)
        self._acc >>= nbits
        self._nbits -= nbits
        return value

    def peek_bits(self, nbits: int) -> int:
        """Return up to ``nbits`` bits without consuming them.

        Near the end of the stream fewer bits may remain; the missing high
        bits are returned as zero, matching common inflate implementations
        that over-peek into the lookup table.
        """
        data = self._data
        while self._nbits < nbits and self._pos < len(data):
            self._acc |= data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        return self._acc & ((1 << nbits) - 1)

    def skip_bits(self, nbits: int) -> None:
        """Consume ``nbits`` previously peeked bits."""
        if nbits > self._nbits:
            raise CorruptStreamError("skip beyond buffered bits")
        self._acc >>= nbits
        self._nbits -= nbits

    def align_to_byte(self) -> None:
        """Drop bits up to the next byte boundary."""
        drop = self._nbits % 8
        self._acc >>= drop
        self._nbits -= drop

    def read_bytes(self, n: int) -> bytes:
        """Byte-align, then read ``n`` raw bytes."""
        self.align_to_byte()
        # Return whole buffered bytes first.
        out = bytearray()
        while self._nbits and n:
            out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8
            n -= 1
        if n:
            if self._pos + n > len(self._data):
                raise CorruptStreamError("unexpected end of byte stream")
            out += self._data[self._pos : self._pos + n]
            self._pos += n
        return bytes(out)
