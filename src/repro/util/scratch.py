"""Host-side scratch-buffer pool for the hot codec kernels.

:mod:`repro.core.mempool` models the *device* buffer pool (DOCA
``doca_buf`` inventory, simulated clock).  This module is its host-side
counterpart: a real, wall-clock buffer-reuse pool that the vectorized
kernels draw their numpy scratch arenas from, so the per-call hot path
stops allocating (PR 8 tentpole).  ``core.mempool`` re-exports it so
both halves of the story live behind one import.

Design points:

* **Power-of-two size classes.**  An ``acquire(nbytes)`` is served from
  the smallest arena class that fits; arenas are recycled per class.
* **Zero-on-acquire.**  The returned view is zero-filled every time.  A
  pooled buffer is handed to a *different* request on reuse, and codec
  scratch regularly holds plaintext — zeroing is the invariant that no
  request can observe another request's bytes through the pool
  (enforced by ``tests/core/test_scratch_pool.py``).
* **Guarded lifecycle.**  Double release and foreign-buffer release
  raise :class:`ScratchLifecycleError` instead of silently corrupting
  the free list.
* **Thread-safe.**  One lock; the serve gateway and the parallel
  compressor share the process-global pool.

The process-global pool (:func:`get_scratch_pool`) is what the kernels
use; :class:`~repro.core.api.PedalContext`, the parallel compressor and
the serve gateway prewarm it for their expected payload sizes and
surface its stats.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "ScratchLifecycleError",
    "ScratchStats",
    "ScratchPool",
    "get_scratch_pool",
    "set_scratch_pool",
    "scratch_lease",
]

#: Smallest arena ever allocated; sub-KiB requests share one class.
MIN_CLASS_BYTES = 1024


class ScratchLifecycleError(RuntimeError):
    """A scratch buffer was released twice, or was never acquired here."""


@dataclass
class ScratchStats:
    """Counters for one :class:`ScratchPool`."""

    hits: int = 0            # acquires served from a recycled arena
    misses: int = 0          # acquires that allocated a fresh arena
    releases: int = 0
    bytes_served: int = 0    # sum of requested nbytes over all acquires
    high_water_outstanding: int = 0
    retired: int = 0         # arenas dropped because a class was full

    @property
    def acquires(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.acquires
        return self.hits / total if total else 0.0


def _size_class(nbytes: int) -> int:
    """Smallest power-of-two arena size >= max(nbytes, MIN_CLASS_BYTES)."""
    want = max(int(nbytes), MIN_CLASS_BYTES)
    return 1 << (want - 1).bit_length()


class ScratchPool:
    """Recycling pool of zeroed ``uint8`` numpy arenas."""

    def __init__(self, max_buffers_per_class: int = 8) -> None:
        if max_buffers_per_class < 1:
            raise ValueError("max_buffers_per_class must be >= 1")
        self.max_buffers_per_class = max_buffers_per_class
        self._free: "dict[int, list[np.ndarray]]" = {}
        # id(view) -> (view, arena, size_class); holding the view keeps
        # its id stable for the lifetime of the lease.
        self._outstanding: "dict[int, tuple[np.ndarray, np.ndarray, int]]" = {}
        self._lock = threading.Lock()
        self.stats = ScratchStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def acquire(self, nbytes: int) -> np.ndarray:
        """Borrow a zeroed ``uint8`` array of exactly ``nbytes`` elements.

        The returned array is a view into a pooled arena; hand it back
        with :meth:`release` (or use :meth:`lease`).  The view is
        zero-filled on every acquire — see the module docstring for why
        that is load-bearing.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        cls = _size_class(nbytes)
        with self._lock:
            free = self._free.get(cls)
            if free:
                arena = free.pop()
                self.stats.hits += 1
            else:
                arena = np.empty(cls, dtype=np.uint8)
                self.stats.misses += 1
            view = arena[:nbytes]
            view.fill(0)
            self._outstanding[id(view)] = (view, arena, cls)
            self.stats.bytes_served += nbytes
            self.stats.high_water_outstanding = max(
                self.stats.high_water_outstanding, len(self._outstanding)
            )
        return view

    def release(self, view: np.ndarray) -> None:
        """Return a borrowed view; raises on double/foreign release."""
        with self._lock:
            entry = self._outstanding.pop(id(view), None)
            if entry is None or entry[0] is not view:
                if entry is not None:  # id collision with a live lease
                    self._outstanding[id(view)] = entry
                raise ScratchLifecycleError(
                    "release of a buffer this pool does not have outstanding "
                    "(double release, or a foreign buffer)"
                )
            _, arena, cls = entry
            free = self._free.setdefault(cls, [])
            if len(free) < self.max_buffers_per_class:
                free.append(arena)
            else:
                self.stats.retired += 1
            self.stats.releases += 1

    @contextmanager
    def lease(self, nbytes: int) -> Iterator[np.ndarray]:
        """``with pool.lease(n) as buf:`` — acquire/release pairing."""
        view = self.acquire(nbytes)
        try:
            yield view
        finally:
            self.release(view)

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def prewarm(self, nbytes: int, count: int = 1) -> None:
        """Pre-populate ``count`` arenas of the class serving ``nbytes``.

        The allocations count as misses in the stats — they document
        where the arenas came from; real traffic lands hits on top.
        """
        views = [self.acquire(nbytes) for _ in range(count)]
        for view in views:
            self.release(view)

    def drain(self) -> None:
        """Drop every free arena; raises if leases are outstanding."""
        with self._lock:
            if self._outstanding:
                raise ScratchLifecycleError(
                    f"drain with {len(self._outstanding)} leases outstanding"
                )
            self._free.clear()


_global_pool = ScratchPool()
_global_lock = threading.Lock()


def get_scratch_pool() -> ScratchPool:
    """The process-global pool the vectorized kernels allocate from."""
    return _global_pool


def set_scratch_pool(pool: ScratchPool) -> ScratchPool:
    """Swap the global pool; returns the previous one (tests use this)."""
    global _global_pool
    with _global_lock:
        prev = _global_pool
        _global_pool = pool
    return prev


@contextmanager
def scratch_lease(nbytes: int) -> Iterator[np.ndarray]:
    """Lease from the process-global pool."""
    with get_scratch_pool().lease(nbytes) as view:
        yield view
