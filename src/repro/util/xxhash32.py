"""xxHash32 — the checksum used by the LZ4 frame format.

Reference: https://github.com/Cyan4973/xxHash (XXH32, little-endian).
Implemented from the published algorithm specification; verified in the
test suite against the official test vectors (e.g. ``XXH32("") == 0x02CC5D05``
with seed 0).
"""

from __future__ import annotations

import struct

__all__ = ["xxh32"]

_PRIME1 = 0x9E3779B1
_PRIME2 = 0x85EBCA77
_PRIME3 = 0xC2B2AE3D
_PRIME4 = 0x27D4EB2F
_PRIME5 = 0x165667B1
_MASK = 0xFFFFFFFF


def _rotl(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME2) & _MASK
    return (_rotl(acc, 13) * _PRIME1) & _MASK


def xxh32(data: bytes | bytearray | memoryview, seed: int = 0) -> int:
    """Compute XXH32 of ``data`` with the given ``seed``."""
    data = bytes(data)
    n = len(data)
    seed &= _MASK

    pos = 0
    if n >= 16:
        v1 = (seed + _PRIME1 + _PRIME2) & _MASK
        v2 = (seed + _PRIME2) & _MASK
        v3 = seed
        v4 = (seed - _PRIME1) & _MASK
        limit = n - 16
        unpack = struct.Struct("<4I").unpack_from
        while pos <= limit:
            l1, l2, l3, l4 = unpack(data, pos)
            v1 = _round(v1, l1)
            v2 = _round(v2, l2)
            v3 = _round(v3, l3)
            v4 = _round(v4, l4)
            pos += 16
        h = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _MASK
    else:
        h = (seed + _PRIME5) & _MASK

    h = (h + n) & _MASK

    while pos + 4 <= n:
        (lane,) = struct.unpack_from("<I", data, pos)
        h = (h + lane * _PRIME3) & _MASK
        h = (_rotl(h, 17) * _PRIME4) & _MASK
        pos += 4

    while pos < n:
        h = (h + data[pos] * _PRIME5) & _MASK
        h = (_rotl(h, 11) * _PRIME1) & _MASK
        pos += 1

    h ^= h >> 15
    h = (h * _PRIME2) & _MASK
    h ^= h >> 13
    h = (h * _PRIME3) & _MASK
    h ^= h >> 16
    return h
