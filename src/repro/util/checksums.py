"""From-scratch CRC-32 and Adler-32.

These are re-implemented rather than taken from :mod:`zlib` because the
repository's charter is to build every substrate the paper depends on.
The stdlib versions are still used in the *test suite* as an independent
oracle.

``crc32`` is table-driven (the classic reflected IEEE 802.3 polynomial
0xEDB88320).  ``adler32`` is fully vectorised with numpy: the running
``(a, b)`` pair over a block can be expressed as weighted sums, so each
block of up to ``_BLOCK`` bytes is reduced with two dot products before a
single modulo.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32", "adler32", "CRC32_TABLE"]

_ADLER_MOD = 65521
# Block small enough that int64 weighted sums cannot overflow:
# 255 * n * (n + 1) / 2 < 2**63  =>  n < ~2.7e8; memory is the real bound.
_BLOCK = 1 << 20


def _build_crc_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ (0xEDB88320 if (c & 1) else 0)
        table[i] = c
    return table


CRC32_TABLE = _build_crc_table()
_CRC_TABLE_LIST = [int(x) for x in CRC32_TABLE]  # plain ints: faster in the loop


def crc32(data: bytes | bytearray | memoryview, value: int = 0) -> int:
    """CRC-32 (IEEE, reflected) of ``data``, continuing from ``value``.

    Compatible with :func:`zlib.crc32`.
    """
    crc = (~value) & 0xFFFFFFFF
    table = _CRC_TABLE_LIST
    for byte in bytes(data):
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (~crc) & 0xFFFFFFFF


def adler32(data: bytes | bytearray | memoryview, value: int = 1) -> int:
    """Adler-32 of ``data``, continuing from ``value``.

    Compatible with :func:`zlib.adler32`.  Vectorised: for a block
    ``d[0..n)`` starting from state ``(a0, b0)``::

        a = a0 + sum(d)
        b = b0 + n*a0 + sum((n - i) * d[i])
    """
    a = value & 0xFFFF
    b = (value >> 16) & 0xFFFF
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    for start in range(0, buf.size, _BLOCK):
        block = buf[start : start + _BLOCK].astype(np.int64)
        n = block.size
        s = int(block.sum())
        weighted = int((block * np.arange(n, 0, -1, dtype=np.int64)).sum())
        b = (b + n * a + weighted) % _ADLER_MOD
        a = (a + s) % _ADLER_MOD
    return (b << 16) | a
