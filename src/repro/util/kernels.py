"""Kernel-mode dispatch: vectorized fast paths vs scalar references.

PR 8 rewrote the hot codec kernels (LZ77 matching, Huffman emission,
SZ3 predict/quantize, the AC context gather) with numpy vectorization
while keeping byte-identical output.  The original scalar kernels
survive as *reference implementations*; every rewritten call site
dispatches through :func:`scalar_kernels` so the two can be diffed at
will:

* ``REPRO_SCALAR_KERNELS=1`` in the environment selects the scalar
  references process-wide (the nightly CI fuzz job sweeps both modes);
* :func:`force_kernel_mode` overrides the environment for a scoped
  block — the kernel-equivalence tests use it to run the same input
  through both implementations inside one process.

The environment variable is consulted on every call (not cached at
import), so tests and benchmarks can flip modes without re-importing.
Truthiness follows the usual convention: unset, ``""``, ``0``,
``false``, ``no`` and ``off`` mean vectorized; anything else means
scalar.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "ENV_VAR",
    "VECTORIZED",
    "SCALAR",
    "kernel_mode",
    "scalar_kernels",
    "force_kernel_mode",
]

ENV_VAR = "REPRO_SCALAR_KERNELS"
VECTORIZED = "vectorized"
SCALAR = "scalar"

_FALSEY = frozenset({"", "0", "false", "no", "off"})

#: Scoped override installed by :func:`force_kernel_mode`; wins over the
#: environment while set.
_override: "str | None" = None


def kernel_mode() -> str:
    """Current kernel mode: ``"vectorized"`` or ``"scalar"``."""
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    return SCALAR if raw not in _FALSEY else VECTORIZED


def scalar_kernels() -> bool:
    """True when the scalar reference kernels are selected."""
    return kernel_mode() == SCALAR


@contextmanager
def force_kernel_mode(mode: str) -> Iterator[None]:
    """Force ``mode`` (``"vectorized"`` or ``"scalar"``) for a scope.

    Nestable; restores the previous override on exit.  This overrides
    ``REPRO_SCALAR_KERNELS`` so equivalence tests can compare both
    implementations regardless of the ambient environment.
    """
    if mode not in (VECTORIZED, SCALAR):
        raise ValueError(
            f"kernel mode must be {VECTORIZED!r} or {SCALAR!r}, got {mode!r}"
        )
    global _override
    prev = _override
    _override = mode
    try:
        yield
    finally:
        _override = prev
