"""Low-level utilities shared by the codecs and the simulator.

Contents
--------
:mod:`repro.util.bitio`
    LSB-first bit-stream reader/writer used by DEFLATE and the SZ3 Huffman
    stage, with numpy-vectorised bulk code packing.
:mod:`repro.util.checksums`
    From-scratch, table-driven CRC-32 (IEEE 802.3) and vectorised Adler-32.
:mod:`repro.util.xxhash32`
    xxHash32 used by the LZ4 frame format.
:mod:`repro.util.stats`
    Byte histograms and Shannon-entropy estimators used by dataset
    generators and block-type heuristics.
"""

from repro.util.bitio import BitReader, BitWriter
from repro.util.checksums import adler32, crc32
from repro.util.stats import byte_entropy, byte_histogram
from repro.util.xxhash32 import xxh32

__all__ = [
    "BitReader",
    "BitWriter",
    "adler32",
    "byte_entropy",
    "byte_histogram",
    "crc32",
    "xxh32",
]
