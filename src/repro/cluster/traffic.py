"""Open-loop traffic generation: Poisson arrivals, diurnal rate, heavy tails.

The cluster bench needs load shapes the single-gateway sweep never
exercised: 10-100x the PR 4 offered rates, arrival *bursts* (diurnal
modulation over the run window), and request sizes with the heavy upper
tail real compression traffic shows (a few huge objects dominate byte
volume).  Everything here is precomputed from a seed with NumPy's
``default_rng`` before the simulation starts, so a schedule is a pure
function of ``(TrafficConfig, seed)`` and replays bit-for-bit.

* **Arrivals** — non-homogeneous Poisson by thinning: candidates are
  drawn at the peak rate ``base * (1 + amplitude)``, then each is kept
  with probability ``rate(t) / peak`` where ``rate(t)`` follows a
  sinusoidal "diurnal" curve over the run window.
* **Sizes** — per-tenant lognormal (median/sigma) or Pareto-tailed
  (Lomax, ``median * (1 + X)``), clipped to ``[min_bytes, max_bytes]``.
  Sizes feed ``sim_bytes`` (the simulated nominal size); the *actual*
  payload bytes come from a small deterministic pool so the eager
  codec work stays wall-clock cheap (the codec memo cache serves
  repeats) without changing any simulated number.
* **Tenants** — weighted mix of compress and decompress profiles,
  each carrying an optional p99 SLO threshold the bench feeds to the
  :mod:`repro.obs.slo` burn-rate monitor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Generator, NamedTuple

import numpy as np

from repro.algorithms.deflate import deflate_compress
from repro.algorithms.lz4 import lz4_compress
from repro.dpu.specs import Algo, Direction
from repro.serve import ServeRequest

__all__ = [
    "TenantProfile",
    "TrafficConfig",
    "Arrival",
    "TrafficSchedule",
    "build_schedule",
    "traffic_process",
    "DEFAULT_TENANTS",
]

_POOL_SIZE = 4


@dataclass(frozen=True)
class TenantProfile:
    """One synthetic client population."""

    name: str
    weight: float = 1.0
    direction: Direction = Direction.COMPRESS
    algo: Algo = Algo.DEFLATE
    size_dist: str = "lognormal"   # "lognormal" | "pareto"
    median_bytes: float = 64e3     # lognormal median / Pareto minimum
    sigma: float = 1.0             # lognormal shape
    pareto_alpha: float = 1.5      # Lomax tail index (lower = heavier)
    slo_p99_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.size_dist not in ("lognormal", "pareto"):
            raise ValueError(f"unknown size_dist {self.size_dist!r}")
        if self.weight <= 0:
            raise ValueError(f"tenant weight {self.weight} must be > 0")


DEFAULT_TENANTS = (
    # Bulk writer: compress-heavy, strongly heavy-tailed object sizes.
    TenantProfile("bulk", weight=2.0, direction=Direction.COMPRESS,
                  size_dist="pareto", median_bytes=32e3, pareto_alpha=1.5,
                  slo_p99_s=0.050),
    # Interactive reader: decompress, tighter lognormal sizes and SLO.
    TenantProfile("reader", weight=3.0, direction=Direction.DECOMPRESS,
                  size_dist="lognormal", median_bytes=16e3, sigma=0.7,
                  slo_p99_s=0.020),
    # Archival restore: rare, large decompress objects.
    TenantProfile("restore", weight=1.0, direction=Direction.DECOMPRESS,
                  size_dist="pareto", median_bytes=128e3, pareto_alpha=1.2,
                  slo_p99_s=0.100),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one open-loop run."""

    rate_req_s: float
    duration_s: float
    seed: int = 0
    diurnal_amplitude: float = 0.3      # rate swings +-30 % by default
    diurnal_period_s: "float | None" = None  # None: one cycle per run
    min_bytes: float = 256.0
    max_bytes: float = 4e6
    actual_bytes: int = 1024            # real payload size (wall-clock only)
    tenants: "tuple[TenantProfile, ...]" = DEFAULT_TENANTS

    def __post_init__(self) -> None:
        if self.rate_req_s <= 0:
            raise ValueError(f"rate {self.rate_req_s} must be > 0")
        if self.duration_s <= 0:
            raise ValueError(f"duration {self.duration_s} must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal amplitude {self.diurnal_amplitude} outside [0, 1)"
            )
        if not self.tenants:
            raise ValueError("TrafficConfig needs at least one tenant")


class Arrival(NamedTuple):
    """One precomputed request arrival."""

    t_s: float
    tenant: str
    direction: Direction
    algo: Algo
    sim_bytes: float
    pool_index: int


class TrafficSchedule:
    """A fully materialized arrival sequence plus its payload pools."""

    __slots__ = ("config", "arrivals", "_pools")

    def __init__(self, config: TrafficConfig, arrivals: "list[Arrival]",
                 pools: "dict[tuple[Algo, Direction], tuple[bytes, ...]]",
                 ) -> None:
        self.config = config
        self.arrivals = arrivals
        self._pools = pools

    def __len__(self) -> int:
        return len(self.arrivals)

    def payload(self, arrival: Arrival) -> bytes:
        """The actual bytes the codec will see for this arrival."""
        pool = self._pools[(arrival.algo, arrival.direction)]
        return pool[arrival.pool_index % len(pool)]

    def request(self, arrival: Arrival, req_id: object = None) -> ServeRequest:
        return ServeRequest(
            arrival.direction,
            self.payload(arrival),
            sim_bytes=arrival.sim_bytes,
            req_id=req_id,
            tenant=arrival.tenant,
            algo=arrival.algo,
        )


@lru_cache(maxsize=32)
def _payload_pool(seed: int, actual_bytes: int, algo: Algo,
                  direction: Direction) -> "tuple[bytes, ...]":
    """A small deterministic pool of real payloads.

    Compress-direction entries are mildly compressible pseudo-random
    bytes; decompress-direction entries are those bytes pre-compressed
    with the tenant's codec (the gateway decompresses eagerly, so the
    input must be a valid stream).  Small pool + repeated entries keep
    the eager codec work amortized by the codec memo cache.
    """
    rng = np.random.default_rng((seed, int(algo_index(algo)), 777))
    pool = []
    for i in range(_POOL_SIZE):
        # Tile a short random motif: repetitive enough to deflate, so
        # decompress-direction streams are shorter than their output.
        motif = rng.integers(0, 256, size=max(64, actual_bytes // 8),
                             dtype=np.uint8).tobytes()
        raw = (motif * (actual_bytes // len(motif) + 1))[:actual_bytes]
        if direction is Direction.COMPRESS:
            pool.append(raw)
        elif algo is Algo.DEFLATE:
            pool.append(bytes(deflate_compress(raw, None)))
        elif algo is Algo.LZ4:
            pool.append(bytes(lz4_compress(raw)))
        else:
            # Fallback for codecs without a direct import here: zlib's
            # raw-DEFLATE is not our container, so just use DEFLATE's.
            pool.append(bytes(deflate_compress(raw, None)))
    return tuple(pool)


def algo_index(algo: Algo) -> int:
    """Stable small integer per algo (seed-mixing helper)."""
    return sorted(a.value for a in Algo).index(algo.value)


def build_schedule(config: TrafficConfig) -> TrafficSchedule:
    """Materialize the whole run's arrivals from the seed.

    Deterministic: a fixed draw order (arrival gaps, thinning accepts,
    tenant choices, sizes — each from the same generator in sequence)
    makes the schedule a pure function of ``config``.
    """
    rng = np.random.default_rng(config.seed)
    peak = config.rate_req_s * (1.0 + config.diurnal_amplitude)
    period = config.diurnal_period_s or config.duration_s

    # Homogeneous candidates at the peak rate, extended until the run
    # window is covered.
    times = np.array([], dtype=np.float64)
    t_end = 0.0
    while t_end < config.duration_s:
        n = int(peak * config.duration_s * 1.25) + 64
        gaps = rng.exponential(1.0 / peak, size=n)
        chunk = t_end + np.cumsum(gaps)
        times = np.concatenate([times, chunk])
        t_end = float(times[-1])
    times = times[times < config.duration_s]

    # Thinning: accept with probability rate(t)/peak.
    rate_t = config.rate_req_s * (
        1.0 + config.diurnal_amplitude
        * np.sin(2.0 * math.pi * times / period)
    )
    keep = rng.random(len(times)) * peak <= rate_t
    times = times[keep]
    n = len(times)

    weights = np.array([t.weight for t in config.tenants])
    tenant_idx = rng.choice(len(config.tenants), size=n,
                            p=weights / weights.sum())

    # Sizes: draw both families for every arrival (fixed draw count
    # keeps the stream aligned regardless of tenant mix), select per
    # tenant profile, then clip.
    normals = rng.standard_normal(n)
    lomax = rng.pareto(
        np.array([config.tenants[i].pareto_alpha for i in tenant_idx])
    ) if n else np.array([])
    medians = np.array([config.tenants[i].median_bytes for i in tenant_idx])
    sigmas = np.array([config.tenants[i].sigma for i in tenant_idx])
    lognormal_sizes = medians * np.exp(sigmas * normals)
    pareto_sizes = medians * (1.0 + lomax)
    is_pareto = np.array(
        [config.tenants[i].size_dist == "pareto" for i in tenant_idx]
    )
    sizes = np.clip(
        np.where(is_pareto, pareto_sizes, lognormal_sizes),
        config.min_bytes, config.max_bytes,
    )

    arrivals = []
    pools: "dict[tuple[Algo, Direction], tuple[bytes, ...]]" = {}
    for i in range(n):
        profile = config.tenants[int(tenant_idx[i])]
        key = (profile.algo, profile.direction)
        if key not in pools:
            pools[key] = _payload_pool(
                config.seed, config.actual_bytes, *key
            )
        arrivals.append(Arrival(
            t_s=float(times[i]),
            tenant=profile.name,
            direction=profile.direction,
            algo=profile.algo,
            sim_bytes=float(sizes[i]),
            pool_index=i,
        ))
    return TrafficSchedule(config, arrivals, pools)


def traffic_process(
    env,
    schedule: TrafficSchedule,
    submit: "Callable[[ServeRequest], object]",
) -> Generator:
    """Sim process: replay ``schedule`` open-loop into ``submit``.

    Open-loop means arrivals never wait for completions — exactly the
    overload regime the admission split exists for.  Returns the list
    of tickets ``submit`` handed back (shed tickets included).
    """
    tickets = []
    for i, arrival in enumerate(schedule.arrivals):
        delay = arrival.t_s - env.now
        if delay > 0.0:
            yield env.timeout(delay)
        tickets.append(submit(schedule.request(arrival, req_id=i)))
    return tickets
