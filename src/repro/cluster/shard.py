"""Consistent-hash shard map: tenant keys → shards, heal on membership change.

The cluster's front doors (N :class:`~repro.serve.ServeGateway`\\ s) must
agree on which shard owns a tenant *without* talking to each other — in
the paper's deployment every host-side client library hashes locally.
A :class:`ConsistentHashRing` makes the owner a pure function of
``(member set, vnodes, key)``: every gateway holding the same member
set computes the same owner, and removing one member only moves the
keys that member owned (~K/N of them), so a worker-pool loss does not
reshuffle the whole tenant space.

:class:`ShardMap` wraps the ring with an **epoch**: a monotonically
increasing version bumped on every join/leave.  Lookups report the
epoch alongside the owner so callers can detect (and tests can assert)
that two gateways resolving the same key at the same epoch agree.
Healing is synchronous and deterministic — membership changes happen at
a sim-clock instant, the ring is rebuilt from the surviving member set,
and there is no gossip delay to race against.

Hashing is BLAKE2b (like :mod:`repro.faults`' draw function): stable
across processes and Python versions, unlike builtin ``hash``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator, Sequence

from repro.errors import ShardMapError

__all__ = ["ConsistentHashRing", "ShardMap", "hash64"]

DEFAULT_VNODES = 64


def hash64(key: str) -> int:
    """Stable 64-bit hash of ``key`` (BLAKE2b-8, big-endian)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Classic consistent hashing with virtual nodes.

    Each member contributes ``vnodes`` points at
    ``hash64(f"{member}#{i}")``; a key is owned by the first point
    clockwise from ``hash64(key)``.  The ring is a pure function of the
    member *set* — construction order never matters — which is what
    lets independent gateways agree without coordination.
    """

    __slots__ = ("_vnodes", "_points", "_owners", "_members")

    def __init__(self, members: Iterable[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes {vnodes} must be >= 1")
        self._vnodes = vnodes
        self._members = tuple(sorted(set(members)))
        points: list[tuple[int, str]] = []
        for member in self._members:
            for i in range(vnodes):
                points.append((hash64(f"{member}#{i}"), member))
        # Ties between distinct members' points are broken by member
        # name (sort is on the tuple), keeping ownership deterministic
        # even on 64-bit hash collisions.
        points.sort()
        self._points = [p[0] for p in points]
        self._owners = [p[1] for p in points]

    @property
    def members(self) -> "tuple[str, ...]":
        return self._members

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in set(self._members)

    def __iter__(self) -> Iterator[str]:
        return iter(self._members)

    def lookup(self, key: str) -> str:
        """The member owning ``key`` (first ring point clockwise)."""
        if not self._members:
            raise ShardMapError("lookup on an empty ring")
        h = hash64(key)
        idx = bisect.bisect_right(self._points, h)
        if idx == len(self._points):  # wrap past the top of the ring
            idx = 0
        return self._owners[idx]

    def with_member(self, member: str) -> "ConsistentHashRing":
        """A new ring with ``member`` joined (idempotent)."""
        return ConsistentHashRing(
            set(self._members) | {member}, self._vnodes
        )

    def without_member(self, member: str) -> "ConsistentHashRing":
        """A new ring with ``member`` removed."""
        if member not in set(self._members):
            raise ShardMapError(f"member {member!r} not on the ring")
        return ConsistentHashRing(
            set(self._members) - {member}, self._vnodes
        )


class ShardMap:
    """Versioned tenant→shard assignment shared by every gateway.

    ``lookup`` resolves a tenant key against the current ring;
    ``remove_shard`` / ``add_shard`` bump the epoch and rebuild the
    ring from the new member set (deterministic healing — the ring is
    a pure function of membership, so every observer lands on the same
    post-heal assignment).  ``assignment_log`` records each membership
    change as ``(epoch, op, shard)`` for the bench's routing digest.
    """

    __slots__ = ("_ring", "_epoch", "assignment_log")

    def __init__(self, shards: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not shards:
            raise ShardMapError("ShardMap needs at least one shard")
        self._ring = ConsistentHashRing(shards, vnodes)
        self._epoch = 0
        self.assignment_log: "list[tuple[int, str, str]]" = []

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def shards(self) -> "tuple[str, ...]":
        return self._ring.members

    def lookup(self, tenant: str) -> str:
        """The shard owning ``tenant`` at the current epoch."""
        return self._ring.lookup(tenant)

    def lookup_versioned(self, tenant: str) -> "tuple[str, int]":
        """``(owner, epoch)`` — for agreement assertions across gateways."""
        return self._ring.lookup(tenant), self._epoch

    def remove_shard(self, shard: str) -> int:
        """Heal around a lost shard; returns the new epoch."""
        if len(self._ring) <= 1:
            raise ShardMapError(
                f"cannot remove {shard!r}: it is the last shard"
            )
        self._ring = self._ring.without_member(shard)
        self._epoch += 1
        self.assignment_log.append((self._epoch, "remove", shard))
        return self._epoch

    def add_shard(self, shard: str) -> int:
        """Join a (new or recovered) shard; returns the new epoch."""
        if shard in self._ring:
            raise ShardMapError(f"shard {shard!r} already on the ring")
        self._ring = self._ring.with_member(shard)
        self._epoch += 1
        self.assignment_log.append((self._epoch, "add", shard))
        return self._epoch
