"""Fleet-scale sharded serving: N gateways over M workers, with failover.

:class:`ServeCluster` is the paper's end state scaled out: instead of
one :class:`~repro.serve.ServeGateway` over a handful of DPUs, the
device fleet is partitioned (:mod:`repro.cluster.placement`) into S
shards, each fronted by its own gateway whose workers are the shard's
replicas.  Tenants map to shards through the consistent-hash
:class:`~repro.cluster.shard.ShardMap`, so adding or losing a shard
moves only ~K/S of the tenant space.

**Admission is split in two.**  A *global* controller bounds total
pending work across the cluster (protecting the host-side submit path),
and each shard's gateway keeps its own *per-shard* bound (protecting
one shard's replicas from a hot tenant).  A request must clear both: a
global refusal sheds immediately; a shard refusal releases the global
slot it briefly held and sheds.  Global slots are released exactly once
per admitted request, on the request event's completion — success *or*
failure — via an event callback, so worker death cannot leak the global
budget any more than the per-shard one.

**Failover** is layered: shard gateways run with
``ServeConfig.failover=True``, so a killed worker's in-flight batches
re-dispatch to surviving replicas inside the shard.  When a kill takes
a shard's *last* replica, the cluster heals the shard map — the shard
leaves the ring at that sim instant, the epoch bumps, and subsequent
submits for its tenants land on surviving shards.  Healing is
deterministic: it happens synchronously in ``kill_worker`` on the sim
clock, and the post-heal assignment is a pure function of surviving
membership.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence

from repro.errors import ClusterError, NoLatencySamplesError
from repro.obs import QuantileSketch
from repro.serve import ServeConfig, ServeGateway, ServeRequest, ServeTicket
from repro.serve.admission import AdmissionController
from repro.serve.gateway import TelemetryConfig
from repro.cluster.placement import plan_placement
from repro.cluster.shard import DEFAULT_VNODES, ShardMap

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU
    from repro.obs import FleetAggregator
    from repro.serve.gateway import DpuWorker
    from repro.sim.engine import Environment

__all__ = ["ClusterConfig", "ServeCluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-level policy knobs.

    ``serve`` is the per-shard gateway template; the cluster overrides
    its ``max_pending`` (with ``shard_max_pending``), turns on
    ``failover``, and stamps per-shard telemetry, leaving every other
    knob (batching, router, sched, codecs) as given.
    """

    num_shards: int = 4
    placement: str = "capability_spread"
    vnodes: int = DEFAULT_VNODES
    # Global pending budget across all shards (the host submit path's
    # protection); per-shard budget is the gateway's own bound.
    global_max_pending: int = 1024
    shard_max_pending: int = 64
    serve: ServeConfig = field(default_factory=ServeConfig)
    # Telemetry fan-out: when an aggregator is given, each shard's
    # gateway gets a TelemetryConfig labeled gateway=gw<i>, shard=<name>
    # so fleet scrapes can group_by=("tenant", "shard").
    telemetry_alpha: float = 0.01
    default_tenant: str = "default"


class ServeCluster:
    """S sharded gateways over a placed device fleet, one sim clock."""

    def __init__(
        self,
        env: "Environment",
        devices: "Sequence[BlueFieldDPU]",
        config: "ClusterConfig | None" = None,
        aggregator: "FleetAggregator | None" = None,
    ) -> None:
        self.env = env
        self.config = config or ClusterConfig()
        groups = plan_placement(
            devices, self.config.num_shards, self.config.placement
        )
        self.shard_names = tuple(
            f"shard{i}" for i in range(len(groups))
        )
        self.gateways: "dict[str, ServeGateway]" = {}
        for i, (name, members) in enumerate(zip(self.shard_names, groups)):
            telemetry = None
            if aggregator is not None:
                telemetry = TelemetryConfig(
                    gateway=f"gw{i}",
                    alpha=self.config.telemetry_alpha,
                    default_tenant=self.config.default_tenant,
                    aggregator=aggregator,
                    shard=name,
                )
            shard_config = dataclasses.replace(
                self.config.serve,
                max_pending=self.config.shard_max_pending,
                failover=True,
                telemetry=telemetry,
            )
            self.gateways[name] = ServeGateway(env, members, shard_config)
        self.shard_map = ShardMap(self.shard_names, self.config.vnodes)
        self.admission = AdmissionController(self.config.global_max_pending)
        self.aggregator = aggregator
        self.submitted = 0
        self.shed_global = 0
        self.shed_shard = 0
        # (submit#, tenant, shard, epoch) per routed request — digested
        # (with the per-gateway batch routing logs) by the bench gate.
        self.routing_log: "list[tuple[int, str, str, int]]" = []

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def shard_for(self, tenant: "str | None") -> str:
        """The shard currently owning ``tenant`` (healed map)."""
        return self.shard_map.lookup(tenant or self.config.default_tenant)

    def submit(self, request: ServeRequest) -> ServeTicket:
        """Offer one request through both admission layers.

        Order matters for the budget invariant: the global slot is
        taken first, and *released immediately* if the owning shard
        sheds — the shard refusal must not burn global budget for work
        that will never run.
        """
        self.submitted += 1
        if not self.admission.try_admit():
            self.shed_global += 1
            return ServeTicket(request, None)
        tenant = request.tenant or self.config.default_tenant
        shard, epoch = self.shard_map.lookup_versioned(tenant)
        self.routing_log.append((self.submitted - 1, tenant, shard, epoch))
        ticket = self.gateways[shard].submit(request)
        if ticket.shed:
            self.admission.complete()
            self.shed_shard += 1
            return ticket
        # Exactly-once global release: the entry event fires once,
        # whether the batch succeeded, failed over, or died with its
        # last replica.
        ticket.event.callbacks.append(self._release_global)
        return ticket

    def _release_global(self, _event) -> None:
        self.admission.complete()

    def drain(self) -> Generator:
        """Flush and wait out every shard gateway."""
        for name in self.shard_names:
            gateway = self.gateways[name]
            gateway.batcher.flush_all()
        for name in self.shard_names:
            yield from self.gateways[name].drain()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def kill_worker(self, worker_name: str) -> str:
        """Kill a worker anywhere in the cluster; heal if its shard died.

        Returns the owning shard's name.  In-shard failover is the
        gateway's job (in-flight batches re-dispatch to live replicas);
        this layer only removes the shard from the hash ring when the
        kill took its last replica, so *future* submits for its tenants
        remap deterministically at the current sim instant.
        """
        for name in self.shard_names:
            gateway = self.gateways[name]
            for worker in gateway.workers:
                if worker.name == worker_name:
                    gateway.kill_worker(worker_name)
                    if (not any(w.alive for w in gateway.workers)
                            and name in self.shard_map.shards
                            and len(self.shard_map.shards) > 1):
                        self.shard_map.remove_shard(name)
                    return name
        raise ClusterError(f"no worker named {worker_name!r} in cluster")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def workers(self) -> "list[DpuWorker]":
        """Every worker across every shard (shard order, then fleet)."""
        return [
            w for name in self.shard_names
            for w in self.gateways[name].workers
        ]

    @property
    def completed(self) -> int:
        return sum(g.completed for g in self.gateways.values())

    @property
    def completed_sim_bytes(self) -> float:
        return sum(g.completed_sim_bytes for g in self.gateways.values())

    @property
    def shed(self) -> int:
        """Total refusals at either admission layer."""
        return self.shed_global + self.shed_shard

    @property
    def pending(self) -> int:
        """Globally tracked pending (== sum of shard pendings plus any
        requests between the two admission layers, which is zero
        outside ``submit`` itself)."""
        return self.admission.pending

    @property
    def sample_count(self) -> int:
        return sum(g.sample_count for g in self.gateways.values())

    def latency_percentile(self, q: float) -> float:
        """Cluster-wide sketch-merged latency percentile (q in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        sketches = [
            g.latency_sketch for g in self.gateways.values()
            if g.latency_sketch.count
        ]
        if not sketches:
            raise NoLatencySamplesError("no completed requests yet")
        return QuantileSketch.merged(sketches).quantile(q / 100.0)

    def peak_shard_pending(self) -> "dict[str, int]":
        """Per-shard peak admission occupancy (budget-invariant probe)."""
        return {
            name: self.gateways[name].admission.peak_pending
            for name in self.shard_names
        }
