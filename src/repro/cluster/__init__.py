"""``repro.cluster`` — fleet-scale sharded serving over the DPU fleet.

The paper's end state is *many* BlueField DPUs absorbing host
compression traffic.  This package scales the single-gateway serving
layer (:mod:`repro.serve`) out to a cluster:

* :mod:`repro.cluster.shard` — consistent-hash tenant→shard map with
  epochs and deterministic healing;
* :mod:`repro.cluster.placement` — capability/locality-aware device
  partitioning (BF-3 decompress-only respected);
* :mod:`repro.cluster.cluster` — :class:`ServeCluster`: S shard
  gateways, worker replication with in-shard failover, and a
  global-vs-per-shard admission split;
* :mod:`repro.cluster.traffic` — seeded open-loop generator (Poisson
  arrivals, diurnal modulation, heavy-tailed sizes, mixed tenants).

Whole-worker kill schedules live in :mod:`repro.faults.workers`.
"""

from repro.cluster.cluster import ClusterConfig, ServeCluster
from repro.cluster.placement import PLACEMENTS, device_supports, plan_placement
from repro.cluster.shard import ConsistentHashRing, ShardMap, hash64
from repro.cluster.traffic import (
    DEFAULT_TENANTS,
    Arrival,
    TenantProfile,
    TrafficConfig,
    TrafficSchedule,
    build_schedule,
    traffic_process,
)

__all__ = [
    "ClusterConfig",
    "ServeCluster",
    "ConsistentHashRing",
    "ShardMap",
    "hash64",
    "PLACEMENTS",
    "device_supports",
    "plan_placement",
    "TenantProfile",
    "TrafficConfig",
    "TrafficSchedule",
    "Arrival",
    "DEFAULT_TENANTS",
    "build_schedule",
    "traffic_process",
]
