"""Worker→shard placement: which devices back which shard.

The fleet is heterogeneous: BF-3's C-Engine is decompress-only (paper
Tables II/III), so a shard made entirely of BF-3s serves compress
tenants off the slow SoC path.  Placement reuses the same capability
probe the serve router uses (:func:`device_supports`, the device-level
twin of ``DpuWorker.supports``) to spread compress-capable engines so
every shard gets one when arithmetic allows.

Two deterministic policies:

* ``capability_spread`` — deal the compress-capable devices round-robin
  across shards first, then deal the decompress-only remainder onto the
  smallest shards.  Heterogeneity is spread: a mixed BF-2/BF-3 fleet
  yields shards that can each serve both directions natively.
* ``locality_blocked`` — contiguous chunks in fleet order.  Adjacent
  devices model co-located hardware (same chassis/rack in the paper's
  testbed), so replicas of one shard share locality; capability is
  whatever the block happens to contain.

Both are pure functions of the device list, so placement never
perturbs sim determinism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.registry import cengine_core_algo
from repro.dpu.specs import Algo, Direction
from repro.errors import ClusterError

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU

__all__ = ["device_supports", "plan_placement", "PLACEMENTS"]


def device_supports(device: "BlueFieldDPU", direction: Direction,
                    algo: Algo = Algo.DEFLATE) -> bool:
    """Device-level twin of ``DpuWorker.supports`` (same engine-core
    mapping), usable before any gateway exists."""
    return device.cengine.supports(cengine_core_algo(algo), direction)


def _capability_spread(devices: "Sequence[BlueFieldDPU]",
                       num_shards: int) -> "list[list[BlueFieldDPU]]":
    shards: "list[list[BlueFieldDPU]]" = [[] for _ in range(num_shards)]
    compress_capable = [
        d for d in devices if device_supports(d, Direction.COMPRESS)
    ]
    rest = [
        d for d in devices if not device_supports(d, Direction.COMPRESS)
    ]
    for i, device in enumerate(compress_capable):
        shards[i % num_shards].append(device)
    # Remainder fills smallest-first (fleet order breaks ties) so
    # replica counts stay within one of each other.
    for device in rest:
        target = min(range(num_shards), key=lambda s: (len(shards[s]), s))
        shards[target].append(device)
    return shards


def _locality_blocked(devices: "Sequence[BlueFieldDPU]",
                      num_shards: int) -> "list[list[BlueFieldDPU]]":
    n = len(devices)
    base, extra = divmod(n, num_shards)
    shards = []
    start = 0
    for s in range(num_shards):
        size = base + (1 if s < extra else 0)
        shards.append(list(devices[start:start + size]))
        start += size
    return shards


PLACEMENTS = {
    "capability_spread": _capability_spread,
    "locality_blocked": _locality_blocked,
}


def plan_placement(devices: "Sequence[BlueFieldDPU]", num_shards: int,
                   policy: str = "capability_spread",
                   ) -> "list[list[BlueFieldDPU]]":
    """Partition ``devices`` into ``num_shards`` non-empty groups."""
    if num_shards < 1:
        raise ClusterError(f"num_shards {num_shards} must be >= 1")
    if num_shards > len(devices):
        raise ClusterError(
            f"cannot place {len(devices)} devices on {num_shards} shards "
            "(every shard needs at least one worker)"
        )
    try:
        plan = PLACEMENTS[policy]
    except KeyError:
        raise ClusterError(
            f"unknown placement {policy!r} (known: {sorted(PLACEMENTS)})"
        ) from None
    shards = plan(devices, num_shards)
    if any(not members for members in shards):
        raise ClusterError(
            f"placement {policy!r} produced an empty shard "
            f"({len(devices)} devices over {num_shards} shards)"
        )
    return shards
