"""SoC execution model: a pool of ARM cores running codec work.

Codec work occupies one core for ``bytes / throughput`` seconds (the
codecs the paper runs are single-threaded per message).  The core pool
is a simulated :class:`~repro.sim.resources.Resource`, so concurrent
messages contend for cores exactly as they would on the 8-core A72 /
16-core A78 SoCs.
"""

from __future__ import annotations

from typing import Generator

from repro.dpu.calibration import Calibration
from repro.dpu.specs import Algo, Direction, SocSpec
from repro.sim import Environment, Resource

__all__ = ["Soc"]


class Soc:
    """The DPU's ARM SoC."""

    def __init__(self, env: Environment, spec: SocSpec, cal: Calibration) -> None:
        self.env = env
        self.spec = spec
        self.cal = cal
        self.cores = Resource(env, capacity=spec.n_cores)
        self.busy_seconds = 0.0  # accumulated core-occupancy, for stats

    def codec_time(self, algo: Algo, direction: Direction, nbytes: int) -> float:
        """Pure execution time of a codec op on one core."""
        return self.cal.soc_time(algo, direction, nbytes)

    def checksum_time(self, nbytes: int) -> float:
        """Checksum/header stream work (adler32, zlib/PEDAL headers)."""
        return self.cal.checksum_time(nbytes)

    def run(self, seconds: float) -> Generator:
        """Occupy one core for ``seconds`` of simulated time."""
        req = self.cores.request()
        yield req
        try:
            yield self.env.timeout(seconds)
            self.busy_seconds += seconds
        finally:
            self.cores.release(req)

    def run_codec(
        self, algo: Algo, direction: Direction, nbytes: int
    ) -> Generator:
        """Occupy one core for a codec op; returns the op duration."""
        seconds = self.codec_time(algo, direction, nbytes)
        yield from self.run(seconds)
        return seconds
