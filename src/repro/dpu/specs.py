"""Static BlueField-2 / BlueField-3 device descriptions.

Numbers come from the paper's §II-A and §V-B testbed description:

* BlueField-2 — 8x ARM Cortex-A72 @ 2.75 GHz, 16 GB DDR4, ConnectX-6
  NIC at 200 Gb/s.
* BlueField-3 — 16x ARM Cortex-A78, 16 GB DDR5 (up to 4.2x the RAM
  throughput of BF2), ConnectX-7 NIC at 400 Gb/s.

The C-Engine capability matrix is the paper's Table II (what DOCA
exposes natively).  PEDAL's *extensions* of that matrix (Table III:
zlib/SZ3 via C-Engine DEFLATE) are not hardware properties and live in
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "Algo",
    "Direction",
    "SocSpec",
    "MemorySpec",
    "NicSpec",
    "DpuSpec",
    "BLUEFIELD2",
    "BLUEFIELD3",
]


class Algo(str, Enum):
    """Compression algorithms PEDAL unifies (paper Table I)."""

    DEFLATE = "deflate"
    ZLIB = "zlib"
    LZ4 = "lz4"
    SZ3 = "sz3"
    # Post-paper extension: EDPC-style adaptive-context range coder
    # (repro.algorithms.ac).  SoC-only — no C-Engine generation
    # accelerates it, so every placement resolves to the ARM cores.
    AC = "ac"


class Direction(str, Enum):
    COMPRESS = "compress"
    DECOMPRESS = "decompress"


@dataclass(frozen=True)
class SocSpec:
    """The DPU's ARM System-on-Chip."""

    core_model: str
    n_cores: int
    clock_ghz: float
    # Relative single-core throughput vs. the BF2 A72 baseline; used by
    # the calibration to scale SoC codec speeds (A78 ~1.67x A72 here,
    # consistent with the paper's ~40% communication-time reduction for
    # SoC designs on BF3, §V-D).
    perf_scale: float


@dataclass(frozen=True)
class MemorySpec:
    """On-board DRAM."""

    kind: str
    size_gib: int
    # Effective streaming bandwidth for plain buffer touches (bytes/s).
    stream_bandwidth: float
    # Effective rate for DMA registration/mapping of DOCA buffers
    # (bytes/s) — registration (pinning + IOMMU) is far slower than a
    # stream copy, which is what makes naive per-op buffer prep so
    # expensive in Fig. 7.
    map_bandwidth: float


@dataclass(frozen=True)
class NicSpec:
    """Integrated ConnectX NIC."""

    model: str
    rate_gbps: float
    base_latency_s: float

    @property
    def bytes_per_second(self) -> float:
        return self.rate_gbps * 1e9 / 8.0


@dataclass(frozen=True)
class DpuSpec:
    """A BlueField DPU generation."""

    name: str
    generation: int
    soc: SocSpec
    memory: MemorySpec
    nic: NicSpec
    # Native C-Engine support per (algo, direction) — paper Table II.
    cengine_native: frozenset[tuple[Algo, Direction]] = field(
        default_factory=frozenset
    )

    def cengine_supports(self, algo: Algo, direction: Direction) -> bool:
        """True if DOCA natively accelerates (algo, direction) here."""
        return (algo, direction) in self.cengine_native


BLUEFIELD2 = DpuSpec(
    name="BlueField-2",
    generation=2,
    soc=SocSpec(core_model="Cortex-A72", n_cores=8, clock_ghz=2.75, perf_scale=1.0),
    memory=MemorySpec(
        kind="DDR4",
        size_gib=16,
        stream_bandwidth=17e9,
        map_bandwidth=1.7e9,
    ),
    nic=NicSpec(model="ConnectX-6", rate_gbps=200.0, base_latency_s=2e-6),
    cengine_native=frozenset(
        {
            (Algo.DEFLATE, Direction.COMPRESS),
            (Algo.DEFLATE, Direction.DECOMPRESS),
        }
    ),
)

BLUEFIELD3 = DpuSpec(
    name="BlueField-3",
    generation=3,
    soc=SocSpec(core_model="Cortex-A78", n_cores=16, clock_ghz=3.0, perf_scale=1.67),
    memory=MemorySpec(
        kind="DDR5",
        size_gib=16,
        stream_bandwidth=17e9 * 4.2,  # paper: up to 4.2x BF2 RAM throughput
        map_bandwidth=1.7e9 * 4.2,
    ),
    nic=NicSpec(model="ConnectX-7", rate_gbps=400.0, base_latency_s=1.5e-6),
    cengine_native=frozenset(
        {
            (Algo.DEFLATE, Direction.DECOMPRESS),
            (Algo.LZ4, Direction.DECOMPRESS),
        }
    ),
)
