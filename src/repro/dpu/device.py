"""The composed BlueField DPU device."""

from __future__ import annotations

import dataclasses

from repro.dpu.calibration import Calibration, calibration_for
from repro.dpu.cengine import CEngine
from repro.dpu.memory import MemoryModel
from repro.dpu.soc import Soc
from repro.dpu.specs import BLUEFIELD2, BLUEFIELD3, DpuSpec
from repro.sim import Environment

__all__ = ["BlueFieldDPU", "make_device"]


class BlueFieldDPU:
    """One BlueField DPU in Separated Host mode (paper §II-A).

    Composes the SoC core pool, the C-Engine accelerator, and the
    memory cost model over one simulation environment.  The NIC fabric
    model lives in :mod:`repro.mpi.network` (it couples *pairs* of
    devices).
    """

    def __init__(self, env: Environment, spec: DpuSpec) -> None:
        self.env = env
        self.spec = spec
        self.cal: Calibration = calibration_for(spec)
        self.soc = Soc(env, spec.soc, self.cal)
        self.cengine = CEngine(env, spec, self.cal)
        self.cengine.owner = self  # job spans share the device's trace track
        self.memory = MemoryModel(spec.memory, self.cal.buffer_fixed_time)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def generation(self) -> int:
        return self.spec.generation

    def __repr__(self) -> str:
        return f"BlueFieldDPU({self.spec.name})"


_SPECS = {
    "bf2": BLUEFIELD2,
    "bf3": BLUEFIELD3,
    "bluefield-2": BLUEFIELD2,
    "bluefield-3": BLUEFIELD3,
}


def make_device(env: Environment, kind: str,
                name: "str | None" = None) -> BlueFieldDPU:
    """Create a DPU by kind (``"bf2"`` or ``"bf3"``).

    ``name`` overrides the spec's display name — fleets with several
    devices of one kind (every cluster) need unique worker names for
    routing logs and targeted kills; timing is untouched.
    """
    try:
        spec = _SPECS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown device {kind!r}; expected one of {sorted(set(_SPECS))}"
        ) from None
    if name is not None:
        spec = dataclasses.replace(spec, name=name)
    return BlueFieldDPU(env, spec)
