"""BlueField DPU hardware model.

This package substitutes for the physical BlueField-2/3 DPUs the paper
measures (see DESIGN.md §1): device *capabilities* are modelled exactly
(Table II's algorithm/direction support matrix), and device *speeds* are
a calibrated linear cost model (``time = job_overhead + bytes /
throughput``) whose constants are derived in
:mod:`repro.dpu.calibration` from the factors the paper reports.

Structure
---------
:mod:`repro.dpu.specs`        — static device descriptions (BF2/BF3).
:mod:`repro.dpu.calibration`  — throughput/overhead tables + derivations.
:mod:`repro.dpu.memory`       — allocation and DMA-mapping cost model.
:mod:`repro.dpu.soc`          — ARM SoC execution model (core pool).
:mod:`repro.dpu.cengine`      — compression accelerator with job queue.
:mod:`repro.dpu.device`       — :class:`BlueFieldDPU` composition + factory.
"""

from repro.dpu.device import BlueFieldDPU, make_device
from repro.dpu.specs import BLUEFIELD2, BLUEFIELD3, DpuSpec

__all__ = ["BLUEFIELD2", "BLUEFIELD3", "BlueFieldDPU", "DpuSpec", "make_device"]
