"""Calibrated speed constants for the BlueField cost model.

Every *performance* number this repository reports comes from the
linear cost model ``time = job_overhead + bytes / throughput`` with the
constants below.  Each constant is derived from a factor the paper
itself reports; the derivations are spelled out next to each value so
the calibration is auditable.  The test suite
(``tests/dpu/test_calibration.py``) re-checks the headline factors
against the model.

Anchor set (all from the paper's §V):

A1. BF2 SoC DEFLATE compression ≈ 25 MB/s, decompression ≈ 180 MB/s —
    a zlib-class single A72 core; these absolute values are the free
    parameters every other constant is expressed against.
A2. Fig. 8: BF2 C-Engine is 101.8x the SoC for DEFLATE *compression* on
    5.1 MB ⇒ with a 0.25 ms compression-job overhead:
    204 ms / 101.8 = 2.004 ms ⇒ throughput = 5.1 MB / 1.754 ms
    ≈ 2908 MB/s.
A3. Fig. 8: BF2 C-Engine is 11.2x the SoC for DEFLATE *decompression*
    on 5.1 MB ⇒ with a 1.0 ms decompression-job overhead (decompression
    jobs validate/stage more state): 28.33 ms / 11.2 = 2.530 ms ⇒
    throughput = 5.1 MB / 1.530 ms ≈ 3333 MB/s.
A4. Fig. 8: zlib on C-Engine is 84.6x SoC (compression, 48.85 MB) and
    20x (decompression).  zlib-on-C-Engine = C-Engine DEFLATE + SoC
    adler32/header work at 10 GB/s ⇒
    compression:  C path = 0.25 + 16.80 + 4.885 = 21.93 ms
                  ⇒ SoC zlib compression = 48.85/(84.6 × 21.93 ms)
                  ≈ 26.3 MB/s;
    decompression: C path = 1.0 + 14.66 + 4.885 = 20.54 ms
                  ⇒ SoC zlib decompression ≈ 118.9 MB/s.
A5. Fig. 8: BF3 C-Engine beats BF2's on DEFLATE decompression by 1.78x
    at 5.1 MB and 1.28x at 48.84 MB ⇒ two equations, two unknowns:
    BF3 job overhead ≈ 0.161 ms, throughput ≈ 4047 MB/s.
A6. §V-D: BF3 SoC designs reduce communication time by up to 40% vs BF2
    ⇒ SoC throughput scale 1.67x (A78 vs A72), applied uniformly.
A7. Fig. 7: DOCA init + buffer preparation ≈ 94% of a naive 5.1 MB
    C-Engine compress+decompress ⇒ DOCA session init 45 ms, an 8 ms
    fixed inventory cost, and DMA-map registration ≈ 1.7 GB/s.
A8. Fig. 9 / Fig. 10f: SZ3 at ≈ 90 MB/s compress / 180 MB/s decompress
    on the BF2 SoC with ~10% of time in the lossless backend stage
    makes (i) BF2's SoC and C-Engine-assisted SZ3 paths land within a
    few percent of each other (Fig. 9a "comparable"), (ii) the BF3 SoC
    beat the BF3 C-Engine path by ~1.6x at 10 MB (paper: 1.58x, the
    fallback SoC-DEFLATE backend being slower than the zstd-class
    native backend), and (iii) the Fig. 10f latency reduction land near
    the paper's 47-48%.

Conventions: throughputs in bytes/second, overheads in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dpu.specs import BLUEFIELD3, Algo, Direction, DpuSpec

__all__ = ["Calibration", "calibration_for", "CAL_BF2", "CAL_BF3"]

_MB = 1e6


@dataclass(frozen=True)
class Calibration:
    """Speed constants for one DPU generation."""

    # SoC codec throughput (bytes/s), keyed by (algo, direction).
    soc_throughput: dict[tuple[Algo, Direction], float]
    # C-Engine codec throughput (bytes/s) for natively supported ops.
    cengine_throughput: dict[tuple[Algo, Direction], float]
    # Fixed C-Engine job overheads (s), per direction (A2/A3).
    cengine_overhead: dict[Direction, float]
    # SoC checksum/header stream rate (adler32, zlib/PEDAL headers).
    soc_checksum_throughput: float
    # One-time DOCA session initialisation (s) — hoisted by PEDAL_Init.
    doca_init_time: float
    # Fixed buffer-inventory/creation cost per naive op (s).
    buffer_fixed_time: float
    # Fraction of SZ3 SoC time spent in the lossless backend stage (A8).
    sz3_lossless_fraction: float = 0.10
    # SoC DEFLATE throughput when compressing SZ3's entropy-coded
    # payload (the BF3 fallback path).  Huffman-coded bytes offer few
    # long matches, so DEFLATE runs near its fast path — calibrated per
    # A8 so the BF3 SoC-vs-C-Engine gap lands at the paper's ~1.58x.
    sz3_backend_deflate_throughput: float = 50.0 * _MB

    def soc_time(self, algo: Algo, direction: Direction, nbytes: float) -> float:
        """SoC codec execution time."""
        return nbytes / self.soc_throughput[(algo, direction)]

    def cengine_time(self, algo: Algo, direction: Direction, nbytes: float) -> float:
        """C-Engine codec execution time (excluding queueing)."""
        return self.cengine_overhead[direction] + nbytes / self.cengine_throughput[
            (algo, direction)
        ]

    def checksum_time(self, nbytes: float) -> float:
        return nbytes / self.soc_checksum_throughput


_BF2_SOC = {
    # A1 anchors.
    (Algo.DEFLATE, Direction.COMPRESS): 25.0 * _MB,
    (Algo.DEFLATE, Direction.DECOMPRESS): 180.0 * _MB,
    # A4: solved from the 84.6x / 20x zlib factors.
    (Algo.ZLIB, Direction.COMPRESS): 26.33 * _MB,
    (Algo.ZLIB, Direction.DECOMPRESS): 118.9 * _MB,
    # LZ4's speed class on an A72 (lz4 -1): fast compress, very fast
    # decompress; the absolute values only need to keep LZ4-on-SoC well
    # below the wire rate (Fig. 10c shape).
    (Algo.LZ4, Direction.COMPRESS): 200.0 * _MB,
    (Algo.LZ4, Direction.DECOMPRESS): 700.0 * _MB,
    # A8: SZ3 single-core speed class on the A72.
    (Algo.SZ3, Direction.COMPRESS): 90.0 * _MB,
    (Algo.SZ3, Direction.DECOMPRESS): 180.0 * _MB,
    # Adaptive-context range coder (post-paper EDPC-style backend):
    # byte-serial entropy coding with a context-model stage, an order
    # of magnitude below DEFLATE on the A72.  Modeling vectorizes
    # better than coding, so decode (model batched per chunk) edges
    # out encode slightly.
    (Algo.AC, Direction.COMPRESS): 12.0 * _MB,
    (Algo.AC, Direction.DECOMPRESS): 15.0 * _MB,
}

#: Fraction of the ``ac`` SoC codec time spent in the context-model
#: stage (the rest is the range coder).  Measured operating point of
#: the chunk-vectorized model vs the byte-serial coder; used by
#: :mod:`repro.sched.decoupled` to split the two pipeline stages.
AC_MODEL_FRACTION = 0.55

CAL_BF2 = Calibration(
    soc_throughput=_BF2_SOC,
    cengine_throughput={
        (Algo.DEFLATE, Direction.COMPRESS): 2908.0 * _MB,  # A2
        (Algo.DEFLATE, Direction.DECOMPRESS): 3333.0 * _MB,  # A3
    },
    cengine_overhead={
        Direction.COMPRESS: 0.25e-3,  # A2
        Direction.DECOMPRESS: 1.0e-3,  # A3
    },
    soc_checksum_throughput=10e9,  # A4
    doca_init_time=45e-3,  # A7
    buffer_fixed_time=8e-3,  # A7
)

CAL_BF3 = Calibration(
    # A6: uniform 1.67x SoC scale.
    soc_throughput={
        key: value * BLUEFIELD3.soc.perf_scale for key, value in _BF2_SOC.items()
    },
    cengine_throughput={
        # A5: solved from the 1.78x / 1.28x DEFLATE decompression gaps.
        (Algo.DEFLATE, Direction.DECOMPRESS): 4047.0 * _MB,
        # LZ4 decompression is the other native BF3 capability; same
        # engine generation, same speed class.
        (Algo.LZ4, Direction.DECOMPRESS): 4047.0 * _MB,
    },
    cengine_overhead={
        Direction.COMPRESS: 0.161e-3,  # A5 (unused natively: no compress)
        Direction.DECOMPRESS: 0.161e-3,  # A5
    },
    soc_checksum_throughput=10e9 * BLUEFIELD3.soc.perf_scale,
    doca_init_time=45e-3,
    # DDR5 registration is proportionally faster (specs carry the 4.2x
    # memory factor), but inventory creation is still fixed-cost.
    buffer_fixed_time=8e-3,
    sz3_backend_deflate_throughput=50.0 * _MB * BLUEFIELD3.soc.perf_scale,
)


def calibration_for(spec: DpuSpec) -> Calibration:
    """The calibration bound to a device spec."""
    if spec.generation == 2:
        return CAL_BF2
    if spec.generation == 3:
        return CAL_BF3
    raise ValueError(f"no calibration for {spec.name}")
