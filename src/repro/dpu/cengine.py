"""C-Engine: the BlueField hardware compression accelerator.

A single-server FIFO device (jobs submitted through DOCA work queues
execute one at a time), with the capability matrix of the owning device
generation (paper Table II).  Unsupported (algo, direction) submissions
raise :class:`~repro.errors.DocaCapabilityError` — PEDAL's registry
catches this class of condition *before* submission and falls back to
the SoC (paper §III-D), but direct DOCA users hit the error.
"""

from __future__ import annotations

from typing import Generator

from repro.dpu.calibration import Calibration
from repro.dpu.specs import Algo, Direction, DpuSpec
from repro.errors import DocaCapabilityError
from repro.sim import Environment, Resource

__all__ = ["CEngine"]


class CEngine:
    """The hardware compression engine of one DPU."""

    def __init__(self, env: Environment, spec: DpuSpec, cal: Calibration) -> None:
        self.env = env
        self.spec = spec
        self.cal = cal
        self.queue = Resource(env, capacity=1)
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    def supports(self, algo: Algo, direction: Direction) -> bool:
        """Native DOCA support for (algo, direction) on this device."""
        return self.spec.cengine_supports(algo, direction)

    def job_time(self, algo: Algo, direction: Direction, nbytes: int) -> float:
        """Execution time of one job (submission overhead + transfer)."""
        if not self.supports(algo, direction):
            raise DocaCapabilityError(
                f"{self.spec.name} C-Engine does not support "
                f"{algo.value} {direction.value}"
            )
        return self.cal.cengine_time(algo, direction, nbytes)

    def submit(
        self, algo: Algo, direction: Direction, nbytes: int
    ) -> Generator:
        """Queue and execute one job; returns the job duration.

        The duration returned excludes queueing delay (callers measure
        wall time from the environment clock if they need it).
        """
        seconds = self.job_time(algo, direction, nbytes)  # may raise
        req = self.queue.request()
        yield req
        try:
            yield self.env.timeout(seconds)
            self.jobs_completed += 1
            self.busy_seconds += seconds
        finally:
            self.queue.release(req)
        return seconds
