"""C-Engine: the BlueField hardware compression accelerator.

A single-server FIFO device (jobs submitted through DOCA work queues
execute one at a time), with the capability matrix of the owning device
generation (paper Table II).  Unsupported (algo, direction) submissions
raise :class:`~repro.errors.DocaCapabilityError` — PEDAL's registry
catches this class of condition *before* submission and falls back to
the SoC (paper §III-D), but direct DOCA users hit the error.

Each executed job emits a ``cengine.compress`` / ``cengine.decompress``
tracing span and feeds the job counter plus queue-wait histogram when
observability is enabled (see :mod:`repro.obs`).

When a fault plan is installed (:mod:`repro.faults`), job execution
consults it: a job may fail with a DOCA error code after burning part
of its nominal time, stall — holding the engine ``stall_factor`` times
longer before surfacing a timeout — or run degraded.  All of it is
deterministic per (plan seed, device, algo, direction, sim time); with
no plan (or zero probabilities) this path adds no simulation events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.dpu.calibration import Calibration
from repro.dpu.specs import Algo, Direction, DpuSpec
from repro.errors import DocaCapabilityError, DocaJobError, DocaTimeoutError
from repro.faults.plan import KIND_DEGRADE, KIND_FAIL, KIND_STALL, get_fault_plan
from repro.obs import device_span, get_metrics
from repro.obs.metrics import SIM_SECONDS_BUCKETS
from repro.sim import Environment, Resource

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU

__all__ = ["CEngine"]


class CEngine:
    """The hardware compression engine of one DPU."""

    def __init__(self, env: Environment, spec: DpuSpec, cal: Calibration) -> None:
        self.env = env
        self.spec = spec
        self.cal = cal
        self.queue = Resource(env, capacity=1, obs_name="cengine")
        self.jobs_completed = 0
        self.busy_seconds = 0.0
        # Back-reference set by the owning BlueFieldDPU so job spans land
        # on the device's trace track (nested under PEDAL op spans).
        self.owner: "BlueFieldDPU | None" = None

    @property
    def name(self) -> str:
        """Track label when the engine is used without an owning device."""
        return f"{self.spec.name} C-Engine"

    def supports(self, algo: Algo, direction: Direction) -> bool:
        """Native DOCA support for (algo, direction) on this device."""
        return self.spec.cengine_supports(algo, direction)

    def job_time(self, algo: Algo, direction: Direction, nbytes: int) -> float:
        """Execution time of one job (submission overhead + transfer)."""
        if not self.supports(algo, direction):
            raise DocaCapabilityError(
                f"{self.spec.name} C-Engine does not support "
                f"{algo.value} {direction.value}"
            )
        return self.cal.cengine_time(algo, direction, nbytes)

    def submit(
        self, algo: Algo, direction: Direction, nbytes: int
    ) -> Generator:
        """Queue and execute one job; returns the job duration.

        The duration returned excludes queueing delay (callers measure
        wall time from the environment clock if they need it).  Under an
        installed fault plan a job may instead raise
        :class:`~repro.errors.DocaJobError` (engine error code) or
        :class:`~repro.errors.DocaTimeoutError` (stall) — both carry the
        sim seconds the engine was held so retry layers can account for
        the wasted time.
        """
        seconds = self.job_time(algo, direction, nbytes)  # may raise
        anchor = self.owner if self.owner is not None else self
        with device_span(
            f"cengine.{direction.value}",
            anchor,
            algo=algo.value,
            bytes=nbytes,
            device=self.spec.name,
        ) as span:
            req = self.queue.request()
            yield req
            wait = self.env.now - req.requested_at
            metrics = get_metrics()
            if metrics.recording:
                metrics.inc("cengine.jobs")
                metrics.inc(f"cengine.bytes.{direction.value}", float(nbytes))
                metrics.observe("cengine.queue_wait_s", wait, SIM_SECONDS_BUCKETS)
            if wait > 0:
                span.set_attr("queue_wait_s", wait)
            plan = get_fault_plan()
            decision = (
                plan.engine_job(self.spec.name, algo.value, direction.value,
                                self.env.now)
                if plan.active
                else None
            )
            try:
                if decision is not None and decision.is_fault:
                    span.set_attr("fault", decision.kind)
                    if decision.kind == KIND_FAIL:
                        held = seconds * plan.config.fail_latency_fraction
                        yield self.env.timeout(held)
                        self.busy_seconds += held
                        raise DocaJobError(
                            f"{self.spec.name} C-Engine job failed",
                            code=decision.code, sim_seconds=held,
                        )
                    if decision.kind == KIND_STALL:
                        held = seconds * decision.factor
                        yield self.env.timeout(held)
                        self.busy_seconds += held
                        raise DocaTimeoutError(
                            f"{self.spec.name} C-Engine job stalled "
                            f"({decision.factor:g}x past nominal)",
                            sim_seconds=held,
                        )
                    assert decision.kind == KIND_DEGRADE
                    seconds *= decision.factor
                yield self.env.timeout(seconds)
                self.jobs_completed += 1
                self.busy_seconds += seconds
            finally:
                self.queue.release(req)
        return seconds
