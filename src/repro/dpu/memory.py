"""DPU memory cost model: plain allocation vs DOCA DMA mapping.

Two distinct costs matter for the paper's Fig. 7 story:

* plain buffer allocation — cheap (a fixed malloc cost plus a stream
  touch of the buffer);
* DOCA buffer preparation — expensive: creating a buffer inventory and
  registering (pinning + IOMMU-mapping) memory so the C-Engine can DMA
  it.  Registration runs at :attr:`MemorySpec.map_bandwidth`, an order
  of magnitude below stream bandwidth.

PEDAL's memory pool (paper §III-C) pays these costs once at init and
reuses the buffers; the naive baseline pays them per operation.
"""

from __future__ import annotations

from repro.dpu.specs import MemorySpec

__all__ = ["MemoryModel"]

_MALLOC_FIXED = 20e-6  # glibc-class large-allocation fixed cost


class MemoryModel:
    """Cost model for buffer operations on one DPU's DRAM."""

    def __init__(self, spec: MemorySpec, buffer_fixed_time: float) -> None:
        self.spec = spec
        self.buffer_fixed_time = buffer_fixed_time

    def alloc_time(self, nbytes: int) -> float:
        """Plain allocation + first-touch of ``nbytes``."""
        return _MALLOC_FIXED + nbytes / self.spec.stream_bandwidth

    def dma_map_time(self, nbytes: int) -> float:
        """Register ``nbytes`` for C-Engine DMA (pin + map)."""
        return nbytes / self.spec.map_bandwidth

    def doca_buffer_prep_time(self, nbytes_mapped: int) -> float:
        """Naive per-op DOCA buffer preparation.

        Inventory creation (fixed) + allocation + registration of all
        source/destination buffers.
        """
        return (
            self.buffer_fixed_time
            + self.alloc_time(nbytes_mapped)
            + self.dma_map_time(nbytes_mapped)
        )

    def copy_time(self, nbytes: int) -> float:
        """Stream copy of ``nbytes`` through DRAM."""
        return nbytes / self.spec.stream_bandwidth
