"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the major
subsystems: codecs, the DOCA-like SDK, the PEDAL core, the simulated MPI
runtime, and the discrete-event simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Codec errors
# ---------------------------------------------------------------------------

class CodecError(ReproError):
    """Base class for compression/decompression failures."""


class CorruptStreamError(CodecError):
    """The compressed stream violates its format specification."""


class ChecksumMismatchError(CorruptStreamError):
    """A stored integrity checksum does not match the recomputed value."""

    def __init__(self, kind: str, expected: int, actual: int) -> None:
        super().__init__(
            f"{kind} checksum mismatch: stored=0x{expected:08x} computed=0x{actual:08x}"
        )
        self.kind = kind
        self.expected = expected
        self.actual = actual


class OutputOverflowError(CodecError):
    """Decompressed output exceeded the caller-provided bound."""


# ---------------------------------------------------------------------------
# Streaming-container errors (repro.stream)
# ---------------------------------------------------------------------------

class StreamError(CodecError):
    """Base class for streaming Compressor/Decompressor failures."""


class StreamStateError(StreamError):
    """A streaming object was used out of protocol order (feed after
    flush, flush twice, reading a result before flush, ...)."""


class StreamTruncatedError(StreamError, CorruptStreamError):
    """The container ended mid-frame: more bytes were promised by the
    framing than were ever fed.  Raised by ``Decompressor.flush`` —
    truncation is detectable only at end-of-input, never by waiting."""


class StreamCorruptError(StreamError, CorruptStreamError):
    """The container violates the RST1 framing specification (bad
    magic, unknown frame kind, impossible lengths, trailing garbage)."""


class StreamChecksumError(StreamError, ChecksumMismatchError):
    """A per-chunk or whole-stream CRC stored in the container does not
    match the recomputed value."""


class ErrorBoundViolation(CodecError):
    """A lossy codec produced reconstruction error above the configured bound."""


class UnsupportedDataError(CodecError):
    """The codec cannot handle the supplied data shape or dtype."""


# ---------------------------------------------------------------------------
# DOCA-like SDK errors
# ---------------------------------------------------------------------------

class DocaError(ReproError):
    """Base class for errors from the simulated DOCA SDK."""


class DocaNotInitializedError(DocaError):
    """A DOCA operation was attempted before session initialization."""


class DocaCapabilityError(DocaError):
    """The device's C-Engine does not support the requested operation."""


class DocaBufferError(DocaError):
    """Invalid buffer handle, exhausted inventory, or bad mapping."""


class DocaTransientError(DocaError):
    """A retryable DOCA failure (the job may succeed if resubmitted).

    ``sim_seconds`` records how long the failing operation occupied the
    hardware before the error surfaced, so retry layers can charge the
    wasted time to the right breakdown phase.
    """

    def __init__(self, message: str, sim_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.sim_seconds = sim_seconds


class DocaJobError(DocaTransientError):
    """A submitted C-Engine job completed with a DOCA error code."""

    def __init__(self, message: str, code: int = 1,
                 sim_seconds: float = 0.0) -> None:
        super().__init__(f"{message} (DOCA_ERROR {code})", sim_seconds)
        self.code = code


class DocaTimeoutError(DocaTransientError):
    """A C-Engine job stalled past the caller's completion deadline."""


class DocaInitError(DocaTransientError):
    """DOCA device/context/workq bring-up failed."""


# ---------------------------------------------------------------------------
# PEDAL core errors
# ---------------------------------------------------------------------------

class PedalError(ReproError):
    """Base class for errors raised by the PEDAL library core."""


class PedalNotInitializedError(PedalError):
    """PEDAL_compress/PEDAL_decompress called before PEDAL_init."""


class UnknownDesignError(PedalError):
    """An unknown compression design or AlgoID was requested."""


class HeaderError(PedalError):
    """The 3-byte PEDAL message header is malformed."""


class PoolLifecycleError(PedalError):
    """A memory-pool buffer was released twice, released to a pool that
    never issued it, or the pool was drained with buffers outstanding."""


# ---------------------------------------------------------------------------
# Serving-layer errors
# ---------------------------------------------------------------------------

class ServeError(ReproError):
    """Base class for errors raised by the serving gateway."""


class AdmissionError(ServeError):
    """A request was submitted to a gateway that cannot accept it
    (e.g. waiting on a ticket the gateway shed)."""


class NoLatencySamplesError(ServeError, ValueError):
    """A latency percentile was requested before any request completed.

    Subclasses :class:`ValueError` for backward compatibility with
    callers that treated the empty-sample case as a value error.
    """


class NoCapableWorkerError(ServeError):
    """No live worker in the fleet can serve the requested (direction,
    algo) — either every capable worker died or the pool is empty.

    Replaces the bare ``IndexError``/``ZeroDivisionError`` routers used
    to raise when the capable set was empty, so gateway failure paths
    can distinguish a routing dead-end from a programming error.
    """

    def __init__(self, direction: str = "", algo: object = None,
                 message: str = "") -> None:
        if not message:
            what = f"{direction} {getattr(algo, 'name', algo)}".strip()
            message = f"no live worker capable of {what or 'request'}"
        super().__init__(message)
        self.direction = direction
        self.algo = algo


class WorkerDiedError(ServeError):
    """The worker executing a batch died before the batch completed.

    Carries enough context for failover layers to re-dispatch the batch
    to a surviving replica.
    """

    def __init__(self, worker_name: str) -> None:
        super().__init__(f"worker {worker_name} died mid-batch")
        self.worker_name = worker_name


# ---------------------------------------------------------------------------
# Cluster errors
# ---------------------------------------------------------------------------

class ClusterError(ReproError):
    """Base class for errors raised by the sharded serving cluster."""


class ShardMapError(ClusterError):
    """Invalid shard-map operation (unknown worker, empty ring, stale epoch)."""


# ---------------------------------------------------------------------------
# Simulator errors
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class SimDeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


# ---------------------------------------------------------------------------
# MPI errors
# ---------------------------------------------------------------------------

class MpiError(ReproError):
    """Base class for simulated-MPI errors."""


class MpiConfigError(MpiError):
    """The communication-layer configuration is internally inconsistent
    (e.g. ``rndv_threshold`` != ``eager_threshold``, which would produce
    compressed-eager or uncompressed-rendezvous messages)."""


class MpiAbortError(MpiError):
    """A rank called MPI_Abort or raised inside the simulated job."""

    def __init__(self, rank: int, reason: str) -> None:
        super().__init__(f"rank {rank} aborted: {reason}")
        self.rank = rank
        self.reason = reason


class MpiTruncationError(MpiError):
    """An incoming message is larger than the posted receive buffer."""
