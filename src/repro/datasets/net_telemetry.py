"""Hypersparse network-telemetry stream generator.

The GraphBLAS-on-DPU line of work (PAPERS.md) streams network traffic
as *hypersparse* adjacency updates: traffic matrices over the full
32-bit address space where the number of observed (src, dst) pairs is
vanishingly small relative to the matrix, endpoint popularity is
Zipf-heavy, and most counter space is zeros.  This generator emits a
byte-faithful stand-in for one telemetry window:

* a sorted coordinate block — delta-encoded u32 (src, dst) pairs whose
  high bytes are almost always zero (small deltas dominate a sorted
  hypersparse coordinate list);
* a packet-count block — Zipf-distributed u32 counters, overwhelmingly
  1–3 packets, again zero in the high bytes;
* a histogram block — fixed-width degree-histogram regions that are
  mostly zero runs with a few hot buckets.

The mix is extremely compressible but *not* trivially so (the low
bytes carry real entropy), which is exactly what stresses the ratio
model and the select crossover cache: a naive estimator that assumes
text-like or float-like statistics misprices it badly, and the
streaming fabric path sees long zero runs punctuated by dense bursts.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import rng_for

__all__ = ["generate_net_telemetry"]

# Block mix (fractions of the requested byte budget).
_COORD_FRACTION = 0.5
_COUNT_FRACTION = 0.25  # histogram block takes the remainder


def _zipf_counts(rng: np.random.Generator, n: int) -> np.ndarray:
    """Zipf-ish packet counters: almost all tiny, a heavy tail."""
    raw = rng.zipf(1.7, size=n)
    return np.minimum(raw, 1_000_000).astype(np.uint32)


def generate_net_telemetry(nbytes: int) -> bytes:
    """Deterministic hypersparse telemetry bytes (~``nbytes`` long)."""
    rng = rng_for("net_telemetry", nbytes)
    out = bytearray()

    # -- sorted coordinate block (delta-encoded u32 pairs) ---------------
    n_pairs = max(nbytes * _COORD_FRACTION / 8, 16)
    n_pairs = int(n_pairs)
    # Zipf endpoint popularity: a few talkers dominate, so the sorted
    # (src, dst) list clusters and its deltas are tiny.
    src = np.minimum(rng.zipf(1.3, size=n_pairs), 2**31).astype(np.uint32)
    dst = np.minimum(rng.zipf(1.3, size=n_pairs), 2**31).astype(np.uint32)
    keys = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
    keys.sort()
    deltas = np.diff(keys, prepend=keys[:1]).astype(np.uint64)
    coord = np.empty(n_pairs * 2, dtype=np.uint32)
    coord[0::2] = (deltas >> np.uint64(32)).astype(np.uint32)  # ~all zero
    coord[1::2] = (deltas & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    out += coord.tobytes()

    # -- packet-count block ----------------------------------------------
    n_counts = max(int(nbytes * _COUNT_FRACTION / 4), 16)
    out += _zipf_counts(rng, n_counts).tobytes()

    # -- histogram block: mostly-zero regions with hot buckets -----------
    remaining = max(nbytes - len(out), 16)
    hist = np.zeros(remaining, dtype=np.uint8)
    n_hot = max(remaining // 256, 4)  # ~0.4% occupancy
    hot_at = rng.integers(0, remaining, size=n_hot)
    hist[hot_at] = rng.integers(1, 255, size=n_hot).astype(np.uint8)
    out += hist.tobytes()

    return bytes(out[:nbytes])
