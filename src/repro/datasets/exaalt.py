"""Synthetic EXAALT molecular-dynamics fields (SDRBench stand-ins).

EXAALT datasets are per-particle state snapshots from large MD runs:
single-precision values that are smooth along the particle index within
a species block, with thermal jitter on top.  SZ3 at the paper's 1e-4
absolute error bound reaches ratios ≈2.9–5.8 on them (Table V(b)); the
jitter amplitude below is tuned per dataset so our SZ3 lands in that
band, with dataset1 the least compressible (paper: 2.94) and dataset3
the most (5.75).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import rng_for

__all__ = ["generate_exaalt"]

# Per-dataset trajectory roughness: (jitter sigma, smooth wavelengths),
# tuned against our SZ3 at eb=1e-4 toward Table V(b)'s 2.94/5.38/5.75.
_PROFILES = {
    1: (1.3e-2, (4000.0, 17000.0)),   # hottest ensemble -> lowest ratio
    2: (1.9e-3, (9000.0, 34000.0)),
    3: (1.5e-3, (10000.0, 40000.0)),  # coolest -> highest ratio
}


def generate_exaalt(index: int, nbytes: int) -> np.ndarray:
    """Generate EXAALT-like float32 data for dataset ``index`` (1..3)."""
    if index not in _PROFILES:
        raise ValueError(f"exaalt dataset index must be 1..3, got {index}")
    sigma, (w1, w2) = _PROFILES[index]
    rng = rng_for(f"exaalt{index}", nbytes)
    n = max(nbytes // 4, 64)
    t = np.arange(n, dtype=np.float64)
    # Species-block base levels: piecewise offsets every ~64k particles.
    block = (t // 65536).astype(np.int64)
    offsets = rng.uniform(-4.0, 4.0, size=int(block.max()) + 1)
    base = offsets[block]
    field = (
        base
        + 1.5 * np.sin(2 * np.pi * t / w1)
        + 0.6 * np.sin(2 * np.pi * t / w2 + 1.3)
        + rng.normal(0.0, sigma, size=n)
    )
    return field.astype(np.float32)
