"""Synthetic Silesia-corpus stand-ins: xml, mr, samba, mozilla.

Target lossless ratios (paper Table V(a), DEFLATE): xml 7.77,
samba 3.96, mr 2.71, mozilla 2.68.  The generators below are tuned so
our DEFLATE lands in the same band and, critically, in the same
*order*.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import (
    markov_text,
    rng_for,
    smooth_field_2d,
    weighted_bytes,
    zipf_vocabulary,
)

__all__ = ["generate_xml", "generate_mr", "generate_samba", "generate_mozilla"]


def generate_xml(nbytes: int) -> bytes:
    """Markup text: nested elements, a small tag vocabulary, repetitive
    attribute structure — the most compressible dataset of the suite."""
    rng = rng_for("silesia/xml", nbytes)
    tags = [b"entry", b"title", b"author", b"year", b"journal", b"pages",
            b"volume", b"booktitle", b"url", b"ee", b"cite"]
    # Tuned: DEFLATE ~7.5 at 256 KiB (paper: 7.77).
    words, probs = zipf_vocabulary(rng, 80, alpha=1.8)
    out = bytearray(b'<?xml version="1.0" encoding="ISO-8859-1"?>\n<dblp>\n')
    serial = 0
    while len(out) < nbytes:
        tag = tags[int(rng.integers(0, len(tags)))]
        serial += 1
        out += b'<' + tag + b' key="conf/rec/' + str(serial).encode() + b'" mdate="2002-01-03">'
        n_inner = int(rng.integers(1, 4))
        for _ in range(n_inner):
            inner = tags[int(rng.integers(0, len(tags)))]
            body = markov_text(rng, int(rng.integers(12, 60)), words, probs)
            out += b'<' + inner + b'>' + body.strip() + b'</' + inner + b'>'
        out += b'</' + tag + b'>\n'
    out += b"</dblp>\n"
    return bytes(out[:nbytes])


def generate_mr(nbytes: int) -> bytes:
    """Magnetic-resonance volume: 12-bit little-endian samples, smooth
    anatomy-like blobs over a noisy background (DICOM payload style)."""
    rng = rng_for("silesia/mr", nbytes)
    n_samples = nbytes // 2
    side = max(int(np.sqrt(n_samples)), 8)
    rows = (n_samples + side - 1) // side
    # Tuned: DEFLATE ~2.8 at 256 KiB (paper: 2.71).  The air/background
    # outside the anatomy thresholds to exact zero, which is where most
    # of a real MR volume's redundancy lives.
    field = smooth_field_2d(rng, (rows, side), n_blobs=16, noise=0.008)
    field[field < 0.38] = 0.0
    samples = (field * 4095.0).astype(np.uint16).reshape(-1)[:n_samples]
    header = b"DICM" + bytes(124)  # token preamble
    body = samples.astype("<u2").tobytes()
    return (header + body)[:nbytes]


def generate_samba(nbytes: int) -> bytes:
    """Source-code tarball: C-like functions with a shared identifier
    vocabulary and heavy keyword repetition."""
    rng = rng_for("silesia/samba", nbytes)
    # Tuned: DEFLATE ~3.9 at 256 KiB (paper: 3.96); 8% of the archive is
    # an image-like section (the corpus file mixes code and graphics).
    idents, probs = zipf_vocabulary(rng, 500, alpha=1.15)
    keywords = [b"static", b"int", b"char", b"return", b"if", b"else",
                b"struct", b"void", b"const", b"uint32_t", b"NULL", b"for"]
    out = bytearray()
    code_budget = int(nbytes * 0.92)
    while len(out) < code_budget:
        fn = idents[int(rng.integers(0, len(idents)))]
        out += b"static int " + fn + b"(struct context *ctx, const char *name)\n{\n"
        for _ in range(int(rng.integers(3, 10))):
            kw = keywords[int(rng.integers(0, len(keywords)))]
            a = idents[int(rng.integers(0, len(idents)))]
            b = idents[int(rng.integers(0, len(idents)))]
            choice = int(rng.integers(0, 3))
            if choice == 0:
                out += b"\tif (" + a + b" == NULL) {\n\t\treturn -1;\n\t}\n"
            elif choice == 1:
                out += b"\t" + kw + b" " + a + b" = " + b + b"->" + a + b";\n"
            else:
                out += (
                    b"\t" + a + b" = talloc_strdup(ctx, " + b + b");\n"
                )
        out += b"\treturn 0;\n}\n\n"
    # Graphics section: byte histogram with an exponential skew
    # (image-like, partially compressible).
    gfx_weights = np.exp(-np.arange(256) / 40.0)
    out += weighted_bytes(rng, max(nbytes - len(out), 0), gfx_weights)
    return bytes(out[:nbytes])


def generate_mozilla(nbytes: int) -> bytes:
    """Executable image: machine-code-like sections with a skewed opcode
    histogram and short repeated instruction idioms, a string table, and
    a high-entropy resource section."""
    rng = rng_for("silesia/mozilla", nbytes)
    out = bytearray(b"\x7fELF" + bytes(60))

    # Tuned: DEFLATE ~2.65 at 256 KiB (paper: 2.68).
    code_budget = int(nbytes * 0.72)
    strtab_budget = int(nbytes * 0.24)

    # Code section: common idiom snippets interleaved with skewed bytes.
    idioms = [
        bytes.fromhex("5548 89e5 4883 ec20".replace(" ", "")),
        bytes.fromhex("4889 7df8 8b45 f8".replace(" ", "")),
        bytes.fromhex("c9c3 0f1f 4000".replace(" ", "")),
        bytes.fromhex("e800 0000 00".replace(" ", "")),
        bytes.fromhex("4c89 e7e8".replace(" ", "")),
    ]
    weights = np.ones(256)
    weights[[0x00, 0x48, 0x89, 0x8B, 0xE8, 0x0F, 0xFF, 0x24, 0x45]] = 120.0
    code = bytearray()
    while len(code) < code_budget:
        code += idioms[int(rng.integers(0, len(idioms)))]
        code += weighted_bytes(rng, int(rng.integers(2, 5)), weights)
    out += code[:code_budget]

    # String table: library symbol-ish names.
    idents, probs = zipf_vocabulary(rng, 300, alpha=1.2)
    prefixes = [b"_ZN7mozilla", b"NS_", b"JS_", b"nsI", b"PR_"]
    strtab = bytearray()
    while len(strtab) < strtab_budget:
        strtab += prefixes[int(rng.integers(0, len(prefixes)))]
        strtab += idents[int(rng.integers(0, len(idents)))]
        strtab += idents[int(rng.integers(0, len(idents)))]
        strtab += b"\x00"
    out += strtab[:strtab_budget]

    # Resource/data section: poorly compressible.
    out += rng.bytes(max(nbytes - len(out), 0))
    return bytes(out[:nbytes])
