"""Synthetic ``obs_error``: brightness-temperature observation errors.

The FPC corpus's ``obs_error`` is single-precision IEEE floats of
weather-satellite brightness-temperature *errors*: values in a narrow
physical band, dominated by noisy mantissas with correlated exponents —
which is why lossless codecs achieve only ≈1.2–1.5x on it (paper
Table V(a): DEFLATE 1.469, LZ4 1.204).

Model: a slowly varying scan-line bias plus heavy per-observation noise,
emitted as little-endian float32.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import rng_for

__all__ = ["generate_obs_error"]


def generate_obs_error(nbytes: int) -> bytes:
    rng = rng_for("obs_error", nbytes)
    n = max(nbytes // 4, 16)
    t = np.arange(n, dtype=np.float64)
    # Scan-line bias: a few slow oscillations across the trace.
    bias = 0.8 * np.sin(2 * np.pi * t / 9973.0) + 0.3 * np.sin(
        2 * np.pi * t / 1117.0
    )
    values = bias + rng.normal(0.0, 1.0, size=n)
    # Sensor quantisation: the instrument reports on a fixed grid, which
    # leaves partial mantissa redundancy — tuned so DEFLATE lands ~1.48
    # at 256 KiB (paper: 1.469).
    values = np.round(values * 3000.0) / 3000.0
    values = values.astype("<f4")
    # A fraction of exact zeros (quality-flagged observations).
    zero_mask = rng.random(n) < 0.02
    values[zero_mask] = 0.0
    return values.tobytes()[:nbytes]
