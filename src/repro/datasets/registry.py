"""The Table IV dataset registry.

Each entry records the paper's nominal size (what the simulated cost
model charges for) and generates deterministic synthetic bytes at a
configurable actual size (what the real codecs compress).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.datasets import exaalt, net_telemetry, obs_error, silesia

__all__ = [
    "Dataset",
    "DATASETS",
    "get_dataset",
    "lossless_datasets",
    "lossy_datasets",
    "DEFAULT_ACTUAL_BYTES",
]

_MB = 1e6

# Default actual generation budget: large enough that ratios converge
# for these data classes, small enough for the pure-Python codecs.
DEFAULT_ACTUAL_BYTES = 256 * 1024


@dataclass(frozen=True)
class Dataset:
    """One benchmark dataset (paper Table IV row)."""

    key: str
    description: str
    nominal_bytes: float  # the paper's dataset size
    kind: str  # "lossless" | "lossy"
    _generator: Callable[[int], Any]

    @property
    def nominal_mb(self) -> float:
        return self.nominal_bytes / _MB

    def generate(self, actual_bytes: int | None = None) -> Any:
        """Deterministic synthetic data (bytes, or float32 ndarray for
        lossy datasets)."""
        budget = DEFAULT_ACTUAL_BYTES if actual_bytes is None else actual_bytes
        if budget <= 0:
            raise ValueError("actual_bytes must be positive")
        return self._generator(budget)

    def sim_scale(self, actual_bytes: int) -> float:
        """Nominal/actual scale factor for the cost model."""
        return self.nominal_bytes / actual_bytes

    def payload_nbytes(self, data: Any) -> int:
        if isinstance(data, np.ndarray):
            return int(data.nbytes)
        return len(data)


DATASETS: dict[str, Dataset] = {
    ds.key: ds
    for ds in [
        # -- lossless (Table IV top half, ascending size) -----------------
        Dataset(
            "silesia/xml", "XML files, text", 5.1 * _MB, "lossless",
            silesia.generate_xml,
        ),
        Dataset(
            "silesia/mr", "3-D MRI image, DICOM", 9.51 * _MB, "lossless",
            silesia.generate_mr,
        ),
        Dataset(
            "silesia/samba", "source code and graphics", 20.61 * _MB, "lossless",
            silesia.generate_samba,
        ),
        Dataset(
            "obs_error", "single float-point", 30.0 * _MB, "lossless",
            obs_error.generate_obs_error,
        ),
        Dataset(
            "silesia/mozilla", "exe", 48.85 * _MB, "lossless",
            silesia.generate_mozilla,
        ),
        # -- streaming telemetry (post-paper; GraphBLAS-on-DPU-shaped) ----
        # kind "telemetry" keeps it out of the paper-figure lossless/
        # lossy sweeps (their row counts are pinned to Table IV) while
        # the stream bench and select/ratio stress tests pick it up.
        Dataset(
            "net_telemetry", "hypersparse network-telemetry stream",
            16.0 * _MB, "telemetry", net_telemetry.generate_net_telemetry,
        ),
        # -- lossy (Table IV bottom half; paper lists 10/31/64 MB) --------
        Dataset(
            "exaalt-dataset1", "MD simulation, single float-point",
            10.0 * _MB, "lossy", lambda n: exaalt.generate_exaalt(1, n),
        ),
        Dataset(
            "exaalt-dataset3", "MD simulation, single float-point",
            31.0 * _MB, "lossy", lambda n: exaalt.generate_exaalt(3, n),
        ),
        Dataset(
            "exaalt-dataset2", "MD simulation, single float-point",
            64.0 * _MB, "lossy", lambda n: exaalt.generate_exaalt(2, n),
        ),
    ]
}


def get_dataset(key: str) -> Dataset:
    try:
        return DATASETS[key]
    except KeyError:
        raise KeyError(
            f"unknown dataset {key!r}; available: {sorted(DATASETS)}"
        ) from None


def lossless_datasets() -> list[Dataset]:
    """Lossless datasets in ascending nominal size (figure order)."""
    return sorted(
        (d for d in DATASETS.values() if d.kind == "lossless"),
        key=lambda d: d.nominal_bytes,
    )


def lossy_datasets() -> list[Dataset]:
    """Lossy datasets in ascending nominal size (figure order)."""
    return sorted(
        (d for d in DATASETS.values() if d.kind == "lossy"),
        key=lambda d: d.nominal_bytes,
    )
