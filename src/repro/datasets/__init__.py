"""Synthetic stand-ins for the paper's eight benchmark datasets.

The paper (Table IV) evaluates on the Silesia corpus (xml, mr, samba,
mozilla), the FPC ``obs_error`` trace, and three SDRBench EXAALT
molecular-dynamics fields.  Those corpora cannot be redistributed or
fetched here, so each is replaced by a deterministic generator tuned to
the same *statistical character* — markup text, smooth 12-bit medical
imagery, source code, executable sections, IEEE floats — such that the
measured compression-ratio ordering matches the paper's Table V
(xml ≫ samba > mr ≈ mozilla > obs_error for lossless; EXAALT in the
SZ3 ratio band ~3–6 at the 1e-4 error bound).

Each dataset carries the paper's *nominal* size (used by the simulated
cost model) and generates a configurable *actual* byte budget (what the
real pure-Python codecs compress); see DESIGN.md §1 "two time domains".
"""

from repro.datasets.registry import (
    DATASETS,
    Dataset,
    get_dataset,
    lossless_datasets,
    lossy_datasets,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "get_dataset",
    "lossless_datasets",
    "lossy_datasets",
]
