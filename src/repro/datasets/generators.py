"""Shared building blocks for the synthetic dataset generators.

Everything is driven by a seeded :class:`numpy.random.Generator`, so a
given (dataset, size) pair is bit-reproducible across runs and
platforms.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rng_for",
    "markov_text",
    "zipf_vocabulary",
    "smooth_field_2d",
    "weighted_bytes",
]


def rng_for(key: str, nbytes: int) -> np.random.Generator:
    """Deterministic RNG per (dataset key, size).

    ``hash()`` is process-salted for strings, so the seed is derived
    with a stable polynomial hash instead.
    """
    acc = 0
    for ch in key:
        acc = (acc * 131 + ord(ch)) % (2**31)
    return np.random.default_rng((acc << 20) ^ nbytes)


def zipf_vocabulary(rng: np.random.Generator, n_words: int, alpha: float = 1.3) -> tuple[list[bytes], np.ndarray]:
    """A vocabulary plus Zipf-ish sampling probabilities."""
    letters = np.array(list(b"abcdefghijklmnopqrstuvwxyz_"), dtype=np.uint8)
    words = []
    for _ in range(n_words):
        length = int(rng.integers(3, 12))
        words.append(bytes(rng.choice(letters, size=length)))
    ranks = np.arange(1, n_words + 1, dtype=np.float64)
    probs = ranks**-alpha
    probs /= probs.sum()
    return words, probs


def markov_text(
    rng: np.random.Generator,
    nbytes: int,
    words: list[bytes],
    probs: np.ndarray,
    separator: bytes = b" ",
    line_width: int = 72,
) -> bytes:
    """Concatenate Zipf-sampled words into text with line breaks."""
    out = bytearray()
    col = 0
    n_words = len(words)
    # Vectorised draw, then assemble.
    draws = rng.choice(n_words, size=max(nbytes // 4, 16), p=probs)
    for idx in draws:
        word = words[int(idx)]
        out += word
        col += len(word) + 1
        if col >= line_width:
            out += b"\n"
            col = 0
        else:
            out += separator
        if len(out) >= nbytes:
            break
    while len(out) < nbytes:
        out += words[int(rng.integers(0, n_words))] + separator
    return bytes(out[:nbytes])


def smooth_field_2d(
    rng: np.random.Generator, shape: tuple[int, int], n_blobs: int, noise: float
) -> np.ndarray:
    """Sum of random Gaussian blobs + white noise, in [0, 1]."""
    h, w = shape
    y, x = np.mgrid[0:h, 0:w].astype(np.float64)
    field = np.zeros(shape, dtype=np.float64)
    for _ in range(n_blobs):
        cy, cx = rng.uniform(0, h), rng.uniform(0, w)
        sy, sx = rng.uniform(h / 16, h / 4), rng.uniform(w / 16, w / 4)
        amp = rng.uniform(0.2, 1.0)
        field += amp * np.exp(
            -(((y - cy) / sy) ** 2 + ((x - cx) / sx) ** 2)
        )
    field /= max(field.max(), 1e-9)
    field += rng.normal(0.0, noise, size=shape)
    return np.clip(field, 0.0, 1.0)


def weighted_bytes(
    rng: np.random.Generator, nbytes: int, weights: np.ndarray
) -> bytes:
    """Random bytes drawn from a non-uniform distribution."""
    probs = np.asarray(weights, dtype=np.float64)
    probs = probs / probs.sum()
    return bytes(rng.choice(256, size=nbytes, p=probs).astype(np.uint8))
