"""Cost-model-driven path selection with a calibrated crossover cache.

:class:`PathSelector` answers one question: *for this (device,
algorithm, direction, size, amortization state), which capable path is
cheapest?*  Because every path cost in :class:`~repro.select.model.
CostModel` is affine in the payload size (``t = a + b*n``), the
SoC-vs-C-Engine decision reduces to a single calibrated *crossover
size* ``n* = (a_e - a_s) / (b_s - b_e)`` per (algo, direction,
amortization) — memoized, so steady-state dispatch is one dict lookup
and one comparison.

Online refinement: :meth:`PathSelector.observe` folds measured span
durations into per-(path, algo, direction) multiplicative corrections
(an EWMA of the observed/predicted ratio, clamped), and invalidates
the crossover cache so the next decision re-derives ``n*`` from the
nudged model; :meth:`PathSelector.refine_from_spans` does the same in
bulk from a :class:`repro.obs.Tracer`'s recorded ``pedal.compress`` /
``pedal.decompress`` spans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.designs import Placement
from repro.dpu.specs import Algo, Direction
from repro.select.model import ALL_PATHS, PATH_CENGINE, PATH_SOC, CostModel

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU
    from repro.obs.tracer import Tracer

__all__ = ["PathDecision", "PathSelector"]

_PLACEMENTS = {PATH_SOC: Placement.SOC, PATH_CENGINE: Placement.CENGINE}


@dataclass(frozen=True)
class PathDecision:
    """One dispatch decision and the prediction it rests on."""

    algo: Algo
    direction: Direction
    sim_bytes: float
    path: str                      # "soc" | "cengine"
    predicted_seconds: float
    costs: Mapping[str, float]     # corrected costs of every capable path
    crossover_bytes: float         # n* for this (algo, direction, amortized)
    amortized: bool
    from_cache: bool               # n* came from the memoized cache

    @property
    def placement(self) -> Placement:
        return _PLACEMENTS[self.path]


class PathSelector:
    """Cheapest-capable-path dispatch for one device.

    ``tolerance`` is the model's stated slack: the selector guarantees
    its choice is never worse than any capable path it rejected by more
    than ``tolerance`` (relative) — the property the bench gate and the
    hypothesis suite pin.  The un-refined model mirrors the simulator
    exactly, so the un-refined slack is zero; the tolerance budgets for
    corrections learned from observed spans and for SZ3's estimated
    lossless-stage size.
    """

    def __init__(
        self,
        device: "BlueFieldDPU",
        tolerance: float = 0.05,
        refine_alpha: float = 0.25,
        correction_bounds: tuple[float, float] = (0.25, 4.0),
    ) -> None:
        self.device = device
        self.model = CostModel(device)
        self.tolerance = tolerance
        self.refine_alpha = refine_alpha
        self.correction_bounds = correction_bounds
        self._corrections: dict[tuple[str, Algo, Direction], float] = {}
        self._crossover: dict[tuple[Algo, Direction, bool], float] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.observations = 0

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def correction(self, path: str, algo: Algo, direction: Direction) -> float:
        """Learned multiplicative correction for one path (1.0 = trust
        the calibration tables as-is)."""
        return self._corrections.get((path, algo, direction), 1.0)

    def predict(
        self,
        algo: Algo,
        direction: Direction,
        sim_bytes: float,
        amortized: bool = True,
        stage_bytes: float | None = None,
    ) -> dict[str, float]:
        """Corrected cost of every capable path, keyed by path name."""
        raw = self.model.path_costs(
            algo, direction, sim_bytes,
            amortized=amortized, stage_bytes=stage_bytes,
        )
        return {
            path: self.correction(path, algo, direction) * seconds
            for path, seconds in raw.items()
        }

    def _affine(
        self, algo: Algo, direction: Direction, path: str, amortized: bool
    ) -> tuple[float, float]:
        """Corrected (intercept, slope) of one path's affine cost."""
        c = self.correction(path, algo, direction)
        a = c * self.model.path_seconds(
            algo, direction, 0.0, path, amortized=amortized
        )
        t1 = c * self.model.path_seconds(
            algo, direction, 1.0, path, amortized=amortized
        )
        return a, t1 - a

    # ------------------------------------------------------------------
    # The crossover cache
    # ------------------------------------------------------------------

    def crossover_bytes(
        self, algo: Algo, direction: Direction, amortized: bool = True
    ) -> float:
        """The size above which the C-Engine path wins (``inf`` when it
        never does — notably every op the capability matrix rejects,
        e.g. BF3 compression).  Memoized per (algo, direction,
        amortized); :meth:`observe` invalidates the cache."""
        key = (algo, direction, amortized)
        cached = self._crossover.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        if not self.model.engine_capable(algo, direction):
            crossover = math.inf
        else:
            a_soc, b_soc = self._affine(algo, direction, PATH_SOC, amortized)
            a_eng, b_eng = self._affine(algo, direction, PATH_CENGINE, amortized)
            if b_eng < b_soc:
                crossover = max(0.0, (a_eng - a_soc) / (b_soc - b_eng))
            elif a_eng <= a_soc:
                crossover = 0.0    # engine at least as cheap at every size
            else:
                crossover = math.inf
        self._crossover[key] = crossover
        return crossover

    def cache_info(self) -> dict[str, int]:
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._crossover),
        }

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def choose(
        self,
        algo: Algo,
        direction: Direction,
        sim_bytes: float,
        amortized: bool = True,
        stage_bytes: float | None = None,
        allow_engine: bool = True,
    ) -> PathDecision:
        """Pick the cheapest capable path for one operation.

        ``allow_engine=False`` models a context whose DOCA bring-up
        failed (SoC-only runtime fallback).  With a measured SZ3
        ``stage_bytes`` hint the costs are compared directly (the hint
        shifts the engine path off its cached affine line); otherwise
        the memoized crossover size decides in O(1).
        """
        n = float(sim_bytes)
        engine_ok = allow_engine and self.model.engine_capable(algo, direction)
        key = (algo, direction, amortized)
        from_cache = key in self._crossover
        crossover = self.crossover_bytes(algo, direction, amortized)
        costs = self.predict(
            algo, direction, n, amortized=amortized, stage_bytes=stage_bytes
        )
        if not engine_ok:
            path = PATH_SOC
        elif stage_bytes is not None:
            # Ties prefer the engine, matching the n >= n* convention.
            path = min(ALL_PATHS, key=lambda p: (costs[p], p != PATH_CENGINE))
        else:
            path = PATH_CENGINE if n >= crossover else PATH_SOC
        return PathDecision(
            algo=algo,
            direction=direction,
            sim_bytes=n,
            path=path,
            predicted_seconds=costs[path],
            costs=costs,
            crossover_bytes=crossover,
            amortized=amortized,
            from_cache=from_cache,
        )

    # ------------------------------------------------------------------
    # Scheduler-level jobs (repro.sched / repro.serve)
    # ------------------------------------------------------------------

    def job_costs(
        self,
        algo: Algo,
        direction: Direction,
        engine_bytes: float,
        soc_bytes: float,
    ) -> dict[str, float]:
        """Corrected exec cost of one pipeline job per capable lane.

        Follows the :class:`~repro.sched.EngineJob` size conventions
        (``engine_bytes`` is what the C-Engine ingests, ``soc_bytes``
        the uncompressed size an SoC core bills).  Pipeline stage costs
        outside exec (ring-amortized buffer mapping, the drain CRC at
        the ~10 GB/s SoC checksum rate) are second-order and excluded.
        """
        costs = {
            PATH_SOC: self.correction(PATH_SOC, algo, direction)
            * self.model.soc_job_seconds(algo, direction, soc_bytes)
        }
        if self.device.cengine.supports(algo, direction):
            costs[PATH_CENGINE] = self.correction(
                PATH_CENGINE, algo, direction
            ) * self.model.engine_job_seconds(algo, direction, engine_bytes)
        return costs

    def job_engine(
        self,
        algo: Algo,
        direction: Direction,
        engine_bytes: float,
        soc_bytes: float,
    ) -> str:
        """Cheapest lane for one pipeline job ("cengine" on ties)."""
        costs = self.job_costs(algo, direction, engine_bytes, soc_bytes)
        if PATH_CENGINE in costs and costs[PATH_CENGINE] <= costs[PATH_SOC]:
            return PATH_CENGINE
        return PATH_SOC

    # ------------------------------------------------------------------
    # Online refinement
    # ------------------------------------------------------------------

    def observe(
        self,
        path: str,
        algo: Algo,
        direction: Direction,
        sim_bytes: float,
        seconds: float,
        amortized: bool = True,
        stage_bytes: float | None = None,
    ) -> float:
        """Fold one measured op duration into the model; returns the
        updated correction for (path, algo, direction)."""
        predicted = self.model.path_seconds(
            algo, direction, sim_bytes, path,
            amortized=amortized, stage_bytes=stage_bytes,
        )
        key = (path, algo, direction)
        old = self._corrections.get(key, 1.0)
        if predicted <= 0.0 or seconds <= 0.0:
            return old
        ratio = seconds / predicted
        lo, hi = self.correction_bounds
        new = min(max(old + self.refine_alpha * (ratio - old), lo), hi)
        self.observations += 1
        if new != old:
            self._corrections[key] = new
            self._crossover.clear()  # memoized crossovers are now stale
        return new

    def refine_from_spans(self, tracer: "Tracer") -> int:
        """Bulk refinement from recorded PEDAL op spans; returns the
        number of observations folded in."""
        count = 0
        for name in ("pedal.compress", "pedal.decompress"):
            for span in tracer.find(name):
                attrs = span.attrs
                if attrs.get("device") != self.device.name:
                    continue
                path = attrs.get("engine")
                if path not in ALL_PATHS:
                    continue
                try:
                    algo = Algo(attrs["algo"])
                    direction = Direction(attrs["direction"])
                    sim_bytes = float(attrs["sim_bytes"])
                except (KeyError, ValueError):
                    continue
                seconds = span.sim_duration
                if sim_bytes <= 0.0 or seconds is None or seconds <= 0.0:
                    continue
                self.observe(path, algo, direction, sim_bytes, seconds)
                count += 1
        return count
