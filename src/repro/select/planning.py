"""Chunk-split planning for the parallel compressor.

This is the engine/SoC work split :class:`~repro.core.parallel.
ParallelCompressor` dispatches — the argmin of the steady-state
makespan ``max(lane_time(k), ceil((n - k) / cores) * t_soc)`` over the
number ``k`` of chunks sent to the pipelined C-Engine lane.  It lives
in :mod:`repro.select` so every dispatch decision reads the same
calibrated cost model, but the arithmetic is kept *identical* to the
historical inline version: the regression trajectory
(``BENCH_PR3.json``) is gated bit-for-bit on the resulting splits.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from repro.dpu.specs import Algo, Direction

if TYPE_CHECKING:
    from repro.dpu.calibration import Calibration

__all__ = ["plan_engine_chunks"]


def plan_engine_chunks(
    cal: "Calibration",
    direction: Direction,
    n_chunks: int,
    chunk_bytes: float,
    cores: int,
    engine_bytes: "Sequence[float] | None" = None,
    algo: Algo = Algo.DEFLATE,
) -> int:
    """Number of chunks the C-Engine lane should take (0..n_chunks).

    ``chunk_bytes`` is the even uncompressed split each SoC core bills;
    ``engine_bytes`` optionally carries heterogeneous per-chunk engine
    sizes (the decompress direction's scaled compressed chunks), in
    which case the pipelined lane's makespan is the cumulative sum of
    the first ``k`` chunks' exec times instead of ``k`` times a
    homogeneous exec time.
    """
    soc_rate = cal.soc_throughput[(algo, direction)]
    soc_time = chunk_bytes / soc_rate
    if engine_bytes is None:
        lane_time = [
            k * cal.cengine_time(algo, direction, chunk_bytes)
            for k in range(n_chunks + 1)
        ]
    else:
        lane_time = [0.0]
        for i in range(n_chunks):
            lane_time.append(
                lane_time[-1] + cal.cengine_time(algo, direction, engine_bytes[i])
            )
    return min(
        range(n_chunks + 1),
        key=lambda k: max(
            lane_time[k], math.ceil((n_chunks - k) / cores) * soc_time
        ),
    )
