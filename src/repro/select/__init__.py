"""repro.select — cost-model-driven adaptive path selection.

The selection layer the paper's end-to-end numbers imply: every
dispatch surface (``PedalContext`` with ``path="auto"``, the serving
gateway's ``cost_aware`` router, the pipeline scheduler's cost-aware
SoC work-steal, the parallel compressor's chunk split) reads one
calibrated, affine cost model and picks the cheapest *capable* path,
with a memoized crossover-size cache for O(1) steady-state decisions
and an online-refinement hook fed by observed ``repro.obs`` spans.
"""

from repro.select.model import ALL_PATHS, PATH_CENGINE, PATH_SOC, CostModel
from repro.select.planning import plan_engine_chunks
from repro.select.selector import PathDecision, PathSelector

__all__ = [
    "ALL_PATHS",
    "PATH_CENGINE",
    "PATH_SOC",
    "CostModel",
    "PathDecision",
    "PathSelector",
    "plan_engine_chunks",
]
