"""Per-path latency prediction for one PEDAL operation.

:class:`CostModel` mirrors, in closed form, exactly what
:class:`~repro.core.api.PedalContext` charges the simulated hardware
for each (algorithm, direction, path) — the calibrated SoC/C-Engine
throughputs and job overheads of :mod:`repro.dpu.calibration`, the zlib
checksum/header stream work, SZ3's hybrid entropy + lossless-stage
split, and (when the DOCA session/buffer amortization of ``PEDAL_init``
is *not* in effect) the naive per-op DOCA init + buffer-registration
costs of :class:`~repro.core.baseline.NaiveCompressor`.

Every path cost is affine in the payload size, ``t(n) = a + b*n``
(the paper's linear cost model, §V), which is what makes the
closed-form SoC-vs-C-Engine crossover of
:class:`~repro.select.selector.PathSelector` possible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.registry import cengine_core_algo
from repro.dpu.specs import Algo, Direction

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU

__all__ = ["CostModel", "PATH_SOC", "PATH_CENGINE", "ALL_PATHS"]

# Path keys — match ResolvedDesign.engine_for() / JobOutcome.engine.
PATH_SOC = "soc"
PATH_CENGINE = "cengine"
ALL_PATHS = (PATH_SOC, PATH_CENGINE)


class CostModel:
    """Closed-form path costs for one device's calibration tables."""

    def __init__(self, device: "BlueFieldDPU") -> None:
        self.device = device
        self.cal = device.cal

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------

    def engine_capable(self, algo: Algo, direction: Direction) -> bool:
        """True when the C-Engine path is *real* for this op — the
        device natively runs the design's core algorithm (DEFLATE for
        zlib; SZ3's hybrid only needs the DEFLATE stage, which falls
        back to SoC DEFLATE when absent, so SZ3 counts as capable in
        the hybrid sense only when the stage engine exists)."""
        core = cengine_core_algo(algo)
        return self.device.cengine.supports(core, direction)

    def capable_paths(self, algo: Algo, direction: Direction) -> tuple[str, ...]:
        """The paths worth dispatching to (SoC always; C-Engine when
        the capability matrix supports the op's core algorithm)."""
        if self.engine_capable(algo, direction):
            return ALL_PATHS
        return (PATH_SOC,)

    # ------------------------------------------------------------------
    # Per-path costs
    # ------------------------------------------------------------------

    def path_seconds(
        self,
        algo: Algo,
        direction: Direction,
        sim_bytes: float,
        path: str,
        amortized: bool = True,
        stage_bytes: float | None = None,
    ) -> float:
        """Predicted sim-clock latency of one op on ``path``.

        ``amortized=True`` models the PEDAL steady state (DOCA session
        open, buffers pooled and pre-mapped); ``False`` adds the naive
        per-op DOCA init + 2x buffer registration (engine path) or the
        plain allocation (SoC path).  ``stage_bytes`` overrides SZ3's
        lossless-stage size (defaults to the n/3 estimate the runtime
        uses when no measured entropy-payload size is available).
        """
        n = float(sim_bytes)
        if path == PATH_SOC:
            base = self._soc_op(algo, direction, n)
            if not amortized:
                base += self.device.memory.alloc_time(2.0 * n)
            return base
        if path == PATH_CENGINE:
            base = self._cengine_op(algo, direction, n, stage_bytes)
            if not amortized:
                base += self.cal.doca_init_time
                base += self.device.memory.doca_buffer_prep_time(2.0 * n)
            return base
        raise ValueError(f"unknown path {path!r} (known: {ALL_PATHS})")

    def path_costs(
        self,
        algo: Algo,
        direction: Direction,
        sim_bytes: float,
        amortized: bool = True,
        stage_bytes: float | None = None,
    ) -> dict[str, float]:
        """Costs of every *capable* path, keyed by path name."""
        return {
            path: self.path_seconds(
                algo, direction, sim_bytes, path,
                amortized=amortized, stage_bytes=stage_bytes,
            )
            for path in self.capable_paths(algo, direction)
        }

    # -- the PedalContext charging conventions, in closed form ---------

    def _soc_op(self, algo: Algo, direction: Direction, n: float) -> float:
        # Native SoC design: one calibrated throughput covers the whole
        # algorithm (zlib's includes its checksum work; SZ3's covers
        # the full native pipeline with the zstd-class backend).
        return self.cal.soc_time(algo, direction, n)

    def _cengine_op(
        self, algo: Algo, direction: Direction, n: float,
        stage_bytes: float | None,
    ) -> float:
        cal = self.cal
        if algo is Algo.SZ3:
            # Hybrid design: entropy pipeline on the SoC, lossless
            # stage as a DEFLATE engine job (or the SoC DEFLATE
            # fallback on engines that lack the direction).
            total = cal.soc_time(Algo.SZ3, direction, n)
            seconds = (1.0 - cal.sz3_lossless_fraction) * total
            stage = stage_bytes if stage_bytes is not None else n / 3.0
            if self.device.cengine.supports(Algo.DEFLATE, direction):
                seconds += cal.cengine_time(Algo.DEFLATE, direction, stage)
            else:
                seconds += stage / cal.sz3_backend_deflate_throughput
            return seconds
        core = cengine_core_algo(algo)
        if self.device.cengine.supports(core, direction):
            seconds = cal.cengine_time(core, direction, n)
        else:
            # Capability fallback: the engine-shaped pipeline on cores.
            seconds = cal.soc_time(core, direction, n)
        if algo is Algo.ZLIB:
            # adler32/header work stays on an SoC core either way.
            seconds += cal.checksum_time(n)
        return seconds

    # ------------------------------------------------------------------
    # Scheduler-level job costs (repro.sched / repro.serve conventions)
    # ------------------------------------------------------------------

    def engine_job_seconds(
        self, algo: Algo, direction: Direction, engine_bytes: float
    ) -> float:
        """Exec time of one :class:`~repro.sched.EngineJob` on the
        C-Engine (``engine_bytes`` follows the job convention:
        uncompressed on compress, compressed on decompress)."""
        return self.cal.cengine_time(algo, direction, float(engine_bytes))

    def soc_job_seconds(
        self, algo: Algo, direction: Direction, soc_bytes: float
    ) -> float:
        """Exec time of the same job work-stolen by an SoC core
        (billed against the uncompressed ``soc_bytes``)."""
        return self.cal.soc_time(algo, direction, float(soc_bytes))
