"""The eight PEDAL compression designs (paper Table III).

A *design* is an (algorithm, placement) pair: every algorithm can run
on the SoC, and every algorithm has a C-Engine-assisted variant —
natively for DEFLATE, via the DEFLATE core for zlib and SZ3, and (on
hardware that lacks support, per Table III) falling back to the SoC at
run time.  Labels match the paper's figure legends
(``SoC_DEFLATE`` … ``C-Engine_zlib`` plus the SZ3 pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dpu.specs import Algo
from repro.errors import UnknownDesignError

__all__ = [
    "Placement",
    "CompressionDesign",
    "ALL_DESIGNS",
    "LOSSLESS_DESIGNS",
    "LOSSY_DESIGNS",
    "design",
    "parse_design_spec",
    "ALGO_IDS",
    "ALGO_FROM_ID",
]


class Placement(str, Enum):
    """Requested execution engine for a design."""

    SOC = "soc"
    CENGINE = "cengine"


@dataclass(frozen=True)
class CompressionDesign:
    """One of PEDAL's eight (algorithm, placement) designs."""

    algo: Algo
    placement: Placement

    @property
    def label(self) -> str:
        """Figure-legend label, e.g. ``"C-Engine_DEFLATE"``."""
        where = "SoC" if self.placement is Placement.SOC else "C-Engine"
        names = {
            Algo.DEFLATE: "DEFLATE",
            Algo.ZLIB: "zlib",
            Algo.LZ4: "LZ4",
            Algo.SZ3: "SZ3",
            Algo.AC: "AC",
        }
        return f"{where}_{names[self.algo]}"

    @property
    def is_lossy(self) -> bool:
        return self.algo is Algo.SZ3

    def __str__(self) -> str:
        return self.label


ALL_DESIGNS: tuple[CompressionDesign, ...] = tuple(
    CompressionDesign(algo, placement)
    for algo in (Algo.DEFLATE, Algo.ZLIB, Algo.LZ4, Algo.SZ3)
    for placement in (Placement.SOC, Placement.CENGINE)
)

LOSSLESS_DESIGNS: tuple[CompressionDesign, ...] = tuple(
    d for d in ALL_DESIGNS if not d.is_lossy
)
LOSSY_DESIGNS: tuple[CompressionDesign, ...] = tuple(
    d for d in ALL_DESIGNS if d.is_lossy
)

_BY_LABEL = {d.label.lower(): d for d in ALL_DESIGNS}

# AlgoID values carried in the PEDAL header's second byte.  Zero is
# reserved (an uncompressed passthrough message).
ALGO_IDS: dict[Algo, int] = {
    Algo.DEFLATE: 1,
    Algo.ZLIB: 2,
    Algo.LZ4: 3,
    Algo.SZ3: 4,
    Algo.AC: 5,
}
ALGO_FROM_ID = {v: k for k, v in ALGO_IDS.items()}


def design(spec: "str | CompressionDesign") -> CompressionDesign:
    """Look a design up by label (case-insensitive) or pass one through.

    >>> design("C-Engine_DEFLATE").algo
    <Algo.DEFLATE: 'deflate'>
    """
    if isinstance(spec, CompressionDesign):
        return spec
    try:
        return _BY_LABEL[spec.lower()]
    except KeyError:
        raise UnknownDesignError(
            f"unknown design {spec!r}; expected one of "
            f"{sorted(d.label for d in ALL_DESIGNS)}"
        ) from None


def parse_design_spec(
    spec: "str | Algo | CompressionDesign",
) -> "tuple[Algo, Placement | None]":
    """Parse a design spec into (algorithm, requested placement).

    Full designs (instances or figure-legend labels) keep their
    placement.  A *bare algorithm* — an :class:`Algo` or its name,
    e.g. ``"deflate"`` — returns ``placement=None``: the caller decides
    where it runs (``PedalContext`` routes those through the
    cost-model selector, ``path="auto"``).

    >>> parse_design_spec("SoC_zlib")
    (<Algo.ZLIB: 'zlib'>, <Placement.SOC: 'soc'>)
    >>> parse_design_spec("deflate")
    (<Algo.DEFLATE: 'deflate'>, None)
    """
    if isinstance(spec, CompressionDesign):
        return spec.algo, spec.placement
    if isinstance(spec, Algo):
        return spec, None
    if isinstance(spec, str):
        hit = _BY_LABEL.get(spec.lower())
        if hit is not None:
            return hit.algo, hit.placement
        try:
            return Algo(spec.lower()), None
        except ValueError:
            pass
    raise UnknownDesignError(
        f"unknown design {spec!r}; expected a design label "
        f"({sorted(d.label for d in ALL_DESIGNS)}) or a bare algorithm "
        f"({sorted(a.value for a in Algo)})"
    )
