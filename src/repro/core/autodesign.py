"""Automatic design selection.

Paper §III-D: "PEDAL can automatically detect the hardware capability of
the BlueField series to determine supported compression designs, and
intelligently fall back to SoC-based compression designs."  This module
goes one step further (paper §VI future work) and *chooses* a design for
a message, given the device, the data kind, and the message size, by
minimising the cost model's predicted compress+transfer+decompress time.

The chooser is deliberately simple and fully explainable: it evaluates
each candidate design's predicted pipeline time with the same
calibration the simulator charges, assuming a caller-supplied expected
compression ratio (measurable from a data sample via
:func:`estimate_ratio`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.designs import (
    LOSSLESS_DESIGNS,
    LOSSY_DESIGNS,
    CompressionDesign,
    Placement,
)
from repro.core.registry import cengine_core_algo, resolve
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction

__all__ = ["DesignChoice", "choose_design", "estimate_ratio", "predict_pipeline_time"]


@dataclass(frozen=True)
class DesignChoice:
    """A ranked design with its predicted end-to-end time."""

    design: CompressionDesign
    predicted_seconds: float
    compress_seconds: float
    transfer_seconds: float
    decompress_seconds: float


def estimate_ratio(data: bytes, sample_bytes: int = 16384) -> float:
    """Cheap ratio estimate: LZ4-compress a prefix sample.

    LZ4 is the fastest codec in the suite; its ratio correlates with
    the others' well enough for design ranking.
    """
    sample = data[:sample_bytes]
    if not sample:
        return 1.0
    from repro.algorithms.lz4 import lz4_block_compress

    compressed = lz4_block_compress(bytes(sample))
    return max(len(sample) / max(len(compressed), 1), 1.0)


def _codec_seconds(
    device: BlueFieldDPU,
    design: CompressionDesign,
    direction: Direction,
    sim_bytes: float,
) -> float:
    """Predicted codec time for one direction under Table III resolution."""
    cal = device.cal
    resolved = resolve(device, design)
    engine = resolved.engine_for(direction)

    if design.algo is Algo.SZ3:
        total = cal.soc_time(Algo.SZ3, direction, sim_bytes)
        if design.placement is Placement.SOC:
            return total
        entropy = (1.0 - cal.sz3_lossless_fraction) * total
        stage = sim_bytes / 3.0  # nominal payload share; refined by data
        if engine == "cengine":
            return entropy + cal.cengine_time(Algo.DEFLATE, direction, stage)
        return entropy + stage / cal.sz3_backend_deflate_throughput

    core = cengine_core_algo(design.algo)
    if engine == "cengine":
        seconds = cal.cengine_time(core, direction, sim_bytes)
        if design.algo is Algo.ZLIB:
            seconds += cal.checksum_time(sim_bytes)
        return seconds
    if design.placement is Placement.CENGINE:
        # Fallback pipeline: engine-shaped work on cores.
        seconds = cal.soc_time(core, direction, sim_bytes)
        if design.algo is Algo.ZLIB:
            seconds += cal.checksum_time(sim_bytes)
        return seconds
    return cal.soc_time(design.algo, direction, sim_bytes)


def predict_pipeline_time(
    sender: BlueFieldDPU,
    receiver: BlueFieldDPU,
    design: CompressionDesign,
    sim_bytes: float,
    expected_ratio: float,
) -> DesignChoice:
    """Predicted compress -> wire -> decompress time for one message."""
    compress = _codec_seconds(sender, design, Direction.COMPRESS, sim_bytes)
    decompress = _codec_seconds(receiver, design, Direction.DECOMPRESS, sim_bytes)
    bandwidth = min(
        sender.spec.nic.bytes_per_second, receiver.spec.nic.bytes_per_second
    )
    latency = max(
        sender.spec.nic.base_latency_s, receiver.spec.nic.base_latency_s
    )
    transfer = latency + (sim_bytes / max(expected_ratio, 1e-9)) / bandwidth
    return DesignChoice(
        design=design,
        predicted_seconds=compress + transfer + decompress,
        compress_seconds=compress,
        transfer_seconds=transfer,
        decompress_seconds=decompress,
    )


def choose_design(
    sender: BlueFieldDPU,
    receiver: BlueFieldDPU,
    sim_bytes: float,
    expected_ratio: float = 2.5,
    lossy: bool = False,
    include_raw: bool = True,
) -> list[DesignChoice]:
    """Rank candidate designs (fastest first) for one message.

    With ``include_raw``, an uncompressed pseudo-choice (``design`` is
    None-like: a SoC design with ratio 1) is represented by comparing
    against the plain wire time — if no design beats it, callers should
    skip compression entirely (PEDAL's eager-path behaviour).
    """
    candidates = LOSSY_DESIGNS if lossy else LOSSLESS_DESIGNS
    ranked = sorted(
        (
            predict_pipeline_time(sender, receiver, d, sim_bytes, expected_ratio)
            for d in candidates
        ),
        key=lambda choice: choice.predicted_seconds,
    )
    if include_raw:
        bandwidth = min(
            sender.spec.nic.bytes_per_second, receiver.spec.nic.bytes_per_second
        )
        latency = max(
            sender.spec.nic.base_latency_s, receiver.spec.nic.base_latency_s
        )
        raw_seconds = latency + sim_bytes / bandwidth
        ranked = [c for c in ranked if c.predicted_seconds < raw_seconds] or ranked[:1]
    return ranked
