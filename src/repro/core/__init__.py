"""PEDAL — the paper's unified DPU compression/decompression library.

PEDAL unifies the four algorithms of Table I over the two execution
engines of a BlueField DPU (SoC cores and the C-Engine accelerator),
giving the eight *compression designs* of Table III.  Its key techniques
(paper §III):

* hoisting DOCA initialisation and buffer preparation into
  ``PEDAL_Init`` (a memory pool of pre-mapped DOCA buffers);
* a 3-byte message header (0xFF, AlgoID, 0xFF) that lets the receiver
  pick the matching decompressor;
* hybrid zlib — DEFLATE payload on the C-Engine, header/adler trailer
  on the SoC;
* hybrid SZ3 — entropy pipeline on the SoC, lossless backend stage on
  the C-Engine;
* capability detection with automatic SoC fallback (Table III).

Public API
----------
:class:`PedalContext` — object API (init/compress/decompress/finalize
as simulation generators).
:func:`PEDAL_init` / :func:`PEDAL_compress` / :func:`PEDAL_decompress`
/ :func:`PEDAL_finalize` — paper-faithful function spellings.
:class:`CompressionDesign`, :data:`ALL_DESIGNS`, :func:`design` — the
eight designs.
"""

from repro.core.api import (
    CompressResult,
    DecompressResult,
    PedalConfig,
    PedalContext,
    PEDAL_compress,
    PEDAL_decompress,
    PEDAL_finalize,
    PEDAL_init,
)
from repro.core.designs import ALL_DESIGNS, CompressionDesign, Placement, design
from repro.core.header import PedalHeader

__all__ = [
    "ALL_DESIGNS",
    "CompressResult",
    "CompressionDesign",
    "DecompressResult",
    "PEDAL_compress",
    "PEDAL_decompress",
    "PEDAL_finalize",
    "PEDAL_init",
    "PedalConfig",
    "PedalContext",
    "PedalHeader",
    "Placement",
    "design",
]
