"""The PEDAL context and its unified APIs (paper §III-D, Listing 1).

:class:`PedalContext` binds a BlueField device to the PEDAL runtime
state (open DOCA session, buffer inventory, memory pool).  Its
``init`` / ``compress`` / ``decompress`` / ``finalize`` methods are
*simulation generators*: they perform the real codec work inline (real
bytes in, real bytes out) and charge the simulated hardware for the
paper-calibrated costs, so one call yields both the artifact and its
(simulated) performance.

Two sizes flow through every call:

* the *actual* byte sizes of the Python payloads (what the codecs see);
* the *simulated* sizes (``sim_bytes``), defaulting to actual, that the
  cost model charges for — the bench harness sets these to the paper's
  nominal dataset sizes while compressing scaled-down synthetic data
  (DESIGN.md §1, "two time domains").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.core.codecs import CodecConfig, real_compress, real_decompress
from repro.core.designs import CompressionDesign, Placement, parse_design_spec
from repro.core.header import HEADER_SIZE, PedalHeader
from repro.core.mempool import MemoryPool, get_scratch_pool
from repro.core.registry import ResolvedDesign, cengine_core_algo, resolve
from repro.doca.sdk import DocaSession
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction
from repro.errors import (
    DocaInitError,
    PedalNotInitializedError,
    UnknownDesignError,
)
from repro.faults.policy import (
    EngineFallback,
    RetryPolicy,
    backoff_wait,
    engine_job_with_retry,
)
from repro.obs import device_span, get_metrics
from repro.select import PathDecision, PathSelector
from repro.sim import TimeBreakdown

__all__ = [
    "PATH_AUTO",
    "PedalConfig",
    "PedalContext",
    "CompressResult",
    "DecompressResult",
    "PEDAL_init",
    "PEDAL_compress",
    "PEDAL_decompress",
    "PEDAL_finalize",
]

# Phase names used in breakdowns (Fig. 7 / Fig. 9 legends).
PHASE_INIT = "doca_init"
# The adaptive-dispatch sentinel for ``path`` / ``placement`` arguments.
PATH_AUTO = "auto"
PHASE_PREP = "buffer_prep"
PHASE_COMP = "compression"
PHASE_DECOMP = "decompression"
PHASE_HEADER = "header_trailer"


def _coerce_path(path: "str | Placement | None") -> "str | Placement | None":
    """Normalize a ``path`` argument: None, ``"auto"``, or a Placement."""
    if path is None or isinstance(path, Placement):
        return path
    lowered = str(path).lower()
    if lowered == PATH_AUTO:
        return PATH_AUTO
    try:
        return Placement(lowered)
    except ValueError:
        raise UnknownDesignError(
            f"unknown path {path!r}; expected 'auto', 'soc', or 'cengine'"
        ) from None


def _payload_nbytes(data: Any) -> int:
    """Actual byte size of a payload (ndarray or bytes-like)."""
    return data.nbytes if hasattr(data, "nbytes") else len(data)


@dataclass(frozen=True)
class PedalConfig:
    """PEDAL runtime configuration."""

    codecs: CodecConfig = field(default_factory=CodecConfig)
    # Pool sizing: buffers pre-mapped at PEDAL_init (paper §III-C).
    pool_buffers: int = 4
    max_message_bytes: int = 128 << 20
    # Engine-job retry budget + backoff; past it, jobs escalate to the
    # SoC pipeline (runtime mirror of the capability fallback).
    retry: RetryPolicy = field(default_factory=RetryPolicy)


@dataclass
class CompressResult:
    """Everything produced by one PEDAL_compress call."""

    message: bytes  # PEDAL header + compressed payload
    design: CompressionDesign
    resolved: ResolvedDesign
    original_bytes: int
    compressed_bytes: int  # len(message)
    sim_original_bytes: float
    sim_compressed_bytes: float
    breakdown: TimeBreakdown

    @property
    def ratio(self) -> float:
        """Paper convention: original / compressed (header excluded)."""
        return self.original_bytes / max(self.compressed_bytes - HEADER_SIZE, 1)

    @property
    def sim_seconds(self) -> float:
        return self.breakdown.total()


@dataclass
class DecompressResult:
    """Everything produced by one PEDAL_decompress call."""

    data: Any  # bytes for lossless designs, ndarray for SZ3
    algo: Algo | None
    resolved: ResolvedDesign | None
    breakdown: TimeBreakdown

    @property
    def sim_seconds(self) -> float:
        return self.breakdown.total()


class PedalContext:
    """PEDAL bound to one DPU (sender- or receiver-side)."""

    def __init__(self, device: BlueFieldDPU, config: PedalConfig | None = None) -> None:
        self.device = device
        self.config = config or PedalConfig()
        self.session = DocaSession(device)
        # Cost-model dispatch for path="auto" (amortized: this context
        # hoists DOCA init + buffer mapping, so steady-state ops carry
        # no fixed setup cost).
        self.selector = PathSelector(device)
        self.pool: MemoryPool | None = None
        self.init_breakdown: TimeBreakdown | None = None
        self._initialized = False
        # Cleared when DOCA bring-up fails past the retry budget; every
        # design then resolves to the SoC (runtime capability fallback).
        self._engine_available = True

    @property
    def is_initialized(self) -> bool:
        return self._initialized

    @property
    def engine_available(self) -> bool:
        """False once DOCA init gave up and the context runs SoC-only."""
        return self._engine_available

    def _require_init(self) -> None:
        if not self._initialized:
            raise PedalNotInitializedError(
                "PEDAL context is not initialized; call init() (PEDAL_init) first"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def init(self) -> Generator:
        """``PEDAL_init``: hoist DOCA init + buffer prep (paper §III-C).

        Returns the initialization :class:`TimeBreakdown`.  Integrated
        into ``MPI_Init`` by the MPICH co-design (paper §IV).

        DOCA bring-up failures (injected by :mod:`repro.faults`) are
        retried under the configured :class:`RetryPolicy`; if every
        attempt fails the context comes up *SoC-only* — initialization
        still succeeds, but every design resolves to the SoC until a
        fresh context is created (counted as ``faults.fallbacks``).
        """
        breakdown = TimeBreakdown()
        if not self._initialized:
            # Host-side analogue of the buffer prewarm below: seed the
            # real scratch pool (vectorized kernels' pack buffers) so
            # steady-state compress calls allocate nothing.  Wall-clock
            # only — no simulated time is charged.
            get_scratch_pool().prewarm(
                self.config.max_message_bytes + 16, count=2
            )
            policy = self.config.retry
            metrics = get_metrics()
            with device_span(
                "pedal.init", self.device,
                device=self.device.name,
                pool_buffers=self.config.pool_buffers,
            ) as span:
                breakdown.bind(span)
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        init_seconds = yield from self.session.open()
                    except DocaInitError as exc:
                        breakdown.add(PHASE_INIT, exc.sim_seconds)
                        if metrics.recording:
                            metrics.inc("faults.retries")
                        if attempts >= policy.max_attempts:
                            self._engine_available = False
                            span.set_attr("engine_available", False)
                            if metrics.recording:
                                metrics.inc("faults.fallbacks")
                                metrics.inc("faults.init_giveups")
                            break
                        yield from backoff_wait(
                            self.device, policy, attempts, breakdown
                        )
                        continue
                    breakdown.add(PHASE_INIT, init_seconds)
                    inventory, inv_seconds = (
                        yield from self.session.create_inventory()
                    )
                    breakdown.add(PHASE_PREP, inv_seconds)
                    self.pool = MemoryPool(
                        inventory, self.config.max_message_bytes
                    )
                    prewarm_seconds = yield from self.pool.prewarm(
                        self.config.pool_buffers
                    )
                    breakdown.add(PHASE_PREP, prewarm_seconds)
                    break
            self._initialized = True
            self.init_breakdown = breakdown
        return breakdown

    def finalize(self) -> Generator:
        """``PEDAL_finalize``: drain the pool, close the session."""
        if self._initialized:
            with device_span("pedal.finalize", self.device,
                             device=self.device.name):
                if self.pool is not None:  # absent on an SoC-only context
                    self.pool.drain()
                self.session.close()
            self._initialized = False
            self._engine_available = True
        return
        yield  # pragma: no cover - generator marker

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------

    def _select_path(
        self,
        algo: Algo,
        direction: Direction,
        sim_bytes: float,
        stage_bytes: float | None = None,
    ) -> PathDecision:
        """One cost-model dispatch decision, with select.* accounting."""
        decision = self.selector.choose(
            algo, direction, sim_bytes,
            amortized=True,            # this context hoisted init/buffers
            stage_bytes=stage_bytes,
            allow_engine=self._engine_available,
        )
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc("select.decisions")
            metrics.inc(f"select.path.{decision.path}")
            if decision.from_cache:
                metrics.inc("select.cache_hits")
        return decision

    def compress(
        self,
        data: Any,
        design: "str | Algo | CompressionDesign",
        sim_bytes: float | None = None,
        path: "str | Placement | None" = None,
    ) -> Generator:
        """``PEDAL_compress``: compress ``data`` under a design.

        ``data`` is bytes-like (lossless designs) or a float ndarray
        (SZ3).  Returns a :class:`CompressResult` whose ``message``
        carries the 3-byte PEDAL header.

        ``design`` is a full (algorithm, placement) design — an
        instance or figure-legend label — or a *bare algorithm*
        (``Algo`` or e.g. ``"deflate"``).  ``path`` overrides where the
        op runs: ``"soc"`` / ``"cengine"`` / a :class:`Placement`
        forces that path, ``"auto"`` asks the cost-model selector for
        the cheapest capable path at this op's simulated size, and
        ``None`` (default) keeps the design's placement — or ``"auto"``
        when the spec was a bare algorithm.
        """
        self._require_init()
        algo, spec_placement = parse_design_spec(design)
        mode = _coerce_path(path)
        if mode is None:
            mode = PATH_AUTO if spec_placement is None else spec_placement
        sim_in_hint = float(
            _payload_nbytes(data) if sim_bytes is None else sim_bytes
        )
        decision: PathDecision | None = None
        if mode is PATH_AUTO:
            # SZ3's measured entropy-stage size is only known after the
            # codec runs, and the codec stream depends on the placement
            # — so auto decides from the model's stage estimate.
            decision = self._select_path(algo, Direction.COMPRESS, sim_in_hint)
            placement = decision.placement
        else:
            placement = mode
        dsg = CompressionDesign(algo, placement)
        resolved = resolve(self.device, dsg,
                           force_soc=not self._engine_available)
        real = real_compress(dsg, data, self.config.codecs)
        sim_in = float(real.original_bytes if sim_bytes is None else sim_bytes)
        scale = sim_in / real.original_bytes if real.original_bytes else 1.0

        breakdown = TimeBreakdown()
        with device_span(
            "pedal.compress", self.device,
            device=self.device.name,
            algo=dsg.algo.value,
            engine=resolved.engine_for(Direction.COMPRESS),
            direction=Direction.COMPRESS.value,
            sim_bytes=sim_in,
            actual_bytes=real.original_bytes,
            path_mode=PATH_AUTO if decision is not None else "forced",
        ) as span:
            if decision is not None:
                span.set_attr("select_crossover_bytes",
                              decision.crossover_bytes)
                span.set_attr("select_predicted_s",
                              decision.predicted_seconds)
            breakdown.bind(span)
            if dsg.algo is Algo.SZ3:
                yield from self._sim_sz3(
                    Direction.COMPRESS, dsg, resolved, sim_in,
                    None if real.cengine_stage_bytes is None
                    else real.cengine_stage_bytes * scale,
                    breakdown,
                )
                payload = real.payload
            else:
                payload = yield from self._sim_lossless(
                    Direction.COMPRESS, dsg, resolved, sim_in, breakdown,
                    payload=real.payload,
                )

        header = PedalHeader.for_algo(dsg.algo).encode()
        message = header + payload
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc(f"codec.{dsg.algo.value}.bytes_in", real.original_bytes)
            metrics.inc(f"codec.{dsg.algo.value}.bytes_out", len(message))
        return CompressResult(
            message=message,
            design=dsg,
            resolved=resolved,
            original_bytes=real.original_bytes,
            compressed_bytes=len(message),
            sim_original_bytes=sim_in,
            sim_compressed_bytes=len(message) * scale,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------

    def decompress(
        self,
        message: bytes,
        placement: "str | Placement" = Placement.CENGINE,
        sim_bytes: float | None = None,
    ) -> Generator:
        """``PEDAL_decompress``: decode a PEDAL message.

        The header's AlgoID selects the decompressor; ``placement`` is
        the *receiver's* engine preference (subject to the same
        capability fallback) — or ``"auto"``, which asks the cost-model
        selector for the cheapest capable path (decompression runs the
        codec first, so SZ3's auto decision sees the *measured*
        lossless-stage size).  ``sim_bytes`` is the simulated
        uncompressed size (the cost-model convention for decompression
        throughput); defaults to the actual decoded size.
        """
        self._require_init()
        mode = _coerce_path(placement)
        if mode is None:
            raise UnknownDesignError("placement must not be None")
        header = PedalHeader.decode(message)
        payload = message[HEADER_SIZE:]
        breakdown = TimeBreakdown()
        if not header.is_compressed:
            return DecompressResult(
                data=payload, algo=None, resolved=None, breakdown=breakdown
            )

        algo = header.algo
        assert algo is not None
        data, stage_bytes = real_decompress(algo, payload)
        actual_out = data.nbytes if hasattr(data, "nbytes") else len(data)
        sim_out = float(actual_out if sim_bytes is None else sim_bytes)
        scale = sim_out / actual_out if actual_out else 1.0

        decision: PathDecision | None = None
        if mode is PATH_AUTO:
            decision = self._select_path(
                algo, Direction.DECOMPRESS, sim_out,
                stage_bytes=None if stage_bytes is None
                else stage_bytes * scale,
            )
            placement = decision.placement
        else:
            placement = mode

        from repro.core.designs import CompressionDesign as _CD

        dsg = _CD(algo, placement)
        resolved = resolve(self.device, dsg,
                           force_soc=not self._engine_available)
        with device_span(
            "pedal.decompress", self.device,
            device=self.device.name,
            algo=algo.value,
            engine=resolved.engine_for(Direction.DECOMPRESS),
            direction=Direction.DECOMPRESS.value,
            sim_bytes=sim_out,
            actual_bytes=actual_out,
            path_mode=PATH_AUTO if decision is not None else "forced",
        ) as span:
            if decision is not None:
                span.set_attr("select_crossover_bytes",
                              decision.crossover_bytes)
                span.set_attr("select_predicted_s",
                              decision.predicted_seconds)
            breakdown.bind(span)
            if algo is Algo.SZ3:
                yield from self._sim_sz3(
                    Direction.DECOMPRESS, dsg, resolved, sim_out,
                    None if stage_bytes is None else stage_bytes * scale,
                    breakdown,
                )
            else:
                out = yield from self._sim_lossless(
                    Direction.DECOMPRESS, dsg, resolved, sim_out, breakdown,
                    payload=data if isinstance(data, bytes) else None,
                )
                if out is not None:
                    data = out
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc(f"codec.{algo.value}.bytes_in", len(payload))
            metrics.inc(f"codec.{algo.value}.bytes_out", actual_out)
        return DecompressResult(
            data=data, algo=algo, resolved=resolved, breakdown=breakdown
        )

    # ------------------------------------------------------------------
    # Simulated-time choreography
    # ------------------------------------------------------------------

    def _sim_lossless(
        self,
        direction: Direction,
        dsg: CompressionDesign,
        resolved: ResolvedDesign,
        sim_bytes: float,
        breakdown: TimeBreakdown,
        payload: "bytes | None" = None,
    ) -> Generator:
        """Charge hardware for a DEFLATE/zlib/LZ4 op under ``resolved``.

        Returns ``payload`` — normally unchanged; under fault injection
        the engine path verifies it against corruption and, on
        persistent failure, escalates to the SoC pipeline.
        """
        device = self.device
        soc = device.soc
        phase = PHASE_COMP if direction is Direction.COMPRESS else PHASE_DECOMP
        engine = resolved.engine_for(direction)

        if engine == "soc" and dsg.placement is Placement.SOC:
            # Native SoC design: the calibrated throughput covers the
            # whole algorithm (zlib's includes its checksum work).
            seconds = soc.codec_time(dsg.algo, direction, sim_bytes)
            yield from soc.run(seconds)
            breakdown.add(phase, seconds)
            return payload

        if engine == "soc":
            yield from self._soc_fallback_pipeline(
                direction, dsg, sim_bytes, breakdown, phase
            )
            return payload

        # True C-Engine execution with pooled, pre-mapped buffers.  The
        # path is zero-copy in both directions: senders produce into a
        # pool buffer, and the co-design posts receives into pool
        # buffers and decompresses straight into the user buffer
        # "without an additional copy" (paper §IV).
        assert self.pool is not None
        core = cengine_core_algo(dsg.algo)
        buf = yield from self.pool.acquire()
        try:
            try:
                payload = yield from engine_job_with_retry(
                    device, core, direction, sim_bytes,
                    self.config.retry, breakdown, phase, payload=payload,
                )
            except EngineFallback:
                metrics = get_metrics()
                if metrics.recording:
                    metrics.inc("faults.fallbacks")
                yield from self._soc_fallback_pipeline(
                    direction, dsg, sim_bytes, breakdown, phase
                )
                return payload
            if dsg.algo is Algo.ZLIB:
                check = soc.checksum_time(sim_bytes)
                yield from soc.run(check)
                breakdown.add(PHASE_HEADER, check)
        finally:
            self.pool.release(buf)
        return payload

    def _soc_fallback_pipeline(
        self,
        direction: Direction,
        dsg: CompressionDesign,
        sim_bytes: float,
        breakdown: TimeBreakdown,
        phase: str,
    ) -> Generator:
        """C-Engine design redirected to the SoC (Table III gap or a
        runtime escalation): the engine-shaped pipeline runs on cores —
        for zlib that is DEFLATE + separate checksum/header work,
        slightly slower than the integrated SoC zlib path."""
        soc = self.device.soc
        core = cengine_core_algo(dsg.algo)
        seconds = soc.codec_time(core, direction, sim_bytes)
        yield from soc.run(seconds)
        breakdown.add(phase, seconds)
        if dsg.algo is Algo.ZLIB:
            check = soc.checksum_time(sim_bytes)
            yield from soc.run(check)
            breakdown.add(PHASE_HEADER, check)

    def _sim_sz3(
        self,
        direction: Direction,
        dsg: CompressionDesign,
        resolved: ResolvedDesign,
        sim_bytes: float,
        sim_stage_bytes: float | None,
        breakdown: TimeBreakdown,
    ) -> Generator:
        """Charge hardware for an SZ3 op.

        ``sim_stage_bytes`` is the (scaled) entropy-payload size the
        lossless stage processes; None degrades to a size-proportional
        estimate.
        """
        device = self.device
        soc = device.soc
        cal = device.cal
        phase = PHASE_COMP if direction is Direction.COMPRESS else PHASE_DECOMP
        total = cal.soc_time(Algo.SZ3, direction, sim_bytes)

        if dsg.placement is Placement.SOC:
            # Native pipeline with the zstd-class backend, all on cores.
            yield from soc.run(total)
            breakdown.add(phase, total)
            return

        # Hybrid design: entropy pipeline on the SoC...
        entropy = (1.0 - cal.sz3_lossless_fraction) * total
        yield from soc.run(entropy)
        breakdown.add(phase, entropy)
        # ...lossless stage as DEFLATE, on the C-Engine when the device
        # supports that direction, else on SoC cores (the BF3 story).
        stage_bytes = (
            sim_stage_bytes if sim_stage_bytes is not None else sim_bytes / 3.0
        )
        engine = resolved.engine_for(direction)
        if engine == "cengine":
            assert self.pool is not None
            buf = yield from self.pool.acquire()
            try:
                yield from engine_job_with_retry(
                    device, Algo.DEFLATE, direction, stage_bytes,
                    self.config.retry, breakdown, "lossless_stage",
                )
            except EngineFallback:
                metrics = get_metrics()
                if metrics.recording:
                    metrics.inc("faults.fallbacks")
                seconds = stage_bytes / cal.sz3_backend_deflate_throughput
                yield from soc.run(seconds)
                breakdown.add("lossless_stage", seconds)
            finally:
                self.pool.release(buf)
        else:
            # BF3-style fallback: DEFLATE over the entropy-coded payload
            # on SoC cores (the paper's "redirect to the SoC DEFLATE
            # design", §V-C2).
            seconds = stage_bytes / cal.sz3_backend_deflate_throughput
            yield from soc.run(seconds)
            breakdown.add("lossless_stage", seconds)


# ---------------------------------------------------------------------------
# Paper-faithful function API (Listing 1)
# ---------------------------------------------------------------------------

def PEDAL_init(ctx: PedalContext) -> Generator:
    """``int PEDAL_init(void *user_ctx)`` — initialise the context."""
    result = yield from ctx.init()
    return result


def PEDAL_compress(
    ctx: PedalContext,
    data: Any,
    design: "str | Algo | CompressionDesign",
    sim_bytes: float | None = None,
    path: "str | Placement | None" = None,
) -> Generator:
    """``void *PEDAL_compress(...)`` — compress a message buffer."""
    result = yield from ctx.compress(data, design, sim_bytes, path=path)
    return result


def PEDAL_decompress(
    ctx: PedalContext,
    message: bytes,
    placement: "str | Placement" = Placement.CENGINE,
    sim_bytes: float | None = None,
) -> Generator:
    """``void PEDAL_decompress(...)`` — decompress a message buffer."""
    result = yield from ctx.decompress(message, placement, sim_bytes)
    return result


def PEDAL_finalize(ctx: PedalContext) -> Generator:
    """``int PEDAL_finalize(void *user_ctx)`` — tear the context down."""
    yield from ctx.finalize()
