"""Design resolution: capability detection and SoC fallback (paper §III-D).

PEDAL "automatically detect[s] the hardware capability of the BlueField
series to determine supported compression designs, and intelligently
fall[s] back to SoC-based compression designs if a compression algorithm
is unsupported by the C-Engine".

For zlib and SZ3 the C-Engine-relevant core is DEFLATE (paper Table III
extends exactly those rows), so their capability checks are made against
the device's DEFLATE support.  The resolved plan records, per direction,
where the payload codec actually runs.  Note the asymmetry this creates
on BlueField-3: a C-Engine design may *compress* on the SoC (fallback)
yet *decompress* on the C-Engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.designs import CompressionDesign, Placement
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction
from repro.obs import get_metrics

__all__ = ["ResolvedDesign", "resolve", "cengine_core_algo"]


def cengine_core_algo(algo: Algo) -> Algo:
    """The algorithm actually submitted to the C-Engine for ``algo``.

    zlib wraps DEFLATE, and PEDAL's SZ3 hybrid offloads its lossless
    stage as DEFLATE jobs; LZ4 and DEFLATE submit as themselves.
    """
    if algo in (Algo.ZLIB, Algo.SZ3):
        return Algo.DEFLATE
    return algo


@dataclass(frozen=True)
class ResolvedDesign:
    """A design bound to one device: where each direction executes."""

    design: CompressionDesign
    device_name: str
    compress_engine: str  # "soc" | "cengine"
    decompress_engine: str  # "soc" | "cengine"

    def engine_for(self, direction: Direction) -> str:
        return (
            self.compress_engine
            if direction is Direction.COMPRESS
            else self.decompress_engine
        )

    def uses_fallback(self, direction: Direction) -> bool:
        """True when a C-Engine design had to redirect to the SoC."""
        return (
            self.design.placement is Placement.CENGINE
            and self.engine_for(direction) == "soc"
        )

    @property
    def any_fallback(self) -> bool:
        return self.uses_fallback(Direction.COMPRESS) or self.uses_fallback(
            Direction.DECOMPRESS
        )


def resolve(
    device: BlueFieldDPU,
    design: CompressionDesign,
    force_soc: bool = False,
) -> ResolvedDesign:
    """Bind ``design`` to ``device``, applying Table III's fallbacks.

    ``force_soc`` routes both directions to the SoC regardless of the
    capability matrix — the runtime escalation used when DOCA bring-up
    failed past its retry budget (:mod:`repro.faults`), mirroring the
    capability fallback for an engine that is *temporarily* unusable
    rather than architecturally absent.
    """
    if design.placement is Placement.SOC:
        return ResolvedDesign(
            design=design,
            device_name=device.name,
            compress_engine="soc",
            decompress_engine="soc",
        )
    core = cengine_core_algo(design.algo)
    engines = {}
    for direction in (Direction.COMPRESS, Direction.DECOMPRESS):
        supported = not force_soc and device.cengine.supports(core, direction)
        engines[direction] = "cengine" if supported else "soc"
    resolved = ResolvedDesign(
        design=design,
        device_name=device.name,
        compress_engine=engines[Direction.COMPRESS],
        decompress_engine=engines[Direction.DECOMPRESS],
    )
    if resolved.any_fallback:
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc("pedal.fallback_soc")
    return resolved
