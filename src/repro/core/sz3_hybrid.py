"""Hybrid SZ3: entropy pipeline on the SoC, lossless stage via C-Engine.

The paper's Fig. 4 observation: SZ3 ends with a lossless compressor, so
PEDAL "can execute DEFLATE using C-Engine to accelerate SZ3".  The
C-Engine design therefore switches SZ3's backend to DEFLATE (the format
the engine speaks) and offloads exactly that stage; the SoC design keeps
SZ3's native zstd-class backend.  This is also why Table V(b) reports
*slightly different* compression ratios for SZ3 vs SZ3(C-Engine): the
backend codec differs.

Real codec work happens here stage by stage with stage byte counts
reported; :mod:`repro.core.api` charges the simulated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.sz3 import SZ3Compressor, SZ3Config
from repro.algorithms.sz3.compressor import StageSizes

__all__ = ["Sz3HybridResult", "hybrid_sz3_compress", "hybrid_sz3_decompress"]

# Backend used when the lossless stage is destined for the C-Engine:
# the engine's native format.
CENGINE_BACKEND = "deflate"


@dataclass(frozen=True)
class Sz3HybridResult:
    """Stream plus the stage byte counts the simulator charges for."""

    stream: bytes
    sizes: StageSizes


def hybrid_sz3_compress(
    array: np.ndarray, base_config: SZ3Config
) -> Sz3HybridResult:
    """SZ3 compression with the lossless stage retargeted for DEFLATE.

    ``base_config`` supplies error bound and predictor; the backend is
    overridden to :data:`CENGINE_BACKEND`.
    """
    config = SZ3Config(
        error_bound=base_config.error_bound,
        error_mode=base_config.error_mode,
        predictor=base_config.predictor,
        backend=CENGINE_BACKEND,
    )
    compressor = SZ3Compressor(config)
    header, payload = compressor.entropy_stage(array)  # SoC stages
    blob = compressor.lossless_stage(payload)  # C-Engine stage (DEFLATE)
    stream = compressor.assemble(header, blob)
    sizes = StageSizes(
        input_bytes=int(np.asarray(array).nbytes),
        entropy_payload_bytes=len(payload),
        backend_blob_bytes=len(blob),
        stream_bytes=len(stream),
    )
    return Sz3HybridResult(stream=stream, sizes=sizes)


def hybrid_sz3_decompress(stream: bytes) -> np.ndarray:
    """Decode an SZ3 stream (self-describing; placement-agnostic)."""
    return SZ3Compressor.decompress(stream)
