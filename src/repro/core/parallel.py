"""Parallel chunked compression across SoC cores and the C-Engine.

Paper §IV: "future developments could involve various compression
designs using the SoC and C-Engine to achieve parallel compression and
decompression", and §V-C2 notes "a prospective hybrid design avenue for
exploiting both SoC and C-Engine in parallel".  This module implements
that design as an experimental extension:

* the payload splits into ``n_chunks`` independent chunks;
* each chunk is a self-contained DEFLATE stream, so chunks compress and
  decompress concurrently — SoC chunks fan out across the core pool
  while engine-bound chunks flow through a bounded-depth pipelined work
  queue (:mod:`repro.sched`) that overlaps buffer mapping, C-Engine
  execution, and result drain across consecutive chunks;
* chunks the capability matrix rejects — or that exhaust their engine
  retry budget under fault injection — are work-stolen by the SoC, so
  the container completes regardless of engine health;
* a small container records chunk boundaries.

Chunk bytes are compressed eagerly, before any simulated scheduling, so
the container is byte-identical whatever the queue depth, device, or
fault plan — only the simulated clock changes.

Chunk independence costs a little ratio (no cross-chunk matches); the
simulated speedup approaches ``min(n_chunks, n_cores)`` for SoC-only
runs and better when the engine helps.  The ablation bench
(``benchmarks/test_ablation_parallel.py``) quantifies both effects.

Container format (little-endian)::

    magic  b"PPAR"
    u32    n_chunks
    u64[n] compressed chunk sizes
    bytes  concatenated DEFLATE streams
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator

from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction
from repro.errors import CorruptStreamError
from repro.sim import TimeBreakdown

__all__ = ["ParallelConfig", "ParallelResult", "ParallelCompressor"]

_MAGIC = b"PPAR"


@dataclass(frozen=True)
class ParallelConfig:
    """Chunking and placement policy."""

    n_chunks: int = 8
    use_cengine: bool = True  # one chunk stream may use the engine
    deflate: DeflateConfig | None = None
    # Work-queue depth for engine-bound chunks: 1 = serial (map, exec,
    # drain complete before the next chunk starts), >= 2 pipelines the
    # stages across chunks (double buffering).
    pipeline_depth: int = 2

    def __post_init__(self) -> None:
        if self.n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")


@dataclass
class ParallelResult:
    """One parallel compression/decompression with its accounting."""

    payload: bytes
    original_bytes: int
    breakdown: TimeBreakdown
    chunks_on_engine: int
    chunks_on_soc: int

    @property
    def sim_seconds(self) -> float:
        return self.breakdown.total()


def _split_even(data: "bytes | memoryview", parts: int) -> list[memoryview]:
    """Split ``data`` into ``parts`` zero-copy memoryview slices.

    The codecs consume memoryviews directly (slicing stays zero-copy all
    the way into the LZ77 matcher), so chunking a large payload costs no
    byte copies at all.
    """
    view = memoryview(data)
    n = len(view)
    base, rem = divmod(n, parts)
    out = []
    pos = 0
    for i in range(parts):
        take = base + (1 if i < rem else 0)
        out.append(view[pos : pos + take])
        pos += take
    return out


class ParallelCompressor:
    """Chunk-parallel DEFLATE over one device's SoC pool (+ C-Engine)."""

    def __init__(self, device: BlueFieldDPU, config: ParallelConfig | None = None) -> None:
        self.device = device
        self.config = config or ParallelConfig()

    def _plan_engine_chunks(self, direction: Direction) -> int:
        """How many chunk streams the engine serves (0 or 1 stream —
        it is a single-server queue, so more streams would just queue)."""
        if not self.config.use_cengine:
            return 0
        return 1 if self.device.cengine.supports(Algo.DEFLATE, direction) else 0

    def compress(self, data: bytes, sim_bytes: float | None = None) -> Generator:
        """Compress ``data`` chunk-parallel; returns :class:`ParallelResult`."""
        cfg = self.config
        sim_total = float(len(data) if sim_bytes is None else sim_bytes)
        chunks = _split_even(data, cfg.n_chunks)
        compressed = [deflate_compress(chunk, cfg.deflate) for chunk in chunks]

        container = bytearray()
        container += _MAGIC
        container += struct.pack("<I", len(compressed))
        for blob in compressed:
            container += struct.pack("<Q", len(blob))
        for blob in compressed:
            container += blob

        breakdown, n_engine, n_soc = yield from self._fan_out(
            Direction.COMPRESS, cfg.n_chunks, sim_total, payloads=compressed
        )
        return ParallelResult(
            payload=bytes(container),
            original_bytes=len(data),
            breakdown=breakdown,
            chunks_on_engine=n_engine,
            chunks_on_soc=n_soc,
        )

    def decompress(self, payload: bytes, sim_bytes: float | None = None) -> Generator:
        """Inverse of :meth:`compress`; returns :class:`ParallelResult`
        whose ``payload`` is the reassembled original data."""
        if len(payload) < 8 or payload[:4] != _MAGIC:
            raise CorruptStreamError("not a PPAR container")
        (n_chunks,) = struct.unpack_from("<I", payload, 4)
        if n_chunks < 1:
            raise CorruptStreamError("PPAR container declares zero chunks")
        pos = 8
        if len(payload) < pos + 8 * n_chunks:
            raise CorruptStreamError("PPAR chunk table truncated")
        sizes = [
            struct.unpack_from("<Q", payload, pos + 8 * i)[0] for i in range(n_chunks)
        ]
        pos += 8 * n_chunks
        # The chunk table must account for the payload *exactly*: a
        # corrupted size field shows up as a short/overlong container
        # here rather than as a mis-framed DEFLATE stream further down.
        if sum(sizes) != len(payload) - pos:
            raise CorruptStreamError(
                f"PPAR chunk table claims {sum(sizes)} payload bytes, "
                f"container carries {len(payload) - pos}"
            )
        pieces = []
        for size in sizes:
            pieces.append(deflate_decompress(payload[pos : pos + size]))
            pos += size
        data = b"".join(pieces)

        sim_total = float(len(data) if sim_bytes is None else sim_bytes)
        # The C-Engine ingests the *compressed* stream on the decompress
        # direction, so engine-bound chunk jobs bill on the per-chunk
        # compressed sizes from the chunk table, scaled into the
        # simulated domain like every other actual→sim conversion.  SoC
        # chunks keep the uncompressed-bytes convention (that is what
        # the SoC decompress throughputs are calibrated against).
        scale = sim_total / len(data) if data else 1.0
        engine_bytes = [size * scale for size in sizes]
        breakdown, n_engine, n_soc = yield from self._fan_out(
            Direction.DECOMPRESS, n_chunks, sim_total, payloads=pieces,
            engine_bytes=engine_bytes,
        )
        return ParallelResult(
            payload=data,
            original_bytes=len(data),
            breakdown=breakdown,
            chunks_on_engine=n_engine,
            chunks_on_soc=n_soc,
        )

    def _fan_out(
        self,
        direction: Direction,
        n_chunks: int,
        sim_total: float,
        payloads: "list[bytes] | None" = None,
        engine_bytes: "list[float] | None" = None,
    ) -> Generator:
        """Run chunk jobs concurrently; returns (breakdown, n_engine,
        n_soc).

        ``engine_bytes`` overrides the per-chunk size billed to the
        C-Engine (the decompress direction passes the scaled compressed
        chunk sizes here); SoC billing always uses the even
        uncompressed split.

        Engine-bound chunks flow through a bounded-depth pipelined work
        queue (:class:`~repro.sched.PipelineScheduler`) that overlaps
        buffer mapping, C-Engine execution, and result drain across
        consecutive chunks; the remaining chunks fan out over SoC
        cores.  The chunk split is the argmin of the steady-state
        makespan ``max(k * t_engine, ceil((n-k)/cores) * t_soc)`` over
        k (per-chunk exec dominates the pipelined lane once map/drain
        overlap) — with the engine orders of magnitude faster it
        usually takes every chunk, which is itself an instructive
        outcome.  Chunks the engine gives up on mid-stream (fault
        injection past the retry budget) are work-stolen by the SoC
        inside the scheduler; the returned engine/SoC counts reflect
        where each chunk actually executed.
        """
        from repro.sched import EngineJob, PipelineScheduler, SchedConfig
        from repro.select.planning import plan_engine_chunks

        device = self.device
        env = device.env
        chunk_bytes = sim_total / n_chunks
        engine_streams = self._plan_engine_chunks(direction)

        soc_rate = device.cal.soc_throughput[(Algo.DEFLATE, direction)]
        if engine_streams:
            # Shared cost-model planner (repro.select): argmin of the
            # steady-state makespan over the engine-lane chunk count,
            # arithmetic identical to the historical inline split
            # (BENCH_PR3.json is gated bit-for-bit on it).
            n_engine = plan_engine_chunks(
                device.cal, direction, n_chunks, chunk_bytes,
                device.soc.cores.capacity, engine_bytes=engine_bytes,
            )
        else:
            n_engine = 0
        n_soc = n_chunks - n_engine

        def soc_chunk(env):
            yield from device.soc.run(chunk_bytes / soc_rate)

        t0 = env.now
        procs = []
        engine_proc = None
        if n_engine:
            scheduler = PipelineScheduler(
                device, SchedConfig(depth=self.config.pipeline_depth)
            )
            jobs = [
                EngineJob(
                    Algo.DEFLATE,
                    direction,
                    chunk_bytes if engine_bytes is None else engine_bytes[i],
                    payload=payloads[i] if payloads is not None else None,
                    tag=i,
                    soc_sim_bytes=None if engine_bytes is None else chunk_bytes,
                )
                for i in range(n_engine)
            ]
            engine_proc = env.process(scheduler.submit_many(jobs))
            procs.append(engine_proc)
        for _ in range(n_soc):
            procs.append(env.process(soc_chunk(env)))
        if procs:
            yield env.all_of(procs)
        if engine_proc is not None:
            outcomes = engine_proc.value
            n_engine = sum(1 for o in outcomes if o.engine == "cengine")
            n_soc = n_chunks - n_engine
        breakdown = TimeBreakdown()
        phase = "compression" if direction is Direction.COMPRESS else "decompression"
        breakdown.add(phase, env.now - t0)
        return breakdown, n_engine, n_soc
