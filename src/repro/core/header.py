"""The tiny 3-byte PEDAL message header (paper §III-E, Fig. 5).

Layout: ``[0xFF, AlgoID, 0xFF]``.  The sentinel first/third bytes mark
the message as PEDAL-compressed; the second byte names the compression
design used so the receiver can select the matching decompressor.
AlgoID 0 denotes an uncompressed passthrough (a message PEDAL chose not
to compress, e.g. below the rendezvous threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.designs import ALGO_FROM_ID, ALGO_IDS
from repro.dpu.specs import Algo
from repro.errors import HeaderError

__all__ = ["PedalHeader", "HEADER_SIZE"]

HEADER_SIZE = 3
_SENTINEL = 0xFF
PASSTHROUGH_ID = 0


@dataclass(frozen=True)
class PedalHeader:
    """Decoded PEDAL header."""

    algo: Algo | None  # None = uncompressed passthrough

    @property
    def is_compressed(self) -> bool:
        return self.algo is not None

    def encode(self) -> bytes:
        algo_id = PASSTHROUGH_ID if self.algo is None else ALGO_IDS[self.algo]
        return bytes([_SENTINEL, algo_id, _SENTINEL])

    @classmethod
    def for_algo(cls, algo: Algo) -> "PedalHeader":
        return cls(algo=algo)

    @classmethod
    def passthrough(cls) -> "PedalHeader":
        return cls(algo=None)

    @classmethod
    def decode(cls, message: bytes) -> "PedalHeader":
        """Parse the header off the front of ``message``."""
        if len(message) < HEADER_SIZE:
            raise HeaderError(
                f"message of {len(message)} bytes cannot hold a PEDAL header"
            )
        first, algo_id, third = message[0], message[1], message[2]
        if first != _SENTINEL or third != _SENTINEL:
            raise HeaderError(
                f"bad header sentinels 0x{first:02x}/0x{third:02x}"
            )
        if algo_id == PASSTHROUGH_ID:
            return cls.passthrough()
        try:
            return cls(algo=ALGO_FROM_ID[algo_id])
        except KeyError:
            raise HeaderError(f"unknown AlgoID {algo_id}") from None

    @staticmethod
    def looks_compressed(message: bytes) -> bool:
        """Cheap sentinel check without raising."""
        return (
            len(message) >= HEADER_SIZE
            and message[0] == _SENTINEL
            and message[2] == _SENTINEL
        )
