"""Hybrid zlib: DEFLATE payload on the C-Engine, header/trailer on the SoC.

The paper's Fig. 3 pipeline::

    init_data_env -> prepare_data_buffer -> data_compressing (C-Engine)
                  -> zlib_header + zlib_trailer (SoC) -> assemble

The *data* produced is byte-identical to a plain zlib stream (the split
is an execution-placement concern, not a format change), so a receiver
needs no knowledge of where the sender ran each piece.  This module
performs the real codec work stage by stage and reports the stage byte
counts; :mod:`repro.core.api` charges the simulated hardware
accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.algorithms.zlib_format import (
    assemble_zlib_stream,
    build_zlib_header,
    build_zlib_trailer,
    parse_zlib_header,
)
from repro.errors import ChecksumMismatchError, CorruptStreamError
from repro.util.checksums import adler32

__all__ = ["ZlibStageSizes", "hybrid_zlib_compress", "hybrid_zlib_decompress"]


@dataclass(frozen=True)
class ZlibStageSizes:
    """Byte counts of the two hybrid stages."""

    deflate_payload_bytes: int  # C-Engine stage output
    checksum_bytes: int  # SoC stage input (adler32 over the raw data)


def hybrid_zlib_compress(
    data: bytes, config: DeflateConfig | None = None
) -> tuple[bytes, ZlibStageSizes]:
    """Stage-split zlib compression; returns (stream, stage sizes)."""
    # C-Engine stage: the raw DEFLATE payload.
    payload = deflate_compress(data, config)
    # SoC stage: 2-byte header + adler32 trailer over the raw data.
    header = build_zlib_header()
    trailer = build_zlib_trailer(data)
    stream = assemble_zlib_stream(payload, header, trailer)
    return stream, ZlibStageSizes(
        deflate_payload_bytes=len(payload), checksum_bytes=len(data)
    )


def hybrid_zlib_decompress(stream: bytes) -> tuple[bytes, ZlibStageSizes]:
    """Stage-split zlib decompression; returns (data, stage sizes)."""
    # SoC stage (header side): parse/validate RFC 1950 framing.
    parse_zlib_header(stream)
    if len(stream) < 6:
        raise CorruptStreamError("zlib stream shorter than header + trailer")
    payload = stream[2:-4]
    # C-Engine stage: inflate the DEFLATE payload.
    data = deflate_decompress(payload)
    # SoC stage (trailer side): adler32 verification.
    stored = int.from_bytes(stream[-4:], "big")
    actual = adler32(data)
    if stored != actual:
        raise ChecksumMismatchError("adler32", stored, actual)
    return data, ZlibStageSizes(
        deflate_payload_bytes=len(payload), checksum_bytes=len(data)
    )
