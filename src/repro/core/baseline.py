"""The non-PEDAL baseline: naive per-operation DOCA usage.

This is the comparison point of Fig. 7 and the "baseline" curves of
Fig. 10/11: every compression or decompression pays the full DOCA
initialisation and buffer-preparation cost *inside the operation*
("memory allocation and the DOCA initialization procedure are invoked
during every message transmission", §V-D).  SoC-placed designs skip
DOCA but still allocate their working buffers per call.

The same real codecs produce the same real bytes as PEDAL — only the
simulated-time accounting differs.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.api import (
    PHASE_COMP,
    PHASE_DECOMP,
    PHASE_INIT,
    PHASE_PREP,
    PHASE_HEADER,
    CompressResult,
    DecompressResult,
)
from repro.core.codecs import CodecConfig, real_compress, real_decompress
from repro.core.designs import CompressionDesign, Placement, design as lookup_design
from repro.core.header import HEADER_SIZE, PedalHeader
from repro.core.registry import ResolvedDesign, cengine_core_algo, resolve
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction
from repro.obs import device_span, get_metrics
from repro.sim import TimeBreakdown

__all__ = ["NaiveCompressor"]


class NaiveCompressor:
    """Per-operation (PEDAL-less) compression on one device."""

    def __init__(self, device: BlueFieldDPU, codecs: CodecConfig | None = None) -> None:
        self.device = device
        self.codecs = codecs or CodecConfig()

    # -- simulated-time helpers ------------------------------------------

    def _naive_overheads(
        self,
        resolved: ResolvedDesign,
        direction: Direction,
        sim_bytes: float,
        breakdown: TimeBreakdown,
    ) -> Generator:
        """Per-op setup: DOCA init (if the engine is used) + buffers."""
        device = self.device
        uses_engine = resolved.engine_for(direction) == "cengine"
        if uses_engine:
            with device_span("doca.init", device, device=device.name,
                             per_op=True):
                breakdown.add(PHASE_INIT, device.cal.doca_init_time)
                yield device.env.timeout(device.cal.doca_init_time)
            # Inventory + source/destination buffers, allocated and
            # DMA-mapped from scratch for this one operation.
            prep = device.memory.doca_buffer_prep_time(int(2 * sim_bytes))
            with device_span("buffer.prep", device, what="per_op_dma_map",
                             bytes=int(2 * sim_bytes)):
                breakdown.add(PHASE_PREP, prep)
                yield device.env.timeout(prep)
        else:
            # SoC path: plain allocations for input staging + output.
            prep = device.memory.alloc_time(int(2 * sim_bytes))
            with device_span("buffer.prep", device, what="per_op_alloc",
                             bytes=int(2 * sim_bytes)):
                breakdown.add(PHASE_PREP, prep)
                yield device.env.timeout(prep)

    def _sim_codec(
        self,
        dsg: CompressionDesign,
        resolved: ResolvedDesign,
        direction: Direction,
        sim_bytes: float,
        sim_stage_bytes: float | None,
        breakdown: TimeBreakdown,
    ) -> Generator:
        device = self.device
        soc = device.soc
        cal = device.cal
        phase = PHASE_COMP if direction is Direction.COMPRESS else PHASE_DECOMP
        engine = resolved.engine_for(direction)

        if dsg.algo is Algo.SZ3:
            total = cal.soc_time(Algo.SZ3, direction, sim_bytes)
            if dsg.placement is Placement.SOC:
                yield from soc.run(total)
                breakdown.add(phase, total)
                return
            entropy = (1.0 - cal.sz3_lossless_fraction) * total
            yield from soc.run(entropy)
            breakdown.add(phase, entropy)
            stage = (
                sim_stage_bytes if sim_stage_bytes is not None else sim_bytes / 3.0
            )
            if engine == "cengine":
                seconds = yield from device.cengine.submit(
                    Algo.DEFLATE, direction, stage
                )
            else:
                seconds = stage / cal.sz3_backend_deflate_throughput
                yield from soc.run(seconds)
            breakdown.add("lossless_stage", seconds)
            return

        if engine == "cengine":
            core = cengine_core_algo(dsg.algo)
            seconds = yield from device.cengine.submit(core, direction, sim_bytes)
            breakdown.add(phase, seconds)
            if dsg.algo is Algo.ZLIB:
                check = soc.checksum_time(sim_bytes)
                yield from soc.run(check)
                breakdown.add(PHASE_HEADER, check)
        elif dsg.placement is Placement.CENGINE:
            # Requested C-Engine but unsupported: SoC fallback pipeline.
            core = cengine_core_algo(dsg.algo)
            seconds = soc.codec_time(core, direction, sim_bytes)
            yield from soc.run(seconds)
            breakdown.add(phase, seconds)
            if dsg.algo is Algo.ZLIB:
                check = soc.checksum_time(sim_bytes)
                yield from soc.run(check)
                breakdown.add(PHASE_HEADER, check)
        else:
            seconds = soc.codec_time(dsg.algo, direction, sim_bytes)
            yield from soc.run(seconds)
            breakdown.add(phase, seconds)

    # -- public ops --------------------------------------------------------

    def compress(
        self,
        data: Any,
        design: "str | CompressionDesign",
        sim_bytes: float | None = None,
    ) -> Generator:
        """One naive compression: init + prep + codec, all charged here."""
        dsg = lookup_design(design)
        resolved = resolve(self.device, dsg)
        real = real_compress(dsg, data, self.codecs)
        sim_in = float(real.original_bytes if sim_bytes is None else sim_bytes)
        scale = sim_in / real.original_bytes if real.original_bytes else 1.0

        breakdown = TimeBreakdown()
        with device_span(
            "naive.compress", self.device,
            device=self.device.name,
            algo=dsg.algo.value,
            engine=resolved.engine_for(Direction.COMPRESS),
            direction=Direction.COMPRESS.value,
            sim_bytes=sim_in,
            actual_bytes=real.original_bytes,
        ) as span:
            breakdown.bind(span)
            yield from self._naive_overheads(
                resolved, Direction.COMPRESS, sim_in, breakdown
            )
            yield from self._sim_codec(
                dsg,
                resolved,
                Direction.COMPRESS,
                sim_in,
                None
                if real.cengine_stage_bytes is None
                else real.cengine_stage_bytes * scale,
                breakdown,
            )
        message = PedalHeader.for_algo(dsg.algo).encode() + real.payload
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc(f"codec.{dsg.algo.value}.bytes_in", real.original_bytes)
            metrics.inc(f"codec.{dsg.algo.value}.bytes_out", len(message))
        return CompressResult(
            message=message,
            design=dsg,
            resolved=resolved,
            original_bytes=real.original_bytes,
            compressed_bytes=len(message),
            sim_original_bytes=sim_in,
            sim_compressed_bytes=len(message) * scale,
            breakdown=breakdown,
        )

    def decompress(
        self,
        message: bytes,
        placement: Placement = Placement.CENGINE,
        sim_bytes: float | None = None,
    ) -> Generator:
        """One naive decompression (same per-op overheads)."""
        header = PedalHeader.decode(message)
        payload = message[HEADER_SIZE:]
        breakdown = TimeBreakdown()
        if not header.is_compressed:
            return DecompressResult(
                data=payload, algo=None, resolved=None, breakdown=breakdown
            )
        algo = header.algo
        assert algo is not None
        data, stage_bytes = real_decompress(algo, payload)
        actual_out = data.nbytes if hasattr(data, "nbytes") else len(data)
        sim_out = float(actual_out if sim_bytes is None else sim_bytes)
        scale = sim_out / actual_out if actual_out else 1.0

        dsg = CompressionDesign(algo, placement)
        resolved = resolve(self.device, dsg)
        with device_span(
            "naive.decompress", self.device,
            device=self.device.name,
            algo=algo.value,
            engine=resolved.engine_for(Direction.DECOMPRESS),
            direction=Direction.DECOMPRESS.value,
            sim_bytes=sim_out,
            actual_bytes=actual_out,
        ) as span:
            breakdown.bind(span)
            yield from self._naive_overheads(
                resolved, Direction.DECOMPRESS, sim_out, breakdown
            )
            yield from self._sim_codec(
                dsg,
                resolved,
                Direction.DECOMPRESS,
                sim_out,
                None if stage_bytes is None else stage_bytes * scale,
                breakdown,
            )
        return DecompressResult(
            data=data, algo=algo, resolved=resolved, breakdown=breakdown
        )
