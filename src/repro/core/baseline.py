"""The non-PEDAL baseline: naive per-operation DOCA usage.

This is the comparison point of Fig. 7 and the "baseline" curves of
Fig. 10/11: every compression or decompression pays the full DOCA
initialisation and buffer-preparation cost *inside the operation*
("memory allocation and the DOCA initialization procedure are invoked
during every message transmission", §V-D).  SoC-placed designs skip
DOCA but still allocate their working buffers per call.

The same real codecs produce the same real bytes as PEDAL — only the
simulated-time accounting differs.

Fault response mirrors :class:`~repro.core.api.PedalContext`: injected
DOCA init failures and engine job failures are retried under the
:class:`~repro.faults.RetryPolicy` and escalate to the SoC pipeline for
the current operation once the budget is exhausted — but, true to the
naive flow, nothing is remembered across operations (the next op pays
full DOCA init and may fail all over again).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.api import (
    PHASE_COMP,
    PHASE_DECOMP,
    PHASE_INIT,
    PHASE_PREP,
    PHASE_HEADER,
    CompressResult,
    DecompressResult,
)
from repro.core.codecs import CodecConfig, real_compress, real_decompress
from repro.core.designs import CompressionDesign, Placement, design as lookup_design
from repro.core.header import HEADER_SIZE, PedalHeader
from repro.core.registry import ResolvedDesign, cengine_core_algo, resolve
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction
from repro.faults.plan import get_fault_plan
from repro.faults.policy import (
    EngineFallback,
    RetryPolicy,
    backoff_wait,
    engine_job_with_retry,
)
from repro.obs import device_span, get_metrics
from repro.sim import TimeBreakdown

__all__ = ["NaiveCompressor"]


class NaiveCompressor:
    """Per-operation (PEDAL-less) compression on one device."""

    def __init__(self, device: BlueFieldDPU, codecs: CodecConfig | None = None,
                 retry: RetryPolicy | None = None) -> None:
        self.device = device
        self.codecs = codecs or CodecConfig()
        self.retry = retry or RetryPolicy()

    # -- simulated-time helpers ------------------------------------------

    def _naive_overheads(
        self,
        dsg: CompressionDesign,
        resolved: ResolvedDesign,
        direction: Direction,
        sim_bytes: float,
        breakdown: TimeBreakdown,
    ) -> Generator:
        """Per-op setup: DOCA init (if the engine is used) + buffers.

        Returns the (possibly re-resolved) design: injected DOCA init
        failures are retried under the policy and, past the budget,
        this *operation* is forced onto the SoC pipeline.
        """
        device = self.device
        uses_engine = resolved.engine_for(direction) == "cengine"
        if uses_engine:
            plan = get_fault_plan()
            metrics = get_metrics()
            attempts = 0
            while True:
                attempts += 1
                fail = plan.active and plan.session_init(
                    device.name, device.env.now
                )
                with device_span("doca.init", device, device=device.name,
                                 per_op=True) as span:
                    if fail:
                        span.set_attr("fault", "init_fail")
                    breakdown.add(PHASE_INIT, device.cal.doca_init_time)
                    yield device.env.timeout(device.cal.doca_init_time)
                if not fail:
                    break
                if metrics.recording:
                    metrics.inc("faults.retries")
                if attempts >= self.retry.max_attempts:
                    if metrics.recording:
                        metrics.inc("faults.fallbacks")
                        metrics.inc("faults.init_giveups")
                    resolved = resolve(device, dsg, force_soc=True)
                    uses_engine = False
                    break
                yield from backoff_wait(device, self.retry, attempts, breakdown)
        if uses_engine:
            # Inventory + source/destination buffers, allocated and
            # DMA-mapped from scratch for this one operation.
            prep = device.memory.doca_buffer_prep_time(int(2 * sim_bytes))
            with device_span("buffer.prep", device, what="per_op_dma_map",
                             bytes=int(2 * sim_bytes)):
                breakdown.add(PHASE_PREP, prep)
                yield device.env.timeout(prep)
        else:
            # SoC path: plain allocations for input staging + output.
            prep = device.memory.alloc_time(int(2 * sim_bytes))
            with device_span("buffer.prep", device, what="per_op_alloc",
                             bytes=int(2 * sim_bytes)):
                breakdown.add(PHASE_PREP, prep)
                yield device.env.timeout(prep)
        return resolved

    def _soc_fallback_pipeline(
        self,
        dsg: CompressionDesign,
        direction: Direction,
        sim_bytes: float,
        breakdown: TimeBreakdown,
        phase: str,
    ) -> Generator:
        """Engine-shaped pipeline on SoC cores (capability gap or a
        runtime escalation past the retry budget)."""
        soc = self.device.soc
        core = cengine_core_algo(dsg.algo)
        seconds = soc.codec_time(core, direction, sim_bytes)
        yield from soc.run(seconds)
        breakdown.add(phase, seconds)
        if dsg.algo is Algo.ZLIB:
            check = soc.checksum_time(sim_bytes)
            yield from soc.run(check)
            breakdown.add(PHASE_HEADER, check)

    def _sim_codec(
        self,
        dsg: CompressionDesign,
        resolved: ResolvedDesign,
        direction: Direction,
        sim_bytes: float,
        sim_stage_bytes: float | None,
        breakdown: TimeBreakdown,
        payload: "bytes | None" = None,
    ) -> Generator:
        """Charge the codec op; returns ``payload`` (engine jobs may
        verify it against injected corruption, see :mod:`repro.faults`)."""
        device = self.device
        soc = device.soc
        cal = device.cal
        phase = PHASE_COMP if direction is Direction.COMPRESS else PHASE_DECOMP
        engine = resolved.engine_for(direction)

        if dsg.algo is Algo.SZ3:
            total = cal.soc_time(Algo.SZ3, direction, sim_bytes)
            if dsg.placement is Placement.SOC:
                yield from soc.run(total)
                breakdown.add(phase, total)
                return payload
            entropy = (1.0 - cal.sz3_lossless_fraction) * total
            yield from soc.run(entropy)
            breakdown.add(phase, entropy)
            stage = (
                sim_stage_bytes if sim_stage_bytes is not None else sim_bytes / 3.0
            )
            if engine == "cengine":
                try:
                    yield from engine_job_with_retry(
                        device, Algo.DEFLATE, direction, stage,
                        self.retry, breakdown, "lossless_stage",
                    )
                    return payload
                except EngineFallback:
                    metrics = get_metrics()
                    if metrics.recording:
                        metrics.inc("faults.fallbacks")
            seconds = stage / cal.sz3_backend_deflate_throughput
            yield from soc.run(seconds)
            breakdown.add("lossless_stage", seconds)
            return payload

        if engine == "cengine":
            core = cengine_core_algo(dsg.algo)
            try:
                payload = yield from engine_job_with_retry(
                    device, core, direction, sim_bytes,
                    self.retry, breakdown, phase, payload=payload,
                )
            except EngineFallback:
                metrics = get_metrics()
                if metrics.recording:
                    metrics.inc("faults.fallbacks")
                yield from self._soc_fallback_pipeline(
                    dsg, direction, sim_bytes, breakdown, phase
                )
                return payload
            if dsg.algo is Algo.ZLIB:
                check = soc.checksum_time(sim_bytes)
                yield from soc.run(check)
                breakdown.add(PHASE_HEADER, check)
        elif dsg.placement is Placement.CENGINE:
            # Requested C-Engine but unsupported: SoC fallback pipeline.
            yield from self._soc_fallback_pipeline(
                dsg, direction, sim_bytes, breakdown, phase
            )
        else:
            seconds = soc.codec_time(dsg.algo, direction, sim_bytes)
            yield from soc.run(seconds)
            breakdown.add(phase, seconds)
        return payload

    # -- public ops --------------------------------------------------------

    def compress(
        self,
        data: Any,
        design: "str | CompressionDesign",
        sim_bytes: float | None = None,
    ) -> Generator:
        """One naive compression: init + prep + codec, all charged here."""
        dsg = lookup_design(design)
        resolved = resolve(self.device, dsg)
        real = real_compress(dsg, data, self.codecs)
        sim_in = float(real.original_bytes if sim_bytes is None else sim_bytes)
        scale = sim_in / real.original_bytes if real.original_bytes else 1.0

        breakdown = TimeBreakdown()
        with device_span(
            "naive.compress", self.device,
            device=self.device.name,
            algo=dsg.algo.value,
            engine=resolved.engine_for(Direction.COMPRESS),
            direction=Direction.COMPRESS.value,
            sim_bytes=sim_in,
            actual_bytes=real.original_bytes,
        ) as span:
            breakdown.bind(span)
            resolved = yield from self._naive_overheads(
                dsg, resolved, Direction.COMPRESS, sim_in, breakdown
            )
            payload = yield from self._sim_codec(
                dsg,
                resolved,
                Direction.COMPRESS,
                sim_in,
                None
                if real.cengine_stage_bytes is None
                else real.cengine_stage_bytes * scale,
                breakdown,
                payload=real.payload,
            )
        message = PedalHeader.for_algo(dsg.algo).encode() + payload
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc(f"codec.{dsg.algo.value}.bytes_in", real.original_bytes)
            metrics.inc(f"codec.{dsg.algo.value}.bytes_out", len(message))
        return CompressResult(
            message=message,
            design=dsg,
            resolved=resolved,
            original_bytes=real.original_bytes,
            compressed_bytes=len(message),
            sim_original_bytes=sim_in,
            sim_compressed_bytes=len(message) * scale,
            breakdown=breakdown,
        )

    def decompress(
        self,
        message: bytes,
        placement: Placement = Placement.CENGINE,
        sim_bytes: float | None = None,
    ) -> Generator:
        """One naive decompression (same per-op overheads)."""
        header = PedalHeader.decode(message)
        payload = message[HEADER_SIZE:]
        breakdown = TimeBreakdown()
        if not header.is_compressed:
            return DecompressResult(
                data=payload, algo=None, resolved=None, breakdown=breakdown
            )
        algo = header.algo
        assert algo is not None
        data, stage_bytes = real_decompress(algo, payload)
        actual_out = data.nbytes if hasattr(data, "nbytes") else len(data)
        sim_out = float(actual_out if sim_bytes is None else sim_bytes)
        scale = sim_out / actual_out if actual_out else 1.0

        dsg = CompressionDesign(algo, placement)
        resolved = resolve(self.device, dsg)
        with device_span(
            "naive.decompress", self.device,
            device=self.device.name,
            algo=algo.value,
            engine=resolved.engine_for(Direction.DECOMPRESS),
            direction=Direction.DECOMPRESS.value,
            sim_bytes=sim_out,
            actual_bytes=actual_out,
        ) as span:
            breakdown.bind(span)
            resolved = yield from self._naive_overheads(
                dsg, resolved, Direction.DECOMPRESS, sim_out, breakdown
            )
            out = yield from self._sim_codec(
                dsg,
                resolved,
                Direction.DECOMPRESS,
                sim_out,
                None if stage_bytes is None else stage_bytes * scale,
                breakdown,
                payload=data if isinstance(data, bytes) else None,
            )
            if out is not None:
                data = out
        return DecompressResult(
            data=data, algo=algo, resolved=resolved, breakdown=breakdown
        )
