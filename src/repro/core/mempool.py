"""PEDAL's memory pool of pre-mapped DOCA buffers (paper §III-C).

The pool is populated once during ``PEDAL_Init``: a set of maximally
sized buffers is allocated and DMA-mapped up front, so the per-message
path performs *no* allocation, deallocation, or regular↔DOCA memory
mapping.  Acquiring a pooled buffer is free in simulated time; if the
pool is exhausted (more concurrent messages than buffers) the pool
grows, paying the full map cost for the new buffer — a *pool miss*,
counted in the statistics.

The pool enforces the acquire/release lifecycle: every buffer handed
out is tracked in an *outstanding* set until it comes back, so a double
``release()`` (which would put the same buffer on the free list twice
and hand it to two concurrent acquirers) and a release of a buffer the
pool never issued (a *foreign* buffer) both raise
:class:`~repro.errors.PoolLifecycleError` instead of silently
corrupting ``_free``.  ``drain()`` likewise refuses to tear the pool
down while buffers are outstanding — resetting the totals under a live
acquirer would leak the buffer out of the unmapped-tracking.

Two pools live under this module:

* :class:`MemoryPool` — the *simulated* DOCA buffer pool above, charged
  in device time.
* the **host-side scratch pool** (re-exported from
  :mod:`repro.util.scratch`) — real ``numpy`` byte buffers reused by the
  vectorized codec kernels (bit emission pack buffers, parallel-chunk
  staging), charged in wall-clock time.  It enforces the same
  acquire/release discipline (:class:`ScratchLifecycleError` on double
  or foreign release) and zeroes every buffer on acquire so one
  request's plaintext can never leak into another's scratch space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.doca.buffers import BufInventory, DocaBuffer
from repro.errors import PoolLifecycleError
from repro.obs import device_span, get_metrics
from repro.util.scratch import (
    ScratchLifecycleError,
    ScratchPool,
    ScratchStats,
    get_scratch_pool,
    scratch_lease,
    set_scratch_pool,
)

__all__ = [
    "MemoryPool",
    "PoolStats",
    "ScratchLifecycleError",
    "ScratchPool",
    "ScratchStats",
    "get_scratch_pool",
    "scratch_lease",
    "set_scratch_pool",
]


@dataclass
class PoolStats:
    """Acquisition statistics for one pool."""

    hits: int = 0
    misses: int = 0
    grow_seconds: float = 0.0

    @property
    def acquisitions(self) -> int:
        return self.hits + self.misses


@dataclass
class MemoryPool:
    """Fixed-size-class pool of pre-mapped :class:`DocaBuffer` objects."""

    inventory: BufInventory
    buffer_bytes: int
    stats: PoolStats = field(default_factory=PoolStats)
    _free: list[DocaBuffer] = field(default_factory=list)
    # Buffers handed to an acquirer and not yet released (identity set).
    _outstanding: "dict[int, DocaBuffer]" = field(default_factory=dict)
    _total: int = 0

    @property
    def total_buffers(self) -> int:
        return self._total

    @property
    def free_buffers(self) -> int:
        return len(self._free)

    @property
    def outstanding_buffers(self) -> int:
        """Buffers currently acquired and not yet released."""
        return len(self._outstanding)

    def prewarm(self, count: int) -> Generator:
        """Map ``count`` buffers up front; returns total mapping seconds.

        Called from ``PEDAL_Init`` — this is where the Fig. 7 overhead
        moves to.
        """
        device = self.inventory.session.device
        with device_span(
            "buffer.prep", device, what="mempool_prewarm",
            buffers=count, buffer_bytes=self.buffer_bytes,
        ):
            total = 0.0
            for _ in range(count):
                buf = yield from self.inventory.map_buffer(self.buffer_bytes)
                self._free.append(buf)
                self._total += 1
                total += buf.map_seconds
        return total

    def acquire(self) -> Generator:
        """Take a pooled buffer (free if available, else grow)."""
        metrics = get_metrics()
        if self._free:
            self.stats.hits += 1
            if metrics.recording:
                metrics.inc("mempool.hits")
            buf = self._free.pop()
            self._outstanding[id(buf)] = buf
            return buf
        # Pool miss: map a fresh buffer at full cost.
        self.stats.misses += 1
        if metrics.recording:
            metrics.inc("mempool.misses")
        device = self.inventory.session.device
        with device_span(
            "buffer.prep", device, what="pool_miss_grow",
            buffer_bytes=self.buffer_bytes,
        ):
            buf = yield from self.inventory.map_buffer(self.buffer_bytes)
        self.stats.grow_seconds += buf.map_seconds
        self._total += 1
        self._outstanding[id(buf)] = buf
        return buf

    def release(self, buf: DocaBuffer) -> None:
        """Return a buffer to the pool for reuse.

        Raises :class:`~repro.errors.PoolLifecycleError` when ``buf`` is
        not currently outstanding — a double release (the buffer already
        went back to ``_free``) or a foreign buffer this pool never
        issued.  Either would let one buffer be handed to two acquirers.
        """
        if not buf.is_live:
            raise ValueError("released buffer is no longer mapped")
        if self._outstanding.pop(id(buf), None) is None:
            if any(buf is free for free in self._free):
                raise PoolLifecycleError(
                    "double release: buffer is already on the pool free list"
                )
            raise PoolLifecycleError(
                "foreign release: buffer was not acquired from this pool"
            )
        self._free.append(buf)

    def drain(self) -> None:
        """Unmap every pooled buffer (PEDAL_finalize).

        Refuses while buffers are still outstanding: unmapping under a
        live acquirer (and zeroing ``_total``) would leak the buffer out
        of the pool's unmapped-tracking.
        """
        if self._outstanding:
            raise PoolLifecycleError(
                f"drain with {len(self._outstanding)} outstanding "
                "buffer(s) still acquired; release them first"
            )
        for buf in self._free:
            buf.release()
        self._free.clear()
        self._total = 0
