"""Real-codec dispatch shared by the PEDAL context and the naive baseline.

Separates *what bytes are produced* (this module — always real
compression of real data) from *what simulated time it costs* (the
callers charge the hardware model).  The C-Engine variants of zlib/SZ3
produce different real bytes than their SoC variants only where the
paper's designs do (SZ3's backend codec switches to DEFLATE; zlib output
is byte-identical by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.algorithms.ac import ACConfig, ac_compress, ac_decompress
from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.algorithms.lz4 import lz4_compress, lz4_decompress
from repro.algorithms.sz3 import SZ3Compressor, SZ3Config
from repro.core.designs import CompressionDesign, Placement
from repro.core.sz3_hybrid import hybrid_sz3_compress
from repro.core.zlib_hybrid import hybrid_zlib_compress, hybrid_zlib_decompress
from repro.dpu.specs import Algo
from repro.errors import UnsupportedDataError
from repro.util.kernels import kernel_mode

__all__ = [
    "CodecConfig",
    "RealCompression",
    "real_compress",
    "real_decompress",
    "clear_codec_cache",
]


@dataclass(frozen=True)
class CodecConfig:
    """Codec tuning shared across designs."""

    deflate: DeflateConfig | None = None
    sz3: SZ3Config = SZ3Config(error_bound=1e-4)  # the paper's bound
    ac: ACConfig = ACConfig()  # adaptive-context range coder defaults


@dataclass(frozen=True)
class RealCompression:
    """Output of a real compression run."""

    payload: bytes  # compressed bytes (no PEDAL header)
    original_bytes: int
    # For hybrid designs: size of the intermediate handed to the
    # C-Engine stage (DEFLATE payload for zlib, entropy payload for
    # SZ3); None for single-stage designs.
    cengine_stage_bytes: int | None = None


def _as_bytes(data: Any) -> bytes:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    if isinstance(data, np.ndarray):
        return data.tobytes()
    raise UnsupportedDataError(
        f"lossless designs take bytes-like or ndarray input, got {type(data)!r}"
    )


def _as_array(data: Any) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return data
    raise UnsupportedDataError(
        f"the SZ3 design takes a numpy float array, got {type(data)!r}"
    )


# Memoisation of real codec runs: the MPI benches send the same payload
# through the same design many times (ping-pong echoes, broadcast
# relays), and pure-Python compression dominates their wall-clock.  The
# simulated-time accounting is unaffected — only the byte-production is
# cached.  Keys fingerprint the content (sha1) rather than object
# identity, so logically equal payloads share entries.
_COMPRESS_CACHE: dict[tuple, RealCompression] = {}
_DECOMPRESS_CACHE: dict[tuple, tuple] = {}
_CACHE_LIMIT = 256


def clear_codec_cache() -> None:
    """Drop memoised codec runs (tests use this for isolation)."""
    _COMPRESS_CACHE.clear()
    _DECOMPRESS_CACHE.clear()


def _fingerprint(data: Any) -> tuple:
    import hashlib

    if isinstance(data, np.ndarray):
        digest = hashlib.sha1(np.ascontiguousarray(data).tobytes()).hexdigest()
        return ("nd", str(data.dtype), data.shape, digest)
    blob = bytes(data)
    return ("b", len(blob), hashlib.sha1(blob).hexdigest())


def real_compress(
    design: CompressionDesign, data: Any, config: CodecConfig
) -> RealCompression:
    """Run the design's real compressor over ``data`` (memoised)."""
    # kernel_mode is in the key for *timing* isolation, not correctness:
    # scalar and vectorized kernels are byte-identical, but a wall-clock
    # comparison must not serve one mode's work from the other's cache.
    key = (
        design.algo, design.placement, config.deflate, config.sz3, config.ac,
        kernel_mode(), _fingerprint(data),
    )
    cached = _COMPRESS_CACHE.get(key)
    if cached is not None:
        return cached
    result = _real_compress_uncached(design, data, config)
    if len(_COMPRESS_CACHE) >= _CACHE_LIMIT:
        _COMPRESS_CACHE.clear()
    _COMPRESS_CACHE[key] = result
    return result


def _real_compress_uncached(
    design: CompressionDesign, data: Any, config: CodecConfig
) -> RealCompression:
    algo = design.algo
    if algo is Algo.DEFLATE:
        raw = _as_bytes(data)
        return RealCompression(deflate_compress(raw, config.deflate), len(raw))
    if algo is Algo.LZ4:
        raw = _as_bytes(data)
        return RealCompression(lz4_compress(raw), len(raw))
    if algo is Algo.AC:
        raw = _as_bytes(data)
        # Single-stage on every placement: no C-Engine generation
        # accelerates the range coder, so there is no hybrid variant.
        return RealCompression(ac_compress(raw, config.ac), len(raw))
    if algo is Algo.ZLIB:
        raw = _as_bytes(data)
        stream, sizes = hybrid_zlib_compress(raw, config.deflate)
        return RealCompression(stream, len(raw), sizes.deflate_payload_bytes)
    if algo is Algo.SZ3:
        array = _as_array(data)
        if design.placement is Placement.CENGINE:
            result = hybrid_sz3_compress(array, config.sz3)
            return RealCompression(
                result.stream,
                result.sizes.input_bytes,
                result.sizes.entropy_payload_bytes,
            )
        compressor = SZ3Compressor(config.sz3)
        stream = compressor.compress(array)
        return RealCompression(
            stream,
            compressor.last_stage_sizes.input_bytes,
            compressor.last_stage_sizes.entropy_payload_bytes,
        )
    raise UnsupportedDataError(f"no real codec for algorithm {algo}")


def real_decompress(algo: Algo, payload: bytes) -> tuple[Any, int | None]:
    """Decode ``payload``; returns ``(data, cengine_stage_bytes)``.

    ``cengine_stage_bytes`` is the intermediate the C-Engine stage
    would process on the receive side (zlib's DEFLATE payload, SZ3's
    backend blob input) or None for single-stage formats.  Memoised like
    :func:`real_compress`.
    """
    key = (algo, kernel_mode(), _fingerprint(payload))
    cached = _DECOMPRESS_CACHE.get(key)
    if cached is not None:
        return cached
    result = _real_decompress_uncached(algo, payload)
    if len(_DECOMPRESS_CACHE) >= _CACHE_LIMIT:
        _DECOMPRESS_CACHE.clear()
    _DECOMPRESS_CACHE[key] = result
    return result


def _real_decompress_uncached(algo: Algo, payload: bytes) -> tuple[Any, int | None]:
    if algo is Algo.DEFLATE:
        return deflate_decompress(payload), None
    if algo is Algo.LZ4:
        return lz4_decompress(payload), None
    if algo is Algo.AC:
        return ac_decompress(payload), None
    if algo is Algo.ZLIB:
        data, sizes = hybrid_zlib_decompress(payload)
        return data, sizes.deflate_payload_bytes
    if algo is Algo.SZ3:
        array, sizes = SZ3Compressor.decompress_stages(payload)
        # The C-Engine stage inflates the backend blob back into the
        # entropy payload; charge for the payload it reproduces.
        return array, sizes.entropy_payload_bytes
    raise UnsupportedDataError(f"no real codec for algorithm {algo}")
