"""Deterministic perf-regression harness (``BENCH_PR3.json`` / ``BENCH_PR4.json``).

The simulation is fully deterministic: every sim-clock number below is
a pure function of the cost model and the scheduler, independent of the
host machine and of the *actual* payload size (the real codec bytes
only affect ratios, which this harness deliberately excludes).  That
makes an exact trajectory file possible: ``benchmarks/regress.py``
writes the headline numbers to ``BENCH_PR3.json`` at the repo root, and
``tests/bench/test_regression_gates.py`` re-runs the same experiments
and asserts (a) the recorded values are *bit-for-bit reproduced* and
(b) the headline bands the reproduction stands on still hold:

* PEDAL beats the naive per-message flow by a wide factor (Fig. 7);
* the BF3 C-Engine beats BF2's on DEFLATE decompression (Fig. 8);
* the pipelined work queue (depth >= 2) beats serial submission on
  every engine-capable PPAR grid point, with the queue actually
  reaching its configured depth.

A second report, ``BENCH_PR4.json``, records the serving-layer
trajectory (:mod:`repro.serve`): offered-load vs goodput/p99 curves for
the batched and unbatched gateway over a mixed BF-2/BF-3 fleet, gated
on the serving headlines (batching beats unbatched goodput at
saturating load; admission keeps peak pending <= ``max_pending`` even
at >2x overload; the capability router beats round-robin).

``BENCH_PR6.json`` (telemetry plane) is split in two sections with
*different* gating disciplines: ``"sim"`` carries the deterministic
fleet-demo trajectory (sketch roll-up error vs exact pooled
percentiles, SLO alert stream, bit-for-bit equality of the serve sweep
with telemetry on vs off) and is exact-gated like every other report;
``"wall"`` carries host-dependent wall-clock readings (the telemetry
overhead ratio on the serve experiment, the codec flamegraph's top
kernel) and is gated on bands only — wall numbers are re-measured at
test time, never compared bit-for-bit.

Future PRs that change the cost model or the scheduler must regenerate
the files (``python benchmarks/regress.py``) — the diff then *is* the
perf trajectory, reviewed like any other artifact.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any

import numpy as np

from repro import obs
from repro.bench.harness import run_naive_roundtrip, run_pedal_roundtrip
from repro.core.parallel import ParallelCompressor, ParallelConfig
from repro.datasets import get_dataset
from repro.dpu.device import make_device
from repro.dpu.specs import Direction
from repro.sim import Environment

__all__ = ["collect", "collect_serve", "collect_select", "collect_obs",
           "collect_edpc", "collect_wallclock", "collect_cluster",
           "collect_stream",
           "gate", "gate_serve", "gate_select", "gate_obs", "gate_edpc",
           "gate_wallclock", "gate_cluster", "gate_stream",
           "write_report", "load_report", "BANDS",
           "SERVE_BANDS", "SELECT_BANDS", "OBS_SIM_BANDS", "OBS_WALL_BANDS",
           "EDPC_BANDS", "WALL_BANDS", "WALL_CODEC_FLOORS_MBPS",
           "CLUSTER_BANDS", "STREAM_BANDS",
           "DEFAULT_REPORT_PATH",
           "DEFAULT_SERVE_REPORT_PATH", "DEFAULT_SELECT_REPORT_PATH",
           "DEFAULT_OBS_REPORT_PATH", "DEFAULT_EDPC_REPORT_PATH",
           "DEFAULT_WALL_REPORT_PATH", "DEFAULT_CLUSTER_REPORT_PATH",
           "DEFAULT_STREAM_REPORT_PATH",
           "SCHEMA", "SERVE_SCHEMA", "SELECT_SCHEMA", "OBS_SCHEMA",
           "EDPC_SCHEMA", "WALL_SCHEMA", "CLUSTER_SCHEMA", "STREAM_SCHEMA",
           "SELECT_TOLERANCE", "OBS_OVERHEAD_CEILING"]

SCHEMA = 1
DEFAULT_REPORT_PATH = "BENCH_PR3.json"
SERVE_SCHEMA = 1
DEFAULT_SERVE_REPORT_PATH = "BENCH_PR4.json"
SELECT_SCHEMA = 1
DEFAULT_SELECT_REPORT_PATH = "BENCH_PR5.json"
OBS_SCHEMA = 1
DEFAULT_OBS_REPORT_PATH = "BENCH_PR6.json"
EDPC_SCHEMA = 1
DEFAULT_EDPC_REPORT_PATH = "BENCH_PR7.json"
WALL_SCHEMA = 1
DEFAULT_WALL_REPORT_PATH = "BENCH_PR8.json"
CLUSTER_SCHEMA = 1
DEFAULT_CLUSTER_REPORT_PATH = "BENCH_PR9.json"
STREAM_SCHEMA = 1
DEFAULT_STREAM_REPORT_PATH = "BENCH_PR10.json"

# -- BENCH_PR8 (kernel vectorization wall clock) -----------------------
_WALL_REPS = 3            # min-of-N per timing
_WALL_SUITE_BYTES = 1 << 20
_WALL_CODEC_BYTES = 1 << 18
#: DEFLATE suite members whose scalar pipeline is literal/emit-heavy —
#: the structures the vectorized kernels batch; their geomean is the
#: headline aggregate.
_WALL_LIT_SUITE = ("noise", "ascii")
#: Deep-chain / degenerate members: the candidate walk (identical in
#: both modes by construction) dominates, so these gate on
#: non-inferiority floors only.
_WALL_PARITY_SUITE = ("silesia/xml", "silesia/samba", "runs2")

#: Band gates for BENCH_PR8 — wall clock, floors only, deliberately
#: generous (roughly half of what a loaded CI host measures; recorded
#: trajectory values run 1.5-2x above every floor).
WALL_BANDS: "dict[str, tuple[float | None, float | None]]" = {
    # Aggregate: vectorized kernels vs the full-scalar reference
    # pipeline on the match_loop-dominated literal suite (recorded ~3.5x).
    "wall_vec_speedup_lit_geomean": (1.8, None),
    "wall_vec_speedup_noise": (1.5, None),
    "wall_vec_speedup_ascii": (1.5, None),
    # Non-inferiority on the deep-chain suite (both modes walk the same
    # candidate sequence; vectorized pays a small precompute constant).
    "wall_vec_speedup_silesia_xml": (0.6, None),
    "wall_vec_speedup_silesia_samba": (0.6, None),
    "wall_vec_speedup_runs2": (0.45, None),
    # The headline suite must be measuring what it claims to measure.
    "wall_top_kernel_is_lz77": (1.0, 1.0),
}

#: Per-codec compress-throughput floors (MB/s, vectorized mode, 256 KiB
#: silesia/xml sample; sz3 on a float32 field).  Set to roughly 1/6 of
#: a development-host measurement so loaded CI machines clear them.
WALL_CODEC_FLOORS_MBPS: "dict[str, float]" = {
    "deflate": 0.12,
    "zlib": 0.12,
    "gzip": 0.12,
    "lz4b": 0.5,
    "lz4f": 0.4,
    "zstdlite": 0.2,
    "ac": 0.2,
    "sz3": 1.5,
}

# Small real payloads: the sim-clock headlines are independent of the
# actual byte budget, so the harness stays fast.
_ACTUAL_BYTES = 8 * 1024
_NOMINAL = 48.85e6
_ROUNDTRIP_DATASET = "silesia/xml"   # the paper's 5.1 MB grid point
_PPAR_DATASET = "silesia/mozilla"
_PPAR_CHUNKS = 8
_PPAR_DEPTH = 2

# Headline bands: (floor, ceiling) — None = unbounded on that side.
# Floors are deliberately loose versions of the paper's factors; the
# exact-trajectory check in the gate test is the tight screw.
BANDS: dict[str, tuple[float | None, float | None]] = {
    # Fig. 7: DOCA init + buffer prep dominate the naive flow.
    "pedal_vs_naive_deflate_xml": (5.0, None),
    # Fig. 8: the BF3 engine generation is faster at decompression.
    "bf3_vs_bf2_engine_decompress": (1.0, None),
    # Tentpole: pipelining must strictly beat serial submission.
    "pipelined_vs_serial_bf2_compress": (1.0, None),
    "pipelined_vs_serial_bf2_decompress": (1.0, None),
    "pipelined_vs_serial_bf3_decompress": (1.0, None),
    # The bounded queue actually fills to its configured depth.
    "sched_occupancy_max": (float(_PPAR_DEPTH), None),
}


# Serving-layer sweep (BENCH_PR4.json).  The top rate is >2x the
# unbatched fleet's engine capacity (~7.3k req/s on two BF-2s), so it
# doubles as the overload point for the bounded-queue gate.
_SERVE_LOADS_REQ_S = (2_000, 6_000, 12_000, 24_000)
_SERVE_BATCH_MSGS = 8
_SERVE_MAX_PENDING = 64

SERVE_BANDS: dict[str, tuple[float | None, float | None]] = {
    # Batching amortizes the per-job engine overhead: at the unbatched
    # saturation point it must deliver strictly more goodput.
    "serve_batched_vs_unbatched_goodput_at_saturation": (1.0, None),
    # Backpressure: pending requests stay bounded at >2x overload.
    "serve_unbatched_peak_pending_overload": (None, float(_SERVE_MAX_PENDING)),
    "serve_batched_peak_pending_overload": (None, float(_SERVE_MAX_PENDING)),
    # Capability-aware routing keeps compress batches off BF-3's
    # engine-less (SoC fallback) path.
    "serve_capability_vs_round_robin_goodput": (1.0, None),
}


# Path-selection sweep (BENCH_PR5.json).  The crossover bands are
# factor-2 envelopes around the calibrated closed-form values (BF2
# DEFLATE compress ~6.3 KB, decompress ~190 KB, BF3 decompress
# ~52 KB); the exact-trajectory gate is, as always, the tight screw.
SELECT_TOLERANCE = 0.05

SELECT_BANDS: dict[str, tuple[float | None, float | None]] = {
    # path="auto" latency <= best static path + the model's tolerance.
    "select_auto_vs_best_static_max": (None, 1.0 + SELECT_TOLERANCE),
    # Tables II/III: BF-3 compress must never route to its
    # decompress-only C-Engine.
    "select_bf3_compress_engine_picks": (None, 0.0),
    # Paper shape: SoC wins below the crossover, C-Engine above, and
    # the sweep brackets every capable crossover.
    "select_paper_shape_ok": (1.0, None),
    # Steady-state dispatch hits the memoized crossover cache.
    "select_cache_hit_rate": (0.5, None),
    "select_crossover_bf2_compress_bytes": (4.0e3, 16.0e3),
    "select_crossover_bf2_decompress_bytes": (128.0e3, 512.0e3),
    "select_crossover_bf3_decompress_bytes": (32.0e3, 128.0e3),
}


# Telemetry-plane gates (BENCH_PR6.json).  Sim-section bands hold on
# deterministic numbers; the wall section re-measures at gate time.
OBS_OVERHEAD_CEILING = 1.05  # telemetry-on wall clock <= 5% over off
_OBS_WALL_REPS = 7
_OBS_SERVE_LOAD = 12_000.0
_OBS_FLAME_BYTES = 64 * 1024

OBS_SIM_BANDS: dict[str, tuple[float | None, float | None]] = {
    # Fleet sketch percentiles stay within the advertised relative
    # error of the exact pooled nearest-rank values (alpha = 0.01).
    "obs_fleet_p50_rel_err": (None, 0.01),
    "obs_fleet_p99_rel_err": (None, 0.01),
    # The seeded overload fires the full deterministic alert stream:
    # pages, tickets, and a goodput-floor breach.
    "obs_slo_alerts": (1.0, None),
    "obs_slo_page_alerts": (1.0, None),
    "obs_slo_goodput_alerts": (1.0, None),
    # The scrape loop ran and >= 2 gateways' registries rolled up.
    "obs_scrapes": (2.0, None),
    "obs_member_registries": (4.0, None),
    # The serve sweep point is bit-for-bit identical with telemetry on.
    "obs_bit_for_bit": (1.0, 1.0),
}

OBS_WALL_BANDS: dict[str, tuple[float | None, float | None]] = {
    "obs_overhead_ratio": (None, OBS_OVERHEAD_CEILING),
    # The DEFLATE-compress flamegraph names the match loop on top.
    "obs_top_kernel_is_lz77": (1.0, 1.0),
}


# Adaptive-context coder gates (BENCH_PR7.json).  All deterministic:
# ratios come from seeded dataset generators through the real codecs,
# makespans from the calibrated cost model.  The pipelined speedup is
# bounded above by 1/max(f, 1-f) of the ac codec time (f = model
# fraction, 0.55 -> bound ~1.82); the floor requires pipelining to
# actually pay at the largest message.
EDPC_BANDS: dict[str, tuple[float | None, float | None]] = {
    # Decoupling must never lose, and must approach the stage bound.
    "edpc_pipelined_vs_unpipelined_large": (1.5, 1.0 / 0.55 + 1e-9),
    # Both dataflows emit bit-identical streams (scheduling-only win).
    "edpc_bytes_identical": (1.0, 1.0),
    # Measured ratio trade vs DEFLATE at the 24 KiB samples: LZ77's
    # exact-repeat matches beat the order-2 context model on these
    # corpora; the bands pin the trade so a codec change shows up.
    "edpc_ac_vs_deflate_ratio_xml": (0.25, 0.5),
    "edpc_ac_vs_deflate_ratio_obs_error": (0.65, 0.95),
}


# Fleet-cluster gates (BENCH_PR9.json).  All deterministic sim-clock
# numbers; the exact-trajectory check (routing digests included) is the
# tight screw, these bands pin the *shape* the tentpole claims:
# goodput saturates under the global+shard admission split instead of
# collapsing, the shard budget actually binds, and in-shard failover
# recovers the kill.
_CLUSTER_SHARD_MAX_PENDING = 64   # mirrors cluster_fleet._SHARD_MAX_PENDING

CLUSTER_BANDS: "dict[str, tuple[float | None, float | None]]" = {
    # Saturation, not collapse: the 100x point holds >= 90 % of the
    # curve's peak goodput (recorded: it *is* the peak) ...
    "cluster_goodput_at_100x_vs_peak": (0.9, None),
    # ... and no step down the curve loses more than 10 % (monotone up
    # to the saturation plateau; recorded minimum successive ratio
    # ~0.985 at the 1.2M point).
    "cluster_goodput_successive_ratio_min": (0.9, None),
    # Per-shard pending never exceeds the shard admission budget, even
    # at 100x overload (recorded: exactly at budget, never over).
    "cluster_max_shard_pending_overload": (
        None, float(_CLUSTER_SHARD_MAX_PENDING)
    ),
    # Every request admitted anywhere is completed or failed: both
    # admission layers drain to zero after every run (the slot-leak
    # regression this PR fixes would show up here).
    "cluster_pending_after_drain": (0.0, 0.0),
    # The mid-run whole-worker kill recovers >= 90 % of the pre-kill
    # completion rate via in-shard failover (recorded ~0.95).
    "cluster_failover_recovery_ratio": (0.9, None),
    # The kill actually exercised the failover path at least once ...
    "cluster_failovers": (1.0, None),
    # ... and the latency spike tripped the burn-rate alert stream.
    "cluster_slo_alerts_failover": (1.0, None),
}


def _ppar_run(device_kind: str, direction: Direction, depth: int,
              actual_bytes: int, container: bytes | None = None):
    env = Environment()
    device = make_device(env, device_kind)
    pc = ParallelCompressor(
        device, ParallelConfig(n_chunks=_PPAR_CHUNKS, pipeline_depth=depth)
    )
    if direction is Direction.COMPRESS:
        payload = get_dataset(_PPAR_DATASET).generate(actual_bytes)
        proc = env.process(pc.compress(payload, _NOMINAL))
    else:
        proc = env.process(pc.decompress(container, _NOMINAL))
    return env.run(until=proc)


def collect(actual_bytes: int = _ACTUAL_BYTES) -> dict[str, Any]:
    """Run the regression experiments; returns the report dict."""
    headlines: dict[str, float] = {}
    rows: dict[str, Any] = {}

    # -- PEDAL vs naive (Fig. 7 factor) --------------------------------
    pedal = run_pedal_roundtrip(
        "bf2", "C-Engine_DEFLATE", _ROUNDTRIP_DATASET, actual_bytes=actual_bytes
    )
    naive = run_naive_roundtrip(
        "bf2", "C-Engine_DEFLATE", _ROUNDTRIP_DATASET, actual_bytes=actual_bytes
    )
    pedal_total = pedal.compress_seconds + pedal.decompress_seconds
    naive_total = naive.compress_seconds + naive.decompress_seconds
    headlines["pedal_vs_naive_deflate_xml"] = naive_total / pedal_total
    rows["roundtrip_bf2_pedal_s"] = pedal_total
    rows["roundtrip_bf2_naive_s"] = naive_total

    # -- BF2 vs BF3 engine direction (Fig. 8) --------------------------
    bf3 = run_pedal_roundtrip(
        "bf3", "C-Engine_DEFLATE", _ROUNDTRIP_DATASET, actual_bytes=actual_bytes
    )
    headlines["bf3_vs_bf2_engine_decompress"] = (
        pedal.decompress_seconds / bf3.decompress_seconds
    )
    rows["decompress_bf2_engine_s"] = pedal.decompress_seconds
    rows["decompress_bf3_engine_s"] = bf3.decompress_seconds

    # -- pipelined vs serial work queue (tentpole) ---------------------
    container = _ppar_run(
        "bf2", Direction.COMPRESS, 1, actual_bytes
    ).payload
    grid = [
        ("bf2", Direction.COMPRESS),
        ("bf2", Direction.DECOMPRESS),
        ("bf3", Direction.DECOMPRESS),
    ]
    occupancy_max = 0.0
    for device_kind, direction in grid:
        serial = _ppar_run(device_kind, direction, 1, actual_bytes,
                           container=container)
        metrics = obs.MetricsRegistry()
        prev = obs.set_metrics(metrics)
        try:
            piped = _ppar_run(device_kind, direction, _PPAR_DEPTH,
                              actual_bytes, container=container)
        finally:
            obs.set_metrics(prev)
        occupancy_max = max(
            occupancy_max, metrics.gauge("sched.occupancy").max
        )
        key = f"pipelined_vs_serial_{device_kind}_{direction.value}"
        headlines[key] = serial.sim_seconds / piped.sim_seconds
        rows[f"ppar_{device_kind}_{direction.value}_serial_s"] = serial.sim_seconds
        rows[f"ppar_{device_kind}_{direction.value}_depth{_PPAR_DEPTH}_s"] = (
            piped.sim_seconds
        )
    headlines["sched_occupancy_max"] = occupancy_max

    return {
        "schema": SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "actual_bytes": actual_bytes,
            "nominal_bytes": _NOMINAL,
            "ppar_chunks": _PPAR_CHUNKS,
            "ppar_depth": _PPAR_DEPTH,
            "roundtrip_dataset": _ROUNDTRIP_DATASET,
            "ppar_dataset": _PPAR_DATASET,
        },
        "headlines": headlines,
        "rows": rows,
    }


def collect_serve(actual_bytes: int = 1024) -> dict[str, Any]:
    """Run the serving-layer sweep; returns the BENCH_PR4 report dict.

    Curves are full offered-load sweeps (goodput, p50/p99, shed and
    peak-pending counts) for the batched and unbatched gateway; the
    headlines condense them into the gated ratios.
    """
    from repro.bench.experiments.serve_gateway import run_serve_point

    curves: dict[str, list[dict]] = {"unbatched": [], "batched": []}
    for msgs, label in ((1, "unbatched"), (_SERVE_BATCH_MSGS, "batched")):
        for load in _SERVE_LOADS_REQ_S:
            curves[label].append(
                run_serve_point(load, msgs, actual_bytes=actual_bytes,
                                max_pending=_SERVE_MAX_PENDING)
            )
    top = max(_SERVE_LOADS_REQ_S)
    round_robin = run_serve_point(
        top, _SERVE_BATCH_MSGS, router="round_robin",
        actual_bytes=actual_bytes, max_pending=_SERVE_MAX_PENDING,
    )
    at_top = {label: curves[label][-1] for label in curves}

    headlines = {
        "serve_batched_vs_unbatched_goodput_at_saturation": (
            at_top["batched"]["goodput_bytes_s"]
            / at_top["unbatched"]["goodput_bytes_s"]
        ),
        "serve_unbatched_peak_pending_overload": float(
            at_top["unbatched"]["peak_pending"]
        ),
        "serve_batched_peak_pending_overload": float(
            at_top["batched"]["peak_pending"]
        ),
        "serve_capability_vs_round_robin_goodput": (
            at_top["batched"]["goodput_bytes_s"]
            / round_robin["goodput_bytes_s"]
        ),
        "serve_unbatched_p99_overload_s": at_top["unbatched"]["p99_s"],
        "serve_batched_p99_overload_s": at_top["batched"]["p99_s"],
    }
    return {
        "schema": SERVE_SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "actual_bytes": actual_bytes,
            "loads_req_s": list(_SERVE_LOADS_REQ_S),
            "batch_msgs": _SERVE_BATCH_MSGS,
            "max_pending": _SERVE_MAX_PENDING,
        },
        "curves": curves,
        "round_robin_at_overload": round_robin,
        "headlines": headlines,
    }


def collect_select(actual_bytes: int = 1024) -> dict[str, Any]:
    """Run the path-selection sweep; returns the BENCH_PR5 report dict."""
    from repro.bench.experiments.select_crossover import _SIZES, run_select_sweep

    sweep = run_select_sweep(actual_bytes=actual_bytes)
    return {
        "schema": SELECT_SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "actual_bytes": actual_bytes,
            "sizes": list(_SIZES),
            "tolerance": SELECT_TOLERANCE,
        },
        "rows": sweep["rows"],
        "headlines": sweep["headlines"],
    }


def _serve_point_record(telemetry_on: bool, actual_bytes: int) -> dict:
    from repro.bench.experiments.serve_gateway import run_serve_point
    from repro.serve import TelemetryConfig

    return run_serve_point(
        _OBS_SERVE_LOAD, _SERVE_BATCH_MSGS, actual_bytes=actual_bytes,
        max_pending=_SERVE_MAX_PENDING,
        telemetry=TelemetryConfig() if telemetry_on else None,
    )


def _records_identical(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    for key, value in a.items():
        other = b[key]
        if isinstance(value, float) and isinstance(other, float):
            if math.isnan(value) and math.isnan(other):
                continue
        if value != other:
            return False
    return True


def _wall_serve_seconds(telemetry_on: bool, actual_bytes: int) -> float:
    best = float("inf")
    for _ in range(_OBS_WALL_REPS):
        started = time.perf_counter()
        _serve_point_record(telemetry_on, actual_bytes)
        best = min(best, time.perf_counter() - started)
    return best


def _wall_serve_pair(actual_bytes: int) -> "tuple[float, float]":
    """Trimmed-total (off, on) wall seconds, reps *interleaved*.

    The vectorized kernels shrank the serve point to ~0.5 s, where this
    host's run-to-run jitter is the same order as the telemetry
    overhead being measured, so two things keep the ratio honest:
    off/on reps are interleaved (slow drift — thermal, noisy
    neighbours — can't land entirely on one side and fake an
    overhead), and each side drops its fastest and slowest rep before
    summing (a min-of-N ratio is the quotient of two extreme order
    statistics, far noisier than the trimmed totals).
    """
    offs: "list[float]" = []
    ons: "list[float]" = []
    for _ in range(_OBS_WALL_REPS):
        started = time.perf_counter()
        _serve_point_record(False, actual_bytes)
        offs.append(time.perf_counter() - started)
        started = time.perf_counter()
        _serve_point_record(True, actual_bytes)
        ons.append(time.perf_counter() - started)
    trim = 1 if _OBS_WALL_REPS >= 3 else 0
    off_s = sum(sorted(offs)[trim:_OBS_WALL_REPS - trim])
    on_s = sum(sorted(ons)[trim:_OBS_WALL_REPS - trim])
    return off_s, on_s


def collect_obs(actual_bytes: int = 1024) -> dict[str, Any]:
    """Run the telemetry-plane demo + overhead gate; BENCH_PR6 report.

    The ``sim`` section is deterministic (exact-gated by the tests);
    the ``wall`` section is re-measured on whatever host runs the gate
    and only has to stay inside its bands.
    """
    from repro.algorithms.deflate import deflate_compress
    from repro.bench.experiments.obs_telemetry import run_fleet_demo
    from repro.bench.harness import generate_payload

    demo = run_fleet_demo()

    # Telemetry must not change a single simulated number.
    plain = _serve_point_record(False, actual_bytes)
    telemetered = _serve_point_record(True, actual_bytes)
    sim_headlines = dict(demo["headlines"])
    sim_headlines["obs_bit_for_bit"] = (
        1.0 if _records_identical(plain, telemetered) else 0.0
    )

    # Wall section: overhead ratio (min-of-N either way) + top kernel.
    off_s, on_s = _wall_serve_pair(actual_bytes)
    profiler = obs.CodecProfiler()
    payload = bytes(generate_payload(_ROUNDTRIP_DATASET, _OBS_FLAME_BYTES))
    prev = obs.set_profiler(profiler)
    try:
        deflate_compress(payload)
    finally:
        obs.set_profiler(prev)
    top = profiler.top_kernel(("deflate.compress",))

    return {
        "schema": OBS_SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "actual_bytes": actual_bytes,
            "serve_load_req_s": _OBS_SERVE_LOAD,
            "batch_msgs": _SERVE_BATCH_MSGS,
            "wall_repetitions": _OBS_WALL_REPS,
            "flamegraph_bytes": _OBS_FLAME_BYTES,
            "overhead_ceiling": OBS_OVERHEAD_CEILING,
        },
        "sim": {
            "headlines": sim_headlines,
            "rows": demo["rows"],
            "alerts": demo["alerts"],
            "serve_point": plain,
        },
        "wall": {
            "headlines": {
                "obs_overhead_ratio": on_s / off_s,
                "obs_top_kernel_is_lz77": (
                    1.0 if top == "lz77.match_loop" else 0.0
                ),
            },
            "telemetry_off_s": off_s,
            "telemetry_on_s": on_s,
            "top_kernel": top,
        },
    }


def collect_edpc() -> dict[str, Any]:
    """Run the adaptive-context coder sweep; BENCH_PR7 report dict.

    Everything here is deterministic — real codec ratios on seeded
    dataset samples plus calibrated sim-clock makespans — so the whole
    report is exact-gated like BENCH_PR3.
    """
    from repro.bench.experiments.edpc_pipeline import run as run_edpc

    result = run_edpc()
    return {
        "schema": EDPC_SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "ratio_actual_bytes": 24 * 1024,
            "pipeline_actual_bytes": 16 * 1024,
            "queue_depth": 2,
        },
        "rows": [dict(row) for row in result.rows],
        "headlines": dict(result.headlines),
    }


def _wall_payload(name: str, nbytes: int) -> bytes:
    """Deterministic wall-bench payloads (independent of the sim datasets
    where noted, so the suite composition is explicit in this file)."""
    if name == "noise":
        return np.random.default_rng(0x9E3779B9).bytes(nbytes)
    if name == "ascii":
        rng = np.random.default_rng(0x85EBCA6B)
        return bytes(rng.integers(32, 127, nbytes, dtype=np.uint8))
    if name == "runs2":
        pattern = (
            b"\x00" * 1024          # beyond-max-match zero run
            + b"\x7f\x80" * 300     # period-2 alternation
            + b"PQRS" * 200         # period-4
            + bytes(range(64)) * 3  # short ramp tail
        )
        reps = nbytes // len(pattern) + 1
        return (pattern * reps)[:nbytes]
    return bytes(get_dataset(name).generate(nbytes))


def _wall_deflate_seconds(data: bytes, mode: str) -> float:
    from repro.algorithms.deflate import deflate_compress
    from repro.util.kernels import force_kernel_mode

    best = float("inf")
    with force_kernel_mode(mode):
        deflate_compress(data[:4096])  # warm numpy/codepaths
        for _ in range(_WALL_REPS):
            started = time.perf_counter()
            deflate_compress(data)
            best = min(best, time.perf_counter() - started)
    return best


def _wall_codec_mbps() -> "dict[str, float]":
    """Vectorized-mode compress throughput (MB/s) per codec."""
    from repro.algorithms.ac import ac_compress
    from repro.algorithms.deflate import deflate_compress
    from repro.algorithms.gzip_format import gzip_compress
    from repro.algorithms.lz4 import lz4_block_compress, lz4_compress
    from repro.algorithms.sz3 import SZ3Config, sz3_compress
    from repro.algorithms.zlib_format import zlib_compress
    from repro.algorithms.zstdlite import zstdlite_compress
    from repro.util.kernels import force_kernel_mode

    payload = _wall_payload("silesia/xml", _WALL_CODEC_BYTES)
    t = np.linspace(0.0, 40.0, _WALL_CODEC_BYTES // 8)
    field = (np.sin(t) + 0.25 * np.sin(6.3 * t)).astype(np.float32)
    codecs: "dict[str, tuple[Any, Any]]" = {
        "deflate": (deflate_compress, payload),
        "zlib": (zlib_compress, payload),
        "gzip": (gzip_compress, payload),
        "lz4b": (lz4_block_compress, payload),
        "lz4f": (lz4_compress, payload),
        "zstdlite": (zstdlite_compress, payload),
        "ac": (ac_compress, payload),
        "sz3": (lambda d: sz3_compress(d, SZ3Config(error_bound=1e-3)), field),
    }
    out = {}
    with force_kernel_mode("vectorized"):
        for name, (fn, data) in codecs.items():
            nbytes = data.nbytes if isinstance(data, np.ndarray) else len(data)
            fn(data)  # warm
            best = float("inf")
            for _ in range(_WALL_REPS):
                started = time.perf_counter()
                fn(data)
                best = min(best, time.perf_counter() - started)
            out[name] = nbytes / best / 1e6
    return out


def collect_wallclock() -> dict[str, Any]:
    """Measure the kernel-vectorization wall trajectory; BENCH_PR8 report.

    Everything in here is host-local wall clock, so the entire report is
    band-gated (floors only, generous) and re-measured wherever the gate
    runs — recorded values document the trajectory, they are never
    compared bit-for-bit.  Two row families:

    * the DEFLATE compress suite at 1 MiB, scalar reference vs
      vectorized kernels (byte-identical outputs, asserted per row).
      The *literal-dominated* members (``noise``, ``ascii``) are where
      vectorization restructures the work — their geomean is the
      headline aggregate; the deep-chain members (``silesia/*``,
      ``runs2``) gate on non-inferiority floors because scalar and
      vectorized walk the identical candidate sequence there.
    * per-codec compress throughput floors in vectorized mode.
    """
    from repro.algorithms.deflate import deflate_compress
    from repro.util.kernels import force_kernel_mode

    rows = []
    speedups: "dict[str, float]" = {}
    for name in _WALL_LIT_SUITE + _WALL_PARITY_SUITE:
        data = _wall_payload(name, _WALL_SUITE_BYTES)
        with force_kernel_mode("scalar"):
            blob_scalar = deflate_compress(data)
        with force_kernel_mode("vectorized"):
            blob_vec = deflate_compress(data)
        if blob_scalar != blob_vec:  # pragma: no cover - equivalence bug
            raise AssertionError(f"kernel divergence on wall dataset {name!r}")
        scalar_s = _wall_deflate_seconds(data, "scalar")
        vec_s = _wall_deflate_seconds(data, "vectorized")
        speedups[name] = scalar_s / vec_s
        rows.append({
            "dataset": name,
            "input_bytes": len(data),
            "scalar_s": scalar_s,
            "vectorized_s": vec_s,
            "speedup": scalar_s / vec_s,
            "vectorized_mb_s": len(data) / vec_s / 1e6,
        })

    lit_geomean = math.exp(
        sum(math.log(speedups[n]) for n in _WALL_LIT_SUITE)
        / len(_WALL_LIT_SUITE)
    )

    # The headline suite must actually be match_loop-dominated: profile
    # the scalar reference on the first literal-suite member.
    profiler = obs.CodecProfiler()
    prev = obs.set_profiler(profiler)
    try:
        with force_kernel_mode("scalar"):
            deflate_compress(_wall_payload(_WALL_LIT_SUITE[0], _WALL_SUITE_BYTES))
    finally:
        obs.set_profiler(prev)
    top = profiler.top_kernel(("deflate.compress",))

    headlines: "dict[str, float]" = {
        "wall_vec_speedup_lit_geomean": lit_geomean,
        "wall_top_kernel_is_lz77": 1.0 if top == "lz77.match_loop" else 0.0,
    }
    for name, value in speedups.items():
        headlines[f"wall_vec_speedup_{_wall_key(name)}"] = value
    for codec, mbps in _wall_codec_mbps().items():
        headlines[f"wall_mbps_{codec}"] = mbps

    return {
        "schema": WALL_SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "suite_bytes": _WALL_SUITE_BYTES,
            "codec_bytes": _WALL_CODEC_BYTES,
            "wall_repetitions": _WALL_REPS,
            "lit_suite": list(_WALL_LIT_SUITE),
            "parity_suite": list(_WALL_PARITY_SUITE),
        },
        "wall": {
            "headlines": headlines,
            "rows": rows,
            "top_kernel": top,
        },
    }


def collect_cluster() -> dict[str, Any]:
    """Run the fleet-cluster sweep; returns the BENCH_PR9 report dict.

    The curve sweeps offered load from 10x the PR 4 single-gateway
    sweep's lowest point to 100x its highest (2.4M req/s) over the
    12-worker / 4-shard cluster; the failover record kills a whole
    worker mid-run at a load the fleet still covers one worker down.
    Everything — goodput, shed counts, per-shard peaks, failover
    re-picks, the shard-map epoch, the BLAKE2b routing digests — is a
    pure function of the seed and the cost model, so the whole report
    is exact-gated; the bands condense the tentpole's shape claims.
    """
    from repro.bench.experiments.cluster_fleet import (
        _BATCH_MSGS,
        _FLEET,
        _GLOBAL_MAX_PENDING,
        _NUM_SHARDS,
        _SEED,
        _SHARD_MAX_PENDING,
        CLUSTER_LOADS_REQ_S,
        FAILOVER_LOAD_REQ_S,
        run_cluster_point,
        run_failover_point,
    )

    curve = [run_cluster_point(load) for load in CLUSTER_LOADS_REQ_S]
    failover = run_failover_point()

    goodputs = [r["goodput_bytes_s"] for r in curve]
    peak = max(goodputs)
    successive_min = min(
        goodputs[i + 1] / goodputs[i] for i in range(len(goodputs) - 1)
    )
    headlines = {
        "cluster_goodput_at_100x_vs_peak": (
            goodputs[-1] / peak if peak > 0.0 else 0.0
        ),
        "cluster_goodput_successive_ratio_min": successive_min,
        "cluster_max_shard_pending_overload": float(
            max(r["max_shard_pending"] for r in curve)
        ),
        "cluster_pending_after_drain": float(
            max(r["pending_after_drain"] for r in curve + [failover])
        ),
        "cluster_failover_recovery_ratio": failover["recovery_ratio"],
        "cluster_failovers": float(failover["failovers"]),
        "cluster_slo_alerts_failover": float(failover["slo_alerts"]),
        "cluster_goodput_peak_bytes_s": peak,
        "cluster_failover_epoch": float(failover["epoch"]),
    }
    return {
        "schema": CLUSTER_SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "fleet": [list(pair) for pair in _FLEET],
            "num_shards": _NUM_SHARDS,
            "global_max_pending": _GLOBAL_MAX_PENDING,
            "shard_max_pending": _SHARD_MAX_PENDING,
            "batch_msgs": _BATCH_MSGS,
            "seed": _SEED,
            "loads_req_s": list(CLUSTER_LOADS_REQ_S),
            "failover_load_req_s": FAILOVER_LOAD_REQ_S,
        },
        "curve": curve,
        "failover": failover,
        "headlines": headlines,
    }


# Streaming-rendezvous gates (BENCH_PR10.json).  Deterministic
# sim-clock numbers from the `stream` experiment: pt2pt/bcast on the
# hypersparse telemetry payload, SoC DEFLATE design (whole-message vs
# streamed through the RST1 container).  Recorded speedups sit ~4.26x;
# the floors encode the tentpole's ordering claims, not the exact
# operating point.
STREAM_BANDS: "dict[str, tuple[float | None, float | None]]" = {
    # At >= 4 MiB streaming must be no worse than whole-message
    # rendezvous (the acceptance bar), and strictly better at 16 MiB
    # where the overlap win dwarfs container overhead.
    "stream_vs_whole_latency_4mib": (1.0, None),
    "stream_vs_whole_latency_16mib": (1.05, None),
    # Binomial bcast re-streams every hop, so the win must survive
    # composition (strictly better on the collective sweep).
    "bcast_speedup_4mib": (1.01, None),
    # Streamed payloads decode byte-identical to their whole-message
    # twins everywhere in the sweep — exact, both sides.
    "stream_byte_identical": (1.0, 1.0),
}


def collect_stream() -> dict[str, Any]:
    """Run the streaming-rendezvous sweep; returns the BENCH_PR10 dict.

    Thin shell over the ``stream`` experiment: the report carries its
    rows verbatim (exact-gateable — the sim clock is deterministic)
    plus the headline speedups the bands condense.
    """
    from repro.bench.experiments.stream_fabric import (
        _CHUNK_BYTES,
        _GATE_DESIGN,
        _SIM_MB,
        DEFAULT_ACTUAL_BYTES,
        run as run_stream,
    )

    result = run_stream()
    return {
        "schema": STREAM_SCHEMA,
        "generator": "repro.bench.regress",
        "config": {
            "actual_bytes": DEFAULT_ACTUAL_BYTES,
            "chunk_bytes": _CHUNK_BYTES,
            "gate_design": _GATE_DESIGN,
            "sim_mb": list(_SIM_MB),
        },
        "rows": result.rows,
        "headlines": dict(result.headlines),
    }


def _wall_key(dataset: str) -> str:
    return dataset.replace("/", "_").replace("-", "_")


def _gate_bands(report: dict[str, Any],
                bands: "dict[str, tuple[float | None, float | None]]") -> list[str]:
    violations = []
    headlines = report.get("headlines", {})
    for key, (floor, ceiling) in bands.items():
        if key not in headlines:
            violations.append(f"{key}: missing from report")
            continue
        value = headlines[key]
        if floor is not None and value < floor:
            violations.append(f"{key}: {value:.6g} below floor {floor:.6g}")
        if ceiling is not None and value > ceiling:
            violations.append(f"{key}: {value:.6g} above ceiling {ceiling:.6g}")
    return violations


def gate(report: dict[str, Any]) -> list[str]:
    """Check every BENCH_PR3 headline band; returns the violations."""
    return _gate_bands(report, BANDS)


def gate_serve(report: dict[str, Any]) -> list[str]:
    """Check every BENCH_PR4 headline band; returns the violations."""
    return _gate_bands(report, SERVE_BANDS)


def gate_select(report: dict[str, Any]) -> list[str]:
    """Check every BENCH_PR5 headline band; returns the violations."""
    return _gate_bands(report, SELECT_BANDS)


def gate_obs(report: dict[str, Any]) -> list[str]:
    """Check the BENCH_PR6 sim and wall bands; returns the violations.

    The two sections gate independently: sim headlines are
    deterministic, wall headlines are host-local measurements.
    """
    return (
        _gate_bands(report.get("sim", {}), OBS_SIM_BANDS)
        + _gate_bands(report.get("wall", {}), OBS_WALL_BANDS)
    )


def gate_edpc(report: dict[str, Any]) -> list[str]:
    """Check every BENCH_PR7 headline band; returns the violations."""
    return _gate_bands(report, EDPC_BANDS)


def gate_wallclock(report: dict[str, Any]) -> list[str]:
    """Check the BENCH_PR8 wall bands; returns the violations.

    Per-codec throughput headlines gate on floors declared *in the
    report itself* (``config`` has no say): every ``wall_mbps_<codec>``
    headline must clear :data:`WALL_CODEC_FLOORS_MBPS`.
    """
    wall = report.get("wall", {})
    violations = _gate_bands(wall, WALL_BANDS)
    headlines = wall.get("headlines", {})
    for codec, floor in WALL_CODEC_FLOORS_MBPS.items():
        key = f"wall_mbps_{codec}"
        if key not in headlines:
            violations.append(f"{key}: missing from report")
            continue
        if headlines[key] < floor:
            violations.append(
                f"{key}: {headlines[key]:.6g} MB/s below floor {floor:.6g}"
            )
    return violations


def gate_cluster(report: dict[str, Any]) -> list[str]:
    """Check every BENCH_PR9 headline band; returns the violations."""
    return _gate_bands(report, CLUSTER_BANDS)


def gate_stream(report: dict[str, Any]) -> list[str]:
    """Check every BENCH_PR10 headline band; returns the violations."""
    return _gate_bands(report, STREAM_BANDS)


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
