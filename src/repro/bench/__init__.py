"""The benchmark harness: one module per paper table/figure.

Run ``python -m repro.bench all`` (or a single experiment id:
``fig7 fig8 fig9 fig10 fig11 table4 table5``) to regenerate the
paper's evaluation artifacts.  Each experiment returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows are also
asserted (shape-wise) by the pytest-benchmark drivers under
``benchmarks/``.

See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.bench.harness import ExperimentResult, run_experiment, EXPERIMENTS

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]
