"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_seconds", "format_ratio"]


def format_seconds(seconds: float) -> str:
    """Human scale: µs/ms/s with three significant digits."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds:.3g} s"


def format_ratio(value: float) -> str:
    return f"{value:.3f}"


def _stringify(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Iterable[dict],
    columns: Sequence[str],
    title: str | None = None,
    formatters: dict | None = None,
) -> str:
    """Render dict rows as a fixed-width text table."""
    formatters = formatters or {}
    rendered: list[list[str]] = []
    for row in rows:
        line = []
        for col in columns:
            value = row.get(col, "")
            fmt = formatters.get(col)
            line.append(fmt(value) if fmt and value != "" else _stringify(value))
        rendered.append(line)

    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    body = [
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths))
        for line in rendered
    ]
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(header)
    out.append(sep)
    out.extend(body)
    return "\n".join(out)
