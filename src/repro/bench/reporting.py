"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_seconds", "format_bytes", "format_ratio"]


def format_seconds(seconds: float) -> str:
    """Human scale: µs/ms/s with three significant digits.

    Exactly zero renders as ``0 s`` (not ``0 us``), and values from
    1000 s up switch to fixed-point so ``%.3g`` doesn't collapse them
    to scientific notation and drop whole seconds.
    """
    if seconds == 0:
        return "0 s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    if seconds < 1000.0:
        return f"{seconds:.3g} s"
    return f"{seconds:.1f} s"


def format_bytes(nbytes: float) -> str:
    """Human scale: B/KiB/MiB/... with three significant digits."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} B"
            return f"{value:.3g} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_ratio(value: float) -> str:
    return f"{value:.3f}"


def _stringify(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Iterable[dict],
    columns: Sequence[str],
    title: str | None = None,
    formatters: dict | None = None,
) -> str:
    """Render dict rows as a fixed-width text table."""
    formatters = formatters or {}
    rendered: list[list[str]] = []
    for row in rows:
        line = []
        for col in columns:
            value = row.get(col, "")
            fmt = formatters.get(col)
            line.append(fmt(value) if fmt and value != "" else _stringify(value))
        rendered.append(line)

    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    body = [
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths))
        for line in rendered
    ]
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(header)
    out.append(sep)
    out.extend(body)
    return "\n".join(out)
