"""``edpc`` — adaptive-context coder ratio/throughput + decoupled pipeline.

Not a paper figure: this experiment characterises the ``ac`` backend
(:mod:`repro.algorithms.ac`) against the repo's DEFLATE along the two
axes EDPC trades on:

1. **ratio vs throughput** — both codecs compress the same dataset
   samples through :class:`~repro.core.api.PedalContext` with
   ``path="auto"``; ``ac`` is SoC-only (no engine core implements it)
   so its throughput is the calibrated ARM-pool rate, while DEFLATE
   rides the C-Engine.  The rows make the trade explicit: the context
   model buys ratio on skewed byte streams and pays for it in
   throughput.
2. **decoupled pipeline** — the same message sizes through
   :class:`~repro.sched.DecoupledCodecPipeline` serial vs pipelined.
   The model stage may run ``queue_depth`` chunks ahead of the range
   coder, so the pipelined makespan approaches
   ``max(model, coder)`` instead of their sum.  One grid point also
   carries real data through both dataflows and asserts byte identity,
   so the speedup is provably a scheduling effect, not a codec change.

Headlines are gated in ``BENCH_PR7.json`` via
``repro.bench.regress.collect_edpc`` / ``gate_edpc``.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, generate_payload, register_experiment
from repro.core.api import PedalContext
from repro.dpu.device import make_device
from repro.sched import DecoupledCodecPipeline, DecoupledConfig
from repro.sim import Environment

__all__ = ["run", "run_ratio_rows", "run_pipeline_rows"]

# Ratio samples stay small: the pure-Python range coder is the real
# cost (~MB/s actual), and both codecs' ratios on these generators
# stabilise well below this size.
_RATIO_ACTUAL = 24 * 1024
_RATIO_DATASETS = ("silesia/xml", "silesia/mozilla", "obs_error")
_RATIO_NOMINAL = 5.1e6  # the paper's xml grid point; shared for fairness

# Pipeline sweep: growing simulated messages, byte-identity checked at
# the byte-carrying point.
_PIPE_SIM_BYTES = (0.5e6, 5e6, 48.85e6)
_PIPE_ACTUAL = 16 * 1024

COLUMNS = [
    "section", "dataset", "algo", "ratio", "sim_s", "throughput_mb_s",
    "sim_mb", "serial_s", "pipelined_s", "speedup", "bytes_identical",
]


def _drive(env: Environment, generator):
    proc = env.process(generator)
    return env.run(until=proc)


def run_ratio_rows(actual_bytes: int = _RATIO_ACTUAL) -> list[dict]:
    """ac-vs-deflate ratio/throughput rows (auto-path on a BF-2)."""
    rows = []
    for dataset in _RATIO_DATASETS:
        payload = bytes(generate_payload(dataset, actual_bytes))
        for algo in ("deflate", "ac"):
            env = Environment()
            ctx = PedalContext(make_device(env, "bf2"))
            _drive(env, ctx.init())
            t0 = env.now
            comp = _drive(env, ctx.compress(payload, algo, _RATIO_NOMINAL))
            sim_s = env.now - t0
            rows.append(
                {
                    "section": "ratio",
                    "dataset": dataset,
                    "algo": algo,
                    "ratio": comp.ratio,
                    "sim_s": sim_s,
                    "throughput_mb_s": _RATIO_NOMINAL / 1e6 / sim_s,
                    "placement": comp.resolved.compress_engine,
                }
            )
    return rows


def run_pipeline_rows(
    actual_bytes: int = _PIPE_ACTUAL,
    queue_depth: int = 2,
) -> list[dict]:
    """Serial vs pipelined decoupled-codec rows on a BF-2 SoC."""
    rows = []
    config = DecoupledConfig(queue_depth=queue_depth)
    data = bytes(generate_payload("silesia/xml", actual_bytes))
    for sim_bytes in _PIPE_SIM_BYTES:
        carry_bytes = sim_bytes == max(_PIPE_SIM_BYTES)
        payloads = {}
        results = {}
        for pipelined in (False, True):
            env = Environment()
            pipe = DecoupledCodecPipeline(make_device(env, "bf2"), config)
            res = _drive(
                env,
                pipe.run(
                    sim_bytes,
                    data=data if carry_bytes else None,
                    pipelined=pipelined,
                ),
            )
            results[pipelined] = res
            payloads[pipelined] = res.payload
        identical = (
            payloads[False] == payloads[True] if carry_bytes else None
        )
        rows.append(
            {
                "section": "pipeline",
                "sim_mb": sim_bytes / 1e6,
                "n_chunks": results[True].n_chunks,
                "serial_s": results[False].sim_seconds,
                "pipelined_s": results[True].sim_seconds,
                "speedup": (
                    results[False].sim_seconds / results[True].sim_seconds
                ),
                "bytes_identical": identical,
            }
        )
    return rows


@register_experiment("edpc")
def run(
    actual_bytes: int = _RATIO_ACTUAL,
    pipeline_actual_bytes: int = _PIPE_ACTUAL,
    queue_depth: int = 2,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="edpc",
        title=(
            "edpc: adaptive-context coder ratio/throughput + "
            f"decoupled model/coder pipeline (depth {queue_depth})"
        ),
        columns=COLUMNS,
    )
    ratio_rows = run_ratio_rows(actual_bytes)
    pipe_rows = run_pipeline_rows(pipeline_actual_bytes, queue_depth)
    result.rows.extend(ratio_rows)
    result.rows.extend(pipe_rows)

    def _ratio(dataset, algo):
        return next(
            r["ratio"] for r in ratio_rows
            if r["dataset"] == dataset and r["algo"] == algo
        )

    big = pipe_rows[-1]
    result.headlines["edpc_pipelined_vs_unpipelined_large"] = big["speedup"]
    result.headlines["edpc_bytes_identical"] = (
        1.0 if big["bytes_identical"] else 0.0
    )
    result.headlines["edpc_ac_vs_deflate_ratio_xml"] = (
        _ratio("silesia/xml", "ac") / _ratio("silesia/xml", "deflate")
    )
    result.headlines["edpc_ac_vs_deflate_ratio_obs_error"] = (
        _ratio("obs_error", "ac") / _ratio("obs_error", "deflate")
    )
    result.notes.append(
        "ac is SoC-only (no engine core), so its throughput is the "
        "calibrated ARM-pool rate; pipelined speedup is bounded by "
        "1/max(model_fraction, 1-model_fraction) of the codec time"
    )
    return result
