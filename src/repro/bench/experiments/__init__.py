"""Experiment modules — importing this package registers them all."""

from repro.bench.experiments import (  # noqa: F401
    cluster_fleet,
    edpc_pipeline,
    fig7_lossless_breakdown,
    fig8_raw_times,
    fig9_lossy_breakdown,
    fig10_pt2pt,
    fig11_bcast,
    obs_telemetry,
    sched_pipeline,
    select_crossover,
    serve_gateway,
    stream_fabric,
    table4_datasets,
    table5_ratios,
)

__all__ = [
    "cluster_fleet",
    "edpc_pipeline",
    "fig7_lossless_breakdown",
    "fig8_raw_times",
    "fig9_lossy_breakdown",
    "fig10_pt2pt",
    "fig11_bcast",
    "obs_telemetry",
    "sched_pipeline",
    "select_crossover",
    "serve_gateway",
    "stream_fabric",
    "table4_datasets",
    "table5_ratios",
]
