"""``serve`` — offered-load vs goodput/p99 for the multi-DPU gateway.

Not a paper figure: this experiment characterizes the tentpole serving
layer (:mod:`repro.serve`).  An open-loop arrival process offers
fixed-size compress requests (64 KiB nominal — small enough that the
C-Engine's fixed per-job overhead dominates, §V-B) to a mixed BF-2/BF-3
fleet at a sweep of request rates, batched (``max_msgs=8``) vs
unbatched (``max_msgs=1``), under the capability-aware router.

Expected shape (asserted by the BENCH_PR4 regression gates):

* unbatched goodput saturates near the fleet's per-job engine capacity
  and then *plateaus* (admission control sheds the excess rather than
  letting queues — and p99 — grow without bound: peak pending stays
  <= ``max_pending`` even at >2x overload);
* batching amortizes the per-job overhead across messages, so batched
  goodput at the unbatched saturation point is strictly higher;
* the capability-aware router beats round-robin, which wastes compress
  batches on BF-3's engine-less (SoC fallback) path.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, generate_payload, register_experiment
from repro.dpu.device import make_device
from repro.dpu.specs import Direction
from repro.errors import NoLatencySamplesError
from repro.serve import (
    BatchPolicy,
    ServeConfig,
    ServeGateway,
    ServeRequest,
    TelemetryConfig,
)
from repro.sim import Environment

__all__ = ["run", "run_serve_point"]

# Small real payload (the sim clock only sees the nominal size); 64 KiB
# nominal keeps per-request engine time overhead-dominated on BF-2
# (0.25 ms fixed vs ~22 us of byte time).
_DEFAULT_ACTUAL = 1024
_NOMINAL = 64 * 1024
_DATASET = "silesia/xml"
_FLEET = ("bf2", "bf2", "bf3")
_MAX_PENDING = 64
_BATCH_MSGS = 8
_DURATION_S = 0.02
# Unbatched fleet capacity is ~7.3k req/s (2 engine-capable BF-2s at
# ~0.27 ms/job); the sweep's top point is >2x that.
_LOADS_REQ_S = (2_000, 6_000, 12_000, 24_000)

COLUMNS = [
    "config", "router", "offered_req_s", "offered", "completed", "shed",
    "goodput_mb_s", "p50_ms", "p99_ms", "sample_count", "peak_pending",
]


def _percentile_or_nan(gateway: ServeGateway, q: float) -> float:
    """Percentile tolerant of zero completions (very low offered load
    over a short window can finish the sweep with no samples)."""
    try:
        return gateway.latency_percentile(q)
    except NoLatencySamplesError:
        return float("nan")


def run_serve_point(
    offered_req_s: float,
    batch_msgs: int,
    router: str = "capability",
    duration_s: float = _DURATION_S,
    actual_bytes: int = _DEFAULT_ACTUAL,
    nominal_bytes: float = _NOMINAL,
    fleet: "tuple[str, ...]" = _FLEET,
    max_pending: int = _MAX_PENDING,
    direction: Direction = Direction.COMPRESS,
    telemetry: "TelemetryConfig | None" = None,
) -> dict:
    """One deterministic point of the offered-load sweep.

    Open-loop arrivals every ``1/offered_req_s`` sim seconds for
    ``duration_s``, then a drain; returns the point's record (offered /
    completed / shed counts, goodput over the uncompressed bytes
    actually served, sketch-backed latency percentiles with their
    explicit ``sample_count``, peak pending).  Passing ``telemetry``
    turns on the labeled per-worker/per-tenant registries without
    changing any simulated number.
    """
    env = Environment()
    devices = [make_device(env, kind) for kind in fleet]
    gateway = ServeGateway(
        env,
        devices,
        ServeConfig(
            batch=BatchPolicy(max_msgs=batch_msgs),
            router=router,
            max_pending=max_pending,
            telemetry=telemetry,
        ),
    )
    payload = bytes(generate_payload(_DATASET, actual_bytes))
    interarrival = 1.0 / offered_req_s
    n_offered = int(round(duration_s * offered_req_s))

    def driver(env):
        for i in range(n_offered):
            gateway.submit(
                ServeRequest(direction, payload, sim_bytes=nominal_bytes, req_id=i)
            )
            yield env.timeout(interarrival)
        yield from gateway.drain()

    env.run(until=env.process(driver(env)))
    elapsed = env.now
    return {
        "config": "batched" if batch_msgs > 1 else "unbatched",
        "router": router,
        "offered_req_s": offered_req_s,
        "offered": n_offered,
        "completed": gateway.completed,
        "shed": gateway.admission.shed,
        "goodput_bytes_s": (
            gateway.completed_sim_bytes / elapsed if elapsed > 0.0 else 0.0
        ),
        "p50_s": _percentile_or_nan(gateway, 50),
        "p99_s": _percentile_or_nan(gateway, 99),
        "sample_count": gateway.sample_count,
        "peak_pending": gateway.admission.peak_pending,
        "makespan_s": elapsed,
    }


@register_experiment("serve")
def run(
    actual_bytes: int = _DEFAULT_ACTUAL,
    loads_req_s: "tuple[float, ...]" = _LOADS_REQ_S,
    batch_msgs: int = _BATCH_MSGS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="serve",
        title=(
            f"serve: offered load vs goodput/p99, fleet {'+'.join(_FLEET)} "
            f"({_NOMINAL // 1024} KiB msgs, batch={batch_msgs}, "
            f"max_pending={_MAX_PENDING})"
        ),
        columns=COLUMNS,
    )
    points: dict[tuple[str, float], dict] = {}
    for msgs, label in ((1, "unbatched"), (batch_msgs, "batched")):
        for load in loads_req_s:
            rec = run_serve_point(load, msgs, actual_bytes=actual_bytes)
            points[(label, load)] = rec
            result.rows.append(
                {
                    "config": label,
                    "router": rec["router"],
                    "offered_req_s": load,
                    "offered": rec["offered"],
                    "completed": rec["completed"],
                    "shed": rec["shed"],
                    "goodput_mb_s": rec["goodput_bytes_s"] / 1e6,
                    "p50_ms": rec["p50_s"] * 1e3,
                    "p99_ms": rec["p99_s"] * 1e3,
                    "sample_count": rec["sample_count"],
                    "peak_pending": rec["peak_pending"],
                }
            )
    # The round-robin comparison point at the top (overload) rate.
    top = max(loads_req_s)
    rr = run_serve_point(top, batch_msgs, router="round_robin",
                         actual_bytes=actual_bytes)
    result.rows.append(
        {
            "config": "batched",
            "router": "round_robin",
            "offered_req_s": top,
            "offered": rr["offered"],
            "completed": rr["completed"],
            "shed": rr["shed"],
            "goodput_mb_s": rr["goodput_bytes_s"] / 1e6,
            "p50_ms": rr["p50_s"] * 1e3,
            "p99_ms": rr["p99_s"] * 1e3,
            "sample_count": rr["sample_count"],
            "peak_pending": rr["peak_pending"],
        }
    )

    saturating = top
    result.headlines["batched_vs_unbatched_goodput_at_saturation"] = (
        points[("batched", saturating)]["goodput_bytes_s"]
        / points[("unbatched", saturating)]["goodput_bytes_s"]
    )
    result.headlines["capability_vs_round_robin_goodput"] = (
        points[("batched", saturating)]["goodput_bytes_s"]
        / rr["goodput_bytes_s"]
    )
    result.headlines["unbatched_peak_pending_overload"] = float(
        points[("unbatched", saturating)]["peak_pending"]
    )
    result.notes.append(
        "goodput counts nominal uncompressed bytes of completed requests; "
        "shed requests cost nothing (bounded admission queue = backpressure)"
    )
    return result
