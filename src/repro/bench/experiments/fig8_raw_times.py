"""Fig. 8 — PEDAL's raw compression/decompression times, BF2 vs BF3.

The PEDAL path (overheads hoisted into PEDAL_init) across the same
design/dataset grid as Fig. 7.  Headlines re-checked here:

* BF2 C-Engine vs SoC, DEFLATE on 5.1 MB: ~101.8x compression, ~11.2x
  decompression;
* BF2 C-Engine vs SoC, zlib on 48.85 MB: ~84.6x / ~20x;
* BF3 vs BF2 C-Engine DEFLATE decompression: ~1.78x (5.1 MB) and
  ~1.28x (48.85 MB).
"""

from __future__ import annotations

from repro.bench.harness import (
    DEFAULT_ACTUAL_BYTES,
    ExperimentResult,
    register_experiment,
    run_pedal_roundtrip,
)
from repro.datasets import lossless_datasets

__all__ = ["run"]

_DESIGNS = [
    "SoC_DEFLATE",
    "C-Engine_DEFLATE",
    "SoC_LZ4",
    "C-Engine_LZ4",
    "SoC_zlib",
    "C-Engine_zlib",
]

COLUMNS = ["device", "design", "dataset", "compress_s", "decompress_s", "ratio"]


def _lookup(rows, device, design, dataset):
    return next(
        r
        for r in rows
        if r["device"] == device and r["design"] == design and r["dataset"] == dataset
    )


@register_experiment("fig8")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig8",
        title="Fig. 8: PEDAL compression/decompression times (BF2 vs BF3)",
        columns=COLUMNS,
    )
    for device in ("bf2", "bf3"):
        for design in _DESIGNS:
            for ds in lossless_datasets():
                rec = run_pedal_roundtrip(
                    device, design, ds, actual_bytes=actual_bytes
                )
                result.rows.append(
                    {
                        "device": device,
                        "design": design,
                        "dataset": ds.key,
                        "compress_s": rec.compress_seconds,
                        "decompress_s": rec.decompress_seconds,
                        "ratio": rec.ratio,
                    }
                )

    rows = result.rows
    soc_x = _lookup(rows, "bf2", "SoC_DEFLATE", "silesia/xml")
    ce_x = _lookup(rows, "bf2", "C-Engine_DEFLATE", "silesia/xml")
    result.headlines["bf2_deflate_xml_compress_speedup (paper 101.8)"] = (
        soc_x["compress_s"] / ce_x["compress_s"]
    )
    result.headlines["bf2_deflate_xml_decompress_speedup (paper 11.2)"] = (
        soc_x["decompress_s"] / ce_x["decompress_s"]
    )
    soc_z = _lookup(rows, "bf2", "SoC_zlib", "silesia/mozilla")
    ce_z = _lookup(rows, "bf2", "C-Engine_zlib", "silesia/mozilla")
    result.headlines["bf2_zlib_mozilla_compress_speedup (paper 84.6)"] = (
        soc_z["compress_s"] / ce_z["compress_s"]
    )
    result.headlines["bf2_zlib_mozilla_decompress_speedup (paper 20)"] = (
        soc_z["decompress_s"] / ce_z["decompress_s"]
    )
    bf2_small = _lookup(rows, "bf2", "C-Engine_DEFLATE", "silesia/xml")
    bf3_small = _lookup(rows, "bf3", "C-Engine_DEFLATE", "silesia/xml")
    result.headlines["bf3_vs_bf2_cengine_deflate_decomp_5MB (paper 1.78)"] = (
        bf2_small["decompress_s"] / bf3_small["decompress_s"]
    )
    bf2_big = _lookup(rows, "bf2", "C-Engine_DEFLATE", "silesia/mozilla")
    bf3_big = _lookup(rows, "bf3", "C-Engine_DEFLATE", "silesia/mozilla")
    result.headlines["bf3_vs_bf2_cengine_deflate_decomp_49MB (paper 1.28)"] = (
        bf2_big["decompress_s"] / bf3_big["decompress_s"]
    )
    result.notes.append(
        "decompression is consistently faster than compression and times "
        "scale with dataset size (the paper's first two Fig. 8 insights)"
    )
    return result
