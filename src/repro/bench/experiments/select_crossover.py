"""``select`` — the SoC-vs-C-Engine crossover curve under path="auto".

The paper's dispatch story (§V, Fig. 8): below a per-(device,
direction) message size the fixed C-Engine job overhead dominates and
the SoC wins; above it the engine's order-of-magnitude throughput
advantage takes over.  This experiment sweeps DEFLATE ops from 1 KiB
to 16 MiB on BF-2 and BF-3, timing the forced SoC path, the forced
C-Engine path, and ``path="auto"`` (the :mod:`repro.select` cost-model
dispatch), and checks the paper shape:

* SoC wins below the calibrated crossover, the C-Engine above it;
* ``auto`` always lands on the cheapest capable path — its latency is
  never worse than the best static path by more than the selector's
  stated tolerance;
* BF-3 *compress* never routes to the engine (Tables II/III: its
  C-Engine is decompress-only), at any size;
* steady-state decisions come from the memoized crossover cache.

``BENCH_PR5.json`` gates all of this bit-for-bit plus banded
(the model crossovers must stay within a factor-2 band of the
calibrated tables' closed-form values).
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import ExperimentResult, generate_payload, register_experiment
from repro.core.api import PedalContext
from repro.dpu.device import make_device
from repro.dpu.specs import Algo, Direction
from repro.sim import Environment

__all__ = ["run", "run_select_sweep"]

_DATASET = "silesia/xml"
_DEFAULT_ACTUAL = 1024
# 1 KiB .. 16 MiB, factor-2 sweep (15 points per grid cell).
_SIZES = tuple(1024 * (1 << i) for i in range(15))
_GRID = (
    ("bf2", Direction.COMPRESS),
    ("bf2", Direction.DECOMPRESS),
    ("bf3", Direction.COMPRESS),
    ("bf3", Direction.DECOMPRESS),
)

COLUMNS = [
    "device", "direction", "size_bytes", "soc_ms", "cengine_ms",
    "auto_ms", "auto_path", "model_crossover_bytes",
]


def _run(env: Environment, gen):
    return env.run(until=env.process(gen))


def run_select_sweep(
    actual_bytes: int = _DEFAULT_ACTUAL,
    sizes: "tuple[int, ...]" = _SIZES,
) -> dict[str, Any]:
    """The deterministic sweep behind ``BENCH_PR5.json``.

    Returns ``rows`` keyed ``{device}_{direction}_{size}`` (forced-SoC
    / forced-C-Engine / auto sim seconds plus auto's chosen path) and
    the condensed ``headlines`` the bands gate.
    """
    payload = bytes(generate_payload(_DATASET, actual_bytes))
    rows: dict[str, dict[str, Any]] = {}
    crossovers: dict[str, float] = {}
    shape_ok = True
    bf3_compress_engine_picks = 0
    auto_vs_best_max = 0.0
    cache_hits = 0
    cache_lookups = 0

    for device_kind, direction in _GRID:
        env = Environment()
        device = make_device(env, device_kind)
        ctx = PedalContext(device)
        _run(env, ctx.init())
        capable = device.cengine.supports(Algo.DEFLATE, direction)
        crossover = ctx.selector.crossover_bytes(Algo.DEFLATE, direction)
        if capable:
            crossovers[f"{device_kind}_{direction.value}"] = crossover

        container = None
        if direction is Direction.DECOMPRESS:
            container = _run(
                env, ctx.compress(payload, "deflate", path="soc")
            ).message

        first_point = None
        last_point = None
        for size in sizes:
            if direction is Direction.COMPRESS:
                soc = _run(env, ctx.compress(
                    payload, "deflate", sim_bytes=size, path="soc"))
                eng = _run(env, ctx.compress(
                    payload, "deflate", sim_bytes=size, path="cengine"))
                auto = _run(env, ctx.compress(
                    payload, "deflate", sim_bytes=size, path="auto"))
                auto_path = auto.resolved.compress_engine
            else:
                soc = _run(env, ctx.decompress(
                    container, placement="soc", sim_bytes=size))
                eng = _run(env, ctx.decompress(
                    container, placement="cengine", sim_bytes=size))
                auto = _run(env, ctx.decompress(
                    container, placement="auto", sim_bytes=size))
                auto_path = auto.resolved.decompress_engine

            # Best *static* path: the SoC always, the engine only where
            # the capability matrix makes it a real alternative.
            best_static = min(soc.sim_seconds, eng.sim_seconds) if capable \
                else soc.sim_seconds
            auto_vs_best_max = max(
                auto_vs_best_max, auto.sim_seconds / best_static
            )
            if device_kind == "bf3" and direction is Direction.COMPRESS \
                    and auto_path == "cengine":
                bf3_compress_engine_picks += 1
            # Auto must sit on the crossover's side of the fence.
            expected = "cengine" if capable and size >= crossover else "soc"
            if auto_path != expected:
                shape_ok = False

            point = {
                "soc_s": soc.sim_seconds,
                "cengine_s": eng.sim_seconds,
                "auto_s": auto.sim_seconds,
                "auto_path": auto_path,
            }
            rows[f"{device_kind}_{direction.value}_{size}"] = point
            first_point = first_point or point
            last_point = point

        if capable:
            # Paper shape: SoC wins the smallest size, engine the
            # largest (the sweep brackets the crossover).
            if not (first_point["soc_s"] <= first_point["cengine_s"]
                    and last_point["cengine_s"] < last_point["soc_s"]):
                shape_ok = False
            if not (sizes[0] < crossover < sizes[-1]):
                shape_ok = False

        info = ctx.selector.cache_info()
        cache_hits += info["hits"]
        cache_lookups += info["hits"] + info["misses"]
        _run(env, ctx.finalize())

    headlines: dict[str, float] = {
        "select_auto_vs_best_static_max": auto_vs_best_max,
        "select_bf3_compress_engine_picks": float(bf3_compress_engine_picks),
        "select_paper_shape_ok": 1.0 if shape_ok else 0.0,
        "select_cache_hit_rate": cache_hits / cache_lookups,
    }
    for key, value in crossovers.items():
        headlines[f"select_crossover_{key}_bytes"] = value
    return {"rows": rows, "headlines": headlines}


@register_experiment("select")
def run(actual_bytes: int = _DEFAULT_ACTUAL) -> ExperimentResult:
    sweep = run_select_sweep(actual_bytes=actual_bytes)
    result = ExperimentResult(
        experiment="select",
        title=(
            "select: SoC vs C-Engine crossover under path=\"auto\" "
            f"(DEFLATE, {_SIZES[0] // 1024} KiB .. "
            f"{_SIZES[-1] // (1 << 20)} MiB)"
        ),
        columns=COLUMNS,
    )
    for device_kind, direction in _GRID:
        key = f"{device_kind}_{direction.value}"
        crossover = sweep["headlines"].get(f"select_crossover_{key}_bytes")
        for size in _SIZES:
            point = sweep["rows"][f"{key}_{size}"]
            result.rows.append(
                {
                    "device": device_kind,
                    "direction": direction.value,
                    "size_bytes": size,
                    "soc_ms": point["soc_s"] * 1e3,
                    "cengine_ms": point["cengine_s"] * 1e3,
                    "auto_ms": point["auto_s"] * 1e3,
                    "auto_path": point["auto_path"],
                    "model_crossover_bytes": (
                        "-" if crossover is None else round(crossover)
                    ),
                }
            )
    result.headlines.update(sweep["headlines"])
    result.notes.append(
        "auto == cost-model dispatch; crossover '-' marks ops the "
        "capability matrix keeps off the engine (BF-3 compress)"
    )
    return result
