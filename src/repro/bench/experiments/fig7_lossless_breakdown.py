"""Fig. 7 — time distribution of naive lossless compression designs.

Grid: {BF2, BF3} x {SoC, C-Engine} x {DEFLATE, LZ4, zlib} x the five
lossless datasets, run through the *naive* (non-PEDAL) flow where every
operation pays DOCA initialisation and buffer preparation.  The paper's
headline: on BF2's C-Engine at ~5.1 MB, init + buffer prep consume
~94% of the total.
"""

from __future__ import annotations

from repro.bench.harness import (
    DEFAULT_ACTUAL_BYTES,
    ExperimentResult,
    register_experiment,
    run_naive_roundtrip,
)
from repro.core.api import PHASE_COMP, PHASE_DECOMP, PHASE_INIT, PHASE_PREP
from repro.datasets import lossless_datasets

__all__ = ["run"]

_DESIGNS = [
    "SoC_DEFLATE",
    "C-Engine_DEFLATE",
    "SoC_LZ4",
    "C-Engine_LZ4",
    "SoC_zlib",
    "C-Engine_zlib",
]

COLUMNS = [
    "device",
    "design",
    "dataset",
    "doca_init_s",
    "buffer_prep_s",
    "compression_s",
    "decompression_s",
    "total_s",
    "overhead_frac",
]


@register_experiment("fig7")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig7",
        title="Fig. 7: time distribution, naive lossless designs (BF2/BF3)",
        columns=COLUMNS,
    )
    for device in ("bf2", "bf3"):
        for design in _DESIGNS:
            for ds in lossless_datasets():
                rec = run_naive_roundtrip(
                    device, design, ds, actual_bytes=actual_bytes
                )
                merged = rec.compress_breakdown.merge(rec.decompress_breakdown)
                init = merged.get(PHASE_INIT)
                prep = merged.get(PHASE_PREP)
                comp = merged.get(PHASE_COMP)
                dec = merged.get(PHASE_DECOMP) + merged.get("header_trailer")
                total = merged.total()
                result.rows.append(
                    {
                        "device": device,
                        "design": design,
                        "dataset": ds.key,
                        "doca_init_s": init,
                        "buffer_prep_s": prep,
                        "compression_s": comp,
                        "decompression_s": dec,
                        "total_s": total,
                        "overhead_frac": (init + prep) / total if total else 0.0,
                    }
                )

    # Headline: BF2 C-Engine DEFLATE on silesia/xml (5.1 MB) overhead share.
    xml_row = next(
        r
        for r in result.rows
        if r["device"] == "bf2"
        and r["design"] == "C-Engine_DEFLATE"
        and r["dataset"] == "silesia/xml"
    )
    result.headlines["bf2_cengine_deflate_xml_overhead_frac (paper ~0.94)"] = (
        xml_row["overhead_frac"]
    )

    # Headline: naive C-Engine beats naive SoC overall on BF2 (paper: up
    # to 9.67x acceleration for lossless designs).
    best = 0.0
    for ds in lossless_datasets():
        soc = next(
            r["total_s"]
            for r in result.rows
            if r["device"] == "bf2"
            and r["design"] == "SoC_DEFLATE"
            and r["dataset"] == ds.key
        )
        ce = next(
            r["total_s"]
            for r in result.rows
            if r["device"] == "bf2"
            and r["design"] == "C-Engine_DEFLATE"
            and r["dataset"] == ds.key
        )
        best = max(best, soc / ce)
    result.headlines["bf2_naive_cengine_best_speedup (paper ~9.67)"] = best
    return result
