"""Fig. 11 — MPI_Bcast over four nodes with on-the-fly compression.

Binomial-tree broadcast of small/medium/large messages (the paper's
5.1 / 20.6 / 48.8 MB, i.e. the xml/samba/mozilla payloads; EXAALT
floats at the same nominal sizes for the SZ3 rows).  Designs run under
PEDAL on BF2/BF3 clusters; the baseline is the naive flow on a BF2
cluster.  Every hop decompresses and recompresses, exactly as the
MPI_Send/MPI_Recv co-design composes.

Headlines:
* BF2 C-Engine designs vs baseline — paper: up to 68x;
* BF3 SoC designs — paper: ~49% average broadcast-time reduction.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import (
    ExperimentResult,
    generate_payload,
    register_experiment,
)
from repro.datasets import get_dataset
from repro.mpi import CommConfig, CommMode, run_mpi

__all__ = ["run", "bcast_time"]

DEFAULT_ACTUAL_BYTES = 64 * 1024
N_NODES = 4

# (size label, lossless payload dataset, lossy payload dataset, nominal MB)
_MESSAGES = [
    ("small", "silesia/xml", "exaalt-dataset1", 5.1e6),
    ("medium", "silesia/samba", "exaalt-dataset1", 20.6e6),
    ("large", "silesia/mozilla", "exaalt-dataset1", 48.8e6),
]

_LOSSLESS_DESIGNS = [
    "SoC_DEFLATE",
    "C-Engine_DEFLATE",
    "SoC_LZ4",
    "C-Engine_LZ4",
    "SoC_zlib",
    "C-Engine_zlib",
]
_LOSSY_DESIGNS = ["SoC_SZ3", "C-Engine_SZ3"]

COLUMNS = ["message", "device", "design", "bcast_s", "vs_baseline"]


def bcast_time(
    device_kind: str,
    mode: CommMode,
    design: "str | None",
    payload: Any,
    sim_bytes: float,
    n_nodes: int = N_NODES,
) -> float:
    """Completion time of one broadcast (root send to all ranks done)."""

    def program(ctx):
        data = payload if ctx.rank == 0 else None
        t0 = ctx.wtime()
        yield from ctx.bcast(data, root=0, sim_bytes=sim_bytes)
        t1 = ctx.wtime()
        return t1 - t0

    cfg = CommConfig(mode=mode, design=design)
    result = run_mpi(program, n_nodes, device_kind, cfg)
    return max(result.returns)


@register_experiment("fig11")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig11",
        title=f"Fig. 11: MPI_Bcast over {N_NODES} nodes with compression",
        columns=COLUMNS,
    )
    for label, lossless_key, lossy_key, nominal in _MESSAGES:
        lossless_payload = generate_payload(lossless_key, actual_bytes)
        lossy_payload = generate_payload(lossy_key, actual_bytes)
        get_dataset(lossless_key)  # validate keys early

        # The paper's baseline integrates the same design naively on BF2
        # ("repeated memory allocations and, if engaged, engine
        # initialization") — so each design compares against its own
        # naive twin.
        baselines: dict[str, float] = {}
        for design in _LOSSLESS_DESIGNS + _LOSSY_DESIGNS:
            algo = design.split("_", 1)[1]
            payload = lossy_payload if algo == "SZ3" else lossless_payload
            baselines[design] = bcast_time(
                "bf2", CommMode.NAIVE, design, payload, nominal
            )
            result.rows.append(
                {
                    "message": label,
                    "device": "bf2",
                    "design": f"Baseline_{design}",
                    "bcast_s": baselines[design],
                    "vs_baseline": 1.0,
                }
            )
        for device in ("bf2", "bf3"):
            for design in _LOSSLESS_DESIGNS + _LOSSY_DESIGNS:
                algo = design.split("_", 1)[1]
                payload = lossy_payload if algo == "SZ3" else lossless_payload
                seconds = bcast_time(
                    device, CommMode.PEDAL, design, payload, nominal
                )
                result.rows.append(
                    {
                        "message": label,
                        "device": device,
                        "design": design,
                        "bcast_s": seconds,
                        "vs_baseline": baselines[design] / seconds,
                    }
                )

    rows = result.rows
    # Headline 1: best BF2 C-Engine speedup over the baseline.
    best = max(
        r["vs_baseline"]
        for r in rows
        if r["device"] == "bf2" and r["design"].startswith("C-Engine_")
        and r["design"] != "C-Engine_LZ4"  # LZ4 falls back to SoC on BF2
    )
    result.headlines["bf2_cengine_best_speedup_vs_baseline (paper ~68)"] = best

    # Headline 2: BF3 SoC average reduction vs its BF2 naive baseline.
    reductions = [
        1.0 - 1.0 / r["vs_baseline"]
        for r in rows
        if r["device"] == "bf3" and r["design"].startswith("SoC_")
    ]
    result.headlines["bf3_soc_mean_bcast_reduction (paper ~0.49)"] = sum(
        reductions
    ) / len(reductions)
    return result
