"""``obs`` — fleet telemetry demo: multi-gateway roll-up + SLO burn.

Not a paper figure: this experiment exercises the PR 6 telemetry plane
end to end and is the substrate of the ``BENCH_PR6.json`` gates.  Two
gateways (``gw0`` fronting bf2+bf2, ``gw1`` fronting bf2+bf3) share one
sim clock and one :class:`~repro.obs.FleetAggregator`; every worker and
every (worker, tenant) shard owns a labeled registry.  An open-loop
overload (two tenants, 3:1 hot/cold mix, offered load ~2.5x the hot
path's engine capacity) drives:

* **fleet quantile roll-up** — the per-shard latency sketches merge
  into one fleet sketch whose p50/p99 must sit within the advertised
  relative-error bound (``alpha``) of the *exact* pooled nearest-rank
  percentiles (both sides are pure sim-clock numbers, so the error is
  deterministic and exact-gated);
* **sim-clock scrapes** — :func:`~repro.obs.scrape_process` snapshots
  the fleet every ``scrape_interval_s`` without perturbing the
  simulation (scrapes only read);
* **SLO burn-rate alerts** — the hot tenant blows its latency budget
  (page + ticket windows) and the cold tenant undershoots a goodput
  floor, at deterministic sim times.

Everything here is a pure function of the cost model: re-running the
demo reproduces the same alert stream, sample counts, and quantile
errors bit for bit.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, generate_payload, register_experiment
from repro.dpu.device import make_device
from repro.dpu.specs import Direction
from repro.obs import (
    FleetAggregator,
    SloMonitor,
    SloObjective,
    scrape_process,
)
from repro.obs.slo import LATENCY_METRIC
from repro.serve import (
    BatchPolicy,
    ServeConfig,
    ServeGateway,
    ServeRequest,
    TelemetryConfig,
)
from repro.sim import Environment

__all__ = ["run", "run_fleet_demo"]

_DATASET = "silesia/xml"
_DEFAULT_ACTUAL = 512
_NOMINAL = 64 * 1024
# Two gateways with distinct device mixes; both carry both tenants.
_FLEETS: "tuple[tuple[str, tuple[str, ...]], ...]" = (
    ("gw0", ("bf2", "bf2")),
    ("gw1", ("bf2", "bf3")),
)
_TENANTS = ("hot", "cold")
_HOT_EVERY = 4  # 3 hot requests, then 1 cold
_DURATION_S = 0.02
_OFFERED_REQ_S = 18_000.0  # per gateway; ~2.5x hot-path engine capacity
_SCRAPE_INTERVAL_S = 2e-3
_LATENCY_TARGET_S = 1.5e-3
_HOT_BUDGET_FRACTION = 0.01
# Deliberately above what the cold tenant's 1/4 share can deliver under
# overload, so the goodput_floor alert kind fires deterministically.
_COLD_GOODPUT_FLOOR = 1.0e9


def _nearest_rank(ordered: "list[float]", q: float) -> float:
    """Exact nearest-rank percentile of a pre-sorted sample."""
    rank = max(1, -(-len(ordered) * int(q * 100) // 100))
    return ordered[rank - 1]


def run_fleet_demo(
    offered_req_s: float = _OFFERED_REQ_S,
    duration_s: float = _DURATION_S,
    actual_bytes: int = _DEFAULT_ACTUAL,
    nominal_bytes: float = _NOMINAL,
    scrape_interval_s: float = _SCRAPE_INTERVAL_S,
    latency_target_s: float = _LATENCY_TARGET_S,
) -> dict:
    """Run the two-gateway telemetry demo; returns its record.

    The record carries per-gateway rows, the fleet-vs-exact quantile
    comparison, the scrape count, and the full deterministic alert
    stream.  All numbers are sim-clock (wall-clock profiling is a
    separate, band-only concern — see ``repro.bench.regress``).
    """
    env = Environment()
    aggregator = FleetAggregator()
    gateways: "list[tuple[str, ServeGateway]]" = []
    for name, fleet in _FLEETS:
        devices = [make_device(env, kind) for kind in fleet]
        gateways.append((name, ServeGateway(
            env,
            devices,
            ServeConfig(
                batch=BatchPolicy(max_msgs=8),
                router="capability",
                telemetry=TelemetryConfig(
                    gateway=name, aggregator=aggregator
                ),
            ),
        )))

    monitor = SloMonitor([
        SloObjective("hot", latency_target_s,
                     budget_fraction=_HOT_BUDGET_FRACTION),
        SloObjective("cold", latency_target_s, budget_fraction=0.05,
                     goodput_floor_bytes_s=_COLD_GOODPUT_FLOOR),
    ])
    env.process(
        scrape_process(env, aggregator, scrape_interval_s,
                       group_by=("tenant",), on_scrape=monitor.observe),
        name="obs:scrape",
    )

    payload = bytes(generate_payload(_DATASET, actual_bytes))
    interarrival = 1.0 / offered_req_s
    n_offered = int(round(duration_s * offered_req_s))

    def driver(env, gateway):
        for i in range(n_offered):
            tenant = "cold" if i % _HOT_EVERY == _HOT_EVERY - 1 else "hot"
            gateway.submit(ServeRequest(
                Direction.COMPRESS, payload, sim_bytes=nominal_bytes,
                req_id=i, tenant=tenant,
            ))
            yield env.timeout(interarrival)
        yield from gateway.drain()

    drivers = [
        env.process(driver(env, gw), name=f"obs:driver:{name}")
        for name, gw in gateways
    ]
    env.run(until=env.all_of(drivers))
    # One last scrape at the drain point so the final state is visible
    # to the monitor (reads only — the sim is already quiescent).
    monitor.observe(aggregator.scrape(env.now, group_by=("tenant",)))

    snapshot = aggregator.latest()
    assert snapshot is not None
    fleet_hist = snapshot.overall.histograms[LATENCY_METRIC]
    pooled = sorted(
        latency for _, gw in gateways for latency in gw.latencies
    )
    exact_p50 = _nearest_rank(pooled, 0.50)
    exact_p99 = _nearest_rank(pooled, 0.99)
    fleet_p50 = fleet_hist.quantile(0.50)
    fleet_p99 = fleet_hist.quantile(0.99)

    rows = []
    for name, gw in gateways:
        rows.append({
            "gateway": name,
            "offered": n_offered,
            "completed": gw.completed,
            "shed": gw.admission.shed,
            "sample_count": gw.sample_count,
            "p50_s": gw.latency_percentile(50),
            "p99_s": gw.latency_percentile(99),
            "registries": len(gw.registries),
        })

    page_alerts = sum(1 for a in monitor.alerts if a.severity == "page")
    goodput_alerts = sum(
        1 for a in monitor.alerts if a.kind == "goodput_floor"
    )
    alpha = fleet_hist.sketch.alpha
    headlines = {
        "obs_fleet_sample_count": float(fleet_hist.count),
        "obs_fleet_p50_s": fleet_p50,
        "obs_fleet_p99_s": fleet_p99,
        "obs_fleet_p50_rel_err": abs(fleet_p50 - exact_p50) / exact_p50,
        "obs_fleet_p99_rel_err": abs(fleet_p99 - exact_p99) / exact_p99,
        "obs_sketch_alpha": alpha,
        "obs_scrapes": float(aggregator.scrapes),
        "obs_slo_alerts": float(len(monitor.alerts)),
        "obs_slo_page_alerts": float(page_alerts),
        "obs_slo_goodput_alerts": float(goodput_alerts),
        "obs_member_registries": float(len(aggregator.members)),
    }
    return {
        "rows": rows,
        "headlines": headlines,
        "alerts": monitor.as_records(),
        "exact": {"p50_s": exact_p50, "p99_s": exact_p99},
        "config": {
            "offered_req_s": offered_req_s,
            "duration_s": duration_s,
            "scrape_interval_s": scrape_interval_s,
            "latency_target_s": latency_target_s,
            "fleets": {name: list(fleet) for name, fleet in _FLEETS},
            "tenants": list(_TENANTS),
        },
    }


COLUMNS = [
    "gateway", "offered", "completed", "shed", "sample_count",
    "p50_ms", "p99_ms", "registries",
]


@register_experiment("obs")
def run(actual_bytes: int = _DEFAULT_ACTUAL) -> ExperimentResult:
    demo = run_fleet_demo(actual_bytes=actual_bytes)
    result = ExperimentResult(
        experiment="obs",
        title=(
            "obs: fleet telemetry roll-up, 2 gateways x 2 tenants "
            f"(overload {int(_OFFERED_REQ_S)} req/s, "
            f"scrape every {_SCRAPE_INTERVAL_S * 1e3:g} ms)"
        ),
        columns=COLUMNS,
    )
    for row in demo["rows"]:
        result.rows.append({
            "gateway": row["gateway"],
            "offered": row["offered"],
            "completed": row["completed"],
            "shed": row["shed"],
            "sample_count": row["sample_count"],
            "p50_ms": row["p50_s"] * 1e3,
            "p99_ms": row["p99_s"] * 1e3,
            "registries": row["registries"],
        })
    result.headlines.update(demo["headlines"])
    for alert in demo["alerts"]:
        result.notes.append(
            f"SLO {alert['severity']} [{alert['kind']}] tenant="
            f"{alert['tenant']} at {alert['fired_at_s'] * 1e3:.2f} ms "
            f"(burn {alert['burn_rate']:.1f}x, "
            f"window {alert['window_s'] * 1e3:g} ms)"
        )
    result.notes.append(
        "fleet percentiles come from merged per-(worker,tenant) "
        "sketches; rel_err headlines compare them to the exact pooled "
        "nearest-rank values and must stay within the sketch alpha"
    )
    return result
