"""Fig. 9 — time distribution for SZ3 lossy designs on BF2/BF3.

Naive-flow accounting (same four fractions as Fig. 7) over
{BF2, BF3} x {SoC_SZ3, C-Engine_SZ3} x the three EXAALT datasets, plus
PEDAL-path totals for the paper's §V-C2 comparison:

* BF2: SoC and C-Engine-assisted SZ3 land within a few percent
  ("comparable cumulative execution times");
* BF3: the SoC design beats the C-Engine design (paper: up to ~1.58x at
  10 MB) because the engine path falls back to the slower SoC-DEFLATE
  backend for compression.
"""

from __future__ import annotations

from repro.bench.harness import (
    DEFAULT_ACTUAL_BYTES,
    ExperimentResult,
    register_experiment,
    run_naive_roundtrip,
    run_pedal_roundtrip,
)
from repro.core.api import PHASE_COMP, PHASE_DECOMP, PHASE_INIT, PHASE_PREP
from repro.datasets import lossy_datasets

__all__ = ["run"]

COLUMNS = [
    "device",
    "design",
    "dataset",
    "doca_init_s",
    "buffer_prep_s",
    "compression_s",
    "decompression_s",
    "total_s",
    "pedal_total_s",
]


@register_experiment("fig9")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig9",
        title="Fig. 9: time distribution, SZ3 lossy designs (BF2/BF3)",
        columns=COLUMNS,
    )
    for device in ("bf2", "bf3"):
        for design in ("SoC_SZ3", "C-Engine_SZ3"):
            for ds in lossy_datasets():
                naive = run_naive_roundtrip(
                    device, design, ds, actual_bytes=actual_bytes
                )
                pedal = run_pedal_roundtrip(
                    device, design, ds, actual_bytes=actual_bytes
                )
                merged = naive.compress_breakdown.merge(
                    naive.decompress_breakdown
                )
                comp = merged.get(PHASE_COMP) + merged.get("lossless_stage") / 2
                dec = merged.get(PHASE_DECOMP) + merged.get("lossless_stage") / 2
                result.rows.append(
                    {
                        "device": device,
                        "design": design,
                        "dataset": ds.key,
                        "doca_init_s": merged.get(PHASE_INIT),
                        "buffer_prep_s": merged.get(PHASE_PREP),
                        "compression_s": comp,
                        "decompression_s": dec,
                        "total_s": merged.total(),
                        "pedal_total_s": pedal.compress_seconds
                        + pedal.decompress_seconds,
                    }
                )

    def pedal_total(device: str, design: str, dataset: str) -> float:
        return next(
            r["pedal_total_s"]
            for r in result.rows
            if r["device"] == device
            and r["design"] == design
            and r["dataset"] == dataset
        )

    # BF2: comparable SoC vs C-Engine totals (PEDAL accounting).
    bf2_ratio = pedal_total("bf2", "C-Engine_SZ3", "exaalt-dataset1") / pedal_total(
        "bf2", "SoC_SZ3", "exaalt-dataset1"
    )
    result.headlines["bf2_cengine_over_soc_total_10MB (paper ~1.0)"] = bf2_ratio

    # BF3: SoC beats the C-Engine design at 10 MB (paper: up to 1.58x).
    bf3_ratio = pedal_total("bf3", "C-Engine_SZ3", "exaalt-dataset1") / pedal_total(
        "bf3", "SoC_SZ3", "exaalt-dataset1"
    )
    result.headlines["bf3_soc_speedup_over_cengine_10MB (paper ~1.58)"] = bf3_ratio
    result.notes.append(
        "compression_s/decompression_s split the offloaded lossless-stage "
        "time evenly between directions for display purposes"
    )
    return result
