"""``sched`` — pipelined C-Engine work queue vs serial submission.

Not a paper figure: this experiment quantifies the tentpole extension
of :mod:`repro.sched` on the paper's PPAR future-work design (§IV,
§V-C2).  A multi-chunk workload is driven through the bounded-depth
pipeline at several queue depths on both device generations; depth 1 is
the serial reference (map, exec, drain complete before the next chunk
starts), deeper queues overlap the stages across chunks.

Headlines asserted by the regression harness
(``benchmarks/regress.py`` / ``tests/bench/test_regression_gates.py``):

* pipelined (depth >= 2) beats serial on every engine-capable grid
  point;
* deeper-than-2 queues add little once the engine's single-server exec
  stage saturates (the ZipLine bounded-queue argument).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.parallel import ParallelCompressor, ParallelConfig
from repro.datasets import get_dataset
from repro.dpu.device import make_device
from repro.dpu.specs import Direction
from repro.sim import Environment

__all__ = ["run"]

# 8 KiB of real payload keeps the pure-Python DEFLATE work negligible;
# the simulated size is the paper's 48.85 MB mozilla workload.
_DEFAULT_ACTUAL = 8 * 1024
_NOMINAL = 48.85e6
_DATASET = "silesia/mozilla"

COLUMNS = [
    "device", "direction", "n_chunks", "depth",
    "sim_s", "speedup_vs_serial", "chunks_on_engine",
]


def _run_once(device_kind: str, direction: Direction, n_chunks: int,
              depth: int, actual_bytes: int):
    env = Environment()
    device = make_device(env, device_kind)
    payload = get_dataset(_DATASET).generate(actual_bytes)
    pc = ParallelCompressor(
        device, ParallelConfig(n_chunks=n_chunks, pipeline_depth=depth)
    )
    if direction is Direction.COMPRESS:
        proc = env.process(pc.compress(payload, _NOMINAL))
        return env.run(until=proc)
    comp_env = Environment()
    comp_pc = ParallelCompressor(
        make_device(comp_env, device_kind),
        ParallelConfig(n_chunks=n_chunks, pipeline_depth=depth),
    )
    comp_proc = comp_env.process(comp_pc.compress(payload, _NOMINAL))
    container = comp_env.run(until=comp_proc).payload
    proc = env.process(pc.decompress(container, _NOMINAL))
    return env.run(until=proc)


@register_experiment("sched")
def run(
    actual_bytes: int = _DEFAULT_ACTUAL,
    pipeline_depths: "tuple[int, ...]" = (1, 2, 4),
    n_chunks: int = 8,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="sched",
        title=(
            f"sched: pipelined vs serial C-Engine work queue "
            f"({n_chunks}-chunk PPAR, {_NOMINAL / 1e6:.4g} MB nominal)"
        ),
        columns=COLUMNS,
    )
    depths = tuple(sorted(set(pipeline_depths)))
    if 1 not in depths:
        depths = (1,) + depths  # the serial reference is always measured
    for device in ("bf2", "bf3"):
        for direction in (Direction.COMPRESS, Direction.DECOMPRESS):
            serial_s = None
            for depth in depths:
                rec = _run_once(device, direction, n_chunks, depth, actual_bytes)
                if depth == 1:
                    serial_s = rec.sim_seconds
                result.rows.append(
                    {
                        "device": device,
                        "direction": direction.value,
                        "n_chunks": n_chunks,
                        "depth": depth,
                        "sim_s": rec.sim_seconds,
                        "speedup_vs_serial": (
                            serial_s / rec.sim_seconds if rec.sim_seconds else 1.0
                        ),
                        "chunks_on_engine": rec.chunks_on_engine,
                    }
                )

    def _row(device, direction, depth):
        return next(
            r for r in result.rows
            if r["device"] == device and r["direction"] == direction
            and r["depth"] == depth
        )

    # BF2 runs both directions on the engine; BF3 only decompression —
    # headline the engine-capable grid points at the deepest queue run.
    headline_depth = max(depths)
    for device, direction in (
        ("bf2", "compress"), ("bf2", "decompress"), ("bf3", "decompress")
    ):
        result.headlines[
            f"{device}_{direction}_pipelined_vs_serial (depth {headline_depth})"
        ] = _row(device, direction, headline_depth)["speedup_vs_serial"]
    result.notes.append(
        "depth 1 = serial map/exec/drain per chunk; BF3 compression has no "
        "engine path (Table III), so its rows pipeline nothing and stay flat"
    )
    return result
