"""Fig. 10 — MPI point-to-point latency with on-the-fly compression.

OSU-latency-style ping-pong between two ranks; one panel per dataset
(the five lossless datasets for panels (a)-(e), the EXAALT datasets for
panel (f)), with the six lossless designs (A-F) / two SZ3 designs run
under PEDAL on BF2 and BF3, against the paper's baseline: the same
algorithm on BF2 *without* PEDAL (per-message memory allocation + DOCA
init).

Headlines:
* PEDAL C-Engine DEFLATE/zlib vs baseline on BF2 — paper: up to 88x;
* BF3 SoC designs vs BF2 SoC designs — paper: up to 40% lower latency;
* BF3 C-Engine DEFLATE/zlib — paper: can exceed even the baseline;
* SZ3 — paper: 47.3% (BF2) / 48% (BF3) latency reduction vs baseline.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import (
    ExperimentResult,
    generate_payload,
    register_experiment,
)
from repro.datasets import lossless_datasets, lossy_datasets
from repro.mpi import CommConfig, CommMode, run_mpi

__all__ = ["run", "pt2pt_latency"]

# Smaller actual budget: each ping-pong performs several real codec
# runs; the memo cache removes repeats within and across runs.
DEFAULT_ACTUAL_BYTES = 64 * 1024

_LOSSLESS_DESIGNS = [
    "SoC_DEFLATE",
    "C-Engine_DEFLATE",
    "SoC_LZ4",
    "C-Engine_LZ4",
    "SoC_zlib",
    "C-Engine_zlib",
]
_LOSSY_DESIGNS = ["SoC_SZ3", "C-Engine_SZ3"]

COLUMNS = [
    "panel",
    "dataset",
    "msg_mb",
    "device",
    "design",
    "latency_s",
    "vs_baseline",
]

# Message-size sweep within each panel ("executed across various
# message sizes"): rendezvous-path sizes up to the dataset's own size.
_SWEEP_BYTES = [128 * 1024, 512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024]


def pt2pt_latency(
    device_kind: str,
    mode: CommMode,
    design: "str | None",
    payload: Any,
    sim_bytes: float,
) -> float:
    """One-way latency of an OSU-style ping-pong (single exchange —
    the simulation is deterministic, so iteration averaging is moot)."""

    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.wtime()
            yield from ctx.send(1, payload, sim_bytes=sim_bytes)
            yield from ctx.recv(source=1)
            t1 = ctx.wtime()
            return (t1 - t0) / 2.0
        data = yield from ctx.recv(source=0)
        yield from ctx.send(0, data, sim_bytes=sim_bytes)
        return None

    cfg = CommConfig(mode=mode, design=design)
    result = run_mpi(program, 2, device_kind, cfg)
    return result.returns[0]


@register_experiment("fig10")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig10",
        title="Fig. 10: MPI pt2pt latency with compression (OSU-style)",
        columns=COLUMNS,
    )

    def add_panel(panel: str, dataset, designs: list[str]) -> None:
        payload = generate_payload(dataset.key, actual_bytes)
        sizes = [s for s in _SWEEP_BYTES if s < dataset.nominal_bytes]
        sizes.append(dataset.nominal_bytes)
        for nominal in sizes:
            msg_mb = nominal / 1e6
            baselines: dict[str, float] = {}
            for design in designs:
                algo = design.split("_", 1)[1]
                if algo not in baselines:
                    baselines[algo] = pt2pt_latency(
                        "bf2", CommMode.NAIVE, f"C-Engine_{algo}", payload, nominal
                    )
                    result.rows.append(
                        {
                            "panel": panel,
                            "dataset": dataset.key,
                            "msg_mb": msg_mb,
                            "device": "bf2",
                            "design": f"Baseline_{algo}",
                            "latency_s": baselines[algo],
                            "vs_baseline": 1.0,
                        }
                    )
            for device in ("bf2", "bf3"):
                for design in designs:
                    algo = design.split("_", 1)[1]
                    latency = pt2pt_latency(
                        device, CommMode.PEDAL, design, payload, nominal
                    )
                    result.rows.append(
                        {
                            "panel": panel,
                            "dataset": dataset.key,
                            "msg_mb": msg_mb,
                            "device": device,
                            "design": design,
                            "latency_s": latency,
                            "vs_baseline": baselines[algo] / latency,
                        }
                    )

    for i, ds in enumerate(lossless_datasets()):
        add_panel(chr(ord("a") + i), ds, _LOSSLESS_DESIGNS)
    for ds in lossy_datasets():
        add_panel("f", ds, _LOSSY_DESIGNS)

    rows = result.rows

    def sel(panel=None, device=None, design=None):
        return [
            r
            for r in rows
            if (panel is None or r["panel"] == panel)
            and (device is None or r["device"] == device)
            and (design is None or r["design"] == design)
        ]

    # Headline 1: best BF2 C-Engine DEFLATE/zlib speedup vs baseline.
    best = max(
        r["vs_baseline"]
        for r in rows
        if r["device"] == "bf2"
        and r["design"] in ("C-Engine_DEFLATE", "C-Engine_zlib")
    )
    result.headlines["bf2_cengine_best_speedup_vs_baseline (paper ~88)"] = best

    # Headline 2: BF3 SoC vs BF2 SoC latency reduction (lossless).
    best_red = 0.0
    for r3 in rows:
        if r3["device"] != "bf3" or not r3["design"].startswith("SoC_"):
            continue
        if r3["panel"] == "f":
            continue
        match = next(
            r2
            for r2 in rows
            if r2["device"] == "bf2"
            and r2["design"] == r3["design"]
            and r2["dataset"] == r3["dataset"]
            and r2["msg_mb"] == r3["msg_mb"]
        )
        best_red = max(best_red, 1.0 - r3["latency_s"] / match["latency_s"])
    result.headlines["bf3_soc_latency_reduction_vs_bf2 (paper ~0.40)"] = best_red

    # Headline 3: BF3 C-Engine DEFLATE/zlib vs baseline (paper: can
    # exceed the baseline — a ratio > 1 somewhere in the sweep).
    worst = max(
        r["latency_s"]
        / next(
            b["latency_s"]
            for b in rows
            if b["design"] == "Baseline_" + r["design"].split("_", 1)[1]
            and b["dataset"] == r["dataset"]
            and b["msg_mb"] == r["msg_mb"]
        )
        for r in rows
        if r["device"] == "bf3" and r["design"] in ("C-Engine_DEFLATE", "C-Engine_zlib")
    )
    result.headlines["bf3_cengine_worst_latency_over_baseline (paper >1)"] = worst

    # Headline 4: SZ3 latency reduction vs baseline per device, at the
    # datasets' own sizes (the paper's panel-f operating points).
    lossy_sizes = {ds.key: ds.nominal_bytes / 1e6 for ds in lossy_datasets()}
    for device, paper in (("bf2", 0.473), ("bf3", 0.48)):
        best_lossy = 0.0
        for r in sel(panel="f", device=device):
            if r["msg_mb"] != lossy_sizes[r["dataset"]]:
                continue
            base = next(
                b["latency_s"]
                for b in rows
                if b["panel"] == "f"
                and b["design"] == "Baseline_SZ3"
                and b["dataset"] == r["dataset"]
                and b["msg_mb"] == r["msg_mb"]
            )
            best_lossy = max(best_lossy, 1.0 - r["latency_s"] / base)
        result.headlines[
            f"{device}_sz3_latency_reduction_vs_baseline (paper ~{paper})"
        ] = best_lossy
    return result
