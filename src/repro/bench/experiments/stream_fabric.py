"""Stream — ZipLine-style streaming rendezvous vs whole-message PEDAL.

OSU-style pt2pt one-way latency and a binomial-tree bcast over the
hypersparse network-telemetry stream, with the compression either
whole-message (the paper's PEDAL path: sender codec, wire, receiver
codec fully serialized) or streamed through the RST1 container
(:mod:`repro.mpi.streaming`: per-chunk codec work overlapping fabric
transfer on both sides).

Headlines (gated in BENCH_PR10.json):

* ``stream_vs_whole_latency_{1,4,16}mib`` — whole/stream latency on
  the SoC DEFLATE design.  Streaming must be no worse at 4 MiB and
  strictly better at 16 MiB: the overlap win grows with message size
  while the container overhead is amortized away.
* ``bcast_speedup_4mib`` — whole/stream on a 4-rank binomial bcast;
  every hop re-streams, so the win compounds and must be > 1.
* ``stream_byte_identical`` — 1.0 iff every streamed payload decoded
  byte-identical to its whole-message twin across the sweep.

The C-Engine design rows are reported un-gated: per-chunk engine jobs
pay the fixed DOCA job overhead per chunk, so chunked streaming only
beats whole-message there once chunks are large relative to the
overhead (the crossover is chunk-size dependent — see DESIGN.md §5l).
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    generate_payload,
    register_experiment,
)
from repro.mpi import CommConfig, CommMode, run_mpi

__all__ = ["run", "stream_pt2pt", "stream_bcast"]

# Each run performs several real codec passes over the payload; the
# telemetry stream compresses fast, so a moderate budget suffices.
DEFAULT_ACTUAL_BYTES = 64 * 1024

# Real chunk size: 8 chunks over the default budget, so the pipeline
# is deep enough to overlap and shallow enough to stay readable.
_CHUNK_BYTES = 8 * 1024

_SIM_MB = [1.0, 4.0, 16.0]
_GATE_DESIGN = "SoC_DEFLATE"
_DESIGNS = [_GATE_DESIGN, "C-Engine_DEFLATE"]

COLUMNS = [
    "bench",
    "design",
    "sim_mb",
    "mode",
    "latency_s",
    "speedup_vs_whole",
    "identical",
]


def _config(design: str, streaming: bool) -> CommConfig:
    return CommConfig(
        mode=CommMode.PEDAL,
        design=design,
        streaming=streaming,
        stream_chunk_bytes=_CHUNK_BYTES,
        stream_depth=4,
    )


def stream_pt2pt(
    design: str, streaming: bool, payload: bytes, sim_bytes: float
) -> tuple[float, bool]:
    """One-way pt2pt latency; returns ``(seconds, byte_identical)``."""

    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.wtime()
            yield from ctx.send(1, payload, sim_bytes=sim_bytes)
            yield from ctx.recv(source=1)
            return (ctx.wtime() - t0) / 2.0
        data = yield from ctx.recv(source=0)
        yield from ctx.send(0, data, sim_bytes=sim_bytes)
        return bytes(data) == payload

    result = run_mpi(program, 2, "bf2", _config(design, streaming))
    return result.returns[0], bool(result.returns[1])


def stream_bcast(
    design: str, streaming: bool, payload: bytes, sim_bytes: float, n_ranks: int = 4
) -> tuple[float, bool]:
    """Binomial bcast completion time; returns ``(seconds, identical)``."""

    def program(ctx):
        data = payload if ctx.rank == 0 else None
        data = yield from ctx.bcast(data, root=0, sim_bytes=sim_bytes)
        yield from ctx.barrier()
        return bytes(data) == payload

    result = run_mpi(program, n_ranks, "bf2", _config(design, streaming))
    return result.elapsed_seconds, all(result.returns)


@register_experiment("stream")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="stream",
        title="Stream: streaming rendezvous vs whole-message PEDAL",
        columns=COLUMNS,
    )
    payload = generate_payload("net_telemetry", actual_bytes)
    identical = True

    for design in _DESIGNS:
        for sim_mb in _SIM_MB:
            sim_bytes = sim_mb * 1024 * 1024
            whole, ok_w = stream_pt2pt(design, False, payload, sim_bytes)
            streamed, ok_s = stream_pt2pt(design, True, payload, sim_bytes)
            identical = identical and ok_w and ok_s
            speedup = whole / streamed
            for mode, latency, rel in (
                ("whole", whole, 1.0),
                ("stream", streamed, speedup),
            ):
                result.rows.append(
                    {
                        "bench": "pt2pt",
                        "design": design,
                        "sim_mb": sim_mb,
                        "mode": mode,
                        "latency_s": latency,
                        "speedup_vs_whole": rel,
                        "identical": ok_w and ok_s,
                    }
                )
            if design == _GATE_DESIGN:
                label = f"{sim_mb:g}mib".replace(".", "p")
                result.headlines[f"stream_vs_whole_latency_{label}"] = speedup

    sim_bytes = 4.0 * 1024 * 1024
    whole, ok_w = stream_bcast(_GATE_DESIGN, False, payload, sim_bytes)
    streamed, ok_s = stream_bcast(_GATE_DESIGN, True, payload, sim_bytes)
    identical = identical and ok_w and ok_s
    for mode, latency, rel in (
        ("whole", whole, 1.0),
        ("stream", streamed, whole / streamed),
    ):
        result.rows.append(
            {
                "bench": "bcast4",
                "design": _GATE_DESIGN,
                "sim_mb": 4.0,
                "mode": mode,
                "latency_s": latency,
                "speedup_vs_whole": rel,
                "identical": ok_w and ok_s,
            }
        )
    result.headlines["bcast_speedup_4mib"] = whole / streamed
    result.headlines["stream_byte_identical"] = 1.0 if identical else 0.0
    return result
