"""Table IV — the dataset inventory.

Prints the registry with nominal sizes and the measured byte entropy of
the synthetic stand-ins (a quick sanity signal for their
compressibility class).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import (
    DEFAULT_ACTUAL_BYTES,
    ExperimentResult,
    generate_payload,
    register_experiment,
)
from repro.datasets import lossless_datasets, lossy_datasets
from repro.util.stats import byte_entropy

__all__ = ["run"]

COLUMNS = ["kind", "dataset", "description", "nominal_mb", "entropy_bits"]


@register_experiment("table4")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table4",
        title="Table IV: benchmark datasets (synthetic stand-ins)",
        columns=COLUMNS,
    )
    for ds in lossless_datasets() + lossy_datasets():
        payload = generate_payload(ds.key, actual_bytes)
        blob = payload.tobytes() if isinstance(payload, np.ndarray) else payload
        result.rows.append(
            {
                "kind": ds.kind,
                "dataset": ds.key,
                "description": ds.description,
                "nominal_mb": ds.nominal_mb,
                "entropy_bits": byte_entropy(blob),
            }
        )
    return result
