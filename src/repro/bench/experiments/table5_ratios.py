"""Table V — compression ratios of the PEDAL designs.

(a) DEFLATE / LZ4 / zlib over the five lossless datasets;
(b) SZ3 and SZ3(C-Engine) over the three EXAALT datasets at the paper's
1e-4 error bound.  These are *real* ratios measured by running the
from-scratch codecs over the synthetic corpora — no cost model involved.
"""

from __future__ import annotations

from repro.algorithms.deflate import deflate_compress
from repro.algorithms.lz4 import lz4_compress
from repro.algorithms.sz3 import SZ3Compressor, SZ3Config
from repro.algorithms.zlib_format import zlib_compress
from repro.bench.harness import (
    DEFAULT_ACTUAL_BYTES,
    ExperimentResult,
    generate_payload,
    register_experiment,
)
from repro.core.sz3_hybrid import hybrid_sz3_compress
from repro.datasets import lossless_datasets, lossy_datasets

__all__ = ["run", "PAPER_LOSSLESS", "PAPER_LOSSY"]

# Table V(a)/(b) values from the paper, for side-by-side display.
PAPER_LOSSLESS = {
    "obs_error": {"DEFLATE": 1.469, "LZ4": 1.204, "zlib": 1.469},
    "silesia/mozilla": {"DEFLATE": 2.683, "LZ4": 2.319, "zlib": 2.683},
    "silesia/mr": {"DEFLATE": 2.712, "LZ4": 2.348, "zlib": 2.712},
    "silesia/samba": {"DEFLATE": 3.963, "LZ4": 3.517, "zlib": 3.963},
    "silesia/xml": {"DEFLATE": 7.769, "LZ4": 6.933, "zlib": 7.769},
}
PAPER_LOSSY = {
    "exaalt-dataset1": {"SZ3": 2.941, "SZ3(C-Engine)": 2.940},
    "exaalt-dataset3": {"SZ3": 5.745, "SZ3(C-Engine)": 5.844},
    "exaalt-dataset2": {"SZ3": 5.378, "SZ3(C-Engine)": 4.971},
}

COLUMNS = [
    "dataset",
    "DEFLATE",
    "paper_DEFLATE",
    "LZ4",
    "paper_LZ4",
    "zlib",
    "paper_zlib",
    "SZ3",
    "paper_SZ3",
    "SZ3(C-Engine)",
    "paper_SZ3(C-Engine)",
]


@register_experiment("table5")
def run(actual_bytes: int = DEFAULT_ACTUAL_BYTES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table5",
        title="Table V: compression ratios (measured vs paper)",
        columns=COLUMNS,
    )
    for ds in lossless_datasets():
        data = generate_payload(ds.key, actual_bytes)
        n = len(data)
        paper = PAPER_LOSSLESS[ds.key]
        result.rows.append(
            {
                "dataset": ds.key,
                "DEFLATE": n / len(deflate_compress(data)),
                "paper_DEFLATE": paper["DEFLATE"],
                "LZ4": n / len(lz4_compress(data)),
                "paper_LZ4": paper["LZ4"],
                "zlib": n / len(zlib_compress(data)),
                "paper_zlib": paper["zlib"],
            }
        )
    config = SZ3Config(error_bound=1e-4)
    for ds in lossy_datasets():
        array = generate_payload(ds.key, actual_bytes)
        n = array.nbytes
        paper = PAPER_LOSSY[ds.key]
        soc_stream = SZ3Compressor(config).compress(array)
        ce_stream = hybrid_sz3_compress(array, config).stream
        result.rows.append(
            {
                "dataset": ds.key,
                "SZ3": n / len(soc_stream),
                "paper_SZ3": paper["SZ3"],
                "SZ3(C-Engine)": n / len(ce_stream),
                "paper_SZ3(C-Engine)": paper["SZ3(C-Engine)"],
            }
        )

    # Headline: maximum relative deviation from the paper's DEFLATE column.
    worst = 0.0
    for row in result.rows:
        if "DEFLATE" in row and row.get("DEFLATE"):
            worst = max(
                worst,
                abs(row["DEFLATE"] - row["paper_DEFLATE"]) / row["paper_DEFLATE"],
            )
    result.headlines["max_deflate_ratio_rel_error"] = worst
    result.notes.append(
        "zlib == DEFLATE + 6 wrapper bytes, hence identical ratios at "
        "table precision (as in the paper)"
    )
    return result
