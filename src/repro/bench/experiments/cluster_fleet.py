"""``cluster`` — fleet-scale sharded serving under 10-100x PR 4 load.

Not a paper figure: this experiment characterizes the cluster tentpole
(:mod:`repro.cluster`).  A seeded open-loop traffic schedule (Poisson
arrivals with a diurnal swing, heavy-tailed lognormal/Pareto sizes,
mixed compress/decompress tenants) drives a 12-worker, 4-shard cluster
at offered loads from 10x the single-gateway sweep's lowest point up to
100x its highest (2.4 M req/s), and one dedicated run kills a whole
worker mid-stream to measure failover recovery.

Expected shape (asserted by the BENCH_PR9 regression gates):

* goodput rises with offered load, then *saturates* — admission (the
  global budget plus per-shard bounds) sheds the excess instead of
  letting queues collapse the cluster;
* per-shard peak pending never exceeds the shard budget, even at the
  100x point;
* the mid-run worker kill recovers >= 90 % of pre-kill goodput (the
  shard's surviving replicas absorb its traffic via in-shard failover,
  and the shard map heals only when a whole shard dies);
* routing is bit-for-bit deterministic: the BLAKE2b digest over every
  shard lookup, batch dispatch, failover re-pick, and shard-map heal
  is pinned exactly.
"""

from __future__ import annotations

import hashlib

from repro.bench.harness import ExperimentResult, register_experiment
from repro.cluster import (
    ClusterConfig,
    ServeCluster,
    TenantProfile,
    TrafficConfig,
    build_schedule,
    traffic_process,
)
from repro.dpu.device import make_device
from repro.dpu.specs import Algo, Direction
from repro.errors import NoLatencySamplesError
from repro.faults.workers import WorkerKill, WorkerKillSchedule, worker_kill_process
from repro.obs import FleetAggregator
from repro.obs.aggregate import scrape_process
from repro.obs.slo import SloMonitor, SloObjective
from repro.serve import BatchPolicy, ServeConfig
from repro.sim import Environment

__all__ = ["run", "run_cluster_point", "CLUSTER_LOADS_REQ_S", "FAILOVER_LOAD_REQ_S"]

# 12 workers over 4 shards: 8 BF-2 (compress-capable) + 4 BF-3
# (decompress-only engine) — capability_spread gives every shard
# 2x BF-2 + 1x BF-3.
_FLEET = tuple(
    ("bf2", f"bf2-{i}") for i in range(8)
) + tuple(
    ("bf3", f"bf3-{i}") for i in range(4)
)
_NUM_SHARDS = 4
_SHARD_MAX_PENDING = 64
_GLOBAL_MAX_PENDING = 1024
_BATCH_MSGS = 8
_SEED = 20260808

# PR 4's single-gateway sweep ran 2k..24k req/s; this one spans 10x its
# lowest to 100x its highest point.
_PR4_LOW, _PR4_HIGH = 2_000, 24_000
CLUSTER_LOADS_REQ_S = (
    10 * _PR4_LOW,      # 20k
    5 * _PR4_HIGH,      # 120k
    20 * _PR4_HIGH,     # 480k
    50 * _PR4_HIGH,     # 1.2M
    100 * _PR4_HIGH,    # 2.4M
)
# Bound the arrival count per point so the 100x point stays tractable.
_TARGET_ARRIVALS = 24_000
_MAX_DURATION_S = 0.02

# The failover run offers a load the fleet still covers with one worker
# dead, so recovery measures the failover machinery, not lost capacity.
FAILOVER_LOAD_REQ_S = 60_000
_FAILOVER_DURATION_S = 0.03
_FAILOVER_KILL_AT_S = 0.015
_FAILOVER_VICTIM = "bf2-0"
_SCRAPE_INTERVAL_S = 1e-3

# Many tenant keys (not just 3 profiles' worth) so the consistent hash
# spreads load across all shards; profiles alternate over the mix.
# SLO targets sit just above the healthy-state latency (~1-2 ms at the
# failover load) so the kill's latency spike trips a deterministic
# burn-rate alert stream — the monitor is exercised, not decorative.
_TENANTS = tuple(
    TenantProfile(
        name=f"bulk-{i}", weight=2.0, direction=Direction.COMPRESS,
        size_dist="pareto", median_bytes=32e3, pareto_alpha=1.5,
        slo_p99_s=0.004,
    ) for i in range(4)
) + tuple(
    TenantProfile(
        name=f"reader-{i}", weight=3.0, direction=Direction.DECOMPRESS,
        size_dist="lognormal", median_bytes=16e3, sigma=0.7,
        slo_p99_s=0.002,
    ) for i in range(4)
) + (
    TenantProfile(
        name="restore", weight=1.0, direction=Direction.DECOMPRESS,
        size_dist="pareto", median_bytes=128e3, pareto_alpha=1.2,
        slo_p99_s=0.008,
    ),
)

COLUMNS = [
    "offered_req_s", "arrivals", "completed", "shed_global", "shed_shard",
    "goodput_mb_s", "p99_ms", "sample_count", "max_shard_pending",
    "failovers", "epoch",
]


def _build_cluster(env: Environment,
                   aggregator: "FleetAggregator | None" = None,
                   ) -> ServeCluster:
    devices = [make_device(env, kind, name=name) for kind, name in _FLEET]
    return ServeCluster(
        env,
        devices,
        ClusterConfig(
            num_shards=_NUM_SHARDS,
            global_max_pending=_GLOBAL_MAX_PENDING,
            shard_max_pending=_SHARD_MAX_PENDING,
            serve=ServeConfig(
                batch=BatchPolicy(max_msgs=_BATCH_MSGS),
                router="capability",
            ),
        ),
        aggregator=aggregator,
    )


def _routing_digest(cluster: ServeCluster) -> str:
    """BLAKE2b over every routing decision the run made, in a canonical
    order: cluster shard lookups, shard-map heals, then each shard
    gateway's dispatch/failover picks (shard-name order)."""
    h = hashlib.blake2b(digest_size=16)
    for rec in cluster.routing_log:
        h.update(repr(rec).encode())
    for rec in cluster.shard_map.assignment_log:
        h.update(repr(rec).encode())
    for name in cluster.shard_names:
        h.update(name.encode())
        for rec in cluster.gateways[name].routing_log:
            h.update(repr(rec).encode())
    return h.hexdigest()


def _failover_count(cluster: ServeCluster) -> int:
    return sum(
        1
        for name in cluster.shard_names
        for rec in cluster.gateways[name].routing_log
        if rec[1] == "failover"
    )


def _p99_or_none(cluster: ServeCluster) -> "float | None":
    try:
        return cluster.latency_percentile(99)
    except NoLatencySamplesError:
        return None


def run_cluster_point(
    offered_req_s: float,
    duration_s: "float | None" = None,
    seed: int = _SEED,
    kill: "WorkerKillSchedule | None" = None,
    with_slo: bool = False,
    diurnal_amplitude: float = 0.3,
) -> dict:
    """One deterministic cluster run at ``offered_req_s``.

    ``goodput_bytes_s`` is measured over the *steady-state window* —
    from 25 % of the arrival span (past the cold ramp) to the last
    arrival (before the drain tail) — so points with different
    durations compare like-for-like; the whole-run number (ramp and
    drain included) is kept as ``overall_goodput_bytes_s``.

    With ``kill`` set, the record also splits goodput at the first
    kill instant (``pre/post_kill_goodput_bytes_s`` and their ratio).
    ``with_slo`` attaches the fleet aggregator, a 1 ms scrape loop
    grouped by (tenant, shard), and the burn-rate monitor fed from the
    tenants' p99 objectives — telemetry reads never move the sim
    clock, so it only adds fields, never changes numbers.
    """
    if duration_s is None:
        duration_s = min(_MAX_DURATION_S, _TARGET_ARRIVALS / offered_req_s)
    env = Environment()
    aggregator = FleetAggregator() if with_slo else None
    cluster = _build_cluster(env, aggregator=aggregator)
    schedule = build_schedule(TrafficConfig(
        rate_req_s=offered_req_s,
        duration_s=duration_s,
        seed=seed,
        tenants=_TENANTS,
        diurnal_amplitude=diurnal_amplitude,
    ))

    monitor = None
    if with_slo:
        monitor = SloMonitor([
            SloObjective(tenant=t.name, latency_target_s=t.slo_p99_s)
            for t in _TENANTS if t.slo_p99_s is not None
        ])
        env.process(scrape_process(
            env, aggregator, _SCRAPE_INTERVAL_S,
            group_by=("tenant", "shard"), on_scrape=monitor.observe,
        ))

    def _mark() -> "tuple[float, float, int]":
        return (env.now, cluster.completed_sim_bytes, cluster.completed)

    kill_marks: "list[tuple[float, float, int]]" = []
    if kill is not None:
        def killer(env):
            for k in kill:
                delay = k.at_s - env.now
                if delay > 0.0:
                    yield env.timeout(delay)
                kill_marks.append(_mark())
                cluster.kill_worker(k.worker)
        env.process(killer(env))

    # Steady-state window probes (reads only — determinism unaffected).
    warmup_s = 0.25 * duration_s
    marks: "dict[str, tuple[float, float, int]]" = {}

    def warmup_probe(env):
        yield env.timeout(warmup_s)
        marks["warm"] = _mark()
    env.process(warmup_probe(env))

    def driver(env):
        yield from traffic_process(env, schedule, cluster.submit)
        marks["arrivals_end"] = _mark()
        yield from cluster.drain()

    env.run(until=env.process(driver(env)))
    elapsed = env.now

    warm_t, warm_bytes, warm_n = marks["warm"]
    end_t, end_bytes, end_n = marks["arrivals_end"]
    steady_span = end_t - warm_t
    steady_goodput = (
        (end_bytes - warm_bytes) / steady_span if steady_span > 0.0 else 0.0
    )
    record = {
        "offered_req_s": offered_req_s,
        "duration_s": duration_s,
        "arrivals": len(schedule),
        "completed": cluster.completed,
        "shed_global": cluster.shed_global,
        "shed_shard": cluster.shed_shard,
        "goodput_bytes_s": steady_goodput,
        "overall_goodput_bytes_s": (
            cluster.completed_sim_bytes / elapsed if elapsed > 0.0 else 0.0
        ),
        "p99_s": _p99_or_none(cluster),
        "sample_count": cluster.sample_count,
        "peak_shard_pending": cluster.peak_shard_pending(),
        "max_shard_pending": max(cluster.peak_shard_pending().values()),
        "pending_after_drain": cluster.pending,
        "failovers": _failover_count(cluster),
        "epoch": cluster.shard_map.epoch,
        "makespan_s": elapsed,
        "routing_digest": _routing_digest(cluster),
    }
    if kill is not None and kill_marks:
        # Pre/post windows exclude the cold ramp (before the warmup
        # probe) and the drain tail (after the last arrival): the ratio
        # should measure failover, not window artifacts.  The gated
        # recovery ratio compares completed-request *rates* — byte
        # rates over heavy-tailed sizes are dominated by which window a
        # few huge objects land in, which is tail luck, not failover.
        kill_at, bytes_at_kill, n_at_kill = kill_marks[0]
        pre_span = kill_at - warm_t
        post_span = end_t - kill_at
        pre_bytes = (
            (bytes_at_kill - warm_bytes) / pre_span if pre_span > 0.0 else 0.0
        )
        post_bytes = (
            (end_bytes - bytes_at_kill) / post_span if post_span > 0.0 else 0.0
        )
        pre_rate = (n_at_kill - warm_n) / pre_span if pre_span > 0.0 else 0.0
        post_rate = (end_n - n_at_kill) / post_span if post_span > 0.0 else 0.0
        record["kill_at_s"] = kill_at
        record["killed_workers"] = [k.worker for k in kill]
        record["pre_kill_goodput_bytes_s"] = pre_bytes
        record["post_kill_goodput_bytes_s"] = post_bytes
        record["pre_kill_completed_req_s"] = pre_rate
        record["post_kill_completed_req_s"] = post_rate
        record["recovery_ratio"] = (
            post_rate / pre_rate if pre_rate > 0.0 else 0.0
        )
    if monitor is not None:
        record["slo_alerts"] = len(monitor.alerts)
        record["slo_alerts_by_severity"] = {
            sev: sum(1 for a in monitor.alerts if a.severity == sev)
            for sev in sorted({a.severity for a in monitor.alerts})
        }
        record["scrapes"] = aggregator.scrapes
        record["scrape_groups"] = (
            len(aggregator.latest().groups) if aggregator.latest() else 0
        )
    return record


def run_failover_point(seed: int = _SEED) -> dict:
    """The dedicated mid-run worker-kill recovery measurement.

    Runs at a flat (no-diurnal) rate the fleet still covers with one
    worker dead, so the pre/post goodput ratio isolates the failover
    machinery rather than offered-load swings or lost raw capacity.
    """
    return run_cluster_point(
        FAILOVER_LOAD_REQ_S,
        duration_s=_FAILOVER_DURATION_S,
        seed=seed,
        kill=WorkerKillSchedule(
            [WorkerKill(_FAILOVER_KILL_AT_S, _FAILOVER_VICTIM)]
        ),
        with_slo=True,
        diurnal_amplitude=0.0,
    )


@register_experiment("cluster")
def run(loads_req_s: "tuple[float, ...]" = CLUSTER_LOADS_REQ_S) -> ExperimentResult:
    result = ExperimentResult(
        experiment="cluster",
        title=(
            f"cluster: {len(_FLEET)} workers / {_NUM_SHARDS} shards, "
            f"offered load 10-100x PR 4 sweep, "
            f"global/shard admission {_GLOBAL_MAX_PENDING}/{_SHARD_MAX_PENDING}"
        ),
        columns=COLUMNS,
    )
    records = []
    for load in loads_req_s:
        rec = run_cluster_point(load)
        records.append(rec)
        result.rows.append({
            "offered_req_s": load,
            "arrivals": rec["arrivals"],
            "completed": rec["completed"],
            "shed_global": rec["shed_global"],
            "shed_shard": rec["shed_shard"],
            "goodput_mb_s": rec["goodput_bytes_s"] / 1e6,
            "p99_ms": (
                rec["p99_s"] * 1e3 if rec["p99_s"] is not None else float("nan")
            ),
            "sample_count": rec["sample_count"],
            "max_shard_pending": rec["max_shard_pending"],
            "failovers": rec["failovers"],
            "epoch": rec["epoch"],
        })
    fo = run_failover_point()
    result.rows.append({
        "offered_req_s": fo["offered_req_s"],
        "arrivals": fo["arrivals"],
        "completed": fo["completed"],
        "shed_global": fo["shed_global"],
        "shed_shard": fo["shed_shard"],
        "goodput_mb_s": fo["goodput_bytes_s"] / 1e6,
        "p99_ms": (
            fo["p99_s"] * 1e3 if fo["p99_s"] is not None else float("nan")
        ),
        "sample_count": fo["sample_count"],
        "max_shard_pending": fo["max_shard_pending"],
        "failovers": fo["failovers"],
        "epoch": fo["epoch"],
    })

    peak = max(r["goodput_bytes_s"] for r in records)
    result.headlines["goodput_at_100x_vs_peak"] = (
        records[-1]["goodput_bytes_s"] / peak if peak > 0.0 else 0.0
    )
    result.headlines["failover_recovery_ratio"] = fo["recovery_ratio"]
    result.headlines["max_shard_pending_overload"] = float(
        max(r["max_shard_pending"] for r in records)
    )
    result.headlines["slo_alerts_failover_run"] = float(fo["slo_alerts"])
    result.notes.append(
        "goodput counts nominal uncompressed bytes of completed requests; "
        "the failover row kills one worker mid-run and recovers via "
        "in-shard re-dispatch (recovery ratio in headlines)"
    )
    return result
